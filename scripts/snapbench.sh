#!/usr/bin/env bash
# DRILLSNAP cost/payoff harness: snapshot size and save/restore latency
# on the golden-shaped leaf-spine run, plus a cold vs warm-started
# variants-sweep (divergent fault timelines forked off one shared
# snapshot) with the measured speedup and a bit-identity check. Writes
# results/snapbench.json. Offline-safe: no external deps. `--quick`
# shrinks both sections to CI scale.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=""
if [[ "${1:-}" == "--quick" ]]; then
  MODE="--quick"
fi

mkdir -p results

echo "== building (release) =="
cargo build --release -p drill-bench --bin snapbench

echo "== snapbench ($([[ -n "$MODE" ]] && echo quick || echo full)) =="
./target/release/snapbench $MODE | tee results/snapbench.json

echo "== wrote results/snapbench.json =="
