#!/usr/bin/env bash
# Parallel-sweep harness: runs the same fig2-style sweep grid under
# DRILL_THREADS=1/2/8, byte-compares the result tables (the executor's
# determinism contract), and records wall-clock per thread count in
# results/sweepbench.json. Offline-safe: no external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

THREAD_COUNTS=(${THREAD_COUNTS:-1 2 8})

mkdir -p results
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== building =="
cargo build --release -p drill-bench

echo "== sweep under DRILL_THREADS=${THREAD_COUNTS[*]} =="
for t in "${THREAD_COUNTS[@]}"; do
  echo "-- DRILL_THREADS=$t"
  DRILL_THREADS="$t" ./target/release/sweepbench \
    > "$tmp/table-$t.txt" 2> "$tmp/time-$t.json"
  cat "$tmp/time-$t.json"
done

echo "== byte-comparing result tables =="
ref="${THREAD_COUNTS[0]}"
for t in "${THREAD_COUNTS[@]:1}"; do
  cmp "$tmp/table-$ref.txt" "$tmp/table-$t.txt" \
    && echo "table($ref threads) == table($t threads): byte-identical"
done

python3 - "$tmp" "${THREAD_COUNTS[@]}" <<'EOF'
import json, os, sys

tmp = sys.argv[1]
counts = [int(c) for c in sys.argv[2:]]
runs = {}
for t in counts:
    runs[str(t)] = json.load(open(f"{tmp}/time-{t}.json"))
base = runs[str(counts[0])]["wall_secs"]
doc = {
    "bench": "sweepbench",
    "host_cpus": os.cpu_count(),
    "scale": os.environ.get("DRILL_SCALE", "default"),
    "tables_byte_identical": True,  # cmp above would have aborted otherwise
    "runs": runs,
    "speedup_vs_1_thread": {
        t: round(base / r["wall_secs"], 3) for t, r in runs.items()
    },
}
json.dump(doc, open("results/sweepbench.json", "w"), indent=2)
print("wrote results/sweepbench.json")
for t, s in doc["speedup_vs_1_thread"].items():
    print(f"  {t} threads: {s}x vs 1 thread")
EOF
