#!/usr/bin/env bash
# Parallel-sweep harness: runs the same fig2-style sweep grid under
# DRILL_THREADS=1/2/8, byte-compares the result tables (the executor's
# determinism contract), and records wall-clock per thread count in
# results/sweepbench.json. A second axis does the same under
# DRILL_SHARDS=1/2/8 — the sharded engine's contract is that the table
# stays byte-identical at any shard count. Offline-safe: no external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

THREAD_COUNTS=(${THREAD_COUNTS:-1 2 8})
SHARD_COUNTS=(${SHARD_COUNTS:-1 2 8})

mkdir -p results
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== building =="
cargo build --release -p drill-bench

echo "== sweep under DRILL_THREADS=${THREAD_COUNTS[*]} =="
for t in "${THREAD_COUNTS[@]}"; do
  echo "-- DRILL_THREADS=$t"
  DRILL_THREADS="$t" ./target/release/sweepbench \
    > "$tmp/table-$t.txt" 2> "$tmp/time-$t.json"
  cat "$tmp/time-$t.json"
done

echo "== byte-comparing result tables =="
ref="${THREAD_COUNTS[0]}"
for t in "${THREAD_COUNTS[@]:1}"; do
  cmp "$tmp/table-$ref.txt" "$tmp/table-$t.txt" \
    && echo "table($ref threads) == table($t threads): byte-identical"
done

echo "== sweep under DRILL_SHARDS=${SHARD_COUNTS[*]} =="
for s in "${SHARD_COUNTS[@]}"; do
  echo "-- DRILL_SHARDS=$s"
  DRILL_SHARDS="$s" ./target/release/sweepbench \
    > "$tmp/table-shards-$s.txt" 2> "$tmp/time-shards-$s.json"
  cat "$tmp/time-shards-$s.json"
done

echo "== byte-comparing shard-axis tables against the thread-axis reference =="
for s in "${SHARD_COUNTS[@]}"; do
  cmp "$tmp/table-$ref.txt" "$tmp/table-shards-$s.txt" \
    && echo "table($ref threads) == table($s shards): byte-identical"
done

export SHARD_COUNTS_LIST="${SHARD_COUNTS[*]}"
python3 - "$tmp" "${THREAD_COUNTS[@]}" <<'EOF'
import json, os, sys

tmp = sys.argv[1]
counts = [int(c) for c in sys.argv[2:]]
runs = {}
for t in counts:
    runs[str(t)] = json.load(open(f"{tmp}/time-{t}.json"))
base = runs[str(counts[0])]["wall_secs"]
doc = {
    "bench": "sweepbench",
    "host_cpus": os.cpu_count(),
    "scale": os.environ.get("DRILL_SCALE", "default"),
    "tables_byte_identical": True,  # cmp above would have aborted otherwise
    "runs": runs,
    "speedup_vs_1_thread": {
        t: round(base / r["wall_secs"], 3) for t, r in runs.items()
    },
}
shard_counts = os.environ["SHARD_COUNTS_LIST"].split()
shard_runs = {s: json.load(open(f"{tmp}/time-shards-{s}.json")) for s in shard_counts}
doc["shard_axis"] = {
    # The cmp pass above aborts the script on any divergence, so reaching
    # here certifies every shard count reproduced the serial table.
    "tables_byte_identical_to_serial": True,
    "runs": shard_runs,
    "wall_vs_1_shard": {
        s: round(shard_runs[shard_counts[0]]["wall_secs"] / r["wall_secs"], 3)
        for s, r in shard_runs.items()
    },
}
json.dump(doc, open("results/sweepbench.json", "w"), indent=2)
print("wrote results/sweepbench.json")
for t, s in doc["speedup_vs_1_thread"].items():
    print(f"  {t} threads: {s}x vs 1 thread")
for s, x in doc["shard_axis"]["wall_vs_1_shard"].items():
    print(f"  {s} shards: {x}x vs 1 shard (table byte-identical)")
EOF
