#!/usr/bin/env bash
# Tier-1 gate plus lint, all offline-safe (the workspace has no external
# dependencies; see the note in the root Cargo.toml).
#
# The test matrix covers both event-queue builds (default timing wheel
# and the legacy --features heap-queue) and both ends of the executor
# knob (DRILL_THREADS=1 serial, DRILL_THREADS=8 oversubscribed) — the
# sweep determinism contract says results must not depend on either.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (wheel queue, DRILL_THREADS=1) =="
DRILL_THREADS=1 cargo test -q

echo "== cargo test -q (wheel queue, DRILL_THREADS=8) =="
DRILL_THREADS=8 cargo test -q

echo "== cargo test -q (--features heap-queue) =="
cargo test -q --features heap-queue

echo "== golden suite with flight recorder attached (DRILL_TELEMETRY=1) =="
# The telemetry determinism contract: every golden constant must hold
# unchanged with the recorder riding along, on both queue builds.
DRILL_TELEMETRY=1 cargo test -q --test determinism_golden
DRILL_TELEMETRY=1 cargo test -q --test determinism_golden --features heap-queue

echo "== chaos determinism goldens (both queue builds, DRILL_THREADS=1/8) =="
# The fault pipeline's replay contract: the pinned chaos schedule (flaps +
# degradation + switch crash) must stay bit-identical across serial vs
# threaded sweeps and with telemetry on/off, on both event-queue builds.
# (The wheel build already ran above under DRILL_THREADS=1/8.)
DRILL_THREADS=1 cargo test -q --test determinism_golden --features heap-queue
DRILL_THREADS=8 cargo test -q --test determinism_golden --features heap-queue

echo "== packet-layout goldens (--features fat-events, DRILL_THREADS=1/8) =="
# The arena contract: by-value packet events (the pre-arena layout) must
# replay every golden — event counts, leak checks, chaos fingerprints —
# bit-identically. Size asserts for the slim layout are compile-time and
# ran with every build above.
DRILL_THREADS=1 cargo test -q --test determinism_golden --features fat-events
DRILL_THREADS=8 cargo test -q --test determinism_golden --features fat-events

echo "== sharded-engine goldens (DRILL_SHARDS=1/2/8 x wheel/heap/fat builds) =="
# The sharding contract: every determinism golden — chaos schedule and
# telemetry crossings included — must replay bit-identically at any shard
# count, on every event-queue and packet-layout build. DRILL_SHARDS=1 runs
# the serial engine, so the =1 rows also prove the env plumbing is inert.
for shards in 1 2 8; do
    DRILL_SHARDS=$shards cargo test -q --test determinism_golden
    DRILL_SHARDS=$shards cargo test -q --test determinism_golden --features heap-queue
    DRILL_SHARDS=$shards cargo test -q --test determinism_golden --features fat-events
done

echo "== chaosbench --quick smoke =="
cargo build --release -p drill-bench
./target/release/chaosbench --quick > /dev/null

echo "== scalebench --quick smoke =="
# Seconds-scale scaling ladder (leaf-spine, small Clos, k=8 fat-tree)
# plus the sketch rank-error section. The small-Clos determinism golden
# itself rides in determinism_golden, which the DRILL_SHARDS=1/2/8 loop
# above already crosses with every build.
./target/release/scalebench --quick > /dev/null
./target/release/scalebench --sketch --quick > /dev/null

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "CI OK"
