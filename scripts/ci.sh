#!/usr/bin/env bash
# Tier-1 gate plus lint, all offline-safe (the workspace has no external
# dependencies; see the note in the root Cargo.toml).
#
# The test matrix covers both event-queue builds (default timing wheel
# and the legacy --features heap-queue) and both ends of the executor
# knob (DRILL_THREADS=1 serial, DRILL_THREADS=8 oversubscribed) — the
# sweep determinism contract says results must not depend on either.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (wheel queue, DRILL_THREADS=1) =="
DRILL_THREADS=1 cargo test -q

echo "== cargo test -q (wheel queue, DRILL_THREADS=8) =="
DRILL_THREADS=8 cargo test -q

echo "== cargo test -q (--features heap-queue) =="
cargo test -q --features heap-queue

echo "== golden suite with flight recorder attached (DRILL_TELEMETRY=1) =="
# The telemetry determinism contract: every golden constant must hold
# unchanged with the recorder riding along, on both queue builds.
DRILL_TELEMETRY=1 cargo test -q --test determinism_golden
DRILL_TELEMETRY=1 cargo test -q --test determinism_golden --features heap-queue

echo "== golden suite with invariant auditor attached (DRILL_AUDIT=1) =="
# The audit determinism contract: watchdogs observe, never steer — every
# golden constant must hold unchanged with the auditor riding along,
# across the full engine matrix (shard counts x queue builds x packet
# layouts). These rows ARE the auditor-on vs auditor-off bit-identity
# proof: the golden constants were captured auditor-off.
for shards in 1 2 8; do
    DRILL_AUDIT=1 DRILL_SHARDS=$shards cargo test -q --test determinism_golden
    DRILL_AUDIT=1 DRILL_SHARDS=$shards cargo test -q --test determinism_golden --features heap-queue
    DRILL_AUDIT=1 DRILL_SHARDS=$shards cargo test -q --test determinism_golden --features fat-events
done

echo "== chaos determinism goldens (both queue builds, DRILL_THREADS=1/8) =="
# The fault pipeline's replay contract: the pinned chaos schedule (flaps +
# degradation + switch crash) must stay bit-identical across serial vs
# threaded sweeps and with telemetry on/off, on both event-queue builds.
# (The wheel build already ran above under DRILL_THREADS=1/8.)
DRILL_THREADS=1 cargo test -q --test determinism_golden --features heap-queue
DRILL_THREADS=8 cargo test -q --test determinism_golden --features heap-queue

echo "== packet-layout goldens (--features fat-events, DRILL_THREADS=1/8) =="
# The arena contract: by-value packet events (the pre-arena layout) must
# replay every golden — event counts, leak checks, chaos fingerprints —
# bit-identically. Size asserts for the slim layout are compile-time and
# ran with every build above.
DRILL_THREADS=1 cargo test -q --test determinism_golden --features fat-events
DRILL_THREADS=8 cargo test -q --test determinism_golden --features fat-events

echo "== sharded-engine goldens (DRILL_SHARDS=1/2/8 x wheel/heap/fat builds) =="
# The sharding contract: every determinism golden — chaos schedule and
# telemetry crossings included — must replay bit-identically at any shard
# count, on every event-queue and packet-layout build. DRILL_SHARDS=1 runs
# the serial engine, so the =1 rows also prove the env plumbing is inert.
for shards in 1 2 8; do
    DRILL_SHARDS=$shards cargo test -q --test determinism_golden
    DRILL_SHARDS=$shards cargo test -q --test determinism_golden --features heap-queue
    DRILL_SHARDS=$shards cargo test -q --test determinism_golden --features fat-events
done

echo "== snapshot-resume goldens (DRILL_SHARDS=1/2/8 x wheel/heap/fat builds) =="
# The DRILLSNAP contract: a run checkpointed mid-flight and restored from
# bytes must replay every golden bit-identically — on every engine and
# packet layout, with warm-started sweeps matching cold ones. (The suite
# already ran once per full-matrix `cargo test` above; these rows cross
# the save/restore boundary over the engine matrix explicitly.)
for shards in 1 2 8; do
    DRILL_SHARDS=$shards cargo test -q --test snapshot_resume
    DRILL_SHARDS=$shards cargo test -q --test snapshot_resume --features heap-queue
    DRILL_SHARDS=$shards cargo test -q --test snapshot_resume --features fat-events
done

echo "== chaosbench --quick smoke =="
cargo build --release -p drill-bench
./target/release/chaosbench --quick > /dev/null

echo "== scalebench --quick smoke =="
# Seconds-scale scaling ladder (leaf-spine, small Clos, k=8 fat-tree)
# plus the sketch rank-error section. The small-Clos determinism golden
# itself rides in determinism_golden, which the DRILL_SHARDS=1/2/8 loop
# above already crosses with every build.
./target/release/scalebench --quick > /dev/null
./target/release/scalebench --sketch --quick > /dev/null

echo "== scalebench asymmetric control-plane smoke =="
# The asymmetric quick point runs the full structural §3.4 probe (cold
# install + warm reconvergence on a fabric with failed uplinks) and a
# traffic run with asymmetry_handling on; demand the probe found real
# asymmetry and shared classes across entries.
./target/release/scalebench --quick --point fattree8_128h_asym2f | python3 -c "
import json, sys
d = json.load(sys.stdin)
assert d['failures'] == 2, 'asym point lost its failures'
assert d['asym_entries'] > 0, 'no asymmetric entries found'
assert d['cp_classes'] < d['cp_entries'], 'no class sharing across entries'
assert d['cp_entries_reused'] == d['cp_entries'] - d['cp_classes'], 'reuse mismatch'
assert d['cp_install_secs'] > 0 and d['cp_reconverge_secs'] > 0, 'probe not timed'
"

echo "== structural-vs-eager differential golden (DRILL_SHARDS=1/2 x wheel/heap) =="
# The §3.4 control-plane contract: the structural SymmetryEngine must
# install group tables bit-identical to the eager enumeration on every
# topology family and under random failure sets. Groups are a pure
# function of (topology, routes), so neither the shard count nor the
# event-queue build may perturb them.
for shards in 1 2; do
    DRILL_SHARDS=$shards cargo test -q --test structural_groups
    DRILL_SHARDS=$shards cargo test -q --test structural_groups --features heap-queue
done

echo "== scalebench kill-and-resume crash-recovery smoke =="
# Checkpoint every 50k events, die mid-run (simulated kill, exit 42),
# resume the checkpoint in a fresh process, and demand the resumed totals
# match an uninterrupted run of the same point.
ckpt=$(mktemp -u)
clean=$(./target/release/scalebench --quick --point leafspine_320h)
rc=0
./target/release/scalebench --quick --point leafspine_320h \
    --checkpoint-every 50000 --die-after 120000 --checkpoint-path "$ckpt" \
    > /dev/null 2>&1 || rc=$?
[[ "$rc" == 42 ]] || { echo "expected simulated-kill exit 42, got $rc"; exit 1; }
[[ -f "$ckpt" ]] || { echo "no checkpoint file written before the kill"; exit 1; }
resumed=$(./target/release/scalebench --quick --point leafspine_320h --resume "$ckpt")
rm -f "$ckpt"
clean_ev=$(grep -o '"events": [0-9]*' <<<"$clean")
resumed_ev=$(grep -o '"events": [0-9]*' <<<"$resumed")
clean_bytes=$(grep -o '"bytes_delivered": [0-9]*' <<<"$clean")
resumed_bytes=$(grep -o '"bytes_delivered": [0-9]*' <<<"$resumed")
if [[ "$clean_ev" != "$resumed_ev" || "$clean_bytes" != "$resumed_bytes" ]]; then
    echo "resume diverged: clean [$clean_ev, $clean_bytes] vs resumed [$resumed_ev, $resumed_bytes]"
    exit 1
fi

echo "== auditor sabotage -> rewind-replay smoke =="
# The hands-free diagnostics loop: a deliberately broken runtime (leaked
# arena handle) must trip the conservation watchdog, dump the snapshot
# ring + faulted instant + anomaly.meta, and the replay mode must restore
# the newest clean ring snapshot and re-run exactly the window up to the
# anomaly with the flight recorder attached.
adir=$(mktemp -d)
sab_out=$(./target/release/tracedump --sabotage leak --audit-dir "$adir")
grep -q "packet_conservation" <<<"$sab_out" \
    || { echo "sabotage did not trip packet_conservation"; exit 1; }
[[ -f "$adir/anomaly.meta" && -f "$adir/faulted.drillsnap" ]] \
    || { echo "audit dump bundle incomplete"; exit 1; }
ls "$adir"/ring-*.drillsnap > /dev/null \
    || { echo "no ring snapshots in audit dump"; exit 1; }
replay_out=$(./target/release/tracedump --replay-from "$adir")
grep -q "replayed window" <<<"$replay_out" \
    || { echo "rewind-replay did not run the anomaly window"; exit 1; }
grep -q "decision quality" <<<"$replay_out" \
    || { echo "rewind-replay printed no decision-quality table"; exit 1; }
rm -rf "$adir"

echo "== snapbench --quick smoke =="
# DRILLSNAP size/latency + warm-start speedup, CI scale; the two
# bit-identity flags inside must both read true.
./target/release/snapbench --quick | tee /tmp/snapbench-ci.json
if grep -q "false" /tmp/snapbench-ci.json; then
    echo "snapbench reported a bit-identity failure"; exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "CI OK"
