#!/usr/bin/env bash
# Tier-1 gate plus lint, all offline-safe (the workspace has no external
# dependencies; see the note in the root Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "CI OK"
