#!/usr/bin/env bash
# Topology-scaling harness: runs the scalebench ladder (320-host
# leaf-spine up to a 16k-host oversubscribed k=32 fat-tree plus a
# build-only 65k-host k=64 probe), each point in a FRESH PROCESS so the
# VmHWM peak-RSS reading is attributable to that point alone, and a
# sketch-scaling section (retained memory + measured rank error at
# 100k/1M/10M samples). Assembles results/scalebench.json.
# Offline-safe: no external deps. `--quick` runs the seconds-scale CI
# ladder instead.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=""
if [[ "${1:-}" == "--quick" ]]; then
  MODE="--quick"
fi

mkdir -p results
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== building (release) =="
cargo build --release -p drill-bench --bin scalebench

BIN=target/release/scalebench

echo "== ladder ($([[ -n "$MODE" ]] && echo quick || echo full)) =="
: > "$tmp/points.jsonl"
for point in $($BIN --list $MODE); do
  echo "-- $point"
  $BIN --point "$point" $MODE | tee -a "$tmp/points.jsonl"
done

echo "== sketch scaling =="
$BIN --sketch $MODE | tee "$tmp/sketch.json"

{
  echo "{"
  echo "  \"bench\": \"scalebench\","
  echo "  \"mode\": \"$([[ -n "$MODE" ]] && echo quick || echo full)\","
  echo "  \"points\": ["
  awk 'NR>1{print prev ","} {prev="    " $0} END{print prev}' "$tmp/points.jsonl"
  echo "  ],"
  echo "  \"sketch\": $(cat "$tmp/sketch.json")"
  echo "}"
} > results/scalebench.json

echo "== wrote results/scalebench.json =="
