#!/usr/bin/env bash
# Event-queue perf harness: in-process micro A/B (wheel vs heap), an
# end-to-end fig2-style wall-clock A/B across the two queue builds, a
# telemetry-overhead A/B (NoopProbe build vs flight-recorder attached),
# an auditor-overhead A/B (NoopAudit vs the drill-audit watchdogs), a
# packet-layout A/B (arena handles vs --features fat-events by-value
# packets), a shard-count A/B (DRILL_SHARDS=1/2/8 against the sharded
# engine, equal-event-count asserted), and a §3.4 control-plane A/B
# (eager enumeration vs structural cold/warm installs, identical group
# tables asserted). Writes results/qbench.json.
# Offline-safe: no external deps.
#
# All builds are compiled up front and their binaries copied aside, then
# the e2e runs alternate sides (wheel/heap, noop/telemetry, noop/auditor, arena/fat) so
# background-load drift on the host hits both sides evenly instead of
# biasing whichever ran last.
set -euo pipefail
cd "$(dirname "$0")/.."

E2E_RUNS="${E2E_RUNS:-5}"

mkdir -p results
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== building (heap-queue) =="
cargo build --release -p drill-bench --features heap-queue
cp target/release/qbench "$tmp/qbench-heap"

echo "== building (fat-events) =="
cargo build --release -p drill-bench --features fat-events
cp target/release/qbench "$tmp/qbench-fat"

echo "== building (wheel + arena, default) =="
cargo build --release -p drill-bench
cp target/release/qbench "$tmp/qbench-wheel"

echo "== micro: hold + churn, wheel vs heap in-process =="
"$tmp/qbench-wheel" | tee "$tmp/micro.json"

echo "== control plane: eager vs structural (cold/warm) on failed fabrics =="
"$tmp/qbench-wheel" --control | tee "$tmp/control.json"

# Keep the previous e2e result (if any) as the cross-PR reference before
# this run overwrites results/qbench.json.
baseline="null"
if [ -f results/qbench.json ]; then
  baseline=$(python3 -c 'import json; d = json.load(open("results/qbench.json")); print(json.dumps(d.get("e2e_fig2", {}).get("wheel", {}).get("wall_secs")))')
fi

echo "== e2e, interleaved wheel/heap x $E2E_RUNS each =="
: > "$tmp/e2e-wheel.jsonl"
: > "$tmp/e2e-heap.jsonl"
for i in $(seq "$E2E_RUNS"); do
  "$tmp/qbench-wheel" --e2e | tee -a "$tmp/e2e-wheel.jsonl"
  "$tmp/qbench-heap" --e2e | tee -a "$tmp/e2e-heap.jsonl"
done

echo "== e2e telemetry overhead, interleaved noop/recording x $E2E_RUNS each =="
: > "$tmp/e2e-noop.jsonl"
: > "$tmp/e2e-telemetry.jsonl"
for i in $(seq "$E2E_RUNS"); do
  "$tmp/qbench-wheel" --e2e | tee -a "$tmp/e2e-noop.jsonl"
  "$tmp/qbench-wheel" --e2e-telemetry | tee -a "$tmp/e2e-telemetry.jsonl"
done

echo "== e2e audit overhead, interleaved noop/auditor x $E2E_RUNS each =="
: > "$tmp/e2e-auditoff.jsonl"
: > "$tmp/e2e-audit.jsonl"
for i in $(seq "$E2E_RUNS"); do
  "$tmp/qbench-wheel" --e2e | tee -a "$tmp/e2e-auditoff.jsonl"
  "$tmp/qbench-wheel" --e2e-audit | tee -a "$tmp/e2e-audit.jsonl"
done

echo "== e2e packet layout, interleaved arena/fat x $E2E_RUNS each =="
: > "$tmp/e2e-arena.jsonl"
: > "$tmp/e2e-fat.jsonl"
for i in $(seq "$E2E_RUNS"); do
  "$tmp/qbench-wheel" --e2e | tee -a "$tmp/e2e-arena.jsonl"
  "$tmp/qbench-fat" --e2e | tee -a "$tmp/e2e-fat.jsonl"
done

echo "== e2e shard A/B, interleaved DRILL_SHARDS=1/2/8 x $E2E_RUNS each =="
: > "$tmp/e2e-shard1.jsonl"
: > "$tmp/e2e-shard2.jsonl"
: > "$tmp/e2e-shard8.jsonl"
for i in $(seq "$E2E_RUNS"); do
  DRILL_SHARDS=1 "$tmp/qbench-wheel" --e2e | tee -a "$tmp/e2e-shard1.jsonl"
  DRILL_SHARDS=2 "$tmp/qbench-wheel" --e2e | tee -a "$tmp/e2e-shard2.jsonl"
  DRILL_SHARDS=8 "$tmp/qbench-wheel" --e2e | tee -a "$tmp/e2e-shard8.jsonl"
done

python3 - "$tmp" "$baseline" <<'EOF'
import json, sys

tmp = sys.argv[1]
baseline = json.loads(sys.argv[2])
doc = json.load(open(f"{tmp}/micro.json"))

def median_run(path):
    runs = [json.loads(l) for l in open(path) if l.strip()]
    runs.sort(key=lambda r: r["wall_secs"])
    med = runs[len(runs) // 2]
    med["runs"] = len(runs)
    return med

wheel = median_run(f"{tmp}/e2e-wheel.jsonl")
heap = median_run(f"{tmp}/e2e-heap.jsonl")
assert wheel["events"] == heap["events"], "queue swap changed the simulation!"
doc["e2e_fig2"] = {
    "wheel": wheel,
    "heap": heap,
    "wall_clock_improvement": round(1 - wheel["wall_secs"] / heap["wall_secs"], 3),
}

noop = median_run(f"{tmp}/e2e-noop.jsonl")
tel = median_run(f"{tmp}/e2e-telemetry.jsonl")
# Determinism contract: the flight recorder observes but never steers.
assert noop["events"] == tel["events"], "telemetry changed the simulation!"
doc["telemetry_ab"] = {
    "noop": noop,
    "recording": tel,
    # Cost of the always-compiled-in probe seams relative to the last
    # pre-telemetry run of this script (null on first run; expect this to
    # sit within run-to-run noise).
    "noop_vs_previous_baseline_secs": baseline,
    "recording_overhead": round(tel["wall_secs"] / noop["wall_secs"] - 1, 3),
}

aoff = median_run(f"{tmp}/e2e-auditoff.jsonl")
aon = median_run(f"{tmp}/e2e-audit.jsonl")
# Determinism contract: the invariant auditor observes but never steers.
assert aoff["events"] == aon["events"], "auditor changed the simulation!"
doc["audit_ab"] = {
    "noop": aoff,
    "audited": aon,
    # Watchdog boundary-walk cost (no dump_dir, so the snapshot ring is
    # disarmed and no per-boundary DRILLSNAP is taken).
    "audit_overhead": round(aon["wall_secs"] / aoff["wall_secs"] - 1, 3),
}

arena = median_run(f"{tmp}/e2e-arena.jsonl")
fat = median_run(f"{tmp}/e2e-fat.jsonl")
# Determinism contract: the arena changes the memory layout, never the
# simulation.
assert arena["events"] == fat["events"], "packet layout changed the simulation!"
micro_pay = {c["workload"]: c for c in doc["results"] if c["workload"].startswith("hold4096_pay")}
doc["arena_ab"] = {
    "arena": arena,
    "fat": fat,
    "wall_clock_improvement": round(1 - arena["wall_secs"] / fat["wall_secs"], 3),
    # The micro half: same wheel + workload, payload grown from
    # handle-sized to packet-sized.
    "micro_hold4096": {
        "pay24_mops": round(micro_pay["hold4096_pay24"]["mops_per_sec"], 3),
        "pay112_mops": round(micro_pay["hold4096_pay112"]["mops_per_sec"], 3),
    },
}
s1 = median_run(f"{tmp}/e2e-shard1.jsonl")
s2 = median_run(f"{tmp}/e2e-shard2.jsonl")
s8 = median_run(f"{tmp}/e2e-shard8.jsonl")
# Determinism contract: sharding repartitions the engine, never the
# simulation — the event count must not move with the shard count.
assert s1["events"] == s2["events"] == s8["events"], "shard count changed the simulation!"
assert s2["shard_handoffs"] > 0 and s8["shard_handoffs"] > 0, "sharded run exchanged no handoffs"
import os
cores = os.cpu_count() or 1
doc["shard_ab"] = {
    "shard1": s1,
    "shard2": s2,
    "shard8": s8,
    "host_cores": cores,
    "speedup_2_over_1": round(s1["wall_secs"] / s2["wall_secs"], 3),
    "speedup_8_over_1": round(s1["wall_secs"] / s8["wall_secs"], 3),
    # Honest accounting: the sharded engine is a deterministic global
    # merge (parallelism only in the barrier drain), so this section
    # records the true cost of windows + mailboxes + arena re-interning
    # on this host rather than claiming a speedup a 1-core box cannot
    # deliver. Speedups < 1.0 here are the measured sharding overhead.
    "expectation": "parity-or-overhead" if cores <= 1 else "speedup-or-parity",
}
# §3.4 control-plane A/B: eager enumeration vs the structural
# symmetry-class engine (cold install and warm reconvergence), identical
# group tables asserted by the binary before timing.
doc["control_ab"] = json.load(open(f"{tmp}/control.json"))
json.dump(doc, open("results/qbench.json", "w"), indent=2)
print("wrote results/qbench.json")
print(f"e2e wall-clock improvement: {doc['e2e_fig2']['wall_clock_improvement']:.1%}")
print(f"telemetry recording overhead: {doc['telemetry_ab']['recording_overhead']:.1%}")
print(f"invariant auditor overhead: {doc['audit_ab']['audit_overhead']:.1%}")
print(f"arena vs fat-events e2e improvement: {doc['arena_ab']['wall_clock_improvement']:.1%}")
print(f"shard A/B ({cores}-core host, expect {doc['shard_ab']['expectation']}): "
      f"2-shard {doc['shard_ab']['speedup_2_over_1']:.3f}x, "
      f"8-shard {doc['shard_ab']['speedup_8_over_1']:.3f}x vs serial")
for f in doc["control_ab"]["fabrics"]:
    print(f"control plane {f['fabric']}: structural cold {f['speedup_cold']:.2f}x, "
          f"warm {f['speedup_warm']:.2f}x vs eager")
if baseline is not None:
    drift = noop["wall_secs"] / baseline - 1
    print(f"noop e2e vs pre-run baseline: {drift:+.1%}")
EOF
