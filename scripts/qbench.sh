#!/usr/bin/env bash
# Event-queue perf harness: in-process micro A/B (wheel vs heap) plus an
# end-to-end fig2-style wall-clock A/B across the two queue builds.
# Writes results/qbench.json. Offline-safe: no external deps.
#
# Both queue builds are compiled up front and their binaries copied aside,
# then the e2e runs alternate wheel/heap so background-load drift on the
# host hits both sides evenly instead of biasing whichever ran last.
set -euo pipefail
cd "$(dirname "$0")/.."

E2E_RUNS="${E2E_RUNS:-5}"

mkdir -p results
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== building (heap-queue) =="
cargo build --release -p drill-bench --features heap-queue
cp target/release/qbench "$tmp/qbench-heap"

echo "== building (wheel, default) =="
cargo build --release -p drill-bench
cp target/release/qbench "$tmp/qbench-wheel"

echo "== micro: hold + churn, wheel vs heap in-process =="
"$tmp/qbench-wheel" | tee "$tmp/micro.json"

echo "== e2e, interleaved wheel/heap x $E2E_RUNS each =="
: > "$tmp/e2e-wheel.jsonl"
: > "$tmp/e2e-heap.jsonl"
for i in $(seq "$E2E_RUNS"); do
  "$tmp/qbench-wheel" --e2e | tee -a "$tmp/e2e-wheel.jsonl"
  "$tmp/qbench-heap" --e2e | tee -a "$tmp/e2e-heap.jsonl"
done

python3 - "$tmp" <<'EOF'
import json, sys

tmp = sys.argv[1]
doc = json.load(open(f"{tmp}/micro.json"))

def median_run(path):
    runs = [json.loads(l) for l in open(path) if l.strip()]
    runs.sort(key=lambda r: r["wall_secs"])
    med = runs[len(runs) // 2]
    med["runs"] = len(runs)
    return med

wheel = median_run(f"{tmp}/e2e-wheel.jsonl")
heap = median_run(f"{tmp}/e2e-heap.jsonl")
assert wheel["events"] == heap["events"], "queue swap changed the simulation!"
doc["e2e_fig2"] = {
    "wheel": wheel,
    "heap": heap,
    "wall_clock_improvement": round(1 - wheel["wall_secs"] / heap["wall_secs"], 3),
}
json.dump(doc, open("results/qbench.json", "w"), indent=2)
print("wrote results/qbench.json")
print(f"e2e wall-clock improvement: {doc['e2e_fig2']['wall_clock_improvement']:.1%}")
EOF
