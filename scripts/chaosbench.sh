#!/usr/bin/env bash
# Chaos harness: runs the chaosbench flap-rate sweep (DRILL vs ECMP vs
# Presto on identical deterministic fault schedules), proves the point
# table is independent of the worker count by byte-comparing stdout under
# DRILL_THREADS=1 vs 8 — and of the engine shard count by repeating the
# compare under DRILL_SHARDS=1/2/8 — then records the machine-readable
# result set in results/chaosbench.json. Offline-safe: no external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

THREAD_COUNTS=(${THREAD_COUNTS:-1 8})
SHARD_COUNTS=(${SHARD_COUNTS:-1 2 8})

mkdir -p results
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== building =="
cargo build --release -p drill-bench

echo "== chaosbench under DRILL_THREADS=${THREAD_COUNTS[*]} =="
for t in "${THREAD_COUNTS[@]}"; do
  echo "-- DRILL_THREADS=$t"
  DRILL_THREADS="$t" ./target/release/chaosbench \
    --json "$tmp/chaos-$t.json" \
    > "$tmp/table-$t.txt" 2> "$tmp/time-$t.json"
  cat "$tmp/time-$t.json"
done

echo "== byte-comparing point tables =="
ref="${THREAD_COUNTS[0]}"
for t in "${THREAD_COUNTS[@]:1}"; do
  if cmp "$tmp/table-$ref.txt" "$tmp/table-$t.txt"; then
    echo "table($ref threads) == table($t threads): byte-identical"
  else
    echo "FAIL: point table depends on DRILL_THREADS" >&2
    exit 1
  fi
done

echo "== chaosbench under DRILL_SHARDS=${SHARD_COUNTS[*]} =="
for s in "${SHARD_COUNTS[@]}"; do
  echo "-- DRILL_SHARDS=$s"
  DRILL_SHARDS="$s" ./target/release/chaosbench \
    > "$tmp/table-shards-$s.txt" 2> "$tmp/time-shards-$s.json"
  cat "$tmp/time-shards-$s.json"
done

echo "== byte-comparing shard-axis point tables =="
for s in "${SHARD_COUNTS[@]}"; do
  if cmp "$tmp/table-$ref.txt" "$tmp/table-shards-$s.txt"; then
    echo "table($ref threads) == table($s shards): byte-identical"
  else
    echo "FAIL: point table depends on DRILL_SHARDS" >&2
    exit 1
  fi
done

cp "$tmp/chaos-$ref.json" results/chaosbench.json
echo "wrote results/chaosbench.json"

# Surface the headline verdict.
grep -A7 '"summary"' results/chaosbench.json
