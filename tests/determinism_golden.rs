//! Determinism goldens: a fixed seed must reproduce bit-identical run
//! outcomes across machines, runs, *and refactors of the event core*.
//!
//! The constants below were captured from a run of this configuration; if
//! a change breaks them it has changed simulation behaviour — event
//! delivery order, RNG streams, or the TCP/switch models — and is not a
//! pure refactor. Update the constants only when a behaviour change is
//! intended, and say so in the commit.

use drill::faults::FaultSchedule;
use drill::net::{ClosSpec, LeafSpineSpec, DEFAULT_PROP};
use drill::runtime::{
    random_leaf_spine_failures, run, run_recorded, ExperimentConfig, RunStats, Scheme, ShardSpec,
    SweepSpec, TelemetrySpec, TopoSpec,
};
use drill::sim::Time;
use drill::stats::Distribution;

fn golden_cfg(scheme: Scheme) -> ExperimentConfig {
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 2,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut cfg = ExperimentConfig::new(topo, scheme, 0.4);
    cfg.seed = 0xD211;
    cfg.duration = Time::from_millis(3);
    cfg.drain = Time::from_millis(50);
    cfg.warmup = Time::from_micros(100);
    // CI runs the golden suite twice: plain, and with DRILL_TELEMETRY=1 to
    // prove the flight recorder leaves every golden constant untouched.
    if std::env::var("DRILL_TELEMETRY").as_deref() == Ok("1") {
        cfg.telemetry = Some(TelemetrySpec::default());
    }
    // Same contract for the invariant auditor: DRILL_AUDIT=1 attaches the
    // watchdogs, and every golden constant must survive unchanged.
    if std::env::var("DRILL_AUDIT").as_deref() == Ok("1") {
        cfg.audit = Some(drill::runtime::AuditSpec::default());
    }
    cfg
}

fn golden_run(scheme: Scheme) -> RunStats {
    run(&golden_cfg(scheme))
}

/// Every metric a figure reads, floats by bit pattern (`to_bits`): any
/// behavioural difference between two runs of the same config shows here.
fn full_fingerprint(st: &mut RunStats) -> Vec<u64> {
    let mut fp = vec![
        st.flows_started,
        st.flows_completed,
        st.events,
        st.gro_batches,
        st.data_pkts_delivered,
        st.retransmissions,
        st.timeouts,
        st.blackholed,
        st.nic_drops,
        st.sim_end.as_nanos(),
        st.fct_ms.count() as u64,
        st.fct_incast_ms.count() as u64,
        st.fct_mice_ms.count() as u64,
        st.elephant_gbps.count() as u64,
        st.dupacks.total(),
        st.reorders.total(),
        st.queue_stdv.count(),
        st.queue_stdv.mean().to_bits(),
        st.mean_fct_ms().to_bits(),
        st.fct_ms.quantile(0.5).to_bits(),
        st.fct_ms.quantile(0.99).to_bits(),
        st.fct_ms.quantile(0.9999).to_bits(),
        st.dupacks.frac(0).to_bits(),
        st.reorders.frac(0).to_bits(),
        st.elephant_gbps.mean().to_bits(),
        st.fault_events,
        st.reconvergences,
        st.fault_blackholed,
        st.fault_window_ns,
        st.stable_at.as_nanos(),
        st.fct_fault_ms.count() as u64,
        st.fct_fault_ms.mean().to_bits(),
        st.fct_clear_ms.count() as u64,
        st.fct_clear_ms.mean().to_bits(),
    ];
    fp.extend_from_slice(&st.hops.wait_ns);
    fp.extend_from_slice(&st.hops.wait_samples);
    fp.extend_from_slice(&st.hops.drops);
    fp.extend_from_slice(&st.hops.tx);
    // Appended last: earlier slots are indexed by position (see the chaos
    // test's point[25..29] reads, which the slots below must not shift).
    fp.push(st.bytes_delivered);
    fp.push(st.fct_ms.digest());
    fp.push(st.arena_live_at_end);
    fp
}

fn assert_golden(scheme: Scheme, events: u64, flows_started: u64, flows_completed: u64) {
    let stats = golden_run(scheme);
    assert_eq!(
        (stats.events, stats.flows_started, stats.flows_completed),
        (events, flows_started, flows_completed),
        "{} diverged from its golden trace",
        scheme.name()
    );
    // Arena leak check: the drain phase runs until the network empties, so
    // every packet interned during the run must have been taken (delivered)
    // or freed (dropped) by the end.
    assert_eq!(
        stats.arena_live_at_end,
        0,
        "{} leaked packet-arena slots",
        scheme.name()
    );
}

#[test]
fn ecmp_replays_golden_trace() {
    assert_golden(Scheme::Ecmp, 1_282_646, 1060, 1058);
}

#[test]
fn drill_2_1_replays_golden_trace() {
    assert_golden(Scheme::drill_default(), 1_283_055, 1060, 1058);
}

#[test]
fn random_replays_golden_trace() {
    assert_golden(Scheme::Random, 1_294_326, 1060, 1060);
}

/// The telemetry determinism contract: a run with the flight recorder +
/// queue sampler attached must match the probe-free build on *every*
/// metric, bit for bit — the probes observe the simulation but carry no
/// way to steer it (no RNG, event-queue or packet access).
#[test]
fn telemetry_probe_is_invisible_to_every_metric() {
    for scheme in [Scheme::Ecmp, Scheme::drill_default()] {
        let mut cfg = golden_cfg(scheme);
        cfg.telemetry = None;
        let mut plain = run(&cfg);
        cfg.telemetry = Some(TelemetrySpec::default());
        let (mut recorded, tel) = run_recorded(&cfg);
        assert!(
            tel.recorder.event_count() > 10_000,
            "{}: recorder actually saw the run",
            scheme.name()
        );
        assert_eq!(
            full_fingerprint(&mut plain),
            full_fingerprint(&mut recorded),
            "{}: telemetry perturbed the simulation",
            scheme.name()
        );
    }
}

/// The pinned chaos schedule for the golden topology: two link flaps, one
/// capacity degradation, and one full switch crash + recovery, all inside
/// the 3 ms arrival window. Pair selection goes through
/// `random_leaf_spine_failures` with a fixed seed, so the schedule is a
/// deterministic function of the topology alone.
fn chaos_schedule(topo: &TopoSpec) -> FaultSchedule {
    let built = topo.build();
    let pairs = random_leaf_spine_failures(&built, 4, 0xC405);
    let mut s = FaultSchedule::new(Time::from_micros(300));
    s.link_flap(
        pairs[0].0,
        pairs[0].1,
        Time::from_micros(500),
        Time::from_micros(900),
    );
    s.link_flap(
        pairs[1].0,
        pairs[1].1,
        Time::from_micros(1100),
        Time::from_micros(1600),
    );
    s.degrade_window(
        pairs[2].0,
        pairs[2].1,
        1,
        4,
        Time::from_micros(700),
        Time::from_micros(1400),
    );
    s.switch_outage(pairs[3].1, Time::from_micros(1800), Time::from_micros(2300));
    s
}

/// Chaos determinism golden: a nontrivial fault schedule (flaps +
/// degradation + switch crash/recover, with staged reconvergence) must
/// replay bit-identically across serial vs 8-thread sweep execution and
/// with the telemetry recorder on vs off. This pins the entire fault
/// pipeline — injection order, detection-window bookkeeping, atomic
/// reinstall — to the deterministic-replay contract.
#[test]
fn chaos_schedule_replays_bit_identically_across_threads_and_telemetry() {
    let fingerprint = |telemetry: bool, threads: Option<usize>| -> Vec<Vec<u64>> {
        let mut base = golden_cfg(Scheme::drill_default());
        base.telemetry = telemetry.then(TelemetrySpec::default);
        base.faults = Some(chaos_schedule(&base.topo));
        let mut spec = SweepSpec::new(base)
            .schemes(vec![Scheme::Ecmp, Scheme::drill_default()])
            .loads(vec![0.4]);
        let res = if let Some(t) = threads {
            spec = spec.threads(t);
            spec.run()
        } else {
            spec.run_serial()
        };
        res.into_stats()
            .into_iter()
            .map(|mut st| full_fingerprint(&mut st))
            .collect()
    };

    let serial = fingerprint(false, None);
    assert_eq!(serial.len(), 2);
    // The schedule actually fired: 2 flaps (4 events) + degrade window
    // (2) + switch outage (2) = 8, with at least one reconvergence and a
    // nonempty graceful-degradation window on every scheme.
    for (point, scheme) in serial.iter().zip(["ECMP", "DRILL(2,1)"]) {
        // full_fingerprint positions: fault_events is directly after the
        // 25 headline slots (see the vec! above).
        let fault_events = point[25];
        let reconvergences = point[26];
        let window_ns = point[28];
        assert_eq!(fault_events, 8, "{scheme}: schedule did not fully fire");
        assert!(reconvergences >= 1, "{scheme}: no reconvergence happened");
        assert!(window_ns > 0, "{scheme}: no degradation window recorded");
        // Leak check under chaos: blackholed, fault-dropped and
        // rebuild-discarded packets must all release their arena slots
        // (arena_live_at_end is the last fingerprint slot).
        let arena_live = *point.last().expect("nonempty fingerprint");
        assert_eq!(arena_live, 0, "{scheme}: leaked packet-arena slots");
    }

    for telemetry in [false, true] {
        for threads in [Some(1), Some(8)] {
            assert_eq!(
                serial,
                fingerprint(telemetry, threads),
                "chaos replay diverged (telemetry={telemetry}, threads={threads:?})"
            );
        }
    }
    // Telemetry-on serial replay matches too.
    assert_eq!(serial, fingerprint(true, None));
}

/// Satellite regression: fault events scheduled after the last packet has
/// drained must be inert — filtered at prime time, never enqueued — so
/// they neither hang the timing wheel waiting on far-future slots nor
/// perturb a single stat relative to the fault-free run.
#[test]
fn post_drain_faults_are_inert() {
    let cfg = golden_cfg(Scheme::drill_default());
    let mut plain = run(&cfg);

    let mut chaotic_cfg = golden_cfg(Scheme::drill_default());
    let topo = chaotic_cfg.topo.build();
    let pairs = random_leaf_spine_failures(&topo, 1, 0xC405);
    let past = chaotic_cfg.duration + chaotic_cfg.drain + Time::from_millis(1);
    let mut s = FaultSchedule::new(Time::from_micros(300));
    s.link_flap(pairs[0].0, pairs[0].1, past, past + Time::from_millis(2));
    s.switch_outage(
        pairs[0].1,
        past + Time::from_millis(5),
        past + Time::from_millis(6),
    );
    chaotic_cfg.faults = Some(s);
    let mut chaotic = run(&chaotic_cfg);

    assert_eq!(chaotic.fault_events, 0, "post-drain faults must never fire");
    assert_eq!(
        full_fingerprint(&mut plain),
        full_fingerprint(&mut chaotic),
        "post-drain fault schedule perturbed the simulation"
    );
}

/// The executor's determinism contract, tested differentially: the same
/// sweep grid run serially and on 1/2/8-thread pools must agree bit for
/// bit on every per-point metric — event counts exactly, floating-point
/// aggregates via `to_bits` (not an epsilon).
#[test]
fn sweep_results_are_bit_identical_across_thread_counts() {
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 2,
        leaves: 2,
        hosts_per_leaf: 2,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut base = ExperimentConfig::new(topo, Scheme::Ecmp, 0.3);
    base.seed = 0xD211;
    base.duration = Time::from_millis(2);
    base.drain = Time::from_millis(50);
    base.sample_queues = true;
    let spec = |threads: Option<usize>| {
        let mut s = SweepSpec::new(base.clone())
            .schemes(vec![Scheme::Ecmp, Scheme::drill_default()])
            .loads(vec![0.3, 0.8])
            .reps(2);
        if let Some(t) = threads {
            s = s.threads(t);
        }
        s
    };

    // Fingerprint every per-point metric the figures read, with float
    // bits so "close enough" cannot mask a divergence.
    let fingerprint =
        |res: drill::runtime::SweepResults| -> Vec<(u64, u64, u64, u64, u64, u64, u64)> {
            res.into_stats()
                .into_iter()
                .map(|mut st| {
                    (
                        st.events,
                        st.flows_completed,
                        st.queue_stdv.mean().to_bits(),
                        st.queue_stdv.count(),
                        st.fct_ms.quantile(0.50).to_bits(),
                        st.fct_ms.quantile(0.9999).to_bits(),
                        st.fct_ms.count() as u64,
                    )
                })
                .collect()
        };

    let serial = fingerprint(spec(None).run_serial());
    assert_eq!(serial.len(), 8);
    // The grid is not degenerate: loads differ, so points differ.
    assert_ne!(serial[0], serial[4]);
    for threads in [1usize, 2, 8] {
        let parallel = fingerprint(spec(Some(threads)).run());
        assert_eq!(
            serial, parallel,
            "sweep diverged from serial replay at {threads} threads"
        );
    }
}

/// The sharded-execution contract (DESIGN.md §11): partitioning the
/// fabric into per-shard wheels + arenas advanced in lookahead windows
/// must leave *every* simulated metric bit-identical at every shard
/// count, with one shard resolving to the pre-sharding serial engine.
/// An explicit `ShardSpec` overrides the `DRILL_SHARDS` environment
/// variable, so this test pins the contract even when CI crosses the
/// whole golden suite with sharded env settings.
#[test]
fn sharded_engine_replays_bit_identically_at_every_shard_count() {
    for scheme in [Scheme::Ecmp, Scheme::drill_default()] {
        let mut cfg = golden_cfg(scheme);
        cfg.shards = Some(ShardSpec::count(1));
        let mut base = run(&cfg);
        assert_eq!(
            (base.shard_handoffs, base.shard_windows),
            (0, 0),
            "{}: one shard must run the serial engine",
            scheme.name()
        );
        let base_fp = full_fingerprint(&mut base);
        // The golden topology has 4 leaves, so 8 requested shards clamp
        // to 5 (fabric tier + one shard per leaf).
        for count in [2usize, 8] {
            let mut cfg = golden_cfg(scheme);
            cfg.shards = Some(ShardSpec::count(count));
            let mut st = run(&cfg);
            assert!(
                st.shard_handoffs > 0 && st.shard_windows > 0,
                "{}: {count} shards exercised no cross-shard handoffs",
                scheme.name()
            );
            assert_eq!(
                full_fingerprint(&mut st),
                base_fp,
                "{}: {count}-shard run diverged from the serial engine",
                scheme.name()
            );
        }
    }
}

/// Three-tier Clos determinism golden: the smoke-scale Clos fabric (4
/// pods x (2 leaves + 2 aggs), 4 cores, 32 hosts) replays bit-identically
/// on the serial engine and at every shard count, pinning the sharded
/// partitioner on a fabric with an aggregation tier between the leaves
/// and the cores. The event-count constants were captured from a run of
/// this configuration (see the module doc for the update policy).
#[test]
fn clos_smoke_replays_bit_identically_across_shard_counts() {
    let mut cfg = golden_cfg(Scheme::drill_default());
    cfg.topo = TopoSpec::Clos(ClosSpec::smoke());
    cfg.shards = Some(ShardSpec::count(1));
    let mut base = run(&cfg);
    assert_eq!(
        (base.events, base.flows_started, base.flows_completed),
        (CLOS_GOLDEN.0, CLOS_GOLDEN.1, CLOS_GOLDEN.2),
        "Clos smoke run diverged from its golden trace"
    );
    assert_eq!(base.arena_live_at_end, 0, "leaked packet-arena slots");
    let base_fp = full_fingerprint(&mut base);
    for count in [2usize, 8] {
        let mut cfg = golden_cfg(Scheme::drill_default());
        cfg.topo = TopoSpec::Clos(ClosSpec::smoke());
        cfg.shards = Some(ShardSpec::count(count));
        let mut st = run(&cfg);
        assert!(
            st.shard_handoffs > 0 && st.shard_windows > 0,
            "{count} shards exercised no cross-shard handoffs on the Clos"
        );
        assert_eq!(
            full_fingerprint(&mut st),
            base_fp,
            "{count}-shard Clos run diverged from the serial engine"
        );
    }
}

/// Golden constants for `clos_smoke_replays_bit_identically_across_shard_counts`:
/// (events, flows_started, flows_completed).
const CLOS_GOLDEN: (u64, u64, u64) = (1_623_884, 1_105, 1_105);

/// Sketch differential golden: on every figure-scale golden run the FCT
/// store is still exact; replaying those exact samples through a
/// forced-sketch [`Distribution`] must land p50/p90/p99 within the
/// sketch's configured rank-error bound of the exact order statistics.
/// This pins the error contract on real simulation output (heavy-tailed
/// FCTs), not just synthetic streams.
#[test]
fn sketch_quantiles_match_exact_stats_within_configured_bound() {
    for scheme in [Scheme::Ecmp, Scheme::drill_default(), Scheme::Random] {
        let st = golden_run(scheme);
        let samples = st
            .fct_ms
            .exact_samples()
            .expect("figure-scale runs stay exact")
            .to_vec();
        assert!(samples.len() > 500, "{}: too few FCTs", scheme.name());
        let mut sk = Distribution::sketched();
        for &x in &samples {
            sk.add(x);
        }
        assert!(!sk.is_exact());
        assert_eq!(sk.count(), samples.len());
        let eps = sk.rank_error_bound().expect("sketch mode");
        let mut sorted = samples.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let n = sorted.len();
        for q in [0.5, 0.9, 0.99] {
            let est = sk.quantile(q);
            // Measured rank of the estimate vs the requested rank.
            let rank = sorted.partition_point(|&v| v <= est) as f64 / n as f64;
            assert!(
                (rank - q).abs() <= eps,
                "{}: sketch p{} = {est} has rank error {} > bound {eps}",
                scheme.name(),
                q * 100.0,
                (rank - q).abs()
            );
        }
        // Extrema stay exact in sketch mode.
        assert_eq!(sk.min(), *sorted.first().unwrap());
        assert_eq!(sk.max(), *sorted.last().unwrap());
    }
}

/// The sketch-merge determinism contract behind the sweep executor: rep
/// sketches built on 1/2/8 worker threads and merged in fixed slot order
/// must produce byte-identical merged state (equal digests). Thread count
/// may change *when* each rep sketch is built, never *what* the merge
/// produces — the same property the executor relies on when it folds
/// per-rep `RunStats` into a sweep cell.
#[test]
fn sketch_merge_is_bit_identical_across_thread_counts() {
    const REPS: usize = 8;
    const PER_REP: usize = 50_000;
    let build_rep = |r: usize| -> Distribution {
        let mut rng = drill::sim::SimRng::seed_from(0xABC0 + r as u64);
        let mut d = Distribution::sketched();
        for _ in 0..PER_REP {
            let u = (rng.below(u32::MAX as usize) as f64 + 1.0) / (u32::MAX as f64 + 1.0);
            d.add(1.0 / u.powf(0.5));
        }
        d
    };
    let merged_digest = |threads: usize| -> u64 {
        let mut slots: Vec<Option<Distribution>> = (0..REPS).map(|_| None).collect();
        std::thread::scope(|s| {
            for (t, chunk) in slots.chunks_mut(REPS.div_ceil(threads)).enumerate() {
                let base = t * REPS.div_ceil(threads);
                s.spawn(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(build_rep(base + i));
                    }
                });
            }
        });
        let mut acc = Distribution::sketched();
        for slot in slots {
            acc.merge(&slot.expect("all reps built"));
        }
        assert_eq!(acc.count(), REPS * PER_REP);
        assert!(!acc.is_exact());
        acc.digest()
    };
    let serial = merged_digest(1);
    for threads in [2usize, 8] {
        assert_eq!(
            serial,
            merged_digest(threads),
            "sketch merge diverged at {threads} threads"
        );
    }
}

/// Mailbox-ordering golden: the cross-shard handoff drain order — pinned
/// by the `(src, dst, time, seq)` FNV fingerprint the engine accumulates
/// at every window barrier — is a pure function of the event stream.
/// Replays, telemetry on/off, and a pinned chaos schedule all reproduce
/// the same handoff count and hash, and every sharded variant's simulated
/// metrics stay fingerprint-identical to the serial chaos run.
#[test]
fn cross_shard_mailbox_order_is_reproducible_under_chaos_and_telemetry() {
    let sharded = |telemetry: bool, shards: usize| -> RunStats {
        let mut cfg = golden_cfg(Scheme::drill_default());
        cfg.telemetry = telemetry.then(TelemetrySpec::default);
        cfg.faults = Some(chaos_schedule(&cfg.topo));
        cfg.shards = Some(ShardSpec::count(shards));
        run(&cfg)
    };
    let mut serial = sharded(false, 1);
    assert_eq!(serial.shard_handoffs, 0, "serial engine has no mailboxes");
    assert_eq!(serial.shard_handoff_hash, 0);
    let serial_fp = full_fingerprint(&mut serial);

    let mut a = sharded(false, 2);
    assert!(a.shard_handoffs > 0, "chaos run crossed shards");
    assert_eq!(full_fingerprint(&mut a), serial_fp);

    // Same shard count: replay and telemetry must reproduce the exact
    // drain order, not just the aggregate metrics.
    let mut replay = sharded(false, 2);
    let mut with_tel = sharded(true, 2);
    for (label, st) in [("replay", &mut replay), ("telemetry", &mut with_tel)] {
        assert_eq!(
            (st.shard_handoffs, st.shard_handoff_hash),
            (a.shard_handoffs, a.shard_handoff_hash),
            "{label}: handoff drain order diverged"
        );
        assert_eq!(full_fingerprint(st), serial_fp, "{label}: metrics diverged");
    }

    // A different partition exchanges a different (but equally
    // reproducible) handoff stream while metrics stay identical.
    let mut many = sharded(false, 8);
    assert!(many.shard_handoffs > 0);
    assert_eq!(full_fingerprint(&mut many), serial_fp);
    assert_eq!(
        (many.shard_handoffs, many.shard_handoff_hash),
        {
            let m2 = sharded(false, 8);
            (m2.shard_handoffs, m2.shard_handoff_hash)
        },
        "8-shard handoff stream must replay exactly"
    );
}
