//! Determinism goldens: a fixed seed must reproduce bit-identical run
//! outcomes across machines, runs, *and refactors of the event core*.
//!
//! The constants below were captured from a run of this configuration; if
//! a change breaks them it has changed simulation behaviour — event
//! delivery order, RNG streams, or the TCP/switch models — and is not a
//! pure refactor. Update the constants only when a behaviour change is
//! intended, and say so in the commit.

use drill::net::{LeafSpineSpec, DEFAULT_PROP};
use drill::runtime::{run, ExperimentConfig, RunStats, Scheme, SweepSpec, TopoSpec};
use drill::sim::Time;

fn golden_run(scheme: Scheme) -> RunStats {
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 2,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut cfg = ExperimentConfig::new(topo, scheme, 0.4);
    cfg.seed = 0xD211;
    cfg.duration = Time::from_millis(3);
    cfg.drain = Time::from_millis(50);
    cfg.warmup = Time::from_micros(100);
    run(&cfg)
}

fn assert_golden(scheme: Scheme, events: u64, flows_started: u64, flows_completed: u64) {
    let stats = golden_run(scheme);
    assert_eq!(
        (stats.events, stats.flows_started, stats.flows_completed),
        (events, flows_started, flows_completed),
        "{} diverged from its golden trace",
        scheme.name()
    );
}

#[test]
fn ecmp_replays_golden_trace() {
    assert_golden(Scheme::Ecmp, 1_282_646, 1060, 1058);
}

#[test]
fn drill_2_1_replays_golden_trace() {
    assert_golden(Scheme::drill_default(), 1_283_055, 1060, 1058);
}

#[test]
fn random_replays_golden_trace() {
    assert_golden(Scheme::Random, 1_294_326, 1060, 1060);
}

/// The executor's determinism contract, tested differentially: the same
/// sweep grid run serially and on 1/2/8-thread pools must agree bit for
/// bit on every per-point metric — event counts exactly, floating-point
/// aggregates via `to_bits` (not an epsilon).
#[test]
fn sweep_results_are_bit_identical_across_thread_counts() {
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 2,
        leaves: 2,
        hosts_per_leaf: 2,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut base = ExperimentConfig::new(topo, Scheme::Ecmp, 0.3);
    base.seed = 0xD211;
    base.duration = Time::from_millis(2);
    base.drain = Time::from_millis(50);
    base.sample_queues = true;
    let spec = |threads: Option<usize>| {
        let mut s = SweepSpec::new(base.clone())
            .schemes(vec![Scheme::Ecmp, Scheme::drill_default()])
            .loads(vec![0.3, 0.8])
            .reps(2);
        if let Some(t) = threads {
            s = s.threads(t);
        }
        s
    };

    // Fingerprint every per-point metric the figures read, with float
    // bits so "close enough" cannot mask a divergence.
    let fingerprint =
        |res: drill::runtime::SweepResults| -> Vec<(u64, u64, u64, u64, u64, u64, u64)> {
            res.into_stats()
                .into_iter()
                .map(|mut st| {
                    (
                        st.events,
                        st.flows_completed,
                        st.queue_stdv.mean().to_bits(),
                        st.queue_stdv.count(),
                        st.fct_ms.quantile(0.50).to_bits(),
                        st.fct_ms.quantile(0.9999).to_bits(),
                        st.fct_ms.count() as u64,
                    )
                })
                .collect()
        };

    let serial = fingerprint(spec(None).run_serial());
    assert_eq!(serial.len(), 8);
    // The grid is not degenerate: loads differ, so points differ.
    assert_ne!(serial[0], serial[4]);
    for threads in [1usize, 2, 8] {
        let parallel = fingerprint(spec(Some(threads)).run());
        assert_eq!(
            serial, parallel,
            "sweep diverged from serial replay at {threads} threads"
        );
    }
}
