//! Determinism goldens: a fixed seed must reproduce bit-identical run
//! outcomes across machines, runs, *and refactors of the event core*.
//!
//! The constants below were captured from a run of this configuration; if
//! a change breaks them it has changed simulation behaviour — event
//! delivery order, RNG streams, or the TCP/switch models — and is not a
//! pure refactor. Update the constants only when a behaviour change is
//! intended, and say so in the commit.

use drill::net::{LeafSpineSpec, DEFAULT_PROP};
use drill::runtime::{run, ExperimentConfig, RunStats, Scheme, TopoSpec};
use drill::sim::Time;

fn golden_run(scheme: Scheme) -> RunStats {
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 2,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut cfg = ExperimentConfig::new(topo, scheme, 0.4);
    cfg.seed = 0xD211;
    cfg.duration = Time::from_millis(3);
    cfg.drain = Time::from_millis(50);
    cfg.warmup = Time::from_micros(100);
    run(&cfg)
}

fn assert_golden(scheme: Scheme, events: u64, flows_started: u64, flows_completed: u64) {
    let stats = golden_run(scheme);
    assert_eq!(
        (stats.events, stats.flows_started, stats.flows_completed),
        (events, flows_started, flows_completed),
        "{} diverged from its golden trace",
        scheme.name()
    );
}

#[test]
fn ecmp_replays_golden_trace() {
    assert_golden(Scheme::Ecmp, 1_282_646, 1060, 1058);
}

#[test]
fn drill_2_1_replays_golden_trace() {
    assert_golden(Scheme::drill_default(), 1_283_055, 1060, 1058);
}

#[test]
fn random_replays_golden_trace() {
    assert_golden(Scheme::Random, 1_294_326, 1060, 1060);
}
