//! Qualitative paper claims, checked end-to-end at test scale.
//!
//! These are the *shape* assertions the reproduction stands on: scheme
//! orderings and directional effects, not absolute numbers.

use drill::hw::{estimate, HwSpec, TechNode};
use drill::net::{HopClass, LeafSpineSpec, DEFAULT_PROP};
use drill::runtime::{run_many, ExperimentConfig, Scheme, TopoSpec};
use drill::sim::Time;

fn paper_shaped() -> TopoSpec {
    TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 12,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    })
}

fn cfg(scheme: Scheme, load: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(paper_shaped(), scheme, load);
    cfg.duration = Time::from_millis(8);
    cfg.warmup = Time::from_micros(500);
    cfg
}

/// §3.2.3 / Figure 2: ECMP's queue imbalance is orders of magnitude above
/// any per-packet scheme, and DRILL(2,1) beats per-packet Random.
#[test]
fn queue_stdv_ordering() {
    let mk = |scheme| {
        let mut c = cfg(scheme, 0.8);
        c.raw_packet_mode = true;
        c.sample_queues = true;
        c.queue_limit_bytes = 20_000_000;
        c.workload.burst_sigma = 2.0;
        c
    };
    let res = run_many(&[
        mk(Scheme::Ecmp),
        mk(Scheme::Random),
        mk(Scheme::drill_no_shim()),
    ]);
    let (ecmp, random, drill) = (
        res[0].queue_stdv.mean(),
        res[1].queue_stdv.mean(),
        res[2].queue_stdv.mean(),
    );
    assert!(ecmp > 3.0 * random, "ECMP {ecmp} >> Random {random}");
    assert!(drill < random, "DRILL {drill} < Random {random}");
}

/// Figure 11a: at identical (per-packet) granularity, DRILL's load
/// awareness yields less reordering than load-oblivious Random; ECMP and
/// CONGA never reorder.
#[test]
fn reordering_ordering() {
    let res = run_many(&[
        cfg(Scheme::Ecmp, 0.8),
        cfg(Scheme::Conga, 0.8),
        cfg(Scheme::Random, 0.8),
        cfg(Scheme::drill_no_shim(), 0.8),
        cfg(Scheme::drill_default(), 0.8),
    ]);
    assert_eq!(res[0].reorders.frac_at_least(1), 0.0, "ECMP never reorders");
    assert_eq!(
        res[1].reorders.frac_at_least(1),
        0.0,
        "CONGA flowlets never reorder"
    );
    let random = res[2].reorders.frac_at_least(1);
    let drill = res[3].reorders.frac_at_least(1);
    assert!(drill < random, "DRILL {drill} < Random {random}");
    // §3.3: the shim hides what little reordering remains from TCP.
    let shimmed = res[4].dupacks.frac_at_least(1);
    let bare = res[3].dupacks.frac_at_least(1);
    assert!(shimmed < bare, "shim cuts dup ACKs: {shimmed} < {bare}");
}

/// Figure 6(c): DRILL's benefit is concentrated at the upstream (hop 1)
/// queues under load.
#[test]
fn drill_cuts_upstream_queueing() {
    let res = run_many(&[cfg(Scheme::Ecmp, 0.8), cfg(Scheme::drill_default(), 0.8)]);
    let ecmp_h1 = res[0].hops.mean_wait_us(HopClass::LeafUp);
    let drill_h1 = res[1].hops.mean_wait_us(HopClass::LeafUp);
    assert!(
        drill_h1 * 2.0 < ecmp_h1,
        "hop-1 queueing at least halved: DRILL {drill_h1} vs ECMP {ecmp_h1}"
    );
    // Hop 3 (no path choice) is roughly unaffected (within 2x of ECMP).
    let ecmp_h3 = res[0].hops.mean_wait_us(HopClass::ToHost);
    let drill_h3 = res[1].hops.mean_wait_us(HopClass::ToHost);
    assert!(
        drill_h3 < ecmp_h3 * 2.0 + 1.0,
        "hop 3 similar: {drill_h3} vs {ecmp_h3}"
    );
}

/// Figure 14: under incast, DRILL's tail is no worse than ECMP's and its
/// hop-1 loss rate is lower.
#[test]
fn incast_tail_and_upstream_loss() {
    let mk = |scheme| {
        let mut c = cfg(scheme, 0.2);
        c.duration = Time::from_millis(12);
        c.workload.incast = Some(drill::workload::IncastSpec {
            epoch_gap: Time::from_millis(2),
            ..Default::default()
        });
        c
    };
    let mut res = run_many(&[mk(Scheme::Ecmp), mk(Scheme::drill_default())]);
    let ecmp_drops = res[0].hops.drops[1]; // leaf-up
    let drill_drops = res[1].hops.drops[1];
    assert!(
        drill_drops <= ecmp_drops,
        "hop-1 drops: DRILL {drill_drops} <= ECMP {ecmp_drops}"
    );
    let ecmp_tail = res[0].fct_incast_ms.percentile(99.0);
    let drill_tail = res[1].fct_incast_ms.percentile(99.0);
    assert!(
        drill_tail <= ecmp_tail * 1.2,
        "incast tail not worse: DRILL {drill_tail} vs ECMP {ecmp_tail}"
    );
}

/// §4 hardware: the paper's (reproduced) area accounting stays under 1% of
/// a reference switch chip even for extreme configurations.
#[test]
fn hardware_overhead_under_one_percent() {
    let tech = TechNode::default();
    for spec in [
        HwSpec::paper_default(),
        HwSpec {
            engines: 48,
            ..HwSpec::paper_default()
        },
        HwSpec {
            d: 20,
            m: 20,
            engines: 48,
            ..HwSpec::paper_default()
        },
    ] {
        let est = estimate(&spec, &tech);
        assert!(
            est.fraction_of_chip < 0.01,
            "{spec:?}: {}",
            est.fraction_of_chip
        );
    }
}

/// §3.2.4: the stability dichotomy, via the abstract switch model.
#[test]
fn stability_dichotomy() {
    use drill::core::stability::{simulate, theorem1_counterexample};
    let unstable = simulate(&theorem1_counterexample(1, 0, 60_000, 9));
    let stable = simulate(&theorem1_counterexample(1, 1, 60_000, 9));
    assert!(
        unstable.final_queues.iter().sum::<u64>()
            > 50 * stable.final_queues.iter().sum::<u64>().max(1)
    );
    assert!(stable.throughput() > 0.99);
}

/// §4 GRO: DRILL (with shim) increases receiver GRO batches only
/// marginally relative to ECMP.
#[test]
fn gro_batches_close_to_ecmp() {
    let res = run_many(&[cfg(Scheme::Ecmp, 0.6), cfg(Scheme::drill_default(), 0.6)]);
    let per_pkt =
        |s: &drill::runtime::RunStats| s.gro_batches as f64 / s.data_pkts_delivered.max(1) as f64;
    let (e, d) = (per_pkt(&res[0]), per_pkt(&res[1]));
    assert!(
        d < e * 1.15,
        "GRO batches per packet: DRILL {d} vs ECMP {e}"
    );
}
