//! `DRILLSNAP` resume goldens: a run checkpointed at time T and restored
//! from the serialized bytes — as a fresh process would — must replay
//! bit-identically to the uninterrupted run, on every engine (shard
//! counts 1/2/8, wheel or heap queue, slim or fat packet layout: CI
//! crosses this suite over all of them). The same discipline as
//! `determinism_golden.rs`, extended over a save/restore boundary.

use drill::faults::FaultSchedule;
use drill::net::{LeafSpineSpec, DEFAULT_PROP};
use drill::runtime::{
    random_leaf_spine_failures, run, CheckpointPolicy, CheckpointSpec, ExperimentConfig, RunStats,
    Scheme, ShardSpec, Snapshot, SweepSpec, TopoSpec, World,
};
use drill::sim::Time;

fn golden_cfg(scheme: Scheme) -> ExperimentConfig {
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 2,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut cfg = ExperimentConfig::new(topo, scheme, 0.4);
    cfg.seed = 0xD211;
    cfg.duration = Time::from_millis(3);
    cfg.drain = Time::from_millis(50);
    cfg.warmup = Time::from_micros(100);
    cfg
}

fn tiny_cfg(scheme: Scheme) -> ExperimentConfig {
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 2,
        leaves: 2,
        hosts_per_leaf: 2,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut cfg = ExperimentConfig::new(topo, scheme, 0.3);
    cfg.duration = Time::from_millis(2);
    cfg.drain = Time::from_millis(50);
    cfg.warmup = Time::from_micros(100);
    cfg
}

/// Every metric a figure reads (same slots as `determinism_golden.rs`),
/// floats by bit pattern.
fn full_fingerprint(st: &mut RunStats) -> Vec<u64> {
    let mut fp = vec![
        st.flows_started,
        st.flows_completed,
        st.events,
        st.gro_batches,
        st.data_pkts_delivered,
        st.retransmissions,
        st.timeouts,
        st.blackholed,
        st.nic_drops,
        st.sim_end.as_nanos(),
        st.fct_ms.count() as u64,
        st.fct_incast_ms.count() as u64,
        st.fct_mice_ms.count() as u64,
        st.elephant_gbps.count() as u64,
        st.dupacks.total(),
        st.reorders.total(),
        st.queue_stdv.count(),
        st.queue_stdv.mean().to_bits(),
        st.mean_fct_ms().to_bits(),
        st.fct_ms.quantile(0.5).to_bits(),
        st.fct_ms.quantile(0.99).to_bits(),
        st.fct_ms.quantile(0.9999).to_bits(),
        st.dupacks.frac(0).to_bits(),
        st.reorders.frac(0).to_bits(),
        st.elephant_gbps.mean().to_bits(),
        st.fault_events,
        st.reconvergences,
        st.fault_blackholed,
        st.fault_window_ns,
        st.stable_at.as_nanos(),
        st.fct_fault_ms.count() as u64,
        st.fct_fault_ms.mean().to_bits(),
        st.fct_clear_ms.count() as u64,
        st.fct_clear_ms.mean().to_bits(),
        st.bytes_delivered,
        st.fct_ms.digest(),
        st.arena_live_at_end,
    ];
    fp.extend_from_slice(&st.hops.wait_ns);
    fp.extend_from_slice(&st.hops.wait_samples);
    fp.extend_from_slice(&st.hops.drops);
    fp.extend_from_slice(&st.hops.tx);
    fp
}

/// Run `cfg` to `at`, serialize, decode the bytes back (the fresh-process
/// boundary), restore, and run to completion.
fn snapshot_resume(cfg: &ExperimentConfig, at: Time) -> RunStats {
    let mut w = World::new(cfg);
    w.run_to(at);
    let bytes = w.snapshot().to_bytes();
    drop(w);
    let snap = Snapshot::from_bytes(&bytes).expect("round-trip decode");
    World::restore(&snap, cfg).expect("restore").finish()
}

/// The central golden: checkpoint the golden config mid-run, restore from
/// bytes, and demand the full fingerprint — FCT digest and arena leak
/// check included — match the uninterrupted run, at every shard count.
/// (`ShardSpec` pins the engine per iteration, so one test covers the
/// serial and sharded engines regardless of `DRILL_SHARDS`.)
#[test]
fn resume_replays_uninterrupted_run_across_shard_counts() {
    for scheme in [Scheme::Ecmp, Scheme::drill_default()] {
        let mut cold = {
            let mut cfg = golden_cfg(scheme);
            cfg.shards = Some(ShardSpec::count(1));
            run(&cfg)
        };
        let cold_fp = full_fingerprint(&mut cold);
        for shards in [1usize, 2, 8] {
            let mut cfg = golden_cfg(scheme);
            cfg.shards = Some(ShardSpec::count(shards));
            let mut resumed = snapshot_resume(&cfg, Time::from_millis(1));
            assert_eq!(
                cold_fp,
                full_fingerprint(&mut resumed),
                "{} resumed at 1ms diverged from the uninterrupted run (shards={shards})",
                scheme.name()
            );
        }
    }
}

/// The resumed run also replays the pinned golden constants — the same
/// numbers `determinism_golden.rs` pins for uninterrupted runs.
#[test]
fn resumed_run_hits_pinned_goldens() {
    for (scheme, events, started, completed) in [
        (Scheme::Ecmp, 1_282_646, 1060, 1058),
        (Scheme::drill_default(), 1_283_055, 1060, 1058),
    ] {
        let st = snapshot_resume(&golden_cfg(scheme), Time::from_micros(1500));
        assert_eq!(
            (st.events, st.flows_started, st.flows_completed),
            (events, started, completed),
            "{} diverged from its golden trace across the resume boundary",
            scheme.name()
        );
        assert_eq!(st.arena_live_at_end, 0, "{} leaked", scheme.name());
    }
}

/// Re-snapshotting a just-restored world reproduces the original bytes:
/// the encoding is canonical, so resumed checkpoints don't drift.
#[test]
fn snapshot_roundtrip_is_canonical() {
    let cfg = tiny_cfg(Scheme::drill_default());
    let mut w = World::new(&cfg);
    w.run_to(Time::from_millis(1));
    let bytes = w.snapshot().to_bytes();
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    let again = World::restore(&snap, &cfg).unwrap().snapshot().to_bytes();
    assert_eq!(bytes, again, "restore → snapshot changed the state");
}

/// Seeded randomized round-trips: many snapshot instants across schemes
/// (shim and shim-less, host-policy-stateful Presto included), each
/// restored from bytes and run to completion against the cold run.
#[test]
fn randomized_snapshot_instants_roundtrip() {
    // xorshift64*: fixed-seed pseudorandom snapshot times in [50µs, 2.3ms].
    let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next_at = || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        let r = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
        Time::from_nanos(50_000 + r % 2_250_000)
    };
    for scheme in [Scheme::drill_default(), Scheme::Random, Scheme::presto()] {
        let cfg = tiny_cfg(scheme);
        let mut cold = run(&cfg);
        let cold_fp = full_fingerprint(&mut cold);
        for _ in 0..3 {
            let at = next_at();
            let mut resumed = snapshot_resume(&cfg, at);
            assert_eq!(
                cold_fp,
                full_fingerprint(&mut resumed),
                "{} resumed at {at:?} diverged",
                scheme.name()
            );
        }
    }
}

/// The pinned chaos schedule of `determinism_golden.rs`: snapshots taken
/// inside a fault window (reconvergence pending) and after recovery must
/// both resume bit-identically — this exercises the applied-prefix
/// replay, the route recompute at the reconvergence boundary, and
/// re-injection of the not-yet-struck suffix.
#[test]
fn mid_fault_snapshot_resumes_bit_identically() {
    let mut cfg = golden_cfg(Scheme::drill_default());
    let built = cfg.topo.build();
    let pairs = random_leaf_spine_failures(&built, 2, 0xC405);
    let mut s = FaultSchedule::new(Time::from_micros(300));
    s.link_flap(
        pairs[0].0,
        pairs[0].1,
        Time::from_micros(500),
        Time::from_micros(900),
    );
    s.switch_outage(pairs[1].1, Time::from_micros(1800), Time::from_micros(2300));
    cfg.faults = Some(s);
    let mut cold = run(&cfg);
    let cold_fp = full_fingerprint(&mut cold);
    assert!(cold.fault_events >= 4, "schedule actually struck");
    // 700µs: flap down, reconvergence pending. 1500µs: recovered, next
    // outage still in the future. 2000µs: mid-outage.
    for us in [700u64, 1500, 2000] {
        let mut resumed = snapshot_resume(&cfg, Time::from_micros(us));
        assert_eq!(
            cold_fp,
            full_fingerprint(&mut resumed),
            "chaos run resumed at {us}µs diverged"
        );
    }
}

/// `ExperimentConfig::checkpoint`: the event loop writes the snapshot
/// file at the configured point, and a fresh process loading that file
/// finishes with the uninterrupted run's exact results — the
/// crash-recovery path `scalebench --checkpoint-every` smokes end to end.
#[test]
fn checkpoint_policy_files_are_resumable() {
    let dir = std::env::temp_dir();
    for (tag, policy) in [
        ("at", CheckpointPolicy::AtTime(Time::from_millis(1))),
        // The tiny run processes ~150k events, so the file is rewritten
        // three times; the survivor is the 150k-event checkpoint.
        ("every", CheckpointPolicy::EveryEvents(50_000)),
    ] {
        let path = dir.join(format!("drillsnap-test-{}-{tag}.snap", std::process::id()));
        let mut cfg = tiny_cfg(Scheme::drill_default());
        cfg.checkpoint = Some(CheckpointSpec {
            policy,
            path: path.clone(),
        });
        let mut cold = run(&cfg);
        let snap = Snapshot::load(&path).expect("checkpoint file written");
        std::fs::remove_file(&path).ok();
        cfg.checkpoint = None;
        let mut resumed = World::restore(&snap, &cfg).unwrap().finish();
        assert_eq!(
            full_fingerprint(&mut cold),
            full_fingerprint(&mut resumed),
            "resume from {tag}-policy checkpoint diverged"
        );
    }
}

/// Warm-started sweeps produce tables byte-identical to cold sweeps:
/// variants fork divergent fault timelines off one shared warmed-up
/// snapshot per (scheme, load, engines, rep) group.
#[test]
fn warm_start_sweep_matches_cold_sweep() {
    let spec = || {
        let mut base = tiny_cfg(Scheme::Ecmp);
        base.drain = Time::from_millis(30);
        let pair = random_leaf_spine_failures(&base.topo.build(), 1, 7)[0];
        SweepSpec::new(base)
            .schemes(vec![Scheme::Ecmp, Scheme::drill_default()])
            .variants(vec!["clear", "flap"])
            .reps(2)
            .threads(4)
            .configure(move |cfg, p| {
                if p.variant == "flap" {
                    let mut s = FaultSchedule::new(Time::from_micros(200));
                    s.link_flap(
                        pair.0,
                        pair.1,
                        Time::from_micros(1300),
                        Time::from_micros(1700),
                    );
                    cfg.faults = Some(s);
                }
            })
    };
    let cold = spec().run().into_stats();
    let warm = spec().warm_start(Time::from_millis(1)).run().into_stats();
    assert_eq!(cold.len(), warm.len());
    for (i, (mut c, mut w)) in cold.into_iter().zip(warm).enumerate() {
        assert_eq!(
            full_fingerprint(&mut c),
            full_fingerprint(&mut w),
            "warm-started point {i} diverged from the cold sweep"
        );
    }
}

/// A variant whose fault timeline diverges *before* the snapshot point
/// violates the warm-start contract and must be rejected loudly.
#[test]
#[should_panic(expected = "incompatible with its group snapshot")]
fn warm_start_rejects_pre_snapshot_divergence() {
    let mut base = tiny_cfg(Scheme::Ecmp);
    let pair = random_leaf_spine_failures(&base.topo.build(), 1, 7)[0];
    base.drain = Time::from_millis(30);
    SweepSpec::new(base)
        .variants(vec!["clear", "early-flap"])
        .threads(1)
        .configure(move |cfg, p| {
            if p.variant == "early-flap" {
                let mut s = FaultSchedule::new(Time::from_micros(200));
                s.link_flap(
                    pair.0,
                    pair.1,
                    Time::from_micros(300),
                    Time::from_micros(600),
                );
                cfg.faults = Some(s);
            }
        })
        .warm_start(Time::from_millis(1))
        .run();
}

/// Restoring against an incompatible config errors instead of silently
/// simulating the wrong experiment.
#[test]
fn restore_rejects_mismatched_configs() {
    let mut cfg = tiny_cfg(Scheme::drill_default());
    // Pin the donor engine: an explicit spec beats `DRILL_SHARDS`, so the
    // count-2 clone below is a genuine mismatch under any environment.
    cfg.shards = Some(ShardSpec::count(1));
    let mut w = World::new(&cfg);
    w.run_to(Time::from_millis(1));
    let snap = w.snapshot();
    drop(w);

    let mut sharded = cfg.clone();
    sharded.shards = Some(ShardSpec::count(2));
    assert!(World::restore(&snap, &sharded).is_err(), "shard count");

    let mut bigger = cfg.clone();
    bigger.topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 2,
        leaves: 2,
        hosts_per_leaf: 4,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    });
    assert!(World::restore(&snap, &bigger).is_err(), "host count");

    let mut engines = cfg.clone();
    engines.engines = 4;
    assert!(World::restore(&snap, &engines).is_err(), "engine count");
}

/// A divergent fault prefix — a strike the snapshot already applied that
/// the restore timeline disagrees with — is rejected.
#[test]
fn restore_rejects_divergent_applied_fault_prefix() {
    let mut cfg = tiny_cfg(Scheme::Ecmp);
    let pairs = random_leaf_spine_failures(&cfg.topo.build(), 2, 11);
    let schedule = |pair: (u32, u32)| {
        let mut s = FaultSchedule::new(Time::from_micros(200));
        s.link_flap(
            pair.0,
            pair.1,
            Time::from_micros(400),
            Time::from_micros(800),
        );
        s
    };
    cfg.faults = Some(schedule(pairs[0]));
    let mut w = World::new(&cfg);
    w.run_to(Time::from_millis(1));
    let snap = w.snapshot();
    drop(w);

    let mut forked = cfg.clone();
    forked.faults = Some(schedule(pairs[1]));
    let err = match World::restore(&snap, &forked) {
        Ok(_) => panic!("divergent applied prefix restored"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("prefix diverges"),
        "unexpected error: {err}"
    );
}

/// End-to-end corruption hardening: truncations and bit flips of the
/// serialized bytes surface as errors — from the container decoder or the
/// state decoder — never as a panic or a silently wrong world.
#[test]
fn corrupted_snapshot_bytes_never_restore() {
    let cfg = tiny_cfg(Scheme::drill_default());
    let mut w = World::new(&cfg);
    w.run_to(Time::from_micros(500));
    let bytes = w.snapshot().to_bytes();
    drop(w);
    assert!(Snapshot::from_bytes(&bytes).is_ok());

    for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes decoded"
        );
    }
    let mut pos = 3usize;
    while pos < bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        if let Ok(snap) = Snapshot::from_bytes(&bad) {
            // The container checksum catches almost every flip; anything
            // that slips through must fail in the state decoder.
            assert!(
                World::restore(&snap, &cfg).is_err(),
                "bit flip at {pos} restored"
            );
        }
        pos += 97;
    }
}
