//! Property-based invariants across the crates.
//!
//! Compiled only with `--features proptest`, which additionally needs the
//! `proptest` dev-dependency restored on a networked machine (see the
//! feature's note in the root Cargo.toml). The std-only suites cover the
//! same invariants deterministically; this file widens them to random
//! topologies when available.
#![cfg(feature = "proptest")]

use drill::core::{
    decompose_groups, install_symmetric_groups_eager, DrillPolicy, Quiver, SymmetryEngine,
};
use drill::net::{
    clos, fat_tree_custom, leaf_spine, leaf_spine_custom, vl2, ClosSpec, FlowId, HostId,
    LeafSpineSpec, NodeRef, Packet, PacketArena, PacketRef, QueueView, RouteTable, SelectCtx,
    ShardPlan, SwitchId, SwitchKind, SwitchPolicy, Topology, Vl2Spec, DEFAULT_PROP,
};
use drill::runtime::random_leaf_spine_failures;
use drill::sim::{SimRng, Time};
use drill::stats::{Distribution, Histogram, Moments};
use drill::transport::{ShimBuffer, TcpConfig, TcpFlow};
use proptest::prelude::*;

use proptest::prop_compose;
prop_compose! {
    fn spec_strategy()(spines in 2usize..6, leaves in 2usize..6, hosts in 1usize..4)
        -> LeafSpineSpec {
        LeafSpineSpec {
            spines,
            leaves,
            hosts_per_leaf: hosts,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }
    }
}

// Randomized three-tier Clos specs: independent tier widths, cores always
// a positive multiple of `aggs_per_pod` (the builder's wiring
// precondition).
prop_compose! {
    fn clos_strategy()(pods in 2usize..5, lpp in 1usize..4, app in 1usize..4,
                       group in 1usize..4, hosts in 1usize..4)
        -> ClosSpec {
        ClosSpec {
            pods,
            leaves_per_pod: lpp,
            aggs_per_pod: app,
            cores: app * group,
            hosts_per_leaf: hosts,
            host_rate: 10_000_000_000,
            leaf_agg_rate: 40_000_000_000,
            agg_core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }
    }
}

/// Shared checker for the builder properties: the port maps are an exact
/// disjoint cover of the directed link table. Every switch port and every
/// host uplink resolves to a link whose `src`/`src_port` point back at it,
/// and together those links account for every entry in
/// [`Topology::links`] exactly once.
fn assert_port_cover(topo: &Topology) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut ids: Vec<usize> = Vec::with_capacity(topo.links().len());
    for si in 0..topo.num_switches() {
        let s = SwitchId(si as u32);
        prop_assert_eq!(topo.egress_links(s).len(), topo.num_ports(s));
        for (port, &lid) in topo.egress_links(s).iter().enumerate() {
            let l = topo.link(lid);
            prop_assert_eq!(l.src, NodeRef::Switch(s));
            prop_assert_eq!(l.src_port as usize, port);
            ids.push(lid.index());
        }
    }
    for h in 0..topo.num_hosts() {
        let l = topo.host_uplink(HostId(h as u32));
        prop_assert_eq!(l.src, NodeRef::Host(HostId(h as u32)));
        ids.push(l.id.index());
    }
    ids.sort_unstable();
    prop_assert_eq!(ids, (0..topo.links().len()).collect::<Vec<_>>());
    Ok(())
}

/// Shared checker for the partitioner properties: disjoint exact cover,
/// no empty shard, host/leaf colocation, and the lookahead bound (every
/// cross-shard link at least as slow as the window length). Ends by
/// running the plan's own `validate`, so the production checker is
/// exercised against the same random topologies.
fn assert_shard_plan_invariants(
    plan: &ShardPlan,
    topo: &Topology,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(plan.switch_shard.len(), topo.num_switches());
    prop_assert_eq!(plan.host_shard.len(), topo.num_hosts());
    let mut seen = vec![false; plan.num_shards as usize];
    for &sh in &plan.switch_shard {
        prop_assert!(sh < plan.num_shards, "out-of-range shard id {}", sh);
        seen[sh as usize] = true;
    }
    prop_assert!(seen.iter().all(|&s| s), "an empty shard survived");
    for h in 0..topo.num_hosts() {
        prop_assert_eq!(
            plan.host_shard[h],
            plan.switch_shard[topo.host_leaf(HostId(h as u32)).index()],
            "host {} not colocated with its leaf",
            h
        );
    }
    for l in topo.links() {
        if plan.shard_of(l.src) != plan.shard_of(l.dst) {
            prop_assert!(
                l.prop >= plan.lookahead,
                "cross-shard link faster than the lookahead bound"
            );
        }
    }
    if plan.num_shards > 1 {
        prop_assert!(plan.lookahead > Time::ZERO);
        prop_assert!(plan.lookahead < Time::MAX, "bound is a real link latency");
    }
    plan.validate(topo);
    Ok(())
}

/// Shared checker for the structural §3.4 control plane: the
/// [`SymmetryEngine`] must install group tables bit-identical to the
/// eager per-pair enumeration on the same fabric, and its
/// `GroupingReport` must uphold the structural invariants (classes never
/// exceed entries, reuse is exactly the difference, the lazy walk never
/// enumerates more paths than eager). Only the fields both paths define
/// identically are compared — `classes`/`paths_enumerated`/`build_ns`
/// have different semantics per path by design.
fn assert_structural_matches_eager(
    topo: &Topology,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut eager_routes = RouteTable::compute(topo);
    let eager = install_symmetric_groups_eager(topo, &mut eager_routes);
    let mut structural_routes = RouteTable::compute(topo);
    let structural = SymmetryEngine::new().install(topo, &mut structural_routes);
    for si in 0..topo.num_switches() as u32 {
        for d in 0..topo.num_leaves() as u32 {
            prop_assert_eq!(
                eager_routes.groups(SwitchId(si), d),
                structural_routes.groups(SwitchId(si), d),
                "group tables diverged at switch {} dst leaf {}",
                si,
                d
            );
        }
    }
    prop_assert_eq!(eager.entries, structural.entries);
    prop_assert_eq!(eager.asymmetric_entries, structural.asymmetric_entries);
    prop_assert_eq!(eager.max_components, structural.max_components);
    prop_assert!(structural.classes <= structural.entries);
    prop_assert_eq!(
        structural.entries_reused,
        structural.entries - structural.classes
    );
    prop_assert!(structural.paths_enumerated <= eager.paths_enumerated);
    Ok(())
}

/// Fail `n` seeded random leaf uplinks in place (direction-agnostic).
fn fail_random_uplinks(
    topo: &mut Topology,
    n: usize,
    seed: u64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    for &(a, b) in &random_leaf_spine_failures(topo, n, seed) {
        let ok = topo.fail_switch_link(SwitchId(a), SwitchId(b), 0)
            || topo.fail_switch_link(SwitchId(b), SwitchId(a), 0);
        prop_assert!(ok, "pair ({}, {}) matches no live link", a, b);
    }
    Ok(())
}

struct FixedQueues(Vec<u64>);
impl QueueView for FixedQueues {
    fn visible_bytes(&self, p: u16) -> u64 {
        self.0[p as usize]
    }
    fn visible_pkts(&self, p: u16) -> u32 {
        (self.0[p as usize] / 1500) as u32
    }
    fn num_ports(&self) -> usize {
        self.0.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routing: in a healthy leaf-spine fabric every leaf pair is 2 hops
    /// apart with all spines as candidates; after failing one uplink the
    /// affected leaf loses exactly one candidate everywhere.
    #[test]
    fn routing_reachability(spec in spec_strategy(), fail_spine in 0usize..6) {
        let mut topo = leaf_spine(&spec);
        let routes = RouteTable::compute(&topo);
        for (i, &a) in topo.leaves().iter().enumerate() {
            for j in 0..topo.num_leaves() as u32 {
                if i as u32 == j { continue; }
                prop_assert_eq!(routes.dist(a, j), Some(2));
                prop_assert_eq!(routes.candidates(a, j).len(), spec.spines);
            }
        }
        let l0 = topo.leaves()[0];
        let spine = SwitchId((spec.leaves + fail_spine % spec.spines) as u32);
        prop_assert!(topo.fail_switch_link(l0, spine, 0));
        let routes = RouteTable::compute(&topo);
        for j in 1..topo.num_leaves() as u32 {
            prop_assert_eq!(routes.candidates(l0, j).len(), spec.spines - 1);
        }
    }

    /// Decomposition: groups always partition the candidate set, and
    /// weights are positive.
    #[test]
    fn decomposition_partitions(spec in spec_strategy(), fails in 0usize..3, seed in 0u64..1000) {
        let mut topo = leaf_spine(&spec);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..fails {
            let leaf = topo.leaves()[rng.below(spec.leaves)];
            let spine = SwitchId((spec.leaves + rng.below(spec.spines)) as u32);
            let _ = topo.fail_switch_link(leaf, spine, 0);
        }
        let routes = RouteTable::compute(&topo);
        let quiver = Quiver::build(&topo, &routes);
        for si in 0..topo.num_switches() {
            let s = SwitchId(si as u32);
            for dst in 0..topo.num_leaves() as u32 {
                let cand = routes.candidates(s, dst);
                if cand.len() < 2 { continue; }
                let groups = decompose_groups(&topo, &routes, &quiver, s, dst);
                let mut all: Vec<u16> = groups.iter().flat_map(|g| g.ports.iter().copied()).collect();
                all.sort_unstable();
                all.dedup();
                let mut c = cand.to_vec();
                c.sort_unstable();
                prop_assert_eq!(all, c, "groups partition candidates");
                prop_assert!(groups.iter().all(|g| g.weight >= 1));
            }
        }
    }

    /// DRILL(d, m) always returns a candidate, for arbitrary queue states
    /// and candidate subsets.
    #[test]
    fn drill_select_stays_in_candidates(
        d in 1usize..8,
        m in 0usize..8,
        engines in 1usize..4,
        queues in proptest::collection::vec(0u64..200_000, 2..24),
        seed in 0u64..10_000,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let n = queues.len();
        let view = FixedQueues(queues);
        let mut policy = DrillPolicy::new(d, m, engines);
        // Random strict subset of ports as candidates.
        let k = 1 + rng.below(n);
        let cand: Vec<u16> = rng.sample_indices(n, k).into_iter().map(|i| i as u16).collect();
        for round in 0..20u32 {
            let ctx = SelectCtx {
                now: Time::from_nanos(round as u64 * 100),
                engine: round as usize % engines,
                flow_hash: seed ^ round as u64,
                flow: FlowId(round),
                dst_leaf: 0,
                candidates: &cand,
            };
            let sel = policy.select(&ctx, &view, &mut rng);
            prop_assert!(cand.contains(&sel));
        }
    }

    /// The shim delivers every packet exactly once and never out of
    /// sequence order *within a delivery batch*, for arbitrary arrival
    /// permutations of a window.
    #[test]
    fn shim_delivers_once_in_order(
        n in 1usize..24,
        seed in 0u64..10_000,
        timeout_us in 1u64..500,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let mut order: Vec<u64> = (0..n as u64).collect();
        rng.shuffle(&mut order);
        let mut arena = PacketArena::new();
        let mut shim = ShimBuffer::new(Time::from_micros(timeout_us));
        let mut delivered: Vec<u64> = Vec::new();
        let mut out: Vec<PacketRef> = Vec::new();
        let mut drain = |arena: &mut PacketArena, out: &mut Vec<PacketRef>, sink: &mut Vec<u64>| {
            for r in out.drain(..) {
                let p = arena.take(r);
                sink.push(p.seq / 100);
            }
        };
        let mut pending_timer: Option<(Time, u64)> = None;
        for (i, &k) in order.iter().enumerate() {
            let now = Time::from_micros(i as u64);
            // Fire an expired timer first, as the event loop would.
            if let Some((at, gen)) = pending_timer {
                if at <= now {
                    shim.on_timer(&arena, gen, at, &mut out);
                    drain(&mut arena, &mut out, &mut delivered);
                    pending_timer = None;
                }
            }
            let pkt = Packet::data(k, FlowId(0), HostId(0), HostId(1), 1, k * 100, 100, now);
            let r = arena.insert(pkt);
            let timer = shim.on_packet(&arena, r, now, &mut out);
            drain(&mut arena, &mut out, &mut delivered);
            if let Some(t) = timer {
                pending_timer = Some(t);
            }
        }
        if let Some((at, gen)) = pending_timer {
            shim.on_timer(&arena, gen, at, &mut out);
            drain(&mut arena, &mut out, &mut delivered);
        }
        // Exactly once.
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u64).collect::<Vec<_>>());
        // And every delivery released its arena slot.
        prop_assert_eq!(arena.live(), 0);
    }

    /// The packet arena never aliases two live handles: under an arbitrary
    /// interleaving of inserts and frees, every live handle still reads
    /// back the packet it was issued for, and `live()` tracks the ground
    /// truth exactly.
    #[test]
    fn arena_alloc_free_never_aliases(
        ops in proptest::collection::vec(proptest::bool::ANY, 1..300),
        seed in 0u64..10_000,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let mut arena = PacketArena::new();
        let mut held: Vec<(PacketRef, u64)> = Vec::new();
        let mut next_id = 0u64;
        for &grow in &ops {
            if grow || held.is_empty() {
                let pkt = Packet::data(
                    next_id, FlowId(0), HostId(0), HostId(1), 1, 0, 100, Time::ZERO,
                );
                held.push((arena.insert(pkt), next_id));
                next_id += 1;
            } else {
                let (r, id) = held.swap_remove(rng.below(held.len()));
                prop_assert_eq!(arena.take(r).id, id, "freed handle read wrong packet");
            }
            prop_assert_eq!(arena.live(), held.len());
            // If any two live handles shared a slot, one of them would
            // read back the other's packet here.
            for (r, id) in &held {
                prop_assert_eq!(arena.get(r).id, *id, "live handle aliased");
            }
        }
        for (r, _) in held.drain(..) {
            arena.free(r);
        }
        prop_assert_eq!(arena.live(), 0);
    }

    /// TCP delivers a transfer completely over a lossy, reordering pipe:
    /// every run terminates with all bytes ACKed, regardless of drop
    /// pattern (as long as not everything is dropped).
    #[test]
    fn tcp_survives_loss_and_reordering(
        size in 1_000u64..200_000,
        drop_mod in 5u64..50,
        swap in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let cfg = TcpConfig {
            rto_min: Time::from_micros(500),
            rto_init: Time::from_micros(500),
            rto_max: Time::from_millis(5),
            init_cwnd: 10,
            ..Default::default()
        };
        let mut f = TcpFlow::new(FlowId(0), HostId(0), HostId(1), seed, size, Time::ZERO, cfg);
        let mut ids = 0u64;
        let mut wire: Vec<Packet> = Vec::new();
        let mut now = Time::ZERO;
        f.start_sending(now, &mut ids, &mut wire);
        let mut dropped = 0u64;
        let mut guard = 0;
        while !f.is_done() {
            guard += 1;
            prop_assert!(guard < 30_000, "no livelock");
            now += Time::from_micros(20);
            let mut data: Vec<Packet> = std::mem::take(&mut wire);
            if swap && data.len() >= 2 {
                data.swap(0, 1);
            }
            let mut acks = Vec::new();
            for p in &data {
                dropped += 1;
                // Drop every drop_mod-th data packet (but never the very
                // last retransmission chain forever: ids keep increasing).
                if p.id % drop_mod == 0 && p.id % (3 * drop_mod) != 0 {
                    continue;
                }
                f.on_data(p, now, &mut ids, &mut acks);
            }
            now += Time::from_micros(20);
            for a in &acks {
                f.on_ack(a, now, &mut ids, &mut wire);
            }
            // Drive the RTO when the window stalls.
            if wire.is_empty() && !f.is_done() {
                if let Some((at, gen)) = f.rto_deadline(now) {
                    now = at;
                    f.on_timer(gen, now, &mut ids, &mut wire);
                }
            }
        }
        prop_assert!(f.is_done());
        prop_assert_eq!(f.bytes_acked, size);
        prop_assert!(dropped > 0);
    }

    /// Mergeable distributions: merge(a, b) must equal a single pass over
    /// the concatenated stream — exactly, since the store is sample-based.
    /// This is what makes the sweep executor's cross-replication
    /// aggregation equivalent to one big serial run.
    #[test]
    fn distribution_merge_equals_single_pass(
        xs in proptest::collection::vec(0.0f64..1e6, 0..200),
        ys in proptest::collection::vec(0.0f64..1e6, 0..200),
    ) {
        let mut merged = Distribution::new();
        let mut parts = (Distribution::new(), Distribution::new());
        for &x in &xs { merged.add(x); parts.0.add(x); }
        for &y in &ys { merged.add(y); parts.1.add(y); }
        let mut combined = parts.0;
        combined.merge(&parts.1);
        prop_assert_eq!(combined.count(), merged.count());
        prop_assert_eq!(combined.mean().to_bits(), merged.mean().to_bits());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.9999, 1.0] {
            prop_assert_eq!(
                combined.quantile(q).to_bits(),
                merged.quantile(q).to_bits(),
                "quantile {} diverged", q
            );
        }
    }

    /// Mergeable moments: the Chan et al. combine must agree with a
    /// single-pass Welford over the concatenation on count exactly and on
    /// mean/variance to floating-point tolerance.
    #[test]
    fn moments_merge_equals_single_pass(
        xs in proptest::collection::vec(-1e3f64..1e3, 0..200),
        ys in proptest::collection::vec(-1e3f64..1e3, 0..200),
    ) {
        let mut merged = Moments::new();
        let mut parts = (Moments::new(), Moments::new());
        for &x in &xs { merged.add(x); parts.0.add(x); }
        for &y in &ys { merged.add(y); parts.1.add(y); }
        let mut combined = parts.0;
        combined.merge(&parts.1);
        prop_assert_eq!(combined.count(), merged.count());
        prop_assert!((combined.mean() - merged.mean()).abs() < 1e-9);
        prop_assert!((combined.variance() - merged.variance()).abs() < 1e-6);
    }

    /// Partitioner (leaf-spine): for any topology and requested shard
    /// count, the automatic plan is a disjoint exact cover — every switch
    /// and host assigned to exactly one in-range shard, no shard empty,
    /// hosts colocated with their leaf — and every cross-shard link's
    /// propagation delay is at or above the conservative lookahead bound.
    #[test]
    fn shard_plan_covers_leaf_spine_with_lookahead_bound(
        spec in spec_strategy(),
        requested in 0usize..12,
    ) {
        let topo = leaf_spine(&spec);
        let plan = ShardPlan::auto(&topo, requested);
        assert_shard_plan_invariants(&plan, &topo)?;
        // The auto split clamps to 1 fabric shard + one group per leaf.
        prop_assert!(plan.num_shards as usize <= 1 + spec.leaves);
        prop_assert!(plan.num_shards as usize <= requested.max(1));
    }

    /// Partitioner (VL2): the same cover + lookahead invariants hold on
    /// random three-tier VL2 fabrics, including under-connected ones
    /// (tor_uplinks < aggs).
    #[test]
    fn shard_plan_covers_vl2_with_lookahead_bound(
        tors in 2usize..8,
        aggs in 2usize..6,
        ints in 1usize..5,
        hosts in 1usize..4,
        uplinks in 1usize..6,
        requested in 0usize..12,
    ) {
        let topo = vl2(&Vl2Spec {
            tors,
            aggs,
            ints,
            hosts_per_tor: hosts,
            host_rate: 1_000_000_000,
            core_rate: 10_000_000_000,
            tor_uplinks: uplinks.min(aggs),
            prop: DEFAULT_PROP,
        });
        let plan = ShardPlan::auto(&topo, requested);
        assert_shard_plan_invariants(&plan, &topo)?;
    }

    /// Mergeable histograms: per-bucket counts add exactly, whatever mix
    /// of in-range and overflow values lands on either side.
    #[test]
    fn histogram_merge_equals_single_pass(
        xs in proptest::collection::vec(0usize..40, 0..200),
        ys in proptest::collection::vec(0usize..40, 0..200),
    ) {
        let mut merged = Histogram::new(16);
        let mut parts = (Histogram::new(16), Histogram::new(16));
        for &x in &xs { merged.add(x); parts.0.add(x); }
        for &y in &ys { merged.add(y); parts.1.add(y); }
        let mut combined = parts.0;
        combined.merge(&parts.1);
        prop_assert_eq!(combined.total(), merged.total());
        for v in 0..40 {
            prop_assert_eq!(combined.count(v), merged.count(v));
        }
        for v in 0..40 {
            prop_assert_eq!(
                combined.frac_at_least(v).to_bits(),
                merged.frac_at_least(v).to_bits()
            );
        }
    }

    /// Three-tier Clos builder: for any randomized spec the counts match
    /// the closed forms (`num_hosts`, `num_switches`,
    /// `expected_link_entries`), the port map is an exact disjoint cover,
    /// every tier has the port width the wiring rules dictate, and every
    /// leaf pair is reachable at the closed-form distance (2 intra-pod,
    /// 4 across pods) with all pod aggs as first-hop candidates.
    #[test]
    fn clos_builder_invariants(spec in clos_strategy()) {
        let topo = clos(&spec);
        prop_assert_eq!(topo.num_hosts(), spec.num_hosts());
        prop_assert_eq!(topo.num_switches(), spec.num_switches());
        prop_assert_eq!(topo.links().len(), spec.expected_link_entries());
        assert_port_cover(&topo)?;
        for si in 0..topo.num_switches() {
            let s = SwitchId(si as u32);
            let want = match topo.switch_kind(s) {
                SwitchKind::Leaf => spec.aggs_per_pod + spec.hosts_per_leaf,
                SwitchKind::Agg => spec.leaves_per_pod + spec.core_group(),
                SwitchKind::Spine => spec.pods,
            };
            prop_assert_eq!(topo.num_ports(s), want, "switch {} port width", si);
        }
        let routes = RouteTable::compute(&topo);
        for (i, &a) in topo.leaves().iter().enumerate() {
            for j in 0..topo.num_leaves() as u32 {
                if i as u32 == j { continue; }
                let same_pod = i / spec.leaves_per_pod == j as usize / spec.leaves_per_pod;
                prop_assert_eq!(routes.dist(a, j), Some(if same_pod { 2 } else { 4 }));
                prop_assert_eq!(routes.candidates(a, j).len(), spec.aggs_per_pod);
            }
        }
    }

    /// Fat-tree builder (including oversubscribed edges): counts match the
    /// k-ary closed forms for any even k and edge subscription, the port
    /// map is an exact disjoint cover, and every edge pair is reachable at
    /// distance 2 (intra-pod) or 4 (across pods) with all `k/2` pod aggs
    /// as candidates.
    #[test]
    fn fat_tree_builder_invariants(half in 1usize..5, hpe in 1usize..5) {
        let k = 2 * half;
        let topo = fat_tree_custom(k, hpe, 10_000_000_000, 10_000_000_000, DEFAULT_PROP);
        prop_assert_eq!(topo.num_hosts(), k * half * hpe);
        prop_assert_eq!(topo.num_switches(), k * k + half * half);
        prop_assert_eq!(topo.links().len(), 2 * (2 * k * half * half + k * half * hpe));
        assert_port_cover(&topo)?;
        for si in 0..topo.num_switches() {
            let s = SwitchId(si as u32);
            let want = match topo.switch_kind(s) {
                SwitchKind::Leaf => half + hpe,
                SwitchKind::Agg | SwitchKind::Spine => k,
            };
            prop_assert_eq!(topo.num_ports(s), want, "switch {} port width", si);
        }
        let routes = RouteTable::compute(&topo);
        for (i, &a) in topo.leaves().iter().enumerate() {
            for j in 0..topo.num_leaves() as u32 {
                if i as u32 == j { continue; }
                let same_pod = i / half == j as usize / half;
                prop_assert_eq!(routes.dist(a, j), Some(if same_pod { 2 } else { 4 }));
                prop_assert_eq!(routes.candidates(a, j).len(), half);
            }
        }
    }

    /// VL2 builder: link entries match the closed form
    /// `2 * (tors * uplinks + aggs * ints + hosts)`, the port map is an
    /// exact disjoint cover, and every ToR pair is reachable (the agg-int
    /// full mesh guarantees a 2- or 4-hop path even when ToRs are
    /// under-connected).
    #[test]
    fn vl2_builder_invariants(
        tors in 2usize..8,
        aggs in 2usize..6,
        ints in 1usize..5,
        hosts in 1usize..4,
        uplinks in 1usize..6,
    ) {
        let spec = Vl2Spec {
            tors,
            aggs,
            ints,
            hosts_per_tor: hosts,
            host_rate: 1_000_000_000,
            core_rate: 10_000_000_000,
            tor_uplinks: uplinks.min(aggs),
            prop: DEFAULT_PROP,
        };
        let topo = vl2(&spec);
        prop_assert_eq!(topo.num_hosts(), tors * hosts);
        prop_assert_eq!(topo.num_switches(), tors + aggs + ints);
        prop_assert_eq!(
            topo.links().len(),
            2 * (tors * spec.tor_uplinks + aggs * ints + tors * hosts)
        );
        assert_port_cover(&topo)?;
        let routes = RouteTable::compute(&topo);
        for (i, &a) in topo.leaves().iter().enumerate() {
            for j in 0..topo.num_leaves() as u32 {
                if i as u32 == j { continue; }
                let d = routes.dist(a, j);
                prop_assert!(
                    d == Some(2) || d == Some(4),
                    "tor {} -> {} unreachable or off-distance: {:?}", i, j, d
                );
            }
        }
    }

    /// Sketched distributions: merging shard sketches must agree with one
    /// big stream on count, the merge must be a pure function of its
    /// operands (replaying it yields bit-identical state), and every
    /// quantile of the merged sketch stays within the configured
    /// rank-error bound of the exact order statistics of the concatenated
    /// stream. Rank error is measured against the closed interval of ranks
    /// the estimate occupies, so duplicate-heavy streams (which proptest
    /// shrinks toward) are scored fairly.
    #[test]
    fn sketch_merge_matches_single_stream_within_bound(
        xs in proptest::collection::vec(0.0f64..1e6, 1..2000),
        ys in proptest::collection::vec(0.0f64..1e6, 0..2000),
    ) {
        let build = |vals: &[f64]| {
            let mut d = Distribution::sketched();
            for &v in vals { d.add(v); }
            d
        };
        let mut merged = build(&xs);
        merged.merge(&build(&ys));
        prop_assert!(!merged.is_exact());
        prop_assert_eq!(merged.count(), xs.len() + ys.len());
        let mut replay = build(&xs);
        replay.merge(&build(&ys));
        prop_assert_eq!(merged.digest(), replay.digest(), "merge replay diverged");

        let mut exact: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        exact.sort_unstable_by(f64::total_cmp);
        let n = exact.len() as f64;
        let eps = merged.rank_error_bound().expect("sketch mode");
        for q in [0.25, 0.5, 0.9, 0.99] {
            let est = merged.quantile(q);
            let lo = exact.partition_point(|&v| v < est) as f64 / n;
            let hi = exact.partition_point(|&v| v <= est) as f64 / n;
            let err = if lo <= q && q <= hi {
                0.0
            } else {
                (lo - q).abs().min((hi - q).abs())
            };
            prop_assert!(
                err <= eps + 1.0 / n,
                "q={} est={} rank=[{}, {}] err={} > bound {}", q, est, lo, hi, err, eps
            );
        }
        // Extrema stay exact in sketch mode.
        prop_assert_eq!(merged.min().to_bits(), exact[0].to_bits());
        prop_assert_eq!(merged.max().to_bits(), exact[exact.len() - 1].to_bits());
    }

    /// Structural §3.4 control plane on random heterogeneously-striped
    /// leaf-spine fabrics (every pair keeps at least one uplink, with
    /// random extra parallel links at mixed rates) plus random failures:
    /// the SymmetryEngine's group tables must match the eager
    /// enumeration exactly.
    #[test]
    fn structural_matches_eager_on_random_striping(
        spec in spec_strategy(),
        fails in 0usize..3,
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let rates = [10_000_000_000u64, 25_000_000_000, 40_000_000_000];
        let stripe: Vec<Vec<Vec<u64>>> = (0..spec.leaves)
            .map(|_| {
                (0..spec.spines)
                    .map(|_| {
                        let n = 1 + rng.below(3);
                        (0..n).map(|_| rates[rng.below(rates.len())]).collect()
                    })
                    .collect()
            })
            .collect();
        let mut topo = leaf_spine_custom(&spec, |l, s| stripe[l][s].clone());
        fail_random_uplinks(&mut topo, fails, seed)?;
        assert_structural_matches_eager(&topo)?;
    }

    /// Structural == eager on random VL2 fabrics with random failure
    /// sets, including under-connected ToRs and failures that partition
    /// a ToR from part of the fabric.
    #[test]
    fn structural_matches_eager_on_random_vl2(
        tors in 2usize..8,
        aggs in 2usize..6,
        ints in 1usize..5,
        uplinks in 1usize..6,
        fails in 0usize..4,
        seed in 0u64..1000,
    ) {
        let mut topo = vl2(&Vl2Spec {
            tors,
            aggs,
            ints,
            hosts_per_tor: 1,
            host_rate: 1_000_000_000,
            core_rate: 10_000_000_000,
            tor_uplinks: uplinks.min(aggs),
            prop: DEFAULT_PROP,
        });
        fail_random_uplinks(&mut topo, fails, seed)?;
        assert_structural_matches_eager(&topo)?;
    }

    /// Structural == eager on random three-tier Clos fabrics with random
    /// failure sets (the multi-tier case: failures below one pod must
    /// reshape group weights at switches in every other pod).
    #[test]
    fn structural_matches_eager_on_random_clos(
        spec in clos_strategy(),
        fails in 0usize..4,
        seed in 0u64..1000,
    ) {
        let mut topo = clos(&spec);
        fail_random_uplinks(&mut topo, fails, seed)?;
        assert_structural_matches_eager(&topo)?;
    }
}
