//! Cross-crate integration tests: whole simulations on every topology
//! family, with invariants that must hold regardless of scheme.

use drill::net::{LeafSpineSpec, Vl2Spec, DEFAULT_PROP};
use drill::runtime::{
    random_leaf_spine_failures, run, run_many, ExperimentConfig, Scheme, TopoSpec,
};
use drill::sim::Time;

fn small_leaf_spine() -> TopoSpec {
    TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 6,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    })
}

fn quick(topo: TopoSpec, scheme: Scheme, load: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(topo, scheme, load);
    cfg.duration = Time::from_millis(4);
    cfg.drain = Time::from_millis(500);
    cfg.warmup = Time::from_micros(200);
    cfg
}

#[test]
fn every_scheme_completes_on_leaf_spine() {
    let schemes = [
        Scheme::Ecmp,
        Scheme::Random,
        Scheme::RoundRobin,
        Scheme::PerFlowDrill,
        Scheme::drill_default(),
        Scheme::drill_no_shim(),
        Scheme::presto(),
        Scheme::Presto { shim: false },
        Scheme::Conga,
        Scheme::Wcmp,
    ];
    let cfgs: Vec<ExperimentConfig> = schemes
        .iter()
        .map(|&s| quick(small_leaf_spine(), s, 0.4))
        .collect();
    for stats in run_many(&cfgs) {
        assert!(
            stats.flows_started > 100,
            "{}: {}",
            stats.scheme,
            stats.flows_started
        );
        assert!(
            stats.completion_rate() > 0.97,
            "{}: completion {}",
            stats.scheme,
            stats.completion_rate()
        );
        assert_eq!(
            stats.blackholed, 0,
            "{}: no blackholes in a healthy fabric",
            stats.scheme
        );
        assert_eq!(stats.nic_drops, 0, "{}: no NIC drops", stats.scheme);
    }
}

#[test]
fn three_stage_topologies_work() {
    for topo in [
        TopoSpec::Vl2(Vl2Spec {
            tors: 4,
            aggs: 4,
            ints: 2,
            hosts_per_tor: 4,
            host_rate: 1_000_000_000,
            core_rate: 10_000_000_000,
            tor_uplinks: 2,
            prop: DEFAULT_PROP,
        }),
        TopoSpec::FatTree {
            k: 4,
            rate: 1_000_000_000,
        },
    ] {
        for scheme in [
            Scheme::Ecmp,
            Scheme::drill_default(),
            Scheme::presto(),
            Scheme::Conga,
        ] {
            let stats = run(&quick(topo.clone(), scheme, 0.3));
            assert!(
                stats.flows_started > 20,
                "{}: {}",
                stats.scheme,
                stats.flows_started
            );
            assert!(
                stats.completion_rate() > 0.95,
                "{}: completion {} on {:?}",
                stats.scheme,
                stats.completion_rate(),
                topo
            );
        }
    }
}

#[test]
fn determinism_across_identical_runs() {
    for scheme in [Scheme::drill_default(), Scheme::Conga, Scheme::presto()] {
        let a = run(&quick(small_leaf_spine(), scheme, 0.5));
        let b = run(&quick(small_leaf_spine(), scheme, 0.5));
        assert_eq!(a.events, b.events, "{}", scheme.name());
        assert_eq!(a.flows_started, b.flows_started);
        assert_eq!(a.flows_completed, b.flows_completed);
        assert_eq!(a.retransmissions, b.retransmissions);
        assert_eq!(a.mean_fct_ms(), b.mean_fct_ms());
    }
}

#[test]
fn packet_conservation_no_drops_low_load() {
    // At 10% load with deep buffers nothing should be lost anywhere, and
    // every measured flow must complete.
    let mut cfg = quick(small_leaf_spine(), Scheme::drill_default(), 0.1);
    cfg.queue_limit_bytes = 50_000_000;
    let stats = run(&cfg);
    assert_eq!(stats.hops.drops.iter().sum::<u64>(), 0, "no drops anywhere");
    assert_eq!(stats.retransmissions, 0);
    assert_eq!(stats.timeouts, 0);
    assert!((stats.completion_rate() - 1.0).abs() < 1e-9);
}

#[test]
fn pre_applied_failure_reroutes_cleanly() {
    let topo = small_leaf_spine();
    let failures = random_leaf_spine_failures(&topo.build(), 2, 3);
    for scheme in [
        Scheme::Ecmp,
        Scheme::drill_default(),
        Scheme::Wcmp,
        Scheme::presto(),
    ] {
        let mut cfg = quick(topo.clone(), scheme, 0.3);
        cfg.failed_links = failures.clone();
        let stats = run(&cfg);
        assert!(
            stats.completion_rate() > 0.95,
            "{}: completion {}",
            stats.scheme,
            stats.completion_rate()
        );
        assert_eq!(
            stats.blackholed, 0,
            "{}: reconverged routing has no blackholes",
            stats.scheme
        );
    }
}

#[test]
fn mid_run_failure_with_ospf_delay_recovers() {
    let topo = small_leaf_spine();
    let failures = random_leaf_spine_failures(&topo.build(), 1, 5);
    let mut cfg = quick(topo, Scheme::drill_default(), 0.3);
    cfg.duration = Time::from_millis(8);
    cfg.failed_links = failures;
    cfg.fail_at = Some(Time::from_millis(2));
    cfg.ospf_delay = Time::from_millis(1);
    let stats = run(&cfg);
    // Packets in flight on the dying link are lost (blackholes/drops may
    // occur in the outage window), but TCP recovers everything that
    // matters: the vast majority of flows still complete.
    assert!(
        stats.completion_rate() > 0.9,
        "completion {}",
        stats.completion_rate()
    );
}

#[test]
fn load_sweep_is_monotone_in_flow_count() {
    let mut last = 0;
    for load in [0.1, 0.3, 0.6] {
        let stats = run(&quick(small_leaf_spine(), Scheme::Ecmp, load));
        assert!(stats.flows_started > last, "more load, more flows");
        last = stats.flows_started;
    }
}

#[test]
fn burstier_arrivals_increase_queueing() {
    // Averaged over seeds: lognormal gaps concentrate arrivals, so the
    // worst observed queue imbalance grows. (A single short window can go
    // either way — the heavy gap distribution also produces quiet runs.)
    // Core at host rate (10G) so host bursts actually queue upstream.
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 6,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mk = |sigma: f64, seed: u64| {
        let mut cfg = quick(topo.clone(), Scheme::Random, 0.6);
        cfg.duration = Time::from_millis(15);
        cfg.seed = seed;
        cfg.workload.burst_sigma = sigma;
        cfg.sample_queues = true;
        cfg.raw_packet_mode = true;
        cfg.queue_limit_bytes = 20_000_000;
        run(&cfg)
    };
    let avg_max =
        |sigma: f64| -> f64 { (1..=3).map(|s| mk(sigma, s).queue_stdv.max()).sum::<f64>() / 3.0 };
    let poisson = avg_max(0.0);
    let bursty = avg_max(2.0);
    assert!(bursty > poisson, "bursty {bursty} vs poisson {poisson}");
}

#[test]
fn engines_do_not_change_packet_conservation() {
    for engines in [1usize, 4, 16] {
        let mut cfg = quick(small_leaf_spine(), Scheme::drill_default(), 0.4);
        cfg.engines = engines;
        let stats = run(&cfg);
        assert!(stats.completion_rate() > 0.97, "engines {engines}");
    }
}

#[test]
fn static_persistent_flows_sustain_goodput() {
    let mut cfg = quick(small_leaf_spine(), Scheme::drill_default(), 0.0);
    cfg.duration = Time::from_millis(20);
    cfg.drain = Time::from_millis(5);
    // One persistent flow between two hosts on different leaves.
    cfg.static_flows = vec![(0, 7, u64::MAX)];
    let stats = run(&cfg);
    assert_eq!(stats.elephant_gbps.count(), 1);
    let gbps = stats.elephant_gbps.mean();
    // A lone flow should reach most of the 10G host line rate.
    assert!(gbps > 8.0, "persistent flow goodput {gbps}");
}
