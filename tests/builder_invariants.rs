//! Std-only randomized mirrors of the builder and sketch properties in
//! `tests/proptest_invariants.rs`.
//!
//! The proptest suite needs a restored dev-dependency (see the `proptest`
//! feature note in the root Cargo.toml), so these seeded sweeps keep the
//! same invariants in the always-compiled tier-1 run: topology builders
//! must match their closed-form counts, expose port maps that exactly
//! cover the link table, and wire every leaf pair reachable; sketched
//! distributions must merge deterministically and stay within the
//! configured rank-error bound of exact order statistics.

use drill::net::{
    clos, fat_tree_custom, vl2, ClosSpec, HostId, NodeRef, RouteTable, SwitchId, SwitchKind,
    Topology, Vl2Spec, DEFAULT_PROP,
};
use drill::sim::SimRng;
use drill::stats::Distribution;

/// The port maps are an exact disjoint cover of the directed link table:
/// every switch port and every host uplink resolves to a link whose
/// `src`/`src_port` point back at it, and together those links account for
/// every entry in `Topology::links` exactly once.
fn assert_port_cover(topo: &Topology) {
    let mut ids: Vec<usize> = Vec::with_capacity(topo.links().len());
    for si in 0..topo.num_switches() {
        let s = SwitchId(si as u32);
        assert_eq!(topo.egress_links(s).len(), topo.num_ports(s));
        for (port, &lid) in topo.egress_links(s).iter().enumerate() {
            let l = topo.link(lid);
            assert_eq!(l.src, NodeRef::Switch(s));
            assert_eq!(l.src_port as usize, port);
            ids.push(lid.index());
        }
    }
    for h in 0..topo.num_hosts() {
        let l = topo.host_uplink(HostId(h as u32));
        assert_eq!(l.src, NodeRef::Host(HostId(h as u32)));
        ids.push(l.id.index());
    }
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..topo.links().len()).collect::<Vec<_>>(),
        "port maps must cover the link table exactly once"
    );
}

#[test]
fn clos_invariants_hold_on_seeded_random_specs() {
    let mut rng = SimRng::seed_from(0xC105);
    for round in 0..24 {
        let app = 1 + rng.below(3);
        let spec = ClosSpec {
            pods: 2 + rng.below(3),
            leaves_per_pod: 1 + rng.below(3),
            aggs_per_pod: app,
            cores: app * (1 + rng.below(3)),
            hosts_per_leaf: 1 + rng.below(3),
            host_rate: 10_000_000_000,
            leaf_agg_rate: 40_000_000_000,
            agg_core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        };
        let topo = clos(&spec);
        assert_eq!(topo.num_hosts(), spec.num_hosts(), "round {round}");
        assert_eq!(topo.num_switches(), spec.num_switches(), "round {round}");
        assert_eq!(
            topo.links().len(),
            spec.expected_link_entries(),
            "round {round}: {spec:?}"
        );
        assert_port_cover(&topo);
        for si in 0..topo.num_switches() {
            let s = SwitchId(si as u32);
            let want = match topo.switch_kind(s) {
                SwitchKind::Leaf => spec.aggs_per_pod + spec.hosts_per_leaf,
                SwitchKind::Agg => spec.leaves_per_pod + spec.core_group(),
                SwitchKind::Spine => spec.pods,
            };
            assert_eq!(topo.num_ports(s), want, "round {round}: switch {si}");
        }
        let routes = RouteTable::compute(&topo);
        for (i, &a) in topo.leaves().iter().enumerate() {
            for j in 0..topo.num_leaves() as u32 {
                if i as u32 == j {
                    continue;
                }
                let same_pod = i / spec.leaves_per_pod == j as usize / spec.leaves_per_pod;
                assert_eq!(routes.dist(a, j), Some(if same_pod { 2 } else { 4 }));
                assert_eq!(routes.candidates(a, j).len(), spec.aggs_per_pod);
            }
        }
    }
}

#[test]
fn fat_tree_invariants_hold_across_arity_and_subscription() {
    for half in 1usize..=4 {
        for hpe in 1usize..=4 {
            let k = 2 * half;
            let topo = fat_tree_custom(k, hpe, 10_000_000_000, 10_000_000_000, DEFAULT_PROP);
            assert_eq!(topo.num_hosts(), k * half * hpe);
            assert_eq!(topo.num_switches(), k * k + half * half);
            assert_eq!(
                topo.links().len(),
                2 * (2 * k * half * half + k * half * hpe)
            );
            assert_port_cover(&topo);
            for si in 0..topo.num_switches() {
                let s = SwitchId(si as u32);
                let want = match topo.switch_kind(s) {
                    SwitchKind::Leaf => half + hpe,
                    SwitchKind::Agg | SwitchKind::Spine => k,
                };
                assert_eq!(topo.num_ports(s), want, "k={k} hpe={hpe} switch {si}");
            }
            let routes = RouteTable::compute(&topo);
            for (i, &a) in topo.leaves().iter().enumerate() {
                for j in 0..topo.num_leaves() as u32 {
                    if i as u32 == j {
                        continue;
                    }
                    let same_pod = i / half == j as usize / half;
                    assert_eq!(routes.dist(a, j), Some(if same_pod { 2 } else { 4 }));
                    assert_eq!(routes.candidates(a, j).len(), half);
                }
            }
        }
    }
}

#[test]
fn vl2_invariants_hold_on_seeded_random_specs() {
    let mut rng = SimRng::seed_from(0x512);
    for round in 0..24 {
        let aggs = 2 + rng.below(4);
        let spec = Vl2Spec {
            tors: 2 + rng.below(6),
            aggs,
            ints: 1 + rng.below(4),
            hosts_per_tor: 1 + rng.below(3),
            host_rate: 1_000_000_000,
            core_rate: 10_000_000_000,
            tor_uplinks: (1 + rng.below(5)).min(aggs),
            prop: DEFAULT_PROP,
        };
        let topo = vl2(&spec);
        assert_eq!(topo.num_hosts(), spec.tors * spec.hosts_per_tor);
        assert_eq!(topo.num_switches(), spec.tors + spec.aggs + spec.ints);
        assert_eq!(
            topo.links().len(),
            2 * (spec.tors * spec.tor_uplinks
                + spec.aggs * spec.ints
                + spec.tors * spec.hosts_per_tor),
            "round {round}: {spec:?}"
        );
        assert_port_cover(&topo);
        let routes = RouteTable::compute(&topo);
        for (i, &a) in topo.leaves().iter().enumerate() {
            for j in 0..topo.num_leaves() as u32 {
                if i as u32 == j {
                    continue;
                }
                let d = routes.dist(a, j);
                assert!(
                    d == Some(2) || d == Some(4),
                    "round {round}: tor {i} -> {j} unreachable or off-distance: {d:?}"
                );
            }
        }
    }
}

/// Merging shard sketches agrees with one big stream on count, the merge
/// replays bit-identically (pure function of its operands), and every
/// quantile of the merged sketch stays within the configured rank-error
/// bound of the exact order statistics. Rank error is scored against the
/// closed interval of ranks the estimate occupies so duplicate values
/// cannot inflate it.
#[test]
fn sketch_merge_matches_single_stream_within_bound() {
    let mut rng = SimRng::seed_from(0x5EED);
    for round in 0..12 {
        let nx = 1 + rng.below(3000);
        let ny = rng.below(3000);
        let draw = |rng: &mut SimRng| -> f64 {
            let u = (rng.below(u32::MAX as usize) as f64 + 1.0) / (u32::MAX as f64 + 1.0);
            // Heavy tail on even rounds, duplicate-heavy grid on odd ones.
            if round % 2 == 0 {
                1.0 / u.powf(0.5)
            } else {
                (u * 8.0).floor()
            }
        };
        let xs: Vec<f64> = (0..nx).map(|_| draw(&mut rng)).collect();
        let ys: Vec<f64> = (0..ny).map(|_| draw(&mut rng)).collect();
        let build = |vals: &[f64]| {
            let mut d = Distribution::sketched();
            for &v in vals {
                d.add(v);
            }
            d
        };
        let mut merged = build(&xs);
        merged.merge(&build(&ys));
        assert!(!merged.is_exact());
        assert_eq!(merged.count(), nx + ny);
        let mut replay = build(&xs);
        replay.merge(&build(&ys));
        assert_eq!(
            merged.digest(),
            replay.digest(),
            "round {round}: merge replay diverged"
        );

        let mut exact: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        exact.sort_unstable_by(f64::total_cmp);
        let n = exact.len() as f64;
        let eps = merged.rank_error_bound().expect("sketch mode");
        for q in [0.25, 0.5, 0.9, 0.99] {
            let est = merged.quantile(q);
            let lo = exact.partition_point(|&v| v < est) as f64 / n;
            let hi = exact.partition_point(|&v| v <= est) as f64 / n;
            let err = if lo <= q && q <= hi {
                0.0
            } else {
                (lo - q).abs().min((hi - q).abs())
            };
            assert!(
                err <= eps + 1.0 / n,
                "round {round}: q={q} est={est} rank=[{lo}, {hi}] err={err} > bound {eps}"
            );
        }
        assert_eq!(merged.min().to_bits(), exact[0].to_bits());
        assert_eq!(merged.max().to_bits(), exact[exact.len() - 1].to_bits());
    }
}
