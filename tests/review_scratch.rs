use drill::core::{install_symmetric_groups_eager, SymmetryEngine};
use drill::net::{vl2, PortGroup, RouteTable, SwitchId, Topology, Vl2Spec, DEFAULT_PROP};
use drill::sim::SimRng;

fn group_table(topo: &Topology, routes: &RouteTable) -> Vec<(u32, u32, Vec<PortGroup>)> {
    let mut out = Vec::new();
    for si in 0..topo.num_switches() as u32 {
        for d in 0..topo.num_leaves() as u32 {
            let g = routes.groups(SwitchId(si), d);
            if !g.is_empty() {
                out.push((si, d, g.to_vec()));
            }
        }
    }
    out
}

#[test]
fn minimize_seed_21() {
    let seed = 21u64;
    let mut rng = SimRng::seed_from(seed);
    let tors = 3 + rng.below(5);
    let aggs = 2 + rng.below(4);
    let ints = 1 + rng.below(4);
    let spec = Vl2Spec {
        tors,
        aggs,
        ints,
        hosts_per_tor: 1,
        host_rate: 1_000_000_000,
        core_rate: 10_000_000_000,
        tor_uplinks: (1 + rng.below(3)).min(aggs),
        prop: DEFAULT_PROP,
    };
    eprintln!("spec: {spec:?}");
    let mut topo = vl2(&spec);
    let n_sw = topo.num_switches();
    let nfail = rng.below(6);
    let mut applied = Vec::new();
    for _ in 0..nfail {
        let a = rng.below(n_sw) as u32;
        let b = rng.below(n_sw) as u32;
        if topo.fail_switch_link(SwitchId(a), SwitchId(b), 0) {
            applied.push((a, b));
        }
    }
    eprintln!("failed links: {applied:?}");
    let mut er = RouteTable::compute(&topo);
    install_symmetric_groups_eager(&topo, &mut er);
    let mut sr = RouteTable::compute(&topo);
    SymmetryEngine::new().install(&topo, &mut sr);
    let ge = group_table(&topo, &er);
    let gs = group_table(&topo, &sr);
    for si in 0..topo.num_switches() as u32 {
        for d in 0..topo.num_leaves() as u32 {
            let a = er.groups(SwitchId(si), d);
            let b = sr.groups(SwitchId(si), d);
            if a != b {
                eprintln!("switch {si} dst {d}:\n  eager:      {a:?}\n  structural: {b:?}");
            }
        }
    }
    assert_eq!(ge, gs);
}
