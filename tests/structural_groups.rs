//! Differential golden for the structural §3.4 control plane: on every
//! topology family the simulator can build — leaf-spine, heterogeneous
//! custom leaf-spine, VL2, fat-tree, oversubscribed fat-tree, three-tier
//! Clos — and under seeded random failure sets, the [`SymmetryEngine`]
//! must install group tables bit-identical to the eager per-pair
//! enumeration it replaced, while upholding the `GroupingReport`
//! invariants (classes never exceed entries, reuse is exactly the
//! difference, the structural walk never enumerates more paths than the
//! eager one).
//!
//! `scripts/ci.sh` runs this suite under `DRILL_SHARDS=1/2` and both
//! event-queue builds: the control plane is pure (topology, routes) →
//! groups, so nothing downstream may perturb it.

use drill::core::{install_symmetric_groups_eager, SymmetryEngine};
use drill::net::{
    clos, fat_tree, fat_tree_custom, leaf_spine, leaf_spine_custom, vl2, ClosSpec, LeafSpineSpec,
    PortGroup, RouteTable, SwitchId, Topology, Vl2Spec, DEFAULT_PROP,
};
use drill::runtime::random_leaf_spine_failures;
use drill::sim::Time;

fn ls_spec(spines: usize, leaves: usize) -> LeafSpineSpec {
    LeafSpineSpec {
        spines,
        leaves,
        hosts_per_leaf: 2,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    }
}

/// Every installed group table as one comparable value.
fn group_table(topo: &Topology, routes: &RouteTable) -> Vec<(u32, u32, Vec<PortGroup>)> {
    let mut out = Vec::new();
    for si in 0..topo.num_switches() as u32 {
        for d in 0..topo.num_leaves() as u32 {
            let g = routes.groups(SwitchId(si), d);
            if !g.is_empty() {
                out.push((si, d, g.to_vec()));
            }
        }
    }
    out
}

/// Fail `n` seeded random leaf uplinks, then assert the structural
/// engine reproduces the eager group tables bit-for-bit and its report
/// holds the structural invariants.
fn check(label: &str, mut topo: Topology, n_failures: usize, seed: u64) {
    for &(a, b) in &random_leaf_spine_failures(&topo, n_failures, seed) {
        let ok = topo.fail_switch_link(SwitchId(a), SwitchId(b), 0)
            || topo.fail_switch_link(SwitchId(b), SwitchId(a), 0);
        assert!(ok, "{label}: pair ({a},{b}) matches no live link");
    }
    let mut eager_routes = RouteTable::compute(&topo);
    let eager = install_symmetric_groups_eager(&topo, &mut eager_routes);
    let mut structural_routes = RouteTable::compute(&topo);
    let structural = SymmetryEngine::new().install(&topo, &mut structural_routes);
    assert_eq!(
        group_table(&topo, &eager_routes),
        group_table(&topo, &structural_routes),
        "{label} (failures={n_failures}, seed={seed:#x}): group tables diverged"
    );
    assert_eq!(eager.entries, structural.entries, "{label}: entry count");
    assert_eq!(
        eager.asymmetric_entries, structural.asymmetric_entries,
        "{label}: asymmetric entries"
    );
    assert_eq!(
        eager.max_components, structural.max_components,
        "{label}: max components"
    );
    assert!(
        structural.classes <= structural.entries,
        "{label}: more classes than entries"
    );
    assert_eq!(
        structural.entries_reused,
        structural.entries - structural.classes,
        "{label}: reuse must be exactly entries - classes"
    );
    assert!(
        structural.paths_enumerated <= eager.paths_enumerated,
        "{label}: structural walked {} paths, eager only {}",
        structural.paths_enumerated,
        eager.paths_enumerated
    );
}

/// (failure count, seed) ladder shared by every family: the pristine
/// fabric, single failures under two seeds, and denser sets.
const FAILURE_SETS: &[(usize, u64)] = &[(0, 0x1), (1, 0xA11CE), (1, 0xB0B), (2, 0x5EED), (4, 0x7)];

#[test]
fn leaf_spine_matches_eager() {
    for &(n, seed) in FAILURE_SETS {
        check("leaf_spine", leaf_spine(&ls_spec(4, 6)), n, seed);
    }
}

#[test]
fn leaf_spine_custom_heterogeneous_matches_eager() {
    // Figure-13-style heterogeneous striping: parallel 10G links to some
    // spines, single 40G trunks to others — asymmetric before any fault.
    for &(n, seed) in FAILURE_SETS {
        let spec = ls_spec(4, 6);
        let topo = leaf_spine_custom(&spec, |l, s| {
            if (l + s) % 2 == 0 {
                vec![10_000_000_000; 2]
            } else {
                vec![40_000_000_000]
            }
        });
        check("leaf_spine_custom", topo, n, seed);
    }
}

#[test]
fn vl2_matches_eager() {
    let spec = Vl2Spec {
        tors: 8,
        aggs: 4,
        ints: 3,
        hosts_per_tor: 2,
        host_rate: 1_000_000_000,
        core_rate: 10_000_000_000,
        tor_uplinks: 2,
        prop: DEFAULT_PROP,
    };
    for &(n, seed) in FAILURE_SETS {
        check("vl2", vl2(&spec), n, seed);
    }
}

#[test]
fn fat_tree_matches_eager() {
    for &(n, seed) in FAILURE_SETS {
        check(
            "fat_tree",
            fat_tree(4, 10_000_000_000, DEFAULT_PROP),
            n,
            seed,
        );
    }
    // k=6 once: three pods exercise the canonical-renumbering sharing
    // across pods at a size where eager is still cheap.
    check(
        "fat_tree_k6",
        fat_tree(6, 10_000_000_000, DEFAULT_PROP),
        2,
        0xFEED,
    );
}

#[test]
fn fat_tree_custom_matches_eager() {
    // 2:1 oversubscribed edge (hosts_per_edge = k), the scalebench shape.
    for &(n, seed) in FAILURE_SETS {
        let topo = fat_tree_custom(4, 4, 10_000_000_000, 10_000_000_000, DEFAULT_PROP);
        check("fat_tree_custom", topo, n, seed);
    }
}

#[test]
fn clos_matches_eager() {
    for &(n, seed) in FAILURE_SETS {
        check("clos", clos(&ClosSpec::smoke()), n, seed);
    }
}

#[test]
fn clos_heterogeneous_rates_match_eager() {
    // Mixed tier rates put `CapFactor::Ratio` labels on every level.
    let spec = ClosSpec {
        pods: 3,
        leaves_per_pod: 2,
        aggs_per_pod: 2,
        cores: 4,
        hosts_per_leaf: 2,
        host_rate: 10_000_000_000,
        leaf_agg_rate: 25_000_000_000,
        agg_core_rate: 40_000_000_000,
        prop: Time::from_nanos(500),
    };
    for &(n, seed) in &[(0usize, 0x1u64), (2, 0xD00D), (3, 0x33)] {
        check("clos_hetero", clos(&spec), n, seed);
    }
}
