//! Black-box auditor tests: the invariant watchdogs must stay silent on
//! every healthy figure scenario (positive control), trip with the right
//! typed [`AnomalyKind`] on deliberately broken runs (negative control),
//! never perturb a single stat, and produce a dump bundle that
//! rewind-replay can consume hands-free.
//!
//! CI runs this suite across `DRILL_SHARDS=1/2/8` and both queue builds;
//! nothing here may depend on either.

use std::path::PathBuf;

use drill::audit::{AnomalyKind, AnomalyReport};
use drill::faults::{FaultSchedule, SabotageKind, SabotageSpec};
use drill::net::{LeafSpineSpec, Vl2Spec, DEFAULT_PROP};
use drill::runtime::{
    random_leaf_spine_failures, run, run_audited, AuditSpec, ExperimentConfig, RunStats, Scheme,
    Snapshot, SyntheticMode, TelemetrySpec, TopoSpec, World,
};
use drill::sim::codec::codec_error;
use drill::sim::Time;
use drill::snapshot::SnapshotBuilder;
use drill::telemetry::{FlightRecorder, QueueSampler};
use drill::workload::{IncastSpec, TrafficPattern};

fn small_leaf_spine() -> TopoSpec {
    TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 3,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    })
}

/// A quick-scale config with the auditor's boundary cadence tightened so
/// even short runs cross many watchdog evaluations. `stuck_after` stays
/// at its 500 ms default: sim time never exceeds duration + drain
/// (~102 ms here), so only a genuinely wedged flow could ever trip it.
fn audited(topo: TopoSpec, scheme: Scheme, load: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(topo, scheme, load);
    cfg.duration = Time::from_millis(2);
    cfg.drain = Time::from_millis(100);
    cfg.warmup = Time::from_micros(200);
    cfg.audit = Some(AuditSpec {
        every_events: 2_000,
        ..AuditSpec::default()
    });
    cfg
}

/// The 13 figure/table scenarios of the paper's evaluation, shrunk to
/// test scale but keeping each one's distinctive knobs (raw packet
/// trains, VL2/hetero topologies, failures, incast, synthetic patterns,
/// lagged-commit ablation).
fn figure_scenarios() -> Vec<(&'static str, ExperimentConfig)> {
    let raw = |mut cfg: ExperimentConfig| {
        cfg.raw_packet_mode = true;
        cfg.sample_queues = true;
        cfg.queue_limit_bytes = 20_000_000;
        cfg.workload.burst_sigma = 2.0;
        cfg
    };
    let mut out: Vec<(&'static str, ExperimentConfig)> = vec![
        (
            "fig2_queue_stdv",
            raw(audited(small_leaf_spine(), Scheme::drill_no_shim(), 0.8)),
        ),
        (
            "fig3_dm_variants",
            raw(audited(
                small_leaf_spine(),
                Scheme::Drill {
                    d: 3,
                    m: 2,
                    shim: false,
                },
                0.8,
            )),
        ),
        (
            "fig6_fct_drill",
            audited(small_leaf_spine(), Scheme::drill_default(), 0.5),
        ),
        (
            "fig7_fct_conga",
            audited(small_leaf_spine(), Scheme::Conga, 0.7),
        ),
        (
            "fig8_fct_presto",
            audited(small_leaf_spine(), Scheme::presto(), 0.5),
        ),
        (
            "fig9_fct_ecmp_high_load",
            audited(small_leaf_spine(), Scheme::Ecmp, 0.8),
        ),
        (
            "fig10_vl2",
            audited(
                TopoSpec::Vl2(Vl2Spec {
                    tors: 4,
                    aggs: 4,
                    ints: 2,
                    hosts_per_tor: 3,
                    host_rate: 1_000_000_000,
                    core_rate: 10_000_000_000,
                    tor_uplinks: 2,
                    prop: DEFAULT_PROP,
                }),
                Scheme::drill_default(),
                0.4,
            ),
        ),
        (
            "fig11_reordering",
            audited(small_leaf_spine(), Scheme::drill_no_shim(), 0.8),
        ),
        (
            "fig13_hetero_striped",
            audited(
                TopoSpec::HeteroStriped {
                    base: LeafSpineSpec {
                        spines: 4,
                        leaves: 4,
                        hosts_per_leaf: 3,
                        host_rate: 10_000_000_000,
                        core_rate: 40_000_000_000,
                        prop: DEFAULT_PROP,
                    },
                    extra_links: 2,
                },
                Scheme::Wcmp,
                0.5,
            ),
        ),
    ];

    // Fig. 12: FCT under a mid-run link failure with delayed OSPF
    // reconvergence.
    let mut fail = audited(small_leaf_spine(), Scheme::drill_default(), 0.7);
    fail.failed_links = random_leaf_spine_failures(&fail.topo.build(), 1, 0xF16);
    fail.fail_at = Some(Time::from_millis(1));
    fail.ospf_delay = Time::from_millis(1);
    out.push(("fig12_failure", fail));

    // Fig. 14: many-to-one incast over background load.
    let mut incast = audited(small_leaf_spine(), Scheme::drill_default(), 0.3);
    incast.workload.incast = Some(IncastSpec::default());
    out.push(("fig14_incast", incast));

    // Ablation: the lagged-commit queue-occupancy model.
    let mut lagged = raw(audited(small_leaf_spine(), Scheme::drill_no_shim(), 0.8));
    lagged.model_commit = true;
    out.push(("ablation_lagged_commit", lagged));

    // Table 1: synthetic elephant/mice workload on a fixed pattern.
    let mut synth = audited(small_leaf_spine(), Scheme::drill_default(), 0.0);
    synth.synthetic = Some(SyntheticMode::default());
    synth.workload.pattern = TrafficPattern::Stride(1);
    out.push(("table1_synthetic_stride", synth));

    out
}

/// The pinned chaos schedule from the determinism goldens: two link
/// flaps, a capacity degradation, and a switch crash + recovery.
fn chaos_schedule(topo: &TopoSpec) -> FaultSchedule {
    let pairs = random_leaf_spine_failures(&topo.build(), 4, 0xC405);
    let mut s = FaultSchedule::new(Time::from_micros(300));
    s.link_flap(
        pairs[0].0,
        pairs[0].1,
        Time::from_micros(500),
        Time::from_micros(900),
    );
    s.link_flap(
        pairs[1].0,
        pairs[1].1,
        Time::from_micros(1100),
        Time::from_micros(1600),
    );
    s.degrade_window(
        pairs[2].0,
        pairs[2].1,
        1,
        4,
        Time::from_micros(700),
        Time::from_micros(1400),
    );
    s.switch_outage(pairs[3].1, Time::from_micros(1800), Time::from_micros(2300));
    s
}

/// Positive control: every figure scenario of the evaluation runs with
/// all watchdogs armed and trips nothing. An empty report list is the
/// auditor's verdict that packet conservation, flow progress, queue
/// ceilings, clock monotonicity and shard handoff fingerprints held at
/// every boundary.
#[test]
fn figure_scenarios_trip_no_watchdogs() {
    for (name, cfg) in figure_scenarios() {
        let (stats, reports) = run_audited(&cfg);
        assert!(stats.events > 2_000, "{name}: too few events to audit");
        assert!(
            reports.is_empty(),
            "{name}: tripped {} watchdog(s): {}",
            reports.len(),
            reports
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert_eq!(stats.anomalies, 0, "{name}: RunStats disagrees");
    }
}

/// Positive control under chaos: the pinned fault schedule (flaps,
/// degradation, switch crash/recovery) exercises blackholes, fault drops
/// and routing rebuilds — all of which release arena slots through paths
/// the conservation watchdog must account for.
#[test]
fn chaos_schedule_trips_no_watchdogs() {
    let mut cfg = audited(small_leaf_spine(), Scheme::drill_default(), 0.4);
    cfg.faults = Some(chaos_schedule(&cfg.topo));
    let (stats, reports) = run_audited(&cfg);
    assert!(stats.fault_events >= 8, "schedule did not fully fire");
    assert!(
        reports.is_empty(),
        "chaos run tripped: {}",
        reports
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// The observation fingerprint a paper figure reads; the auditor must
/// leave every slot bit-identical.
fn fingerprint(st: &mut RunStats) -> Vec<u64> {
    vec![
        st.flows_started,
        st.flows_completed,
        st.events,
        st.data_pkts_delivered,
        st.retransmissions,
        st.timeouts,
        st.blackholed,
        st.nic_drops,
        st.sim_end.as_nanos(),
        st.fct_ms.count() as u64,
        st.mean_fct_ms().to_bits(),
        st.fct_ms.quantile(0.99).to_bits(),
        st.dupacks.total(),
        st.reorders.total(),
    ]
}

/// Audits observe, never steer: the full stats fingerprint of an audited
/// run — with telemetry riding along too — is bit-identical to the plain
/// run's. (`RunStats::anomalies` is deliberately outside the fingerprint;
/// it is the one field only the auditor writes.)
#[test]
fn auditor_is_invisible_to_the_simulation() {
    let plain_cfg = {
        let mut c = audited(small_leaf_spine(), Scheme::drill_default(), 0.6);
        c.audit = None;
        c
    };
    let mut plain = run(&plain_cfg);

    let audited_cfg = audited(small_leaf_spine(), Scheme::drill_default(), 0.6);
    let mut auditd = run(&audited_cfg);
    assert_eq!(
        fingerprint(&mut plain),
        fingerprint(&mut auditd),
        "auditor perturbed the simulation"
    );

    let mut both_cfg = audited(small_leaf_spine(), Scheme::drill_default(), 0.6);
    both_cfg.telemetry = Some(TelemetrySpec::default());
    let mut both = run(&both_cfg);
    assert_eq!(
        fingerprint(&mut plain),
        fingerprint(&mut both),
        "auditor + telemetry perturbed the simulation"
    );
}

/// A throwaway dump directory under the target-adjacent temp root.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "drill-audit-{tag}-{}-{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").len()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Negative control: a runtime that leaks an arena handle trips
/// `PacketConservation` deterministically — same boundary, same counts,
/// run after run — and dumps the ring + faulted snapshot + meta bundle.
#[test]
fn leaked_handle_trips_packet_conservation() {
    let dir = scratch_dir("leak");
    let mk = |dump: Option<PathBuf>| {
        let mut cfg = audited(small_leaf_spine(), Scheme::drill_default(), 0.5);
        cfg.audit = Some(AuditSpec {
            every_events: 2_000,
            dump_dir: dump,
            ..AuditSpec::default()
        });
        cfg.sabotage = Some(SabotageSpec {
            at: Time::from_micros(500),
            kind: SabotageKind::LeakPacket,
        });
        cfg
    };

    let (stats, reports) = run_audited(&mk(Some(dir.clone())));
    assert!(!reports.is_empty(), "leak went unnoticed");
    assert_eq!(stats.anomalies, reports.len() as u64);
    let first = &reports[0];
    match first.kind {
        AnomalyKind::PacketConservation { live, holders } => {
            assert_eq!(live, holders + 1, "exactly one leaked handle");
        }
        ref k => panic!("expected PacketConservation, got {k:?}"),
    }
    assert!(
        first.at >= Time::from_micros(500),
        "tripped before sabotage"
    );

    // The dump bundle: anomaly.meta + faulted instant + ring of clean
    // pre-anomaly snapshots.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(names.iter().any(|n| n == "anomaly.meta"), "{names:?}");
    assert!(names.iter().any(|n| n == "faulted.drillsnap"), "{names:?}");
    assert!(
        names.iter().any(|n| n.starts_with("ring-")),
        "no ring snapshots dumped: {names:?}"
    );
    let meta = std::fs::read_to_string(dir.join("anomaly.meta")).unwrap();
    assert!(meta.contains("kind=packet_conservation"), "{meta}");

    // Deterministic: a second run (no dump dir) reports the identical
    // first trip.
    let (_, again) = run_audited(&mk(None));
    assert!(!again.is_empty());
    assert_eq!(again[0].at, first.at);
    assert_eq!(again[0].events, first.events);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Negative control: blackholing one flow's data packets (every ACK
/// starves) trips `StuckFlow` for exactly that flow.
#[test]
fn blackholed_flow_trips_stuck_flow() {
    let mut cfg = audited(small_leaf_spine(), Scheme::drill_default(), 0.4);
    cfg.drain = Time::from_millis(30);
    cfg.audit = Some(AuditSpec {
        every_events: 2_000,
        stuck_after: Time::from_millis(1),
        ..AuditSpec::default()
    });
    cfg.sabotage = Some(SabotageSpec {
        at: Time::from_nanos(0),
        kind: SabotageKind::BlackholeFlow { flow: 0 },
    });
    let (_, reports) = run_audited(&cfg);
    assert!(
        reports
            .iter()
            .any(|r| matches!(r.kind, AnomalyKind::StuckFlow { flow: 0, .. })),
        "no StuckFlow for flow 0: {reports:?}"
    );
}

/// A bit-flipped snapshot never decodes: the FNV-1a trailer catches the
/// flip, and the decode error maps onto a typed `CorruptSnapshot` report.
#[test]
fn bit_flipped_snapshot_maps_to_corrupt_snapshot() {
    let cfg = {
        let mut c = audited(small_leaf_spine(), Scheme::drill_default(), 0.4);
        c.audit = None;
        c
    };
    let mut w = World::new(&cfg);
    w.run_to(Time::from_micros(800));
    let mut bytes = w.snapshot().to_bytes();

    // Flip one bit somewhere in the body (past the magic, before the
    // checksum trailer).
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    let err = match Snapshot::from_bytes(&bytes) {
        Err(e) => e,
        Ok(snap) => World::restore(&snap, &cfg)
            .err()
            .expect("corrupt snapshot restored cleanly"),
    };
    let report = AnomalyReport::from_decode_error(&err, Time::from_micros(800), 1234);
    match &report.kind {
        AnomalyKind::CorruptSnapshot { detail } => {
            assert!(!detail.is_empty());
        }
        k => panic!("expected CorruptSnapshot, got {k:?}"),
    }
    assert_eq!(report.kind.name(), "corrupt_snapshot");
    assert!(report.meta_lines().iter().any(|l| l.starts_with("kind=")));
}

/// The typed codec error carries the section tag and byte offset through
/// the `io::Error` wrapper: a structurally valid `DRILLSNAP` container
/// whose META section is truncated mid-varint surfaces a downcastable
/// `CodecError` naming section 1.
#[test]
fn truncated_section_carries_typed_codec_error() {
    let cfg = {
        let mut c = audited(small_leaf_spine(), Scheme::drill_default(), 0.4);
        c.audit = None;
        c
    };
    // Section tag 1 is SEC_META, the first section restore decodes. A
    // lone 0x80 is a varint continuation byte with no terminator.
    let mut b = SnapshotBuilder::new(cfg!(feature = "fat-events"));
    b.section(1, vec![0x80]);
    let snap = b.finish();
    let err = match World::restore(&snap, &cfg) {
        Err(e) => e,
        Ok(_) => panic!("truncated META decoded"),
    };
    let ce = codec_error(&err).expect("error downcasts to CodecError");
    assert_eq!(ce.section, Some(1), "wrong section tag: {ce:?}");
    assert_eq!(ce.offset, Some(1), "wrong byte offset: {ce:?}");
}

/// The full hands-free loop: sabotage → trip → dump → parse the meta →
/// restore the newest clean ring snapshot with a flight recorder attached
/// → re-run exactly the window up to the anomalous boundary. The replay
/// must cover the window (recorder events present) and stop at the
/// anomaly's event count.
#[test]
fn rewind_replay_covers_the_anomaly_window() {
    let dir = scratch_dir("rewind");
    let mut cfg = audited(small_leaf_spine(), Scheme::drill_default(), 0.5);
    cfg.audit = Some(AuditSpec {
        every_events: 2_000,
        dump_dir: Some(dir.clone()),
        ..AuditSpec::default()
    });
    cfg.sabotage = Some(SabotageSpec {
        at: Time::from_micros(500),
        kind: SabotageKind::LeakPacket,
    });
    let (_, reports) = run_audited(&cfg);
    assert!(!reports.is_empty());

    // Everything replay needs comes out of anomaly.meta.
    let meta = std::fs::read_to_string(dir.join("anomaly.meta")).unwrap();
    let get = |key: &str| -> String {
        meta.lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("anomaly.meta lacks {key}=\n{meta}"))
            .to_string()
    };
    let anomaly_events: u64 = get("events").parse().unwrap();
    let rewind_events: u64 = get("rewind_events").parse().unwrap();
    assert!(rewind_events < anomaly_events);

    let snap = Snapshot::load(dir.join(get("rewind"))).expect("ring snapshot loads");
    let mut replay_cfg = cfg.clone();
    replay_cfg.audit = None;
    replay_cfg.sabotage = None;
    replay_cfg.max_events = anomaly_events;
    let recorder = FlightRecorder::new(
        replay_cfg.topo.build().num_switches(),
        replay_cfg.engines,
        4096,
    );
    let sampler = QueueSampler::new(Time::from_micros(10));
    let w = World::restore_probed(&snap, &replay_cfg, (recorder, sampler))
        .expect("ring snapshot restores");
    assert_eq!(w.events_processed(), rewind_events);
    let (stats, (recorder, _sampler), _audit) = w.finish_parts();
    assert!(
        stats.events >= anomaly_events && stats.events <= anomaly_events + 1,
        "replay ran past the anomaly: {} vs {anomaly_events}",
        stats.events
    );
    assert!(
        recorder.event_count() > 0,
        "replay window captured no recorder events"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
