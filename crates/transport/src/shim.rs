//! The reordering-resilient shim layer (§3.3).
//!
//! Presto \[42\] and Juggler \[35\] restore in-sequence delivery below TCP by
//! buffering out-of-order packets in the GRO handler; DRILL can optionally
//! deploy the same shim ("DRILL" vs "DRILL w/o shim" in every figure).
//!
//! The model: per-flow, packets whose sequence number is ahead of the
//! expected next byte are held in a small buffer. They are released as soon
//! as the gap fills, or after a timeout (which signals a real loss, letting
//! TCP's duplicate-ACK machinery engage).
//!
//! Packets are held as [`PacketRef`] handles into the runtime's
//! [`PacketArena`]; released handles are appended to a caller-supplied
//! buffer (the runtime recycles those buffers through a pool, so the
//! per-packet fast path allocates nothing).

use std::collections::BTreeMap;
use std::io;

use drill_net::{PacketArena, PacketRef};
use drill_sim::codec::{put_varint, Decoder};
use drill_sim::Time;

use crate::tcp::read_bool;

/// Default hold timeout before a gap is declared a loss and the buffer is
/// flushed (roughly one loaded fabric RTT: long enough to absorb
/// microburst-scale reordering, short enough not to stall TCP's
/// duplicate-ACK loss detection).
pub const SHIM_DEFAULT_TIMEOUT: Time = Time::from_micros(100);

/// Default: once this many packets are held above a gap, the gap is
/// declared a loss and the buffer flushes immediately — the same
/// 3-packets-passed-me evidence TCP's duplicate-ACK threshold uses. Keeps
/// the shim from stalling ACK clocking behind real losses. Schemes that
/// reorder at coarser granularity (Presto's 64 KB flowcells can race a
/// whole cell ahead) configure a correspondingly larger threshold via
/// [`ShimBuffer::with_threshold`].
pub const SHIM_FLUSH_THRESHOLD: usize = 3;

/// Per-flow reordering buffer.
#[derive(Debug)]
pub struct ShimBuffer {
    expected: u64,
    buf: BTreeMap<u64, PacketRef>,
    threshold: usize,
    timeout: Time,
    /// Generation for lazy timer invalidation.
    timer_gen: u64,
    /// Deadline of the armed flush timer, if any.
    armed: Option<Time>,
    /// Packets that were delivered late (flushed by timeout).
    pub timeout_flushes: u64,
    /// Packets that were held and released in order.
    pub reordered_held: u64,
}

impl ShimBuffer {
    /// A shim buffer with the given hold timeout and the default flush
    /// threshold.
    pub fn new(timeout: Time) -> ShimBuffer {
        ShimBuffer::with_threshold(timeout, SHIM_FLUSH_THRESHOLD)
    }

    /// A shim buffer with an explicit held-packet flush threshold.
    pub fn with_threshold(timeout: Time, threshold: usize) -> ShimBuffer {
        ShimBuffer {
            expected: 0,
            buf: BTreeMap::new(),
            threshold,
            timeout,
            timer_gen: 0,
            armed: None,
            timeout_flushes: 0,
            reordered_held: 0,
        }
    }

    /// Bytes the shim considers delivered in-sequence so far.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Number of packets currently held.
    pub fn held(&self) -> usize {
        self.buf.len()
    }

    /// Current timer generation (stale flush timers must be ignored).
    pub fn timer_generation(&self) -> u64 {
        self.timer_gen
    }

    /// Offer an arriving data packet. In-order (and old/duplicate) packets
    /// are delivered immediately, together with any buffered packets they
    /// release; ahead-of-sequence packets are held. Handles to deliver up
    /// the stack are appended to `deliver`; returns the flush deadline to
    /// (re-)arm if the buffer became (or stays) non-empty.
    pub fn on_packet(
        &mut self,
        arena: &PacketArena,
        pref: PacketRef,
        now: Time,
        deliver: &mut Vec<PacketRef>,
    ) -> Option<(Time, u64)> {
        let (seq, seq_end) = {
            let pkt = arena.get(&pref);
            (pkt.seq, pkt.seq_end())
        };
        if seq <= self.expected {
            self.expected = self.expected.max(seq_end);
            deliver.push(pref);
            // Release buffered packets that are now in sequence.
            while let Some((&s, _)) = self.buf.first_key_value() {
                if s > self.expected {
                    break;
                }
                let (_, p) = self.buf.pop_first().expect("checked non-empty");
                self.expected = self.expected.max(arena.get(&p).seq_end());
                self.reordered_held += 1;
                deliver.push(p);
            }
            if self.buf.is_empty() {
                self.armed = None;
                self.timer_gen += 1;
                return None;
            }
            // Still gapped: keep the existing timer.
            return None;
        }
        // Ahead of sequence: hold — unless enough packets have already
        // passed the gap to call it a loss, in which case flush so TCP's
        // duplicate-ACK machinery engages without delay.
        self.buf.insert(seq, pref);
        if self.buf.len() >= self.threshold {
            while let Some((_, p)) = self.buf.pop_first() {
                self.expected = self.expected.max(arena.get(&p).seq_end());
                self.timeout_flushes += 1;
                deliver.push(p);
            }
            self.armed = None;
            self.timer_gen += 1;
            return None;
        }
        if self.armed.is_none() {
            let at = now + self.timeout;
            self.armed = Some(at);
            self.timer_gen += 1;
            return Some((at, self.timer_gen));
        }
        None
    }

    /// A flush timer fired: if current, release everything held (in
    /// sequence order) so TCP sees the loss. Released handles are appended
    /// to `deliver`.
    pub fn on_timer(
        &mut self,
        arena: &PacketArena,
        generation: u64,
        _now: Time,
        deliver: &mut Vec<PacketRef>,
    ) {
        if generation != self.timer_gen || self.buf.is_empty() {
            return;
        }
        while let Some((_, p)) = self.buf.pop_first() {
            self.expected = self.expected.max(arena.get(&p).seq_end());
            self.timeout_flushes += 1;
            deliver.push(p);
        }
        self.armed = None;
        self.timer_gen += 1;
    }

    /// Serialize the buffer. Held handles are encoded against `arena`;
    /// `threshold`/`timeout` are config, not serialized.
    pub fn save_state(&self, arena: &PacketArena, buf: &mut Vec<u8>) {
        put_varint(buf, self.expected);
        put_varint(buf, self.buf.len() as u64);
        for (&s, r) in &self.buf {
            put_varint(buf, s);
            arena.encode_ref(buf, r);
        }
        put_varint(buf, self.timer_gen);
        match self.armed {
            Some(t) => {
                buf.push(1);
                put_varint(buf, t.as_nanos());
            }
            None => buf.push(0),
        }
        put_varint(buf, self.timeout_flushes);
        put_varint(buf, self.reordered_held);
    }

    /// Restore state written by [`save_state`](ShimBuffer::save_state) into
    /// a freshly configured buffer.
    pub fn load_state(&mut self, arena: &mut PacketArena, d: &mut Decoder<'_>) -> io::Result<()> {
        self.expected = d.varint()?;
        let n = d.varint_usize()?;
        self.buf.clear();
        for _ in 0..n {
            let s = d.varint()?;
            let r = arena.decode_ref(d)?;
            self.buf.insert(s, r);
        }
        self.timer_gen = d.varint()?;
        self.armed = if read_bool(d)? {
            Some(Time::from_nanos(d.varint()?))
        } else {
            None
        };
        self.timeout_flushes = d.varint()?;
        self.reordered_held = d.varint()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drill_net::{FlowId, HostId, Packet};

    fn pkt(seq: u64, payload: u32) -> Packet {
        Packet::data(
            seq,
            FlowId(0),
            HostId(0),
            HostId(1),
            7,
            seq,
            payload,
            Time::ZERO,
        )
    }

    /// Intern and offer a packet, returning the released handles by value
    /// (tests don't pool buffers).
    fn offer(
        s: &mut ShimBuffer,
        arena: &mut PacketArena,
        p: Packet,
        now: Time,
    ) -> (Vec<PacketRef>, Option<(Time, u64)>) {
        let r = arena.insert(p);
        let mut deliver = Vec::new();
        let timer = s.on_packet(arena, r, now, &mut deliver);
        (deliver, timer)
    }

    fn seq_of(arena: &PacketArena, r: &PacketRef) -> u64 {
        arena.get(r).seq
    }

    #[test]
    fn in_order_passes_through() {
        let mut s = ShimBuffer::new(SHIM_DEFAULT_TIMEOUT);
        let mut arena = PacketArena::new();
        for i in 0..5u64 {
            let (d, t) = offer(&mut s, &mut arena, pkt(i * 100, 100), Time::from_micros(i));
            assert_eq!(d.len(), 1);
            assert!(t.is_none());
        }
        assert_eq!(s.expected(), 500);
        assert_eq!(s.held(), 0);
        assert_eq!(s.reordered_held, 0);
    }

    #[test]
    fn gap_holds_until_filled() {
        let mut s = ShimBuffer::new(SHIM_DEFAULT_TIMEOUT);
        let mut arena = PacketArena::new();
        let (d, t) = offer(&mut s, &mut arena, pkt(0, 100), Time::ZERO);
        assert_eq!(d.len(), 1);
        assert!(t.is_none());
        // Packet 2 arrives before packet 1: held, timer armed.
        let (d, t) = offer(&mut s, &mut arena, pkt(200, 100), Time::from_micros(1));
        assert!(d.is_empty());
        let (at, _gen) = t.expect("timer armed");
        assert_eq!(at, Time::from_micros(1) + SHIM_DEFAULT_TIMEOUT);
        assert_eq!(s.held(), 1);
        // Gap fills: both delivered, in order.
        let (d, t) = offer(&mut s, &mut arena, pkt(100, 100), Time::from_micros(2));
        assert_eq!(d.len(), 2);
        assert_eq!(seq_of(&arena, &d[0]), 100);
        assert_eq!(seq_of(&arena, &d[1]), 200);
        assert!(t.is_none());
        assert_eq!(s.expected(), 300);
        assert_eq!(s.reordered_held, 1);
    }

    #[test]
    fn timeout_flushes_ascending() {
        let mut s = ShimBuffer::new(Time::from_micros(100));
        let mut arena = PacketArena::new();
        offer(&mut s, &mut arena, pkt(0, 100), Time::ZERO);
        let (_, t) = offer(&mut s, &mut arena, pkt(300, 100), Time::from_micros(1));
        let (_at, gen) = t.unwrap();
        let (d2, t2) = offer(&mut s, &mut arena, pkt(200, 100), Time::from_micros(2));
        assert!(d2.is_empty() && t2.is_none(), "timer already armed");
        // Fire the flush: both held packets released in seq order.
        let mut flushed = Vec::new();
        s.on_timer(&arena, gen, Time::from_micros(101), &mut flushed);
        assert_eq!(flushed.len(), 2);
        assert_eq!(seq_of(&arena, &flushed[0]), 200);
        assert_eq!(seq_of(&arena, &flushed[1]), 300);
        assert_eq!(s.timeout_flushes, 2);
        assert_eq!(s.expected(), 400);
        // The packet that eventually arrives late passes straight through.
        let (d, _) = offer(&mut s, &mut arena, pkt(100, 100), Time::from_micros(150));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn stale_timer_ignored() {
        let mut s = ShimBuffer::new(Time::from_micros(100));
        let mut arena = PacketArena::new();
        offer(&mut s, &mut arena, pkt(0, 100), Time::ZERO);
        let (_, t) = offer(&mut s, &mut arena, pkt(200, 100), Time::from_micros(1));
        let (_, gen) = t.unwrap();
        // Gap fills before the timer fires.
        offer(&mut s, &mut arena, pkt(100, 100), Time::from_micros(2));
        let mut flushed = Vec::new();
        s.on_timer(&arena, gen, Time::from_micros(101), &mut flushed);
        assert!(flushed.is_empty());
    }

    #[test]
    fn duplicates_pass_through() {
        let mut s = ShimBuffer::new(SHIM_DEFAULT_TIMEOUT);
        let mut arena = PacketArena::new();
        offer(&mut s, &mut arena, pkt(0, 100), Time::ZERO);
        let (d, _) = offer(&mut s, &mut arena, pkt(0, 100), Time::from_micros(5));
        assert_eq!(d.len(), 1, "retransmissions/duplicates not held");
        assert_eq!(s.expected(), 100);
    }

    #[test]
    fn flush_threshold_triggers_early_release() {
        // Default threshold 3: the third held packet flushes everything.
        let mut s = ShimBuffer::new(SHIM_DEFAULT_TIMEOUT);
        let mut arena = PacketArena::new();
        offer(&mut s, &mut arena, pkt(0, 100), Time::ZERO);
        assert!(
            offer(&mut s, &mut arena, pkt(200, 100), Time::from_micros(1))
                .0
                .is_empty()
        );
        assert!(
            offer(&mut s, &mut arena, pkt(300, 100), Time::from_micros(2))
                .0
                .is_empty()
        );
        let (d, t) = offer(&mut s, &mut arena, pkt(400, 100), Time::from_micros(3));
        assert_eq!(d.len(), 3, "threshold reached: all held packets flush");
        assert!(t.is_none());
        assert_eq!(s.timeout_flushes, 3);
        assert_eq!(s.expected(), 500);
    }

    #[test]
    fn larger_threshold_absorbs_bigger_races() {
        // A Presto-style threshold holds a whole flowcell's worth.
        let mut s = ShimBuffer::with_threshold(SHIM_DEFAULT_TIMEOUT, 64);
        let mut arena = PacketArena::new();
        offer(&mut s, &mut arena, pkt(0, 100), Time::ZERO);
        for i in 2..40u64 {
            let (d, _) = offer(&mut s, &mut arena, pkt(i * 100, 100), Time::from_micros(i));
            assert!(d.is_empty(), "held under threshold");
        }
        // The straggler arrives: everything releases in order.
        let (d, _) = offer(&mut s, &mut arena, pkt(100, 100), Time::from_micros(50));
        assert_eq!(d.len(), 39);
        assert!(d
            .windows(2)
            .all(|w| seq_of(&arena, &w[0]) < seq_of(&arena, &w[1])));
        assert_eq!(s.timeout_flushes, 0, "no loss declared");
    }

    #[test]
    fn multiple_gaps_release_incrementally() {
        let mut s = ShimBuffer::new(SHIM_DEFAULT_TIMEOUT);
        let mut arena = PacketArena::new();
        offer(&mut s, &mut arena, pkt(0, 100), Time::ZERO);
        offer(&mut s, &mut arena, pkt(200, 100), Time::from_micros(1));
        offer(&mut s, &mut arena, pkt(400, 100), Time::from_micros(2));
        assert_eq!(s.held(), 2);
        // Filling the first gap releases only up to the second gap.
        let (d, _) = offer(&mut s, &mut arena, pkt(100, 100), Time::from_micros(3));
        assert_eq!(d.len(), 2);
        assert_eq!(s.held(), 1);
        assert_eq!(s.expected(), 300);
        let (d, _) = offer(&mut s, &mut arena, pkt(300, 100), Time::from_micros(4));
        assert_eq!(d.len(), 2);
        assert_eq!(s.expected(), 500);
    }
}
