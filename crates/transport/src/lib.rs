//! Transport layer for the DRILL reproduction.
//!
//! The paper runs real Linux 2.6 TCP via the Network Simulation Cradle; we
//! model the behaviours its results depend on with a compact Reno/NewReno
//! implementation:
//!
//! * slow start / congestion avoidance / fast retransmit on 3 duplicate
//!   ACKs / fast recovery with NewReno partial ACKs;
//! * RTO per RFC 6298 (SRTT/RTTVAR estimators, exponential backoff,
//!   configurable RTOmin) with Karn's rule via receiver echo suppression
//!   on retransmitted segments;
//! * receiver-side cumulative ACKs, out-of-order segment tracking, and
//!   **duplicate-ACK accounting** (Figure 11a's metric);
//! * **GRO batch accounting** (§4 "Reordering can also increase receiver
//!   host CPU overhead"): per-flow batches formed by in-order arrivals up
//!   to 64 KB;
//! * the optional **reordering shim** ([`ShimBuffer`]) that Presto and
//!   "DRILL (with shim)" deploy below TCP to restore in-sequence delivery.

#![warn(missing_docs)]

mod shim;
mod tcp;

pub use shim::{ShimBuffer, SHIM_DEFAULT_TIMEOUT};
pub use tcp::{TcpConfig, TcpFlow, GRO_BATCH_LIMIT};
