//! Compact TCP Reno/NewReno.

use std::collections::BTreeMap;
use std::io;

use drill_net::{flags, FlowId, HostId, Packet};
use drill_sim::codec::{invalid, put_f64, put_u64, put_varint, Decoder};
use drill_sim::Time;

/// GRO merges in-order packets into batches of at most this many payload
/// bytes (one maximal TSO/GRO segment).
pub const GRO_BATCH_LIMIT: u32 = 64 * 1024;

/// TCP tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Maximum segment (payload) size in bytes.
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd: u32,
    /// Lower bound on the retransmission timeout.
    ///
    /// Linux 2.6 defaults to 200 ms; datacenter deployments (and the
    /// incast literature the paper cites) tune it down. Experiments record
    /// the value used.
    pub rto_min: Time,
    /// Upper bound on the (backed-off) retransmission timeout.
    pub rto_max: Time,
    /// RTO before any RTT sample exists.
    pub rto_init: Time,
    /// Congestion-window cap (models the receive window), bytes.
    pub max_cwnd_bytes: u64,
    /// Duplicate-ACK fast-retransmit threshold.
    pub dupack_thresh: u32,
    /// Nagle's algorithm (RFC 896), on by default as in Linux 2.6: a
    /// sub-MSS segment is held back while any data is unacknowledged.
    /// Besides its latency trade-off, Nagle prevents a flow's short
    /// trailing segment from being emitted back-to-back behind a full one
    /// — which, under per-packet multipathing in a store-and-forward
    /// fabric, would routinely overtake it and masquerade as reordering.
    pub nagle: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1442, // 1500B wire frames with our 58B of headers
            init_cwnd: 4,
            rto_min: Time::from_millis(200),
            rto_max: Time::from_secs(2),
            rto_init: Time::from_millis(200),
            // Linux 2.6-era receive windows autotuned to a few hundred KB;
            // this cap also bounds per-flow self-inflicted (bufferbloat)
            // queueing at the last hop.
            max_cwnd_bytes: 256 * 1024,
            dupack_thresh: 3,
            nagle: true,
        }
    }
}

/// One TCP flow: sender and receiver endpoints of a `size`-byte transfer.
///
/// The embedding simulation owns the flow table; this type is a pure state
/// machine. Methods emit packets into an output buffer and signal timer
/// needs through [`TcpFlow::rto_deadline`] — the runtime schedules an event
/// for every returned deadline and delivers it via [`TcpFlow::on_timer`];
/// stale timers are filtered by generation number.
#[derive(Debug)]
pub struct TcpFlow {
    /// Flow id (index in the runtime's flow table).
    pub id: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Stable 5-tuple hash shared by all the flow's packets.
    pub flow_hash: u64,
    /// Transfer size in bytes (`u64::MAX` = persistent "elephant").
    pub size: u64,
    /// Time the flow started.
    pub start: Time,
    cfg: TcpConfig,

    // --- sender ---
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    recover: u64,
    in_recovery: bool,
    srtt_ns: Option<f64>,
    rttvar_ns: f64,
    rto: Time,
    timer_gen: u64,
    emit_counter: u32,
    last_partial_retx: Time,

    // --- receiver ---
    rcv_nxt: u64,
    ooo: BTreeMap<u64, u64>,
    last_ack_sent: u64,

    // --- GRO model (receiver) ---
    gro_expected: u64,
    gro_cur_bytes: u32,
    /// Completed GRO batches delivered up the stack.
    pub gro_batches: u64,

    // --- metrics ---
    /// Duplicate ACKs this receiver generated (Figure 11a's metric).
    pub dup_acks_sent: u32,
    /// True path inversions observed at the receiver: non-retransmitted
    /// segments that arrived after a segment the sender emitted later
    /// (loss-independent reordering signal).
    pub reorder_events: u32,
    max_emit_seen: i64,
    /// Data segments retransmitted.
    pub retransmissions: u32,
    /// Retransmission timeouts taken.
    pub timeouts: u32,
    /// Completion time (final byte cumulatively ACKed at the sender).
    pub done: Option<Time>,
    /// Cumulative bytes ACKed (throughput accounting for elephants).
    pub bytes_acked: u64,
}

impl TcpFlow {
    /// A new flow of `size` bytes from `src` to `dst`.
    pub fn new(
        id: FlowId,
        src: HostId,
        dst: HostId,
        flow_hash: u64,
        size: u64,
        start: Time,
        cfg: TcpConfig,
    ) -> TcpFlow {
        TcpFlow {
            id,
            src,
            dst,
            flow_hash,
            size,
            start,
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: (cfg.init_cwnd * cfg.mss) as f64,
            ssthresh: cfg.max_cwnd_bytes as f64,
            dup_acks: 0,
            recover: 0,
            in_recovery: false,
            srtt_ns: None,
            rttvar_ns: 0.0,
            rto: cfg.rto_init,
            timer_gen: 0,
            emit_counter: 0,
            last_partial_retx: Time::ZERO,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            last_ack_sent: u64::MAX,
            gro_expected: 0,
            gro_cur_bytes: 0,
            gro_batches: 0,
            dup_acks_sent: 0,
            reorder_events: 0,
            max_emit_seen: -1,
            retransmissions: 0,
            timeouts: 0,
            done: None,
            bytes_acked: 0,
        }
    }

    /// Whether the sender has delivered (and had ACKed) every byte.
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }

    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<Time> {
        self.done.map(|d| d - self.start)
    }

    /// Current congestion window in bytes (diagnostics).
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current retransmission timeout (diagnostics).
    pub fn rto(&self) -> Time {
        self.rto
    }

    /// Current timer generation; timers carrying an older generation are
    /// stale and must be ignored.
    pub fn timer_generation(&self) -> u64 {
        self.timer_gen
    }

    /// Absolute RTO deadline the runtime should schedule, if any data is
    /// outstanding.
    pub fn rto_deadline(&self, now: Time) -> Option<(Time, u64)> {
        (self.snd_nxt > self.snd_una && self.done.is_none())
            .then(|| (now + self.rto, self.timer_gen))
    }

    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn effective_cwnd(&self) -> u64 {
        (self.cwnd as u64).clamp(self.cfg.mss as u64, self.cfg.max_cwnd_bytes)
    }

    fn make_segment(&mut self, seq: u64, now: Time, pkt_ids: &mut u64, retx: bool) -> Packet {
        let payload = (self.size - seq).min(self.cfg.mss as u64) as u32;
        debug_assert!(payload > 0);
        *pkt_ids += 1;
        let mut p = Packet::data(
            *pkt_ids,
            self.id,
            self.src,
            self.dst,
            self.flow_hash,
            seq,
            payload,
            now,
        );
        if seq + payload as u64 >= self.size {
            p.flags |= flags::FIN;
        }
        if retx {
            p.flags |= flags::RETX;
        }
        p.emit_idx = self.emit_counter;
        self.emit_counter += 1;
        p
    }

    /// Start the flow: emit the initial window.
    pub fn start_sending(&mut self, now: Time, pkt_ids: &mut u64, out: &mut Vec<Packet>) {
        self.try_send(now, pkt_ids, out);
        self.timer_gen += 1;
    }

    /// Emit as many new segments as the window (and Nagle) allow.
    fn try_send(&mut self, now: Time, pkt_ids: &mut u64, out: &mut Vec<Packet>) {
        let limit = (self.snd_una + self.effective_cwnd()).min(self.size);
        while self.snd_nxt < limit {
            let seg_len = (limit - self.snd_nxt).min(self.cfg.mss as u64);
            let sub_mss = seg_len < self.cfg.mss as u64 && self.snd_nxt + seg_len < self.size;
            let outstanding = self.snd_nxt > self.snd_una;
            // Nagle: hold a sub-MSS, non-final-by-window segment while data
            // is in flight. (A window-clipped segment is also held: real
            // stacks wait for the window to open rather than send runts.)
            if self.cfg.nagle && outstanding && (sub_mss || seg_len < self.cfg.mss as u64) {
                break;
            }
            if sub_mss {
                break; // never emit a runt mid-stream even without Nagle
            }
            let p = self.make_segment(self.snd_nxt, now, pkt_ids, false);
            self.snd_nxt += p.payload as u64;
            out.push(p);
        }
    }

    // ------------------------------------------------------------------
    // Receiver side
    // ------------------------------------------------------------------

    /// Process an arriving data segment at the receiver; emits the ACK.
    pub fn on_data(&mut self, pkt: &Packet, now: Time, pkt_ids: &mut u64, out: &mut Vec<Packet>) {
        debug_assert!(pkt.is_data());
        if !pkt.is_retx() {
            if (pkt.emit_idx as i64) < self.max_emit_seen {
                self.reorder_events += 1;
            }
            self.max_emit_seen = self.max_emit_seen.max(pkt.emit_idx as i64);
        }
        self.gro_account(pkt);
        let seq = pkt.seq;
        let end = pkt.seq_end();
        if seq <= self.rcv_nxt {
            if end > self.rcv_nxt {
                self.rcv_nxt = end;
                // Consume contiguous out-of-order segments.
                while let Some((&s, &e)) = self.ooo.first_key_value() {
                    if s > self.rcv_nxt {
                        break;
                    }
                    self.ooo.pop_first();
                    if e > self.rcv_nxt {
                        self.rcv_nxt = e;
                    }
                }
            }
            // else: pure duplicate, re-ACK current edge.
        } else {
            // Out of order: buffer it (merge exact duplicates by key).
            let cur = self.ooo.entry(seq).or_insert(end);
            if *cur < end {
                *cur = end;
            }
        }

        *pkt_ids += 1;
        let mut ack = Packet::pure_ack(
            *pkt_ids,
            self.id,
            self.dst,
            self.src,
            self.flow_hash,
            self.rcv_nxt,
            now,
        );
        // Echo the segment's send timestamp for RTT sampling, unless it is
        // a retransmission (Karn's rule).
        if !pkt.is_retx() {
            ack.echo = pkt.sent;
        }
        if self.rcv_nxt == self.last_ack_sent {
            self.dup_acks_sent += 1;
        }
        self.last_ack_sent = self.rcv_nxt;
        out.push(ack);
    }

    /// Payload bytes the receiver has contiguously received.
    pub fn bytes_received(&self) -> u64 {
        self.rcv_nxt
    }

    fn gro_account(&mut self, pkt: &Packet) {
        // GRO merges a flow's packets while they arrive in-order and the
        // batch stays under 64 KB; an out-of-order packet or a full batch
        // flushes to the stack. More batches = more per-packet CPU work.
        if pkt.seq == self.gro_expected
            && self.gro_cur_bytes + pkt.payload <= GRO_BATCH_LIMIT
            && self.gro_cur_bytes > 0
        {
            self.gro_cur_bytes += pkt.payload;
        } else {
            if self.gro_cur_bytes > 0 {
                self.gro_batches += 1;
            }
            self.gro_cur_bytes = pkt.payload;
        }
        self.gro_expected = pkt.seq_end();
    }

    // ------------------------------------------------------------------
    // Sender side
    // ------------------------------------------------------------------

    /// Process an arriving ACK at the sender.
    pub fn on_ack(&mut self, pkt: &Packet, now: Time, pkt_ids: &mut u64, out: &mut Vec<Packet>) {
        debug_assert!(pkt.is_ack());
        if self.done.is_some() {
            return;
        }
        let ack = pkt.ack;
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            self.bytes_acked += newly;
            self.dup_acks = 0;
            self.timer_gen += 1; // restart (or stop) the timer

            if pkt.echo != Time::ZERO {
                self.sample_rtt(now.saturating_sub(pkt.echo));
            }

            if self.in_recovery {
                if ack >= self.recover {
                    // Full recovery.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ACK: retransmit the next hole and
                    // deflate — but at most one retransmission per RTT.
                    // Plain NewReno retransmits on *every* partial ACK,
                    // which under packet reordering (holes that are merely
                    // in flight) floods the fabric with spurious
                    // retransmissions; SACK-era stacks (the paper's Linux
                    // 2.6 has SACK on) do not. Genuine multi-loss windows
                    // are unaffected: NewReno heals one hole per RTT anyway.
                    let srtt = Time::from_nanos(self.srtt_ns.unwrap_or(0.0) as u64);
                    if now.saturating_sub(self.last_partial_retx) >= srtt {
                        self.last_partial_retx = now;
                        let p = self.make_segment(self.snd_una, now, pkt_ids, true);
                        self.retransmissions += 1;
                        out.push(p);
                    }
                    self.cwnd =
                        (self.cwnd - newly as f64 + self.cfg.mss as f64).max(self.cfg.mss as f64);
                }
            } else if self.cwnd < self.ssthresh {
                // Slow start.
                self.cwnd += newly.min(self.cfg.mss as u64) as f64;
            } else {
                // Congestion avoidance (per-ACK increment).
                self.cwnd += (self.cfg.mss as f64) * (self.cfg.mss as f64) / self.cwnd;
            }
            self.cwnd = self.cwnd.min(self.cfg.max_cwnd_bytes as f64);

            if self.snd_una >= self.size {
                self.done = Some(now);
                return;
            }
            self.try_send(now, pkt_ids, out);
        } else if ack == self.snd_una && self.flight() > 0 {
            self.dup_acks += 1;
            if !self.in_recovery && self.dup_acks == self.cfg.dupack_thresh {
                // Fast retransmit + fast recovery.
                self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.cfg.mss as f64);
                self.cwnd = self.ssthresh + (self.cfg.dupack_thresh * self.cfg.mss) as f64;
                self.recover = self.snd_nxt;
                self.in_recovery = true;
                let p = self.make_segment(self.snd_una, now, pkt_ids, true);
                self.retransmissions += 1;
                out.push(p);
            } else if self.in_recovery {
                // Window inflation lets new data flow during recovery.
                self.cwnd += self.cfg.mss as f64;
                self.cwnd = self.cwnd.min(self.cfg.max_cwnd_bytes as f64);
                self.try_send(now, pkt_ids, out);
            }
        }
    }

    fn sample_rtt(&mut self, rtt: Time) {
        let r = rtt.as_nanos() as f64;
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (srtt - r).abs();
                self.srtt_ns = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let rto_ns = self.srtt_ns.unwrap() + 4.0 * self.rttvar_ns;
        self.rto = Time::from_nanos(rto_ns as u64)
            .max(self.cfg.rto_min)
            .min(self.cfg.rto_max);
    }

    /// An RTO timer fired. Returns `true` if it was current and handled
    /// (the caller should then reschedule via [`TcpFlow::rto_deadline`]).
    pub fn on_timer(
        &mut self,
        generation: u64,
        now: Time,
        pkt_ids: &mut u64,
        out: &mut Vec<Packet>,
    ) -> bool {
        if generation != self.timer_gen || self.done.is_some() || self.flight() == 0 {
            return false;
        }
        self.timeouts += 1;
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.cfg.mss as f64);
        self.cwnd = self.cfg.mss as f64;
        self.rto = (self.rto.mul(2)).min(self.cfg.rto_max);
        self.in_recovery = false;
        self.dup_acks = 0;
        self.timer_gen += 1;
        let p = self.make_segment(self.snd_una, now, pkt_ids, true);
        self.retransmissions += 1;
        out.push(p);
        true
    }

    /// Serialize the flow: identity plus every sender/receiver/GRO/metric
    /// field. `cfg` is not serialized (it comes from the experiment config
    /// at restore).
    pub fn save_state(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.id.0 as u64);
        put_varint(buf, self.src.0 as u64);
        put_varint(buf, self.dst.0 as u64);
        put_u64(buf, self.flow_hash);
        put_u64(buf, self.size); // u64::MAX elephants stay 8 bytes
        put_varint(buf, self.start.as_nanos());
        put_varint(buf, self.snd_una);
        put_varint(buf, self.snd_nxt);
        put_f64(buf, self.cwnd);
        put_f64(buf, self.ssthresh);
        put_varint(buf, self.dup_acks as u64);
        put_varint(buf, self.recover);
        buf.push(self.in_recovery as u8);
        match self.srtt_ns {
            Some(s) => {
                buf.push(1);
                put_f64(buf, s);
            }
            None => buf.push(0),
        }
        put_f64(buf, self.rttvar_ns);
        put_varint(buf, self.rto.as_nanos());
        put_varint(buf, self.timer_gen);
        put_varint(buf, self.emit_counter as u64);
        put_varint(buf, self.last_partial_retx.as_nanos());
        put_varint(buf, self.rcv_nxt);
        put_varint(buf, self.ooo.len() as u64);
        for (&s, &e) in &self.ooo {
            put_varint(buf, s);
            put_varint(buf, e);
        }
        put_u64(buf, self.last_ack_sent); // u64::MAX sentinel stays 8 bytes
        put_varint(buf, self.gro_expected);
        put_varint(buf, self.gro_cur_bytes as u64);
        put_varint(buf, self.gro_batches);
        put_varint(buf, self.dup_acks_sent as u64);
        put_varint(buf, self.reorder_events as u64);
        // Zigzag: max_emit_seen starts at -1.
        put_varint(
            buf,
            ((self.max_emit_seen << 1) ^ (self.max_emit_seen >> 63)) as u64,
        );
        put_varint(buf, self.retransmissions as u64);
        put_varint(buf, self.timeouts as u64);
        match self.done {
            Some(t) => {
                buf.push(1);
                put_varint(buf, t.as_nanos());
            }
            None => buf.push(0),
        }
        put_varint(buf, self.bytes_acked);
    }

    /// Rebuild a flow serialized by [`save_state`](TcpFlow::save_state).
    pub fn load_state(d: &mut Decoder<'_>, cfg: TcpConfig) -> io::Result<TcpFlow> {
        let id = FlowId(d.varint_u32()?);
        let src = HostId(d.varint_u32()?);
        let dst = HostId(d.varint_u32()?);
        let flow_hash = d.u64_fixed()?;
        let size = d.u64_fixed()?;
        let start = Time::from_nanos(d.varint()?);
        let mut f = TcpFlow::new(id, src, dst, flow_hash, size, start, cfg);
        f.snd_una = d.varint()?;
        f.snd_nxt = d.varint()?;
        f.cwnd = d.f64_fixed()?;
        f.ssthresh = d.f64_fixed()?;
        f.dup_acks = d.varint_u32()?;
        f.recover = d.varint()?;
        f.in_recovery = read_bool(d)?;
        f.srtt_ns = if read_bool(d)? {
            Some(d.f64_fixed()?)
        } else {
            None
        };
        f.rttvar_ns = d.f64_fixed()?;
        f.rto = Time::from_nanos(d.varint()?);
        f.timer_gen = d.varint()?;
        f.emit_counter = d.varint_u32()?;
        f.last_partial_retx = Time::from_nanos(d.varint()?);
        f.rcv_nxt = d.varint()?;
        let n_ooo = d.varint_usize()?;
        for _ in 0..n_ooo {
            let s = d.varint()?;
            let e = d.varint()?;
            if e <= s {
                return Err(invalid("empty out-of-order range"));
            }
            f.ooo.insert(s, e);
        }
        f.last_ack_sent = d.u64_fixed()?;
        f.gro_expected = d.varint()?;
        f.gro_cur_bytes = d.varint_u32()?;
        f.gro_batches = d.varint()?;
        f.dup_acks_sent = d.varint_u32()?;
        f.reorder_events = d.varint_u32()?;
        let z = d.varint()?;
        f.max_emit_seen = ((z >> 1) as i64) ^ -((z & 1) as i64);
        f.retransmissions = d.varint_u32()?;
        f.timeouts = d.varint_u32()?;
        f.done = if read_bool(d)? {
            Some(Time::from_nanos(d.varint()?))
        } else {
            None
        };
        f.bytes_acked = d.varint()?;
        Ok(f)
    }
}

pub(crate) fn read_bool(d: &mut Decoder<'_>) -> io::Result<bool> {
    match d.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(invalid("bad bool byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(size: u64) -> TcpFlow {
        TcpFlow::new(
            FlowId(0),
            HostId(0),
            HostId(1),
            0xfeed,
            size,
            Time::ZERO,
            TcpConfig::default(),
        )
    }

    /// A flow with a large initial window (several tests need many
    /// segments in flight at once).
    fn flow_iw10(size: u64) -> TcpFlow {
        let cfg = TcpConfig {
            init_cwnd: 10,
            ..Default::default()
        };
        TcpFlow::new(
            FlowId(0),
            HostId(0),
            HostId(1),
            0xfeed,
            size,
            Time::ZERO,
            cfg,
        )
    }

    /// Drive sender + receiver over a perfect in-order pipe with fixed
    /// one-way delay; returns the completion time.
    fn run_perfect_pipe(mut f: TcpFlow, delay: Time) -> TcpFlow {
        let mut ids = 0u64;
        let mut in_flight: Vec<Packet> = Vec::new();
        let mut now = Time::ZERO;
        f.start_sending(now, &mut ids, &mut in_flight);
        let mut guard = 0;
        while f.done.is_none() {
            guard += 1;
            assert!(guard < 100_000, "no progress");
            now = now + delay;
            let data: Vec<Packet> = std::mem::take(&mut in_flight);
            let mut acks = Vec::new();
            for p in &data {
                f.on_data(p, now, &mut ids, &mut acks);
            }
            now = now + delay;
            for a in &acks {
                f.on_ack(a, now, &mut ids, &mut in_flight);
            }
        }
        f
    }

    #[test]
    fn initial_window_matches_config() {
        let mut f = flow(1_000_000);
        let mut ids = 0;
        let mut out = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut out);
        assert_eq!(out.len(), 4, "Linux 2.6-era initial window");
        assert_eq!(out[0].seq, 0);
        assert_eq!(out[3].seq, 3 * 1442);
        assert!(out.iter().all(|p| p.payload == 1442));
        let mut big = flow_iw10(1_000_000);
        out.clear();
        big.start_sending(Time::ZERO, &mut ids, &mut out);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn nagle_holds_trailing_runt() {
        // 3000 bytes = two full segments + a 116-byte residual: the runt
        // is held until the outstanding data is ACKed.
        let mut f = flow_iw10(3_000);
        let mut ids = 0;
        let mut out = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut out);
        assert_eq!(out.len(), 2, "runt held by Nagle");
        let data: Vec<Packet> = std::mem::take(&mut out);
        let mut acks = Vec::new();
        for p in &data {
            f.on_data(p, Time::from_micros(20), &mut ids, &mut acks);
        }
        for a in &acks {
            f.on_ack(a, Time::from_micros(40), &mut ids, &mut out);
        }
        assert_eq!(out.len(), 1, "runt released once un-ACKed data drains");
        assert_eq!(out[0].payload, 3_000 - 2 * 1442);
        assert!(out[0].flags & flags::FIN != 0);
    }

    #[test]
    fn nagle_off_sends_runt_immediately() {
        let cfg = TcpConfig {
            nagle: false,
            init_cwnd: 10,
            ..Default::default()
        };
        let mut f = TcpFlow::new(FlowId(0), HostId(0), HostId(1), 1, 3_000, Time::ZERO, cfg);
        let mut ids = 0;
        let mut out = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut out);
        assert_eq!(out.len(), 3, "runt rides along without Nagle");
    }

    #[test]
    fn small_flow_single_segment_with_fin() {
        let mut f = flow(500);
        let mut ids = 0;
        let mut out = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, 500);
        assert!(out[0].flags & flags::FIN != 0);
    }

    #[test]
    fn completes_over_perfect_pipe() {
        let f = run_perfect_pipe(flow(100_000), Time::from_micros(10));
        assert!(f.is_done());
        assert_eq!(f.bytes_acked, 100_000);
        assert_eq!(f.dup_acks_sent, 0, "in-order delivery: no dup ACKs");
        assert_eq!(f.retransmissions, 0);
        assert_eq!(f.timeouts, 0);
        assert!(f.fct().unwrap() > Time::ZERO);
    }

    #[test]
    fn slow_start_doubles_window() {
        let mut f = flow(10_000_000);
        let mut ids = 0;
        let mut out = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut out);
        let w0 = out.len();
        // ACK the whole first window in-order.
        let data: Vec<Packet> = std::mem::take(&mut out);
        let mut acks = Vec::new();
        for p in &data {
            f.on_data(p, Time::from_micros(50), &mut ids, &mut acks);
        }
        for a in &acks {
            f.on_ack(a, Time::from_micros(100), &mut ids, &mut out);
        }
        // Each ACK grows cwnd by one MSS and releases ~2 segments.
        assert!(
            out.len() >= 2 * w0 - 2,
            "slow start: {} vs {}",
            out.len(),
            w0
        );
    }

    #[test]
    fn rtt_estimator_sets_rto() {
        let f = run_perfect_pipe(flow(200_000), Time::from_micros(25));
        // RTT = 50us; RTO clamps at rto_min (10ms).
        assert_eq!(f.rto(), TcpConfig::default().rto_min);
        assert!(f.srtt_ns.unwrap() > 0.0);
    }

    #[test]
    fn out_of_order_triggers_dup_acks_and_fast_retransmit() {
        let mut f = flow_iw10(1_000_000);
        let mut ids = 0;
        let mut sent = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut sent);
        assert!(sent.len() >= 5);
        // Deliver packet 0, then packets 2,3,4 (packet 1 lost/late).
        let now = Time::from_micros(100);
        let mut acks = Vec::new();
        f.on_data(&sent[0], now, &mut ids, &mut acks);
        for p in &sent[2..5] {
            f.on_data(p, now, &mut ids, &mut acks);
        }
        assert_eq!(f.dup_acks_sent, 3, "three duplicate ACKs generated");
        // Feed the ACKs to the sender: the three dups trigger fast retx.
        let mut retx = Vec::new();
        for a in &acks {
            f.on_ack(a, now + Time::from_micros(50), &mut ids, &mut retx);
        }
        assert_eq!(f.retransmissions, 1);
        let r = retx
            .iter()
            .find(|p| p.is_retx())
            .expect("retransmission emitted");
        assert_eq!(r.seq, sent[1].seq);
        assert!(f.in_recovery);
        // The late packet 1 finally arrives: receiver jumps rcv_nxt to
        // cover the buffered OOO segments.
        let mut late_acks = Vec::new();
        f.on_data(
            &sent[1],
            now + Time::from_micros(60),
            &mut ids,
            &mut late_acks,
        );
        assert_eq!(late_acks[0].ack, sent[4].seq_end());
    }

    #[test]
    fn reorder_events_count_emit_inversions_excluding_retx() {
        let mut f = flow_iw10(1_000_000);
        let mut ids = 0;
        let mut sent = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut sent);
        assert!(sent.len() >= 4);
        let now = Time::from_micros(100);
        let mut acks = Vec::new();
        // Delivery order 0, 2, 1, 3: exactly one inversion (1 after 2).
        f.on_data(&sent[0], now, &mut ids, &mut acks);
        f.on_data(&sent[2], now, &mut ids, &mut acks);
        f.on_data(&sent[1], now, &mut ids, &mut acks);
        f.on_data(&sent[3], now, &mut ids, &mut acks);
        assert_eq!(f.reorder_events, 1, "one emit-index inversion");
        // A retransmitted copy of an old segment necessarily carries a
        // stale emit index; Karn-style, it must not count as reordering.
        let mut old = sent[1].clone();
        old.flags |= flags::RETX;
        f.on_data(&old, now, &mut ids, &mut acks);
        assert_eq!(f.reorder_events, 1, "retx excluded from reorder count");
        // ACK trail: segment 2 repeated the edge once, the retx duplicate
        // re-ACKed it once more.
        assert_eq!(f.dup_acks_sent, 2);
    }

    #[test]
    fn ooo_buffer_merges_and_flushes_contiguously() {
        let mut f = flow_iw10(1_000_000);
        let mut ids = 0;
        let mut sent = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut sent);
        assert!(sent.len() >= 4);
        let now = Time::from_micros(100);
        let mut acks = Vec::new();
        // Buffer segments 2 and 3 behind the missing 0: edge stays put.
        f.on_data(&sent[2], now, &mut ids, &mut acks);
        f.on_data(&sent[3], now, &mut ids, &mut acks);
        assert_eq!(f.bytes_received(), 0);
        // An exact duplicate of a buffered segment neither regresses the
        // stored range nor advances the edge.
        f.on_data(&sent[2], now, &mut ids, &mut acks);
        assert_eq!(f.bytes_received(), 0);
        // Segment 0 advances only to the gap before 1.
        f.on_data(&sent[0], now, &mut ids, &mut acks);
        assert_eq!(f.bytes_received(), sent[0].seq_end());
        // Segment 1 closes the gap: the contiguous-consume loop drains the
        // whole buffer in one step.
        f.on_data(&sent[1], now, &mut ids, &mut acks);
        assert_eq!(f.bytes_received(), sent[3].seq_end());
        // Every ACK emitted while the edge was pinned was a duplicate.
        assert_eq!(f.dup_acks_sent, 2);
        // Each cumulative ACK carries the current edge.
        assert_eq!(acks.last().unwrap().ack, sent[3].seq_end());
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut f = flow_iw10(1_000_000);
        let mut ids = 0;
        let mut sent = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut sent);
        let now = Time::from_micros(100);
        let mut acks = Vec::new();
        f.on_data(&sent[0], now, &mut ids, &mut acks);
        for p in &sent[2..6] {
            f.on_data(p, now, &mut ids, &mut acks);
        }
        let mut out = Vec::new();
        for a in &acks {
            f.on_ack(a, now, &mut ids, &mut out);
        }
        assert!(f.in_recovery);
        let recover_point = f.recover;
        // ACK everything up to the recovery point.
        ids += 1;
        let full = Packet::pure_ack(ids, f.id, f.dst, f.src, f.flow_hash, recover_point, now);
        f.on_ack(&full, now + Time::from_micros(10), &mut ids, &mut out);
        assert!(!f.in_recovery);
        assert!(
            (f.cwnd - f.ssthresh).abs() < 1.0,
            "cwnd deflates to ssthresh"
        );
    }

    #[test]
    fn rto_retransmits_and_backs_off() {
        let mut f = flow(100_000);
        let mut ids = 0;
        let mut out = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut out);
        let gen = f.timer_generation();
        let rto0 = f.rto();
        out.clear();
        let fired = f.on_timer(gen, rto0, &mut ids, &mut out);
        assert!(fired);
        assert_eq!(f.timeouts, 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_retx());
        assert_eq!(out[0].seq, 0);
        assert_eq!(f.cwnd_bytes(), 1442, "cwnd collapses to one MSS");
        assert_eq!(f.rto(), rto0.mul(2), "exponential backoff");
        // Stale generation is ignored.
        assert!(!f.on_timer(gen, rto0.mul(2), &mut ids, &mut out));
    }

    #[test]
    fn timer_deadline_only_when_outstanding() {
        let mut f = flow(10_000);
        assert!(
            f.rto_deadline(Time::ZERO).is_none(),
            "nothing in flight yet"
        );
        let mut ids = 0;
        let mut out = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut out);
        assert!(f.rto_deadline(Time::ZERO).is_some());
        let f2 = run_perfect_pipe(flow(10_000), Time::from_micros(5));
        assert!(
            f2.rto_deadline(Time::from_millis(1)).is_none(),
            "done flow needs no timer"
        );
    }

    #[test]
    fn karn_rule_suppresses_retx_rtt_echo() {
        let mut f = flow(100_000);
        let mut ids = 0;
        let mut out = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut out);
        let gen = f.timer_generation();
        let mut retx = Vec::new();
        f.on_timer(gen, Time::from_millis(50), &mut ids, &mut retx);
        let mut acks = Vec::new();
        f.on_data(&retx[0], Time::from_millis(51), &mut ids, &mut acks);
        assert_eq!(acks[0].echo, Time::ZERO, "no RTT echo for retransmissions");
    }

    #[test]
    fn duplicate_segments_reack_without_advancing() {
        let mut f = flow(100_000);
        let mut ids = 0;
        let mut sent = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut sent);
        let now = Time::from_micros(10);
        let mut acks = Vec::new();
        f.on_data(&sent[0], now, &mut ids, &mut acks);
        let edge = acks[0].ack;
        f.on_data(&sent[0], now, &mut ids, &mut acks);
        assert_eq!(acks[1].ack, edge);
        assert_eq!(f.dup_acks_sent, 1);
        assert_eq!(f.bytes_received(), 1442);
    }

    #[test]
    fn gro_batches_count_in_order_vs_reordered() {
        // In-order: 100 MSS-sized packets = ~3 batches (64KB each).
        let mut f = flow(u64::MAX);
        let mut ids = 0;
        let mut sink = Vec::new();
        let mk = |seq: u64, ids: &mut u64| {
            *ids += 1;
            Packet::data(
                *ids,
                FlowId(0),
                HostId(0),
                HostId(1),
                1,
                seq,
                1442,
                Time::ZERO,
            )
        };
        for i in 0..100u64 {
            let p = mk(i * 1442, &mut ids);
            f.on_data(&p, Time::ZERO, &mut ids, &mut sink);
        }
        let in_order = f.gro_batches;
        assert!(in_order <= 3, "{in_order}");

        // Reordered: every swap of adjacent packets breaks a batch.
        let mut g = flow(u64::MAX);
        for i in 0..50u64 {
            let a = mk((2 * i + 1) * 1442, &mut ids);
            let b = mk((2 * i) * 1442, &mut ids);
            g.on_data(&a, Time::ZERO, &mut ids, &mut sink);
            g.on_data(&b, Time::ZERO, &mut ids, &mut sink);
        }
        assert!(
            g.gro_batches > 20,
            "reordering multiplies batches: {}",
            g.gro_batches
        );
    }

    #[test]
    fn elephant_flow_never_completes() {
        let mut f = flow_iw10(u64::MAX);
        let mut ids = 0;
        let mut out = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut out);
        let data: Vec<Packet> = std::mem::take(&mut out);
        let mut acks = Vec::new();
        for p in &data {
            f.on_data(p, Time::from_micros(20), &mut ids, &mut acks);
        }
        for a in &acks {
            f.on_ack(a, Time::from_micros(40), &mut ids, &mut out);
        }
        assert!(!f.is_done());
        assert_eq!(f.bytes_acked, 10 * 1442);
        assert!(!out.is_empty(), "keeps sending");
    }

    #[test]
    fn cwnd_respects_receive_window_cap() {
        let cfg = TcpConfig {
            max_cwnd_bytes: 20_000,
            ..Default::default()
        };
        let mut f = TcpFlow::new(
            FlowId(0),
            HostId(0),
            HostId(1),
            1,
            u64::MAX,
            Time::ZERO,
            cfg,
        );
        let mut ids = 0;
        let mut out = Vec::new();
        f.start_sending(Time::ZERO, &mut ids, &mut out);
        for _round in 0..20 {
            let data: Vec<Packet> = std::mem::take(&mut out);
            let mut acks = Vec::new();
            for p in &data {
                f.on_data(p, Time::from_micros(20), &mut ids, &mut acks);
            }
            for a in &acks {
                f.on_ack(a, Time::from_micros(40), &mut ids, &mut out);
            }
        }
        assert!(f.cwnd_bytes() <= 20_000);
    }
}
