//! CONGA (Alizadeh et al., SIGCOMM 2014): distributed congestion-aware
//! flowlet balancing, modeled at the fidelity the DRILL paper compares
//! against.
//!
//! Mechanisms reproduced:
//!
//! * per-egress-port **DREs** (discounting rate estimators) with 3-bit
//!   quantization against link capacity;
//! * packets carry `(path, ce)` in an overlay tag; every hop maxes its own
//!   DRE into `ce`;
//! * the destination leaf records `ce` in its *congestion-from-leaf* table
//!   and piggybacks one feedback entry per reverse packet, which the source
//!   leaf stores in its *congestion-to-leaf* table — so path-quality
//!   information is delayed by (at least) one round trip, exactly the
//!   control-loop latency the DRILL paper's argument targets;
//! * **flowlet** switching: a flow re-chooses its uplink only after an idle
//!   gap, using `min over paths of max(local DRE, remote CE)`.
//!
//! Simplifications (documented in DESIGN.md): no table aging, and
//! non-leaf switches with upward choices (VL2 aggs) pick by local DRE only
//! (the paper's footnote runs CONGA decisions at ToR+Agg and ECMP at the
//! core; our agg decision uses the local half of CONGA's metric).

use std::io;

use drill_net::Packet;
use drill_net::{HopClass, QueueView, SelectCtx, SwitchId, SwitchPolicy, Topology};
use drill_sim::codec::{invalid, put_f64, put_varint, Decoder};
use drill_sim::{FxHashMap, SimRng, Time};

/// CONGA tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct CongaConfig {
    /// Idle gap after which a flow starts a new flowlet.
    pub flowlet_gap: Time,
    /// DRE time constant (exponential decay).
    pub dre_tau: Time,
    /// Maximum quantized congestion value (3 bits -> 7).
    pub q_max: u8,
}

impl Default for CongaConfig {
    fn default() -> Self {
        CongaConfig {
            flowlet_gap: Time::from_micros(500),
            dre_tau: Time::from_micros(160),
            q_max: 7,
        }
    }
}

/// A discounting rate estimator: X grows with transmitted bytes and decays
/// exponentially with time constant tau.
#[derive(Clone, Copy, Debug, Default)]
struct Dre {
    x: f64,
    last: Time,
}

impl Dre {
    fn decayed(&self, now: Time, tau: Time) -> f64 {
        let dt = now.saturating_sub(self.last).as_nanos() as f64;
        self.x * (-dt / tau.as_nanos() as f64).exp()
    }

    fn add(&mut self, bytes: u32, now: Time, tau: Time) {
        self.x = self.decayed(now, tau) + bytes as f64;
        self.last = now;
    }

    /// Estimated rate in bits/s: steady state X = rate * tau.
    fn rate_bps(&self, now: Time, tau: Time) -> f64 {
        self.decayed(now, tau) * 8.0 / tau.as_secs_f64()
    }
}

/// Per-switch CONGA state.
pub struct CongaPolicy {
    cfg: CongaConfig,
    switch: SwitchId,
    is_leaf: bool,
    /// Per-port DREs and capacities.
    dre: Vec<Dre>,
    port_rate: Vec<u64>,
    /// Port -> uplink index (None for down/host ports).
    uplink_index: Vec<Option<u16>>,
    /// Fabric-wide maximum uplink count (table width).
    max_uplinks: usize,
    /// `[remote_leaf][path]` congestion of *our -> remote* paths (from
    /// feedback). Drives path selection.
    to_table: Vec<Vec<u8>>,
    /// `[remote_leaf][path]` congestion of *remote -> our* paths (measured
    /// here). Source of feedback.
    from_table: Vec<Vec<u8>>,
    /// Per-remote-leaf feedback round-robin pointer.
    fb_ptr: Vec<u16>,
    /// Active flowlets: flow hash -> (last packet time, port).
    flowlets: FxHashMap<u64, (Time, u16)>,
}

impl CongaPolicy {
    /// Build CONGA state for `switch` over the given topology.
    pub fn build(topo: &Topology, switch: SwitchId, cfg: CongaConfig) -> CongaPolicy {
        let n_ports = topo.num_ports(switch);
        let is_leaf = topo.switch_kind(switch) == drill_net::SwitchKind::Leaf;
        let mut uplink_index = vec![None; n_ports];
        let mut port_rate = vec![0u64; n_ports];
        let mut next_uplink = 0u16;
        for p in 0..n_ports as u16 {
            let link = topo.egress(switch, p);
            port_rate[p as usize] = link.rate_bps;
            if matches!(link.hop, HopClass::LeafUp | HopClass::AggUp) {
                uplink_index[p as usize] = Some(next_uplink);
                next_uplink += 1;
            }
        }
        // Fabric-wide maximum uplink count, so tables can index any remote
        // leaf's path ids.
        let max_uplinks = topo
            .leaves()
            .iter()
            .map(|&l| {
                (0..topo.num_ports(l) as u16)
                    .filter(|&p| topo.egress(l, p).hop == HopClass::LeafUp)
                    .count()
            })
            .max()
            .unwrap_or(0)
            .max(1);
        let n_leaves = topo.num_leaves();
        CongaPolicy {
            cfg,
            switch,
            is_leaf,
            dre: vec![Dre::default(); n_ports],
            port_rate,
            uplink_index,
            max_uplinks,
            to_table: vec![vec![0; max_uplinks]; n_leaves],
            from_table: vec![vec![0; max_uplinks]; n_leaves],
            fb_ptr: vec![0; n_leaves],
            flowlets: FxHashMap::default(),
        }
    }

    fn quantize(&self, port: u16, now: Time) -> u8 {
        let rate = self.dre[port as usize].rate_bps(now, self.cfg.dre_tau);
        let cap = self.port_rate[port as usize] as f64;
        let q = (rate / cap * (self.cfg.q_max as f64 + 1.0)).floor();
        (q as u8).min(self.cfg.q_max)
    }

    /// Congestion-to-leaf table entry (tests/diagnostics).
    pub fn congestion_to(&self, leaf: u32, path: u16) -> u8 {
        self.to_table[leaf as usize][path as usize]
    }

    /// Congestion-from-leaf table entry (tests/diagnostics).
    pub fn congestion_from(&self, leaf: u32, path: u16) -> u8 {
        self.from_table[leaf as usize][path as usize]
    }

    /// Number of live flowlet entries (tests/diagnostics).
    pub fn active_flowlets(&self) -> usize {
        self.flowlets.len()
    }
}

impl SwitchPolicy for CongaPolicy {
    fn select(&mut self, ctx: &SelectCtx<'_>, _q: &dyn QueueView, rng: &mut SimRng) -> u16 {
        // Flowlet stickiness.
        if let Some(&(last, port)) = self.flowlets.get(&ctx.flow_hash) {
            if ctx.now.saturating_sub(last) < self.cfg.flowlet_gap && ctx.candidates.contains(&port)
            {
                self.flowlets.insert(ctx.flow_hash, (ctx.now, port));
                return port;
            }
        }
        // New flowlet: min over candidates of max(local DRE, remote CE).
        let mut best: Vec<u16> = Vec::new();
        let mut best_metric = u8::MAX;
        for &p in ctx.candidates {
            let local = self.quantize(p, ctx.now);
            // Leaf-to-leaf feedback only exists at leaves; transit switches
            // with upward choices (VL2 aggs) use their local DREs (the
            // core applies ECMP-like decisions in the paper's footnote).
            let remote = if self.is_leaf {
                self.uplink_index[p as usize]
                    .and_then(|u| {
                        self.to_table[ctx.dst_leaf as usize]
                            .get(u as usize)
                            .copied()
                    })
                    .unwrap_or(0)
            } else {
                0
            };
            let metric = local.max(remote);
            match metric.cmp(&best_metric) {
                std::cmp::Ordering::Less => {
                    best_metric = metric;
                    best.clear();
                    best.push(p);
                }
                std::cmp::Ordering::Equal => best.push(p),
                std::cmp::Ordering::Greater => {}
            }
        }
        let chosen = best[rng.below(best.len())];
        self.flowlets.insert(ctx.flow_hash, (ctx.now, chosen));
        chosen
    }

    fn on_forward(
        &mut self,
        pkt: &mut Packet,
        port: u16,
        now: Time,
        topo: &Topology,
        _switch: SwitchId,
        from_host: bool,
    ) {
        self.dre[port as usize].add(pkt.size, now, self.cfg.dre_tau);
        let ce_here = self.quantize(port, now);
        let uplink = self.uplink_index[port as usize];
        if self.is_leaf && from_host {
            if let Some(u) = uplink {
                // Source leaf: stamp the path tag and attach feedback.
                pkt.conga.path = u;
                pkt.conga.ce = ce_here;
                let dst_leaf = topo.host_leaf_index(pkt.dst) as usize;
                let ptr = self.fb_ptr[dst_leaf];
                pkt.conga.fb_path = ptr;
                pkt.conga.fb_ce = self.from_table[dst_leaf][ptr as usize];
                pkt.conga.fb_valid = true;
                self.fb_ptr[dst_leaf] = (ptr + 1) % self.max_uplinks as u16;
            }
        } else {
            // Transit hop: aggregate the congestion extent.
            pkt.conga.ce = pkt.conga.ce.max(ce_here);
        }
    }

    fn on_arrival(&mut self, pkt: &mut Packet, _now: Time, topo: &Topology, switch: SwitchId) {
        if !self.is_leaf || topo.host_leaf(pkt.dst) != switch {
            return;
        }
        let src_leaf = topo.host_leaf_index(pkt.src) as usize;
        if SwitchId(self.switch.0) == topo.host_leaf(pkt.src) {
            return; // intra-leaf traffic carries no fabric metrics
        }
        if (pkt.conga.path as usize) < self.max_uplinks {
            self.from_table[src_leaf][pkt.conga.path as usize] = pkt.conga.ce;
        }
        if pkt.conga.fb_valid && (pkt.conga.fb_path as usize) < self.max_uplinks {
            self.to_table[src_leaf][pkt.conga.fb_path as usize] = pkt.conga.fb_ce;
        }
    }

    fn save_state(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.dre.len() as u64);
        for d in &self.dre {
            put_f64(buf, d.x);
            put_varint(buf, d.last.as_nanos());
        }
        for table in [&self.to_table, &self.from_table] {
            put_varint(buf, table.len() as u64);
            for row in table.iter() {
                put_varint(buf, row.len() as u64);
                buf.extend_from_slice(row);
            }
        }
        put_varint(buf, self.fb_ptr.len() as u64);
        for &p in &self.fb_ptr {
            put_varint(buf, p as u64);
        }
        // Sort: FxHashMap iteration order depends on insertion history.
        let mut fl: Vec<(u64, (Time, u16))> = self.flowlets.iter().map(|(&h, &v)| (h, v)).collect();
        fl.sort_unstable_by_key(|&(h, _)| h);
        put_varint(buf, fl.len() as u64);
        for (h, (last, port)) in fl {
            put_varint(buf, h);
            put_varint(buf, last.as_nanos());
            put_varint(buf, port as u64);
        }
    }

    fn load_state(&mut self, d: &mut Decoder<'_>) -> io::Result<()> {
        if d.varint_usize()? != self.dre.len() {
            return Err(invalid("CONGA DRE count mismatch"));
        }
        for dre in &mut self.dre {
            dre.x = d.f64_fixed()?;
            dre.last = Time::from_nanos(d.varint()?);
        }
        for table in [&mut self.to_table, &mut self.from_table] {
            if d.varint_usize()? != table.len() {
                return Err(invalid("CONGA table leaf count mismatch"));
            }
            for row in table.iter_mut() {
                let w = d.varint_usize()?;
                if w != row.len() {
                    return Err(invalid("CONGA table width mismatch"));
                }
                row.copy_from_slice(d.bytes(w)?);
            }
        }
        if d.varint_usize()? != self.fb_ptr.len() {
            return Err(invalid("CONGA feedback pointer count mismatch"));
        }
        for p in &mut self.fb_ptr {
            *p = d.varint_u16()?;
        }
        let n = d.varint_usize()?;
        self.flowlets.clear();
        for _ in 0..n {
            let h = d.varint()?;
            let last = Time::from_nanos(d.varint()?);
            let port = d.varint_u16()?;
            self.flowlets.insert(h, (last, port));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drill_net::{leaf_spine, FlowId, HostId, LeafSpineSpec, RouteTable, DEFAULT_PROP};

    fn topo() -> (Topology, RouteTable) {
        let t = leaf_spine(&LeafSpineSpec {
            spines: 4,
            leaves: 2,
            hosts_per_leaf: 2,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        });
        let r = RouteTable::compute(&t);
        (t, r)
    }

    struct NoQueues;
    impl QueueView for NoQueues {
        fn visible_bytes(&self, _p: u16) -> u64 {
            0
        }
        fn visible_pkts(&self, _p: u16) -> u32 {
            0
        }
        fn num_ports(&self) -> usize {
            8
        }
    }

    fn ctx(candidates: &[u16], flow_hash: u64, now: Time) -> SelectCtx<'_> {
        SelectCtx {
            now,
            engine: 0,
            flow_hash,
            flow: FlowId(0),
            dst_leaf: 1,
            candidates,
        }
    }

    fn data_pkt(src: HostId, dst: HostId) -> Packet {
        Packet::data(1, FlowId(0), src, dst, 0xafaf, 0, 1460, Time::ZERO)
    }

    #[test]
    fn dre_decays() {
        let mut d = Dre::default();
        let tau = Time::from_micros(160);
        d.add(150_000, Time::ZERO, tau);
        let r0 = d.rate_bps(Time::ZERO, tau);
        let r1 = d.rate_bps(Time::from_micros(160), tau);
        let r2 = d.rate_bps(Time::from_micros(1600), tau);
        assert!(r0 > r1 && r1 > r2);
        assert!((r1 / r0 - (-1.0f64).exp()).abs() < 1e-9, "one tau = e^-1");
        assert!(r2 / r0 < 1e-4);
    }

    #[test]
    fn flowlet_sticks_within_gap() {
        let (t, _r) = topo();
        let leaf = t.leaves()[0];
        let mut c = CongaPolicy::build(&t, leaf, CongaConfig::default());
        let mut rng = SimRng::seed_from(1);
        let cand = [0u16, 1, 2, 3];
        let first = c.select(&ctx(&cand, 7, Time::ZERO), &NoQueues, &mut rng);
        // Within the 500us gap the flow never moves, regardless of load.
        for k in 1..50u64 {
            let now = Time::from_micros(k * 9);
            assert_eq!(c.select(&ctx(&cand, 7, now), &NoQueues, &mut rng), first);
        }
        assert_eq!(c.active_flowlets(), 1);
    }

    #[test]
    fn new_flowlet_after_gap_can_move() {
        let (t, _r) = topo();
        let leaf = t.leaves()[0];
        let mut c = CongaPolicy::build(&t, leaf, CongaConfig::default());
        let mut rng = SimRng::seed_from(2);
        let cand = [0u16, 1, 2, 3];
        let first = c.select(&ctx(&cand, 7, Time::ZERO), &NoQueues, &mut rng);
        // Make the chosen path look congested remotely.
        let u = c.uplink_index[first as usize].unwrap();
        c.to_table[1][u as usize] = 7;
        let later = Time::from_millis(10); // > gap
        let second = c.select(&ctx(&cand, 7, later), &NoQueues, &mut rng);
        assert_ne!(second, first, "congested path avoided for the new flowlet");
    }

    #[test]
    fn selection_minimizes_max_of_local_and_remote() {
        let (t, _r) = topo();
        let leaf = t.leaves()[0];
        let mut c = CongaPolicy::build(&t, leaf, CongaConfig::default());
        let mut rng = SimRng::seed_from(3);
        let cand = [0u16, 1];
        // Remote says path of port0 is 5; make port1's local DRE ~6/8 of
        // capacity: it should still lose (6 > 5)... then pick port0.
        c.to_table[1][c.uplink_index[0].unwrap() as usize] = 5;
        // Saturate port 1's DRE: rate ~= capacity -> q = 7.
        let now = Time::from_micros(100);
        for _ in 0..2000 {
            c.dre[1].add(1500, now, c.cfg.dre_tau);
        }
        let pick = c.select(&ctx(&cand, 9, now), &NoQueues, &mut rng);
        assert_eq!(pick, 0, "max(0,5) < max(7,0)");
    }

    #[test]
    fn feedback_roundtrip_updates_to_table() {
        let (t, _r) = topo();
        let leaf0 = t.leaves()[0];
        let leaf1 = t.leaves()[1];
        let mut a = CongaPolicy::build(&t, leaf0, CongaConfig::default());
        let mut b = CongaPolicy::build(&t, leaf1, CongaConfig::default());
        // Host0 (leaf0) -> host2 (leaf1). A stamps path/ce on forward.
        let mut fwd = data_pkt(HostId(0), HostId(2));
        // Saturate A's port 0 DRE so ce > 0.
        for _ in 0..2000 {
            a.dre[0].add(1500, Time::from_micros(50), a.cfg.dre_tau);
        }
        a.on_forward(&mut fwd, 0, Time::from_micros(50), &t, leaf0, true);
        assert!(fwd.conga.ce > 0);
        assert_eq!(fwd.conga.path, a.uplink_index[0].unwrap());
        // B receives: from-table records A->B congestion on that path.
        b.on_arrival(&mut fwd, Time::from_micros(60), &t, leaf1);
        assert_eq!(b.congestion_from(0, fwd.conga.path), fwd.conga.ce);
        // B sends a reverse packet to A, piggybacking feedback about the
        // A->B path it just measured (fb pointer cycles; force it).
        b.fb_ptr[0] = fwd.conga.path;
        let mut rev = data_pkt(HostId(2), HostId(0));
        b.on_forward(&mut rev, 0, Time::from_micros(70), &t, leaf1, true);
        assert!(rev.conga.fb_valid);
        assert_eq!(rev.conga.fb_path, fwd.conga.path);
        assert_eq!(rev.conga.fb_ce, fwd.conga.ce);
        // A receives the reverse packet: to-table now knows the congestion.
        a.on_arrival(&mut rev, Time::from_micros(80), &t, leaf0);
        assert_eq!(a.congestion_to(1, fwd.conga.path), fwd.conga.ce);
    }

    #[test]
    fn transit_hop_maxes_ce() {
        let (t, _r) = topo();
        // Spine (id 2) is not a leaf: on_forward must only aggregate.
        let spine = SwitchId(2);
        let mut s = CongaPolicy::build(&t, spine, CongaConfig::default());
        let mut pkt = data_pkt(HostId(0), HostId(2));
        pkt.conga.ce = 3;
        s.on_forward(&mut pkt, 0, Time::ZERO, &t, spine, false);
        assert!(pkt.conga.ce >= 3, "never decreases");
        // Saturate the spine's DRE and check it raises ce.
        for _ in 0..4000 {
            s.dre[1].add(1500, Time::from_micros(10), s.cfg.dre_tau);
        }
        let mut pkt2 = data_pkt(HostId(0), HostId(2));
        pkt2.conga.ce = 1;
        s.on_forward(&mut pkt2, 1, Time::from_micros(10), &t, spine, false);
        assert!(pkt2.conga.ce > 1);
    }

    #[test]
    fn quantization_is_three_bits() {
        let (t, _r) = topo();
        let leaf = t.leaves()[0];
        let mut c = CongaPolicy::build(&t, leaf, CongaConfig::default());
        assert_eq!(c.quantize(0, Time::ZERO), 0, "idle port");
        for _ in 0..100_000 {
            c.dre[0].add(15_000, Time::from_micros(10), c.cfg.dre_tau);
        }
        assert_eq!(
            c.quantize(0, Time::from_micros(10)),
            7,
            "saturated port caps at 7"
        );
    }

    #[test]
    fn uplink_detection() {
        let (t, _r) = topo();
        let leaf = t.leaves()[0];
        let c = CongaPolicy::build(&t, leaf, CongaConfig::default());
        // 4 spine ports then 2 host ports.
        assert_eq!(c.uplink_index[0], Some(0));
        assert_eq!(c.uplink_index[3], Some(3));
        assert_eq!(c.uplink_index[4], None);
        assert_eq!(c.max_uplinks, 4);
    }
}
