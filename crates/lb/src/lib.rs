//! Baseline load balancers the paper compares DRILL against.
//!
//! Switch-side policies (implement [`drill_net::SwitchPolicy`]):
//!
//! * [`EcmpPolicy`] — hash the flow onto one candidate; per-flow pinning,
//!   load-oblivious (the deployed default the paper starts from).
//! * [`RandomPolicy`] — "Per-packet Random": uniform random candidate per
//!   packet, load-oblivious.
//! * [`RoundRobinPolicy`] — "Per-packet RR": per-engine round robin over
//!   the candidates, load-oblivious.
//! * [`WcmpPolicy`] — weighted ECMP with static capacity-derived weights.
//! * [`CongaPolicy`] — flowlet switching using in-network congestion
//!   feedback (DREs + leaf-to-leaf congestion tables).
//!
//! Host-side policy:
//!
//! * [`PrestoHostPolicy`] — 64 KB flowcells source-routed round-robin
//!   (weighted after failures) across all shortest paths.

#![warn(missing_docs)]

mod conga;
mod presto;
mod simple;
mod wcmp;

pub use conga::{CongaConfig, CongaPolicy};
pub use presto::{PrestoHostPolicy, FLOWCELL_BYTES};
pub use simple::{EcmpPolicy, RandomPolicy, RoundRobinPolicy};
pub use wcmp::WcmpPolicy;
