//! Load-oblivious baselines: ECMP, per-packet Random, per-packet RR.

use std::io;

use drill_net::{QueueView, SelectCtx, SwitchPolicy};
use drill_sim::codec::{invalid, put_varint, Decoder};
use drill_sim::SimRng;

/// Classic ECMP: the flow's 5-tuple hash picks one candidate; every packet
/// of the flow follows it. Stateless and load-oblivious.
pub struct EcmpPolicy;

impl SwitchPolicy for EcmpPolicy {
    fn select(&mut self, ctx: &SelectCtx<'_>, _q: &dyn QueueView, _rng: &mut SimRng) -> u16 {
        ctx.candidates[(ctx.flow_hash % ctx.candidates.len() as u64) as usize]
    }
}

/// "Per-packet Random" (§3.1): every packet takes a uniform-random
/// candidate, independent of load. Equivalent to DRILL(1, 0).
pub struct RandomPolicy;

impl SwitchPolicy for RandomPolicy {
    fn select(&mut self, ctx: &SelectCtx<'_>, _q: &dyn QueueView, rng: &mut SimRng) -> u16 {
        ctx.candidates[rng.below(ctx.candidates.len())]
    }
}

/// "Per-packet Round Robin" (§4): each engine cycles through the
/// candidates. Load-oblivious, but less bursty than Random per engine;
/// many engines cycling independently still collide (Figure 2).
pub struct RoundRobinPolicy {
    counters: Vec<u64>,
}

impl RoundRobinPolicy {
    /// Round-robin state for `engines` forwarding engines.
    pub fn new(engines: usize) -> RoundRobinPolicy {
        assert!(engines >= 1);
        RoundRobinPolicy {
            counters: vec![0; engines],
        }
    }
}

impl SwitchPolicy for RoundRobinPolicy {
    fn select(&mut self, ctx: &SelectCtx<'_>, _q: &dyn QueueView, _rng: &mut SimRng) -> u16 {
        let c = &mut self.counters[ctx.engine];
        let pick = ctx.candidates[(*c % ctx.candidates.len() as u64) as usize];
        *c += 1;
        pick
    }

    fn save_state(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.counters.len() as u64);
        for &c in &self.counters {
            put_varint(buf, c);
        }
    }

    fn load_state(&mut self, d: &mut Decoder<'_>) -> io::Result<()> {
        if d.varint_usize()? != self.counters.len() {
            return Err(invalid("round-robin engine count mismatch"));
        }
        for c in &mut self.counters {
            *c = d.varint()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drill_net::FlowId;
    use drill_sim::Time;

    struct NoQueues;
    impl QueueView for NoQueues {
        fn visible_bytes(&self, _p: u16) -> u64 {
            0
        }
        fn visible_pkts(&self, _p: u16) -> u32 {
            0
        }
        fn num_ports(&self) -> usize {
            8
        }
    }

    fn ctx(candidates: &[u16], flow_hash: u64, engine: usize) -> SelectCtx<'_> {
        SelectCtx {
            now: Time::ZERO,
            engine,
            flow_hash,
            flow: FlowId(0),
            dst_leaf: 0,
            candidates,
        }
    }

    #[test]
    fn ecmp_pins_flows() {
        let mut p = EcmpPolicy;
        let mut rng = SimRng::seed_from(1);
        let cand = [3u16, 5, 7];
        let first = p.select(&ctx(&cand, 0xabcd, 0), &NoQueues, &mut rng);
        for _ in 0..20 {
            assert_eq!(p.select(&ctx(&cand, 0xabcd, 0), &NoQueues, &mut rng), first);
        }
        // Different flows spread over candidates.
        let mut seen = std::collections::HashSet::new();
        for h in 0..64u64 {
            seen.insert(p.select(
                &ctx(&cand, h.wrapping_mul(0x9e3779b97f4a7c15), 0),
                &NoQueues,
                &mut rng,
            ));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn random_spreads_per_packet() {
        let mut p = RandomPolicy;
        let mut rng = SimRng::seed_from(2);
        let cand = [0u16, 1];
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[p.select(&ctx(&cand, 42, 0), &NoQueues, &mut rng) as usize] += 1;
        }
        let frac = counts[0] as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "{frac}");
    }

    #[test]
    fn rr_cycles_per_engine() {
        let mut p = RoundRobinPolicy::new(2);
        let mut rng = SimRng::seed_from(3);
        let cand = [10u16, 11, 12];
        let seq0: Vec<u16> = (0..6)
            .map(|_| p.select(&ctx(&cand, 1, 0), &NoQueues, &mut rng))
            .collect();
        assert_eq!(seq0, vec![10, 11, 12, 10, 11, 12]);
        // Engine 1 has its own counter, starting fresh.
        let one = p.select(&ctx(&cand, 1, 1), &NoQueues, &mut rng);
        assert_eq!(one, 10);
    }

    #[test]
    fn rr_handles_changing_candidate_sets() {
        let mut p = RoundRobinPolicy::new(1);
        let mut rng = SimRng::seed_from(4);
        p.select(&ctx(&[0, 1, 2], 1, 0), &NoQueues, &mut rng);
        // Candidate set shrinks (failure): selection must stay in range.
        for _ in 0..10 {
            let s = p.select(&ctx(&[5, 6], 1, 0), &NoQueues, &mut rng);
            assert!(s == 5 || s == 6);
        }
    }
}
