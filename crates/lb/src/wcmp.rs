//! WCMP (Zhou et al., EuroSys 2014): ECMP with static per-port weights
//! proportional to the capacity of the paths behind each port.

use drill_core::enumerate_shortest_paths;
use drill_net::{QueueView, RouteTable, SelectCtx, SwitchId, SwitchPolicy, Topology};
use drill_sim::{FxHashMap, SimRng};

/// Weighted-cost multipath: per (destination leaf, port) weights derived
/// from aggregate shortest-path capacity, flows hashed proportionally.
/// Load-oblivious but asymmetry-aware — the paper's comparison point in
/// the heterogeneous topology experiment (Figure 13).
pub struct WcmpPolicy {
    /// `[dst_leaf] -> (ports, cumulative weights)` (parallel vectors).
    weights: Vec<FxHashMap<u16, u64>>,
}

impl WcmpPolicy {
    /// Compute weights for `switch` from the current topology and routes.
    /// Rebuild after failures (WCMP's controller does the same).
    pub fn build(topo: &Topology, routes: &RouteTable, switch: SwitchId) -> WcmpPolicy {
        let n_leaves = topo.num_leaves();
        let mut weights = vec![FxHashMap::default(); n_leaves];
        for dst_leaf in 0..n_leaves as u32 {
            if routes.candidates(switch, dst_leaf).len() < 2 {
                continue;
            }
            let per_port: &mut FxHashMap<u16, u64> = &mut weights[dst_leaf as usize];
            for path in enumerate_shortest_paths(topo, routes, switch, dst_leaf, 1 << 16) {
                let cap = path
                    .iter()
                    .map(|&l| topo.link(l).rate_bps)
                    .min()
                    .unwrap_or(0);
                let port = topo.link(path[0]).src_port;
                // Weigh in Gbps units to keep numbers small.
                *per_port.entry(port).or_insert(0) += cap / 1_000_000_000;
            }
        }
        WcmpPolicy { weights }
    }

    /// The weight of `port` toward `dst_leaf` (test access).
    pub fn weight(&self, dst_leaf: u32, port: u16) -> u64 {
        self.weights[dst_leaf as usize]
            .get(&port)
            .copied()
            .unwrap_or(0)
    }
}

impl SwitchPolicy for WcmpPolicy {
    fn select(&mut self, ctx: &SelectCtx<'_>, _q: &dyn QueueView, _rng: &mut SimRng) -> u16 {
        let table = &self.weights[ctx.dst_leaf as usize];
        let total: u64 = ctx
            .candidates
            .iter()
            .map(|p| table.get(p).copied().unwrap_or(1))
            .sum();
        if total == 0 {
            return ctx.candidates[(ctx.flow_hash % ctx.candidates.len() as u64) as usize];
        }
        // Mix the hash so WCMP's pick decorrelates from other hash users.
        let mut x = ctx.flow_hash ^ 0x2545_f491_4f6c_dd1d;
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        let mut r = x % total;
        for &p in ctx.candidates {
            let w = table.get(&p).copied().unwrap_or(1);
            if r < w {
                return p;
            }
            r -= w;
        }
        *ctx.candidates.last().expect("non-empty candidates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drill_net::{leaf_spine_custom, FlowId, LeafSpineSpec, DEFAULT_PROP};
    use drill_sim::Time;

    struct NoQueues;
    impl QueueView for NoQueues {
        fn visible_bytes(&self, _p: u16) -> u64 {
            0
        }
        fn visible_pkts(&self, _p: u16) -> u32 {
            0
        }
        fn num_ports(&self) -> usize {
            16
        }
    }

    fn hetero() -> (Topology, RouteTable) {
        // Leaf 0 reaches spine 0 at 40G and spines 1, 2 at 10G each.
        let spec = LeafSpineSpec {
            spines: 3,
            leaves: 3,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let topo = leaf_spine_custom(&spec, |l, s| {
            vec![if l == 0 && s == 0 {
                40_000_000_000
            } else {
                10_000_000_000
            }]
        });
        let routes = RouteTable::compute(&topo);
        (topo, routes)
    }

    #[test]
    fn weights_follow_capacity() {
        let (topo, routes) = hetero();
        let l0 = topo.leaves()[0];
        let w = WcmpPolicy::build(&topo, &routes, l0);
        // Path via spine 0 bottlenecked by the 10G down-link: cap 10.
        // All three paths end up 10 Gbps.
        assert_eq!(w.weight(1, 0), 10);
        assert_eq!(w.weight(1, 1), 10);
        // But from leaf 1, the path to leaf 0 via spine 0 has a 40G tail
        // yet a 10G head: still 10.
        let l1 = topo.leaves()[1];
        let w1 = WcmpPolicy::build(&topo, &routes, l1);
        assert_eq!(w1.weight(0, 0), 10);
    }

    #[test]
    fn selection_tracks_weights_statistically() {
        // Give leaf 0 a fat 40G link to spine 0 *and* fat down-links so the
        // path capacity really differs: use a custom topo where l0-s0 and
        // s0-l1 are 40G.
        let spec = LeafSpineSpec {
            spines: 2,
            leaves: 2,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let topo = leaf_spine_custom(&spec, |_l, s| {
            vec![if s == 0 {
                40_000_000_000
            } else {
                10_000_000_000
            }]
        });
        let routes = RouteTable::compute(&topo);
        let l0 = topo.leaves()[0];
        let mut w = WcmpPolicy::build(&topo, &routes, l0);
        assert_eq!(w.weight(1, 0), 40);
        assert_eq!(w.weight(1, 1), 10);
        let cand = routes.candidates(l0, 1).to_vec();
        let mut rng = SimRng::seed_from(5);
        let mut fat = 0;
        let n = 20_000;
        for h in 0..n as u64 {
            let ctx = SelectCtx {
                now: Time::ZERO,
                engine: 0,
                flow_hash: h.wrapping_mul(0x9e3779b97f4a7c15),
                flow: FlowId(h as u32),
                dst_leaf: 1,
                candidates: &cand,
            };
            if w.select(&ctx, &NoQueues, &mut rng) == 0 {
                fat += 1;
            }
        }
        let frac = fat as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "fat path gets 80%: {frac}");
    }

    #[test]
    fn per_flow_deterministic() {
        let (topo, routes) = hetero();
        let l0 = topo.leaves()[0];
        let mut w = WcmpPolicy::build(&topo, &routes, l0);
        let cand = routes.candidates(l0, 1).to_vec();
        let mut rng = SimRng::seed_from(6);
        let ctx = SelectCtx {
            now: Time::ZERO,
            engine: 0,
            flow_hash: 0xfeed,
            flow: FlowId(1),
            dst_leaf: 1,
            candidates: &cand,
        };
        let first = w.select(&ctx, &NoQueues, &mut rng);
        for _ in 0..10 {
            assert_eq!(w.select(&ctx, &NoQueues, &mut rng), first);
        }
    }
}
