//! Presto (He et al., SIGCOMM 2015): edge-based, load-oblivious load
//! balancing of 64 KB *flowcells*.
//!
//! The sending host (vSwitch in the original) chops each flow into 64 KB
//! cells in sequence space and source-routes consecutive cells round-robin
//! across all shortest paths. After failures, a controller prunes affected
//! paths and reweights the rest *statically* by path capacity (the paper's
//! §3.4 discussion: this is exactly what cannot adapt to load).

use std::io;

use drill_core::enumerate_shortest_paths;
use drill_net::{FlowId, HostId, HostPolicy, NodeRef, Packet, RouteTable, Topology};
use drill_sim::codec::{put_varint, Decoder};
use drill_sim::{FxHashMap, SimRng, Time};

/// Presto's flowcell size (one maximal TSO segment).
pub const FLOWCELL_BYTES: u64 = 64 * 1024;

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[derive(Clone, Debug)]
struct PathChoice {
    /// Transit switch ids between source leaf and destination leaf.
    hops: Vec<u32>,
    /// Static path capacity (bottleneck link, in Gbps), for failover
    /// weighting.
    weight: u64,
}

/// Per-sending-host Presto state.
///
/// Cells are identified by sequence-space position (`seq / 64 KB`), so
/// retransmissions deterministically re-use their original cell's path.
pub struct PrestoHostPolicy {
    /// `[dst_leaf] -> usable paths` (pruned + weighted at build time).
    paths: Vec<Vec<PathChoice>>,
    /// `[dst_leaf] -> total weight`.
    totals: Vec<u64>,
    /// Per-flow random starting offset, so concurrent flows don't
    /// synchronize their round robins.
    offsets: FxHashMap<FlowId, u64>,
    /// Destination host -> leaf index (captured from the topology).
    leaf_of: Vec<u32>,
    my_leaf: u32,
}

impl PrestoHostPolicy {
    /// Build the host's path tables from the current topology/routes.
    /// Rebuild after failures (Presto's centralized failover).
    pub fn build(topo: &Topology, routes: &RouteTable, host: HostId) -> PrestoHostPolicy {
        let my_leaf_switch = topo.host_leaf(host);
        let my_leaf = topo.host_leaf_index(host);
        let n_leaves = topo.num_leaves();
        let mut paths = vec![Vec::new(); n_leaves];
        let mut totals = vec![0u64; n_leaves];
        for dst_leaf in 0..n_leaves as u32 {
            if dst_leaf == my_leaf {
                continue;
            }
            for links in enumerate_shortest_paths(topo, routes, my_leaf_switch, dst_leaf, 1 << 14) {
                let cap = links
                    .iter()
                    .map(|&l| topo.link(l).rate_bps)
                    .min()
                    .unwrap_or(0);
                // Transit hops: destination switches of every link except
                // the final one into the destination leaf.
                let hops: Vec<u32> = links[..links.len() - 1]
                    .iter()
                    .filter_map(|&l| match topo.link(l).dst {
                        NodeRef::Switch(s) => Some(s.0),
                        NodeRef::Host(_) => None,
                    })
                    .collect();
                let weight = (cap / 1_000_000_000).max(1);
                paths[dst_leaf as usize].push(PathChoice { hops, weight });
            }
            // Reduce weights by their gcd so equal-capacity paths yield a
            // pure packet... cell-level round robin (weight 1 each) rather
            // than long per-path runs of cells.
            let g = paths[dst_leaf as usize]
                .iter()
                .fold(0u64, |acc, p| gcd(acc, p.weight));
            for p in &mut paths[dst_leaf as usize] {
                p.weight /= g.max(1);
                totals[dst_leaf as usize] += p.weight;
            }
        }
        let leaf_of = (0..topo.num_hosts() as u32)
            .map(|h| topo.host_leaf_index(HostId(h)))
            .collect();
        PrestoHostPolicy {
            paths,
            totals,
            offsets: FxHashMap::default(),
            leaf_of,
            my_leaf,
        }
    }

    /// Number of usable paths toward `dst_leaf` (diagnostics).
    pub fn num_paths(&self, dst_leaf: u32) -> usize {
        self.paths[dst_leaf as usize].len()
    }

    /// The `k`-th element of the weighted cyclic path sequence: paths
    /// appear proportionally to their weights. Equal weights degrade to
    /// pure round robin.
    fn pick(&self, dst_leaf: u32, k: u64) -> Option<&PathChoice> {
        let total = self.totals[dst_leaf as usize];
        if total == 0 {
            return None;
        }
        let mut r = k % total;
        for p in &self.paths[dst_leaf as usize] {
            if r < p.weight {
                return Some(p);
            }
            r -= p.weight;
        }
        None
    }
}

impl HostPolicy for PrestoHostPolicy {
    fn on_send(&mut self, pkt: &mut Packet, _now: Time, rng: &mut SimRng) {
        // Pure ACKs are not flowcell traffic; they follow ordinary ECMP, as
        // the reverse direction does in Presto.
        if !pkt.is_data() {
            return;
        }
        let dst_leaf = self.leaf_of[pkt.dst.index()];
        if dst_leaf == self.my_leaf {
            return; // never enters the fabric
        }
        let cell = pkt.seq / FLOWCELL_BYTES;
        let offset = *self
            .offsets
            .entry(pkt.flow)
            .or_insert_with(|| rng.next_u64() % 1024);
        if let Some(path) = self.pick(dst_leaf, offset.wrapping_add(cell)) {
            for &h in &path.hops {
                pkt.push_route(h);
            }
        }
    }

    fn save_state(&self, buf: &mut Vec<u8>) {
        // Sort: FxHashMap iteration order depends on insertion history.
        let mut offs: Vec<(FlowId, u64)> = self.offsets.iter().map(|(&f, &o)| (f, o)).collect();
        offs.sort_unstable_by_key(|&(f, _)| f.0);
        put_varint(buf, offs.len() as u64);
        for (f, o) in offs {
            put_varint(buf, f.0 as u64);
            put_varint(buf, o);
        }
    }

    fn load_state(&mut self, d: &mut Decoder<'_>) -> io::Result<()> {
        let n = d.varint_usize()?;
        self.offsets.clear();
        for _ in 0..n {
            let f = FlowId(d.varint_u32()?);
            let o = d.varint()?;
            self.offsets.insert(f, o);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drill_net::{leaf_spine, vl2, LeafSpineSpec, SwitchId, Vl2Spec, DEFAULT_PROP};

    fn topo4() -> (Topology, RouteTable) {
        let topo = leaf_spine(&LeafSpineSpec {
            spines: 4,
            leaves: 2,
            hosts_per_leaf: 2,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        });
        let routes = RouteTable::compute(&topo);
        (topo, routes)
    }

    fn data_pkt(flow: u32, dst: HostId, seq: u64) -> Packet {
        Packet::data(
            1,
            FlowId(flow),
            HostId(0),
            dst,
            0xbeef,
            seq,
            1460,
            Time::ZERO,
        )
    }

    #[test]
    fn cells_round_robin_across_spines() {
        let (topo, routes) = topo4();
        let mut p = PrestoHostPolicy::build(&topo, &routes, HostId(0));
        assert_eq!(p.num_paths(1), 4);
        let mut rng = SimRng::seed_from(1);
        let mut spines = Vec::new();
        for cell in 0..8u64 {
            let mut pkt = data_pkt(1, HostId(2), cell * FLOWCELL_BYTES);
            p.on_send(&mut pkt, Time::ZERO, &mut rng);
            assert_eq!(pkt.srcroute_len, 1);
            spines.push(pkt.srcroute[0]);
        }
        // Consecutive cells hit distinct spines, wrapping around: the two
        // halves of the sequence are identical and each half covers all 4.
        assert_eq!(spines[..4], spines[4..]);
        let mut uniq = spines[..4].to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
    }

    #[test]
    fn packets_within_cell_share_path() {
        let (topo, routes) = topo4();
        let mut p = PrestoHostPolicy::build(&topo, &routes, HostId(0));
        let mut rng = SimRng::seed_from(2);
        let mut first = data_pkt(1, HostId(2), 0);
        p.on_send(&mut first, Time::ZERO, &mut rng);
        for seq in [1460u64, 20_000, FLOWCELL_BYTES - 1] {
            let mut pkt = data_pkt(1, HostId(2), seq);
            p.on_send(&mut pkt, Time::ZERO, &mut rng);
            assert_eq!(pkt.srcroute[0], first.srcroute[0], "same cell, same path");
        }
        let mut next_cell = data_pkt(1, HostId(2), FLOWCELL_BYTES);
        p.on_send(&mut next_cell, Time::ZERO, &mut rng);
        assert_ne!(
            next_cell.srcroute[0], first.srcroute[0],
            "next cell moves on"
        );
    }

    #[test]
    fn acks_and_local_traffic_untagged() {
        let (topo, routes) = topo4();
        let mut p = PrestoHostPolicy::build(&topo, &routes, HostId(0));
        let mut rng = SimRng::seed_from(3);
        let mut ack =
            Packet::pure_ack(1, FlowId(1), HostId(0), HostId(2), 0xbeef, 1460, Time::ZERO);
        p.on_send(&mut ack, Time::ZERO, &mut rng);
        assert_eq!(ack.srcroute_len, 0);
        // Host 1 is on our own leaf.
        let mut local = data_pkt(2, HostId(1), 0);
        p.on_send(&mut local, Time::ZERO, &mut rng);
        assert_eq!(local.srcroute_len, 0);
    }

    #[test]
    fn failover_prunes_and_reweights() {
        let (mut topo, _) = topo4();
        let l1 = topo.leaves()[1];
        // Fail spine0 - leaf1: paths via spine 0 no longer reach leaf 1.
        assert!(
            topo.fail_switch_link(SwitchId(2), l1, 0) || topo.fail_switch_link(l1, SwitchId(2), 0)
        );
        let routes = RouteTable::compute(&topo);
        let p = PrestoHostPolicy::build(&topo, &routes, HostId(0));
        assert_eq!(p.num_paths(1), 3, "pruned to three paths");
    }

    #[test]
    fn vl2_paths_have_three_transit_hops() {
        let topo = vl2(&Vl2Spec::paper());
        let routes = RouteTable::compute(&topo);
        let mut p = PrestoHostPolicy::build(&topo, &routes, HostId(0));
        // Toward a ToR with disjoint aggs: 2 aggs x 4 ints x 2 down-aggs...
        // enumerated from the routing DAG; every path carries 3 transit
        // hops (agg, int, agg).
        let mut rng = SimRng::seed_from(4);
        // Host 0 is on ToR 0; pick a host on ToR 1 (disjoint aggs).
        let dst = HostId(20);
        let mut pkt = data_pkt(1, dst, 0);
        p.on_send(&mut pkt, Time::ZERO, &mut rng);
        assert_eq!(pkt.srcroute_len, 3);
    }

    #[test]
    fn different_flows_use_different_offsets() {
        let (topo, routes) = topo4();
        let mut p = PrestoHostPolicy::build(&topo, &routes, HostId(0));
        let mut rng = SimRng::seed_from(5);
        let mut seen = std::collections::HashSet::new();
        for f in 0..32u32 {
            let mut pkt = data_pkt(f, HostId(2), 0);
            p.on_send(&mut pkt, Time::ZERO, &mut rng);
            seen.insert(pkt.srcroute[0]);
        }
        assert!(
            seen.len() >= 3,
            "first cells spread across spines: {seen:?}"
        );
    }
}
