//! Differential test: the timing wheel must replay the legacy binary-heap
//! queue's delivery order bit-for-bit.
//!
//! This is the determinism bar for the queue swap: same operation
//! sequence ⇒ identical `(time, payload)` pop streams, including FIFO
//! tie-breaks at equal timestamps, cancellations in every region of the
//! wheel (level 0, upper levels, the far-future overflow, and the staged
//! ready batch), and cancel-after-fire no-ops.

use drill_sim::{EventToken, HeapQueue, SimRng, Time, WheelQueue};

/// One randomized scenario: interleaved pushes (with a heavy-tailed time
/// spread so every wheel level and the overflow heap get traffic),
/// cancellations of a random subset, and batched pops.
fn churn_scenario(seed: u64, ops: usize, peek: bool) {
    let mut rng = SimRng::seed_from(seed);
    let mut wheel: WheelQueue<u64> = WheelQueue::new();
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    let mut tokens: Vec<(EventToken, EventToken)> = Vec::new();
    let mut payload = 0u64;

    for _ in 0..ops {
        match rng.below(10) {
            // 0-5: push (sometimes cancellable) at a spread-out future time.
            0..=5 => {
                let base = wheel.now();
                // Heavy tail: mostly near, occasionally deep into upper
                // levels or past the 2^36 ns wheel horizon.
                let gap = match rng.below(12) {
                    0..=5 => rng.below(512) as u64,                // level 0/1
                    6..=8 => rng.below(1 << 18) as u64,            // mid levels
                    9..=10 => rng.below(1 << 30) as u64,           // high levels
                    _ => (1u64 << 36) + rng.below(1 << 30) as u64, // overflow
                };
                let at = base + Time::from_nanos(gap);
                payload += 1;
                if rng.below(3) == 0 {
                    let tw = wheel.push_cancellable(at, payload);
                    let th = heap.push_cancellable(at, payload);
                    tokens.push((tw, th));
                } else {
                    wheel.push(at, payload);
                    heap.push(at, payload);
                }
                // A burst of same-timestamp events now and then, to
                // exercise the FIFO tie-break hard.
                if rng.below(8) == 0 {
                    for _ in 0..rng.below(6) {
                        payload += 1;
                        wheel.push(at, payload);
                        heap.push(at, payload);
                    }
                }
            }
            // 6: cancel a random outstanding token (possibly already
            // fired — both sides must treat that as a no-op).
            6 => {
                if !tokens.is_empty() {
                    let i = rng.below(tokens.len());
                    let (tw, th) = tokens.swap_remove(i);
                    wheel.cancel(tw);
                    heap.cancel(th);
                }
            }
            // 7-9: pop a small batch and compare the streams.
            _ => {
                for _ in 0..=rng.below(4) {
                    if peek {
                        assert_eq!(wheel.peek_time(), heap.peek_time(), "peek diverged");
                    }
                    let w = wheel.pop();
                    let h = heap.pop();
                    assert_eq!(w, h, "pop stream diverged (seed {seed})");
                    assert_eq!(wheel.now(), heap.now());
                    if w.is_none() {
                        break;
                    }
                }
            }
        }
    }
    // Drain both to the end.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        assert_eq!(w, h, "drain diverged (seed {seed})");
        if w.is_none() {
            break;
        }
    }
    assert_eq!(wheel.events_processed(), heap.events_processed());
    assert!(wheel.is_empty());
}

#[test]
fn replays_heap_order_across_seeds() {
    for seed in 0..20 {
        churn_scenario(seed, 4_000, false);
    }
}

#[test]
fn replays_heap_order_with_interleaved_peeks() {
    for seed in 100..110 {
        churn_scenario(seed, 2_000, true);
    }
}

#[test]
fn len_tracks_live_events_only() {
    let mut wheel: WheelQueue<u32> = WheelQueue::new();
    let toks: Vec<_> = (0..100)
        .map(|i| wheel.push_cancellable(Time::from_nanos(10 + i), 0))
        .collect();
    assert_eq!(wheel.len(), 100);
    for t in &toks[..40] {
        wheel.cancel(*t);
    }
    assert_eq!(wheel.len(), 60, "cancel is reflected immediately");
    let mut n = 0;
    while wheel.pop().is_some() {
        n += 1;
    }
    assert_eq!(n, 60);
}
