//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in integer nanoseconds since the start of the
/// simulation.
///
/// `Time` doubles as a duration type: subtracting two `Time`s yields a
/// `Time`, and durations are constructed with the same `from_*` helpers.
/// Integer nanoseconds keep all link-timing arithmetic exact — a 1500 B
/// frame on a 10 Gbps link is exactly 1200 ns — which in turn keeps event
/// ordering deterministic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as an "infinite" deadline).
    pub const MAX: Time = Time(u64::MAX);

    /// A time/duration of `ns` nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// A time/duration of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// A time/duration of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// A time/duration of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// This instant expressed in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant expressed in whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction; `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Scale a duration by an integer factor.
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberate: a `Mul<u64>` impl
                                             // would invite `Time * Time` confusion; an explicit method keeps call
                                             // sites self-documenting.
    pub fn mul(self, k: u64) -> Time {
        Time(self.0 * k)
    }

    /// Scale a duration by a float factor, rounding to the nearest ns.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Time {
        Time((self.0 as f64 * k).round() as u64)
    }

    /// The transmission (serialization) time of `bytes` at `bits_per_sec`,
    /// rounded up to the next nanosecond so that a link is never modeled as
    /// faster than its rate.
    #[inline]
    pub fn tx_time(bytes: u64, bits_per_sec: u64) -> Time {
        debug_assert!(bits_per_sec > 0, "link rate must be positive");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        Time(ns as u64)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(self.0 >= rhs.0, "time subtraction underflow");
        Time(self.0 - rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Time::from_millis(3).as_micros(), 3_000);
        assert_eq!(Time::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Time::from_nanos(1500).as_micros(), 1); // truncation
    }

    #[test]
    fn tx_time_exact_cases() {
        // 1500 B at 10 Gbps = 12000 bits / 10e9 bps = 1200 ns.
        assert_eq!(Time::tx_time(1500, 10_000_000_000), Time::from_nanos(1200));
        // 1500 B at 40 Gbps = 300 ns.
        assert_eq!(Time::tx_time(1500, 40_000_000_000), Time::from_nanos(300));
        // 64 B at 1 Gbps = 512 ns.
        assert_eq!(Time::tx_time(64, 1_000_000_000), Time::from_nanos(512));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 Gbps = 8/3 ns -> 3 ns.
        assert_eq!(Time::tx_time(1, 3_000_000_000), Time::from_nanos(3));
        // Zero bytes takes zero time.
        assert_eq!(Time::tx_time(0, 10_000_000_000), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_micros(5);
        let b = Time::from_micros(2);
        assert_eq!(a + b, Time::from_micros(7));
        assert_eq!(a - b, Time::from_micros(3));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(b.mul(3), Time::from_micros(6));
        assert_eq!(b.mul_f64(1.5), Time::from_nanos(3_000));
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_micros(7));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Time::from_nanos(12).to_string(), "12ns");
        assert_eq!(Time::from_micros(12).to_string(), "12.000us");
        assert_eq!(Time::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Time::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::from_nanos(1) < Time::from_nanos(2));
        assert!(Time::MAX > Time::from_secs(100));
    }
}
