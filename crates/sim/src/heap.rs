//! The pre-timing-wheel event queue: a `BinaryHeap` with a `HashSet` of
//! cancelled tokens.
//!
//! Kept in-tree as the baseline the `qbench` harness and the differential
//! tests compare the timing wheel against. Building the workspace with the
//! `heap-queue` feature swaps this implementation back in as
//! `drill_sim::EventQueue` for A/B end-to-end runs (`scripts/qbench.sh`
//! does exactly that for the fig2 wall-clock comparison).
//!
//! Known deficiency, by design left unfixed here: cancelling a token
//! *after* its event was delivered inserts into `cancelled` a token id
//! that no pop will ever remove, so long cancel-after-fire workloads grow
//! the set without bound. The timing wheel's generation-stamped slots fix
//! this; `qbench`'s churn workload makes the cost visible.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::event::EventToken;
use crate::Time;

struct Entry<P> {
    time: Time,
    seq: u64,
    token: u64, // 0 = not cancellable
    payload: P,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first. `seq` is a monotone counter, so two events scheduled
// for the same instant pop in the order they were pushed (FIFO). That
// tie-break is what makes simulations deterministic.
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for Entry<P> {}

/// The legacy binary-heap future-event list (see the module docs).
///
/// API-compatible with [`crate::EventQueue`]; events at equal timestamps
/// are delivered in push order.
pub struct HeapQueue<P> {
    heap: BinaryHeap<Entry<P>>,
    seq: u64,
    next_token: u64,
    cancelled: HashSet<u64>,
    now: Time,
    popped: u64,
}

impl<P> Default for HeapQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> HeapQueue<P> {
    /// An empty queue positioned at `Time::ZERO`.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            next_token: 1,
            cancelled: HashSet::new(),
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// The timestamp of the most recently popped event (the simulation
    /// clock).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// The next internally stamped FIFO sequence number (see
    /// [`crate::EventQueue::next_seq`]).
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Number of events still pending (including cancelled ones not yet
    /// drained).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Heap entries plus cancellation-set residue; the counterpart of
    /// [`crate::EventQueue::allocated_slots`] for memory-growth
    /// comparisons.
    #[inline]
    pub fn allocated_slots(&self) -> usize {
        self.heap.len() + self.cancelled.len()
    }

    /// Schedule `payload` at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: Time, payload: P) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            token: 0,
            payload,
        });
    }

    /// Schedule `payload` at `delay` after the current clock.
    #[inline]
    pub fn push_after(&mut self, delay: Time, payload: P) {
        self.push(self.now + delay, payload);
    }

    /// Schedule `payload` at `at` with a caller-supplied FIFO sequence
    /// number (see [`crate::EventQueue::push_with_seq`]): the sharded
    /// engine stamps one global sequence across every shard queue so a
    /// cross-queue merge by `(time, seq)` reproduces serial order.
    pub fn push_with_seq(&mut self, at: Time, seq: u64, payload: P) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        self.seq = self.seq.max(seq + 1);
        self.heap.push(Entry {
            time: at,
            seq,
            token: 0,
            payload,
        });
    }

    /// Schedule `payload` at `at` with a caller-supplied sequence number
    /// *without* advancing the internal counter (see
    /// [`crate::EventQueue::push_stamped`]): snapshot restore stamps
    /// reserved-band sequences that must not perturb later pushes.
    pub fn push_stamped(&mut self, at: Time, seq: u64, payload: P) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        self.heap.push(Entry {
            time: at,
            seq,
            token: 0,
            payload,
        });
    }

    /// Visit every pending non-cancelled entry as `(time, seq, &payload)`,
    /// in arbitrary order (see [`crate::EventQueue::for_each_pending`]).
    pub fn for_each_pending<F: FnMut(Time, u64, &P)>(&self, mut f: F) {
        for e in self.heap.iter() {
            if e.token != 0 && self.cancelled.contains(&e.token) {
                continue;
            }
            f(e.time, e.seq, &e.payload);
        }
    }

    /// Position a **fresh** queue at a restored clock (see
    /// [`crate::EventQueue::restore_clock`]). Must run before any pushes.
    pub fn restore_clock(&mut self, now: Time, seq: u64, popped: u64) {
        debug_assert!(
            self.heap.is_empty() && self.popped == 0,
            "restore_clock requires a fresh queue"
        );
        self.now = now;
        self.seq = seq;
        self.popped = popped;
    }

    /// Schedule a cancellable event; keep the token to [`cancel`] it.
    ///
    /// [`cancel`]: HeapQueue::cancel
    pub fn push_cancellable(&mut self, at: Time, payload: P) -> EventToken {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        let token = self.next_token;
        self.next_token += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            token,
            payload,
        });
        EventToken(token)
    }

    /// Cancel a previously scheduled cancellable event. Cancelling an
    /// already-delivered or already-cancelled event is a no-op (but see
    /// the module docs: it leaks a set entry).
    pub fn cancel(&mut self, token: EventToken) {
        self.cancelled.insert(token.0);
    }

    /// Deliver the next event, advancing the clock. Cancelled events are
    /// skipped silently.
    pub fn pop(&mut self) -> Option<(Time, P)> {
        while let Some(e) = self.heap.pop() {
            if e.token != 0 && self.cancelled.remove(&e.token) {
                continue;
            }
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            self.popped += 1;
            return Some((e.time, e.payload));
        }
        None
    }

    /// Timestamp of the next (non-cancelled) pending event without
    /// delivering it.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.peek_key().map(|(t, _)| t)
    }

    /// The `(time, seq)` key of the next pending event, without
    /// delivering it (see [`crate::EventQueue::peek_key`]; the heap is
    /// keyed by exactly this pair, so the head is the answer).
    pub fn peek_key(&mut self) -> Option<(Time, u64)> {
        // Drain cancelled entries off the top so the answer is accurate.
        while let Some(e) = self.heap.peek() {
            if e.token != 0 && self.cancelled.contains(&e.token) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.token);
            } else {
                return Some((e.time, e.seq));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_fifo_at_ties() {
        let mut q = HeapQueue::new();
        q.push(Time::from_nanos(30), 3);
        q.push(Time::from_nanos(10), 1);
        q.push(Time::from_nanos(10), 2);
        assert_eq!(q.pop(), Some((Time::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_nanos(10), 2)));
        assert_eq!(q.pop(), Some((Time::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = HeapQueue::new();
        let tok = q.push_cancellable(Time::from_nanos(10), "cancelled");
        q.push(Time::from_nanos(20), "kept");
        q.cancel(tok);
        assert_eq!(q.pop(), Some((Time::from_nanos(20), "kept")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_with_seq_and_peek_key_mirror_the_wheel() {
        let mut q = HeapQueue::new();
        let t = Time::from_nanos(100);
        q.push_with_seq(t, 5, 5u64);
        q.push_with_seq(t, 1, 1);
        q.push_with_seq(Time::from_nanos(90), 7, 7);
        assert_eq!(q.peek_key(), Some((Time::from_nanos(90), 7)));
        assert_eq!(q.pop(), Some((Time::from_nanos(90), 7)));
        assert_eq!(q.peek_key(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 5)));
        // Internal stamping resumes past the largest supplied seq.
        q.push(t, 99);
        assert_eq!(q.peek_key(), Some((t, 8)));
        assert_eq!(q.pop(), Some((t, 99)));
        assert_eq!(q.pop(), None);
    }
}
