//! Deterministic discrete-event simulation (DES) kernel.
//!
//! This crate is the substrate every other `drill-*` crate runs on. It is
//! deliberately tiny and dependency-free (apart from `rand`):
//!
//! * [`Time`] — a nanosecond-resolution simulated clock value.
//! * [`EventQueue`] — a priority queue of `(Time, payload)` entries with
//!   FIFO ordering for simultaneous events, which makes whole simulations
//!   reproducible bit-for-bit given a seed.
//! * [`SimRng`] — a seedable, splittable random number generator so that
//!   independent components (switches, hosts, workload generators) each get
//!   their own deterministic stream.
//!
//! The kernel is synchronous and single-threaded by design: a datacenter
//! fabric simulation is CPU-bound, and determinism matters more than
//! intra-run parallelism (experiment *sweeps* are parallelized one run per
//! thread by `drill-runtime`).
//!
//! # Example
//!
//! ```
//! use drill_sim::{EventQueue, Time};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(Time::from_micros(2), "second");
//! q.push(Time::from_micros(1), "first");
//! q.push(Time::from_micros(2), "third"); // same timestamp: FIFO order
//!
//! let mut order = Vec::new();
//! while let Some((t, what)) = q.pop() {
//!     order.push((t.as_micros(), what));
//! }
//! assert_eq!(order, vec![(1, "first"), (2, "second"), (2, "third")]);
//! ```

#![warn(missing_docs)]

mod event;
mod rng;
mod time;

pub use event::{EventQueue, EventToken};
pub use rng::SimRng;
pub use time::Time;
