//! Deterministic discrete-event simulation (DES) kernel.
//!
//! This crate is the substrate every other `drill-*` crate runs on. It is
//! deliberately tiny and dependency-free (std only, so the workspace
//! builds with zero network access):
//!
//! * [`Time`] — a nanosecond-resolution simulated clock value.
//! * [`EventQueue`] — a hierarchical timing wheel of `(Time, payload)`
//!   entries with FIFO ordering for simultaneous events, which makes
//!   whole simulations reproducible bit-for-bit given a seed. The legacy
//!   binary-heap implementation survives as [`HeapQueue`] for baseline
//!   benchmarking, and the off-by-default `heap-queue` cargo feature
//!   swaps it back in as `EventQueue` for A/B end-to-end runs.
//! * [`SimRng`] — a seedable, splittable random number generator so that
//!   independent components (switches, hosts, workload generators) each get
//!   their own deterministic stream.
//!
//! The kernel is synchronous and single-threaded by design: a datacenter
//! fabric simulation is CPU-bound, and determinism matters more than
//! intra-run parallelism (experiment *sweeps* are parallelized one run per
//! thread by `drill-runtime`).
//!
//! # Example
//!
//! ```
//! use drill_sim::{EventQueue, Time};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(Time::from_micros(2), "second");
//! q.push(Time::from_micros(1), "first");
//! q.push(Time::from_micros(2), "third"); // same timestamp: FIFO order
//!
//! let mut order = Vec::new();
//! while let Some((t, what)) = q.pop() {
//!     order.push((t.as_micros(), what));
//! }
//! assert_eq!(order, vec![(1, "first"), (2, "second"), (2, "third")]);
//! ```

#![warn(missing_docs)]

pub mod codec;
mod event;
mod fx;
mod heap;
mod rng;
mod time;

#[cfg(not(feature = "heap-queue"))]
pub use event::EventQueue;
#[cfg(feature = "heap-queue")]
pub use heap::HeapQueue as EventQueue;

pub use event::EventQueue as WheelQueue;
pub use event::{node_size, EventToken};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use heap::HeapQueue;
pub use rng::SimRng;
pub use time::Time;
