//! The event queue at the heart of the simulator: a hierarchical timing
//! wheel (Varghese & Lauck 1987) with an allocation-free hot path.
//!
//! The previous implementation was a `BinaryHeap` + `HashSet` of cancelled
//! tokens (kept as [`crate::HeapQueue`] for A/B benchmarking); the wheel
//! replaces O(log n) sift operations with O(1) amortized slot pushes and
//! bitmap scans, and replaces the cancellation hash set with generation
//! stamped slab slots so `cancel` is O(1) and leaves no residue — even when
//! a token is cancelled after its event already fired.
//!
//! # Structure
//!
//! * [`LEVELS`] wheel levels of 64 slots each. Level `k` slots are
//!   `2^BASE_SHIFT * 64^k` ns wide: level 0 slots are 64 ns delivery
//!   windows (drained as one sorted batch, which amortizes staging
//!   bookkeeping across every event in the window) and the whole wheel
//!   spans `2^36` ns ≈ 68.7 simulated seconds ahead of the cursor.
//! * Deadlines beyond the wheel horizon live in a sorted overflow heap
//!   keyed by `(time, seq)` and are migrated into the wheel as the cursor
//!   advances (each migration is itself O(1) amortized).
//! * Entries live in a slab (`Vec` arena) threaded with intrusive singly
//!   linked lists; freed slots go on a free list and are reused, so a
//!   steady-state simulation performs no per-event allocation at all.
//! * Every entry carries the monotone `seq` stamped at push time. When a
//!   level-0 slot is drained for delivery the (usually tiny) batch is
//!   sorted by `(time, seq)`, which restores global FIFO order for
//!   simultaneous events regardless of which level or path each entry
//!   took through the wheel. See DESIGN.md for the ordering proof sketch.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Time;

/// Handle for a cancellable event, returned by
/// [`EventQueue::push_cancellable`].
///
/// Packs a slab index and a generation stamp; a token whose generation no
/// longer matches its slot (because the event fired or was already
/// cancelled) is ignored, so stale cancels are harmless and cost O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken(pub(crate) u64);

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// log2 of the level-0 slot width in ns. A level-0 slot is a 64 ns
/// delivery window: staging drains the whole window as one batch and the
/// `(time, seq)` sort restores exact order, which amortizes the bitmap
/// scan and cascade bookkeeping over every event in the window instead of
/// paying it per nanosecond-wide slot. It also shortens cascades: a
/// deadline `d` ns ahead sits `BASE_SHIFT` bits lower in the hierarchy
/// than it would with 1 ns slots.
const BASE_SHIFT: u32 = 6;
/// Number of wheel levels; deadlines within
/// `2^(BASE_SHIFT + LEVEL_BITS * LEVELS)` ns of the cursor are
/// wheel-resident, the rest overflow.
const LEVELS: usize = 5;
/// First deadline distance that no longer fits in the wheel (2^36 ns,
/// ≈ 68.7 simulated seconds).
const HORIZON: u64 = 1 << (BASE_SHIFT + LEVEL_BITS * LEVELS as u32);
/// Null link in the intrusive slot lists.
const NIL: u32 = u32::MAX;

/// Lifecycle of a slab slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    /// On the free list.
    Free,
    /// Scheduled and deliverable.
    Live,
    /// Cancelled; storage reclaimed lazily when next encountered.
    Cancelled,
}

/// Size in bytes of one wheel slab entry for payload type `P`.
///
/// `Node` itself is private (its intrusive links are an implementation
/// detail), but embedders pin their per-event memory footprint with
/// `const` asserts — event payloads travel *inside* slab nodes, so an
/// oversized payload variant taxes every push, cascade and slot drain.
pub const fn node_size<P>() -> usize {
    std::mem::size_of::<Node<P>>()
}

struct Node<P> {
    /// Absolute deadline in nanoseconds.
    time: u64,
    /// Global push order; the FIFO tie-break at equal timestamps.
    seq: u64,
    /// Next entry in the slot list this node is threaded on (or the free
    /// list when `state == Free`).
    next: u32,
    /// Generation stamp; bumped every time the slot is freed so stale
    /// [`EventToken`]s can never touch a reused slot.
    gen: u32,
    state: SlotState,
    payload: Option<P>,
}

/// A deterministic future-event list.
///
/// Generic over the event payload `P`, which the embedding simulation
/// defines (an enum of "packet arrives", "timer fires", ... variants).
///
/// Events at equal timestamps are delivered in push order. Events pushed
/// for a time earlier than the last popped time are a logic error in the
/// caller and panic in debug builds.
pub struct EventQueue<P> {
    /// Slab of event entries; never shrinks, recycled through `free_head`.
    arena: Vec<Node<P>>,
    /// Head of the free list threaded through `arena` (NIL if empty).
    free_head: u32,
    /// Intrusive list heads, `levels[level][slot]`.
    levels: [[u32; SLOTS]; LEVELS],
    /// One occupancy bit per slot, for O(1) next-slot scans.
    occupied: [u64; LEVELS],
    /// Far-future entries (≥ HORIZON ns ahead), sorted by `(time, seq)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Delivery staging: the current level-0 batch as `(time, seq, idx)`
    /// tuples sorted ascending, consumed from `ready_pos`. Keys are held
    /// inline so the batch sort and splice searches never chase arena
    /// pointers.
    ready: Vec<(u64, u64, u32)>,
    ready_pos: usize,
    /// Reused permutation buffer for the staging counting sort.
    scratch: Vec<(u64, u64, u32)>,
    /// Internal wheel cursor in ns. Invariant: at every public API
    /// boundary, `now.as_nanos() == elapsed` or every pending event is at
    /// or after `elapsed` (the cursor never passes a live event).
    elapsed: u64,
    now: Time,
    seq: u64,
    /// Scheduled-but-undelivered, excluding cancelled entries.
    live: usize,
    popped: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// An empty queue positioned at `Time::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            arena: Vec::new(),
            free_head: NIL,
            levels: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            ready: Vec::new(),
            ready_pos: 0,
            scratch: Vec::new(),
            elapsed: 0,
            now: Time::ZERO,
            seq: 0,
            live: 0,
            popped: 0,
        }
    }

    /// The timestamp of the most recently popped event (the simulation
    /// clock).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// The next internally stamped FIFO sequence number. Snapshot capture
    /// records it so [`restore_clock`](EventQueue::restore_clock) can
    /// resume the stream without perturbing any later push's sequence.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Number of pending (scheduled, not yet delivered or cancelled)
    /// events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slab slots ever allocated. Bounded by the high-water mark
    /// of concurrently pending events — *not* by the total event count —
    /// which the no-leak regression test asserts.
    #[inline]
    pub fn allocated_slots(&self) -> usize {
        self.arena.len()
    }

    /// Schedule `payload` at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: Time, payload: P) {
        self.push_cancellable(at, payload);
    }

    /// Schedule `payload` at `delay` after the current clock.
    #[inline]
    pub fn push_after(&mut self, delay: Time, payload: P) {
        self.push(self.now + delay, payload);
    }

    /// Schedule `payload` at `at` with a caller-supplied FIFO sequence
    /// number instead of the internally stamped one.
    ///
    /// The sharded engine stamps one *global* sequence across every shard
    /// wheel, so a cross-wheel merge by `(time, seq)` reproduces exactly
    /// the order a single serial wheel would deliver. Supplied sequence
    /// numbers may arrive out of order relative to earlier pushes (a
    /// mailbox drain replays sequences stamped before later direct
    /// pushes); the `(time, seq)` batch sort restores delivery order.
    /// Internal stamping stays monotone past the largest supplied value,
    /// so mixing both push flavours on one queue remains well-defined.
    pub fn push_with_seq(&mut self, at: Time, seq: u64, payload: P) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        self.seq = self.seq.max(seq + 1);
        let idx = self.alloc(at.as_nanos(), seq, payload);
        self.live += 1;
        self.insert(idx);
    }

    /// Schedule `payload` at `at` carrying a caller-supplied sequence
    /// number *without* advancing the internal sequence counter.
    ///
    /// Snapshot restore uses this for out-of-band entries stamped from a
    /// reserved sequence band (fault injections at `FAULT_SEQ_BASE`):
    /// unlike [`push_with_seq`](EventQueue::push_with_seq), a huge banded
    /// seq must not catapult the counter, or every subsequently pushed
    /// event would change sequence and break bit-identical replay.
    pub fn push_stamped(&mut self, at: Time, seq: u64, payload: P) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let idx = self.alloc(at.as_nanos(), seq, payload);
        self.live += 1;
        self.insert(idx);
    }

    /// Visit every pending (scheduled, non-cancelled) entry as
    /// `(time, seq, &payload)`, in arbitrary order.
    ///
    /// Snapshot capture walks the slab directly — wheel slots, the staged
    /// ready batch, and the overflow heap all keep their entries `Live` in
    /// the slab until delivery — and normalizes order by sorting the
    /// collected `(time, seq)` keys at the serialization layer.
    pub fn for_each_pending<F: FnMut(Time, u64, &P)>(&self, mut f: F) {
        for node in &self.arena {
            if node.state == SlotState::Live {
                let payload = node.payload.as_ref().expect("live entry has payload");
                f(Time::from_nanos(node.time), node.seq, payload);
            }
        }
    }

    /// Position a **fresh** queue at a restored clock: simulation time
    /// `now`, next internal sequence `seq`, and `popped` events already
    /// delivered before the snapshot.
    ///
    /// Must run before any pushes — pending entries re-inserted afterwards
    /// all carry `time >= now`, so the cursor jump never strands a live
    /// event behind it.
    pub fn restore_clock(&mut self, now: Time, seq: u64, popped: u64) {
        debug_assert!(
            self.live == 0 && self.popped == 0,
            "restore_clock requires a fresh queue"
        );
        self.elapsed = now.as_nanos();
        self.now = now;
        self.seq = seq;
        self.popped = popped;
    }

    /// Schedule a cancellable event; keep the token to [`cancel`] it.
    ///
    /// [`cancel`]: EventQueue::cancel
    pub fn push_cancellable(&mut self, at: Time, payload: P) -> EventToken {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let idx = self.alloc(at.as_nanos(), seq, payload);
        self.live += 1;
        self.insert(idx);
        EventToken(((self.arena[idx as usize].gen as u64) << 32) | idx as u64)
    }

    /// Cancel a previously scheduled cancellable event in O(1). Cancelling
    /// an already-delivered or already-cancelled event is a no-op (the
    /// token's generation stamp no longer matches), and unlike the old
    /// `HashSet` design it leaves no residue behind.
    pub fn cancel(&mut self, token: EventToken) {
        let idx = (token.0 & u32::MAX as u64) as usize;
        let gen = (token.0 >> 32) as u32;
        if let Some(node) = self.arena.get_mut(idx) {
            if node.gen == gen && node.state == SlotState::Live {
                node.state = SlotState::Cancelled;
                node.payload = None;
                self.live -= 1;
            }
        }
    }

    /// Deliver the next event, advancing the clock. Cancelled events are
    /// skipped silently (and their slots reclaimed).
    pub fn pop(&mut self) -> Option<(Time, P)> {
        if !self.stage() {
            return None;
        }
        let (time, _, idx) = self.ready[self.ready_pos];
        self.ready_pos += 1;
        let t = Time::from_nanos(time);
        let payload = self.arena[idx as usize].payload.take().expect("live entry");
        self.free(idx);
        debug_assert!(t >= self.now);
        self.now = t;
        self.popped += 1;
        self.live -= 1;
        Some((t, payload))
    }

    /// Advance the staging machinery until `ready[ready_pos]` is a live
    /// entry — the exact next event by `(time, seq)` — or the queue is
    /// exhausted. Shared by [`pop`](EventQueue::pop) (which consumes the
    /// entry) and [`peek_key`](EventQueue::peek_key) (which only reads
    /// it); staging may advance the internal cursor but never the clock,
    /// and later pushes landing inside the staged window splice into the
    /// live batch at their `(time, seq)` position.
    fn stage(&mut self) -> bool {
        loop {
            // 1. Shed cancelled entries at the head of the staged batch.
            while self.ready_pos < self.ready.len() {
                let (_, _, idx) = self.ready[self.ready_pos];
                if self.arena[idx as usize].state == SlotState::Cancelled {
                    self.free(idx);
                    self.ready_pos += 1;
                    continue;
                }
                return true;
            }
            self.ready.clear();
            self.ready_pos = 0;

            // 2. Pull any overflow entries that now fit in the wheel.
            self.replenish();

            // 3. Find the lowest level with an occupied slot at/after the
            // cursor; by construction it holds the earliest deadline.
            let mut found = None;
            for level in 0..LEVELS {
                if let Some(slot) = self.next_occupied(level) {
                    found = Some((level, slot));
                    break;
                }
            }
            match found {
                None => {
                    // Wheel empty; jump the cursor to the overflow head so
                    // the next replenish can migrate it in.
                    match self.overflow.peek() {
                        Some(&Reverse((t, _, _))) => {
                            self.elapsed = t;
                            continue;
                        }
                        None => return false,
                    }
                }
                Some((0, slot)) => {
                    // Stage the whole 64 ns window for delivery.
                    let window = 1u64 << BASE_SHIFT;
                    let t0 = (self.elapsed & !((window * SLOTS as u64) - 1))
                        | ((slot as u64) << BASE_SHIFT);
                    // The staged slot is at/after the cursor slot, so the
                    // window end never moves the cursor backwards (it may
                    // re-stage the cursor slot itself when an overdue push
                    // parked there after the previous batch drained).
                    debug_assert!(t0 + window > self.elapsed);
                    let mut idx = self.levels[0][slot];
                    self.levels[0][slot] = NIL;
                    self.occupied[0] &= !(1u64 << slot);
                    while idx != NIL {
                        let node = &self.arena[idx as usize];
                        let next = node.next;
                        if node.state == SlotState::Cancelled {
                            self.free(idx);
                        } else {
                            self.ready.push((node.time, node.seq, idx));
                        }
                        idx = next;
                    }
                    // Committing to the window: later pushes that land
                    // inside it take the overdue path and splice into the
                    // live batch, so advancing to the window end jumps no
                    // live entry.
                    self.elapsed = t0 + window - 1;
                    if self.ready.is_empty() {
                        continue; // everything in the slot was cancelled
                    }
                    // FIFO restoration: order by (time, seq). Equal-time
                    // entries deliver in push order; overdue entries parked
                    // onto the cursor slot (time < t0) order first.
                    self.sort_batch(t0);
                    continue;
                }
                Some((level, slot)) => {
                    // Cascade: advance the cursor to the slot's start and
                    // re-distribute its entries into lower levels.
                    //
                    // The occupancy bit may be *stale*: the cursor jumps
                    // straight to the next live deadline (staging, overflow
                    // jumps), skipping slots whose entries were all
                    // cancelled, and such a bit resurfaces one rotation
                    // later where `slot_start` computed from the current
                    // high cursor bits would overshoot pending earlier
                    // events. Live entries are never skipped, so the slot
                    // is current — and the cursor may advance — only if a
                    // live entry is found in it.
                    let shift = BASE_SHIFT + LEVEL_BITS * level as u32;
                    let span = 1u64 << (shift + LEVEL_BITS);
                    let slot_start = (self.elapsed & !(span - 1)) | ((slot as u64) << shift);
                    let mut idx = self.levels[level][slot];
                    self.levels[level][slot] = NIL;
                    self.occupied[level] &= !(1u64 << slot);
                    let mut live = NIL;
                    while idx != NIL {
                        let next = self.arena[idx as usize].next;
                        if self.arena[idx as usize].state == SlotState::Cancelled {
                            self.free(idx);
                        } else {
                            self.arena[idx as usize].next = live;
                            live = idx;
                        }
                        idx = next;
                    }
                    if live != NIL && slot_start > self.elapsed {
                        self.elapsed = slot_start;
                    }
                    while live != NIL {
                        let next = self.arena[live as usize].next;
                        debug_assert!(
                            self.arena[live as usize].time >= slot_start,
                            "live entry behind its slot start"
                        );
                        self.insert(live);
                        live = next;
                    }
                    continue;
                }
            }
        }
    }

    /// Timestamp of the next (non-cancelled) pending event without
    /// delivering it. Does not advance the clock; lazily reclaims any
    /// cancelled entries it walks past.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.peek_key().map(|(t, _)| t)
    }

    /// The `(time, seq)` key of the next pending event, without
    /// delivering it or advancing the clock.
    ///
    /// This is the primitive the sharded engine's cross-wheel merge is
    /// built on: with one global sequence stamped across every wheel (see
    /// [`push_with_seq`](EventQueue::push_with_seq)), popping from the
    /// wheel whose peeked key is the minimum reproduces the exact
    /// delivery order of a single serial wheel. Staging the next window
    /// here makes the key exact — equal-time entries scattered across
    /// levels are cascaded down and `(time, seq)`-sorted before the head
    /// is reported — and amortizes to O(1) under repeated peeks.
    pub fn peek_key(&mut self) -> Option<(Time, u64)> {
        if !self.stage() {
            return None;
        }
        let (time, seq, _) = self.ready[self.ready_pos];
        Some((Time::from_nanos(time), seq))
    }

    /// Take a slab slot off the free list (or grow the arena) and fill it.
    fn alloc(&mut self, time: u64, seq: u64, payload: P) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.arena[idx as usize];
            self.free_head = node.next;
            node.time = time;
            node.seq = seq;
            node.next = NIL;
            node.state = SlotState::Live;
            node.payload = Some(payload);
            idx
        } else {
            let idx = u32::try_from(self.arena.len()).expect("event arena exceeds u32 slots");
            assert!(idx != NIL, "event arena exceeds u32 slots");
            self.arena.push(Node {
                time,
                seq,
                next: NIL,
                gen: 0,
                state: SlotState::Live,
                payload: Some(payload),
            });
            idx
        }
    }

    /// Return a slab slot to the free list, bumping its generation so
    /// outstanding tokens for it become inert.
    fn free(&mut self, idx: u32) {
        let node = &mut self.arena[idx as usize];
        node.state = SlotState::Free;
        node.payload = None;
        node.gen = node.gen.wrapping_add(1);
        node.next = self.free_head;
        self.free_head = idx;
    }

    /// Sort the freshly staged batch in `ready` by `(time, seq)`.
    ///
    /// A window holds at most `1 << BASE_SHIFT` distinct time values, so
    /// large batches take a two-pass counting sort over the time offset
    /// `t - t0` (bucket 0 also absorbs pre-window parked entries via the
    /// saturating subtraction) followed by tiny per-bucket tie-break
    /// sorts. This is the hottest loop in a packed simulation — the e2e
    /// fig2 run stages ~70 events per window — and the counting sort cuts
    /// the per-event delivery cost well below a comparison sort's.
    fn sort_batch(&mut self, t0: u64) {
        const WINDOW: usize = 1 << BASE_SHIFT;
        if self.ready.len() <= 32 {
            // Below std's small-sort threshold a comparison sort wins over
            // two passes of 64-bucket bookkeeping.
            self.ready.sort_unstable();
            return;
        }
        let mut pos = [0u32; WINDOW];
        for &(t, _, _) in &self.ready {
            debug_assert!(t < t0 + WINDOW as u64);
            pos[t.saturating_sub(t0) as usize] += 1;
        }
        let mut acc = 0u32;
        let mut counts = [0u32; WINDOW];
        for (count, start) in counts.iter_mut().zip(pos.iter_mut()) {
            *count = *start;
            *start = acc;
            acc += *count;
        }
        self.scratch.clear();
        self.scratch.resize(self.ready.len(), (0, 0, 0));
        for &e in &self.ready {
            let o = e.0.saturating_sub(t0) as usize;
            self.scratch[pos[o] as usize] = e;
            pos[o] += 1;
        }
        std::mem::swap(&mut self.ready, &mut self.scratch);
        let mut start = 0usize;
        for &count in &counts {
            let end = start + count as usize;
            if count > 1 {
                // One time value per bucket (bucket 0 may mix parked
                // pre-window times), so this is the seq tie-break.
                self.ready[start..end].sort_unstable();
            }
            start = end;
        }
    }

    /// Thread a live entry onto the wheel (or the overflow heap).
    fn insert(&mut self, idx: u32) {
        let t = self.arena[idx as usize].time;
        let (level, slot) = if t <= self.elapsed {
            // Overdue relative to the internal cursor (legal: the cursor
            // may sit ahead of `now` after a jump to a far-off deadline).
            if self.ready_pos < self.ready.len() {
                // A staged batch is mid-delivery and this entry belongs
                // inside it: splice it in at its `(time, seq)` position so
                // it is not deferred behind later-timed staged entries.
                let seq = self.arena[idx as usize].seq;
                let pos = self.ready_pos
                    + self.ready[self.ready_pos..]
                        .partition_point(|&(bt, bs, _)| (bt, bs) < (t, seq));
                self.ready.insert(pos, (t, seq, idx));
                return;
            }
            // Otherwise park it on the cursor slot; the next staging pass
            // picks it up first and sorts the batch by (time, seq).
            (
                0,
                ((self.elapsed >> BASE_SHIFT) & (SLOTS as u64 - 1)) as usize,
            )
        } else {
            let dist = t ^ self.elapsed;
            if dist >= HORIZON {
                let seq = self.arena[idx as usize].seq;
                self.overflow.push(Reverse((t, seq, idx)));
                return;
            }
            let top = u64::BITS - 1 - dist.leading_zeros();
            let level = (top.saturating_sub(BASE_SHIFT) / LEVEL_BITS) as usize;
            let slot =
                ((t >> (BASE_SHIFT + LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            (level, slot)
        };
        self.arena[idx as usize].next = self.levels[level][slot];
        self.levels[level][slot] = idx;
        self.occupied[level] |= 1u64 << slot;
    }

    /// Migrate overflow entries that now fit inside the wheel horizon;
    /// also sheds cancelled entries surfacing at the overflow head.
    fn replenish(&mut self) {
        while let Some(&Reverse((t, _, idx))) = self.overflow.peek() {
            if self.arena[idx as usize].state == SlotState::Cancelled {
                self.overflow.pop();
                self.free(idx);
                continue;
            }
            if (t ^ self.elapsed) < HORIZON || t <= self.elapsed {
                self.overflow.pop();
                self.insert(idx);
                continue;
            }
            break;
        }
    }

    /// First occupied slot at/after the cursor position of `level`.
    fn next_occupied(&self, level: usize) -> Option<usize> {
        let cursor =
            (self.elapsed >> (BASE_SHIFT + LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1);
        // Bits behind the cursor may exist but are always stale (their
        // entries were all cancelled before the cursor jumped past them);
        // they are reclaimed when a later rotation scans them.
        let masked = self.occupied[level] & (!0u64 << cursor);
        if masked != 0 {
            Some(masked.trailing_zeros() as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), 3);
        q.push(Time::from_nanos(10), 1);
        q.push(Time::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((Time::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.push(Time::from_nanos(5), ());
        q.push(Time::from_nanos(9), ());
        q.pop();
        assert_eq!(q.now(), Time::from_nanos(5));
        q.pop();
        assert_eq!(q.now(), Time::from_nanos(9));
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(100), "a");
        q.pop();
        q.push_after(Time::from_nanos(50), "b");
        assert_eq!(q.pop(), Some((Time::from_nanos(150), "b")));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let tok = q.push_cancellable(Time::from_nanos(10), "cancelled");
        q.push(Time::from_nanos(20), "kept");
        q.cancel(tok);
        assert_eq!(q.pop(), Some((Time::from_nanos(20), "kept")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_delivery_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.push_cancellable(Time::from_nanos(10), 1);
        assert_eq!(q.pop(), Some((Time::from_nanos(10), 1)));
        q.cancel(tok); // must not panic or affect later events
        q.push(Time::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((Time::from_nanos(20), 2)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let tok = q.push_cancellable(Time::from_nanos(10), 1);
        q.push(Time::from_nanos(30), 2);
        q.cancel(tok);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(30)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(10), 10u64);
        q.push(Time::from_nanos(40), 40);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), v), (10, 10));
        q.push(Time::from_nanos(20), 20);
        q.push(Time::from_nanos(30), 30);
        let mut seen = Vec::new();
        while let Some((_, v)) = q.pop() {
            seen.push(v);
        }
        assert_eq!(seen, vec![20, 30, 40]);
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new();
        // Far beyond the 2^36 ns ≈ 68.7 s wheel horizon.
        q.push(Time::from_secs(1000), "far");
        q.push(Time::from_nanos(1), "near");
        assert_eq!(q.peek_time(), Some(Time::from_nanos(1)));
        assert_eq!(q.pop(), Some((Time::from_nanos(1), "near")));
        assert_eq!(q.pop(), Some((Time::from_secs(1000), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_events_interleave_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(500);
        for i in 0..10 {
            q.push(t, i);
        }
        // A cancelled overflow entry in the middle.
        let tok = q.push_cancellable(t, 99);
        q.cancel(tok);
        for i in 10..20 {
            q.push(t, i);
        }
        for i in 0..20 {
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_in_every_region() {
        let mut q = EventQueue::new();
        let near = q.push_cancellable(Time::from_nanos(3), "near");
        let mid = q.push_cancellable(Time::from_micros(50), "mid");
        let far = q.push_cancellable(Time::from_secs(200), "far");
        q.push(Time::from_millis(1), "kept");
        q.cancel(near);
        q.cancel(mid);
        q.cancel(far);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time::from_millis(1), "kept")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_staged_entry_before_delivery() {
        // Two events at the same instant: deliver the first, then cancel
        // the second while it is already staged in the ready batch.
        let mut q = EventQueue::new();
        let t = Time::from_nanos(7);
        q.push(t, "first");
        let tok = q.push_cancellable(t, "second");
        q.push(Time::from_nanos(8), "third");
        assert_eq!(q.pop(), Some((t, "first")));
        q.cancel(tok);
        assert_eq!(q.pop(), Some((Time::from_nanos(8), "third")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_at_now_during_same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(100);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop(), Some((t, 0)));
        // Pushed at the current instant, after two same-time events were
        // already staged: must still come out last (largest seq).
        q.push(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_leaves_no_residue() {
        // Regression test for the old HashSet design, where cancelling a
        // token after its event was delivered grew `cancelled` forever
        // (e.g. TCP RTO timers cancelled post-fire in long runs). The slab
        // must stay at its high-water mark of *concurrent* events.
        let mut q = EventQueue::new();
        let mut t = 0u64;
        for _ in 0..100_000 {
            t += 10;
            let tok = q.push_cancellable(Time::from_nanos(t), 0u8);
            let popped = q.pop();
            assert!(popped.is_some());
            q.cancel(tok); // after delivery: must be a no-op, not residue
        }
        assert!(q.is_empty());
        assert!(
            q.allocated_slots() <= 2,
            "slab grew to {} slots across cancel-after-fire cycles",
            q.allocated_slots()
        );
    }

    #[test]
    fn cancel_before_fire_reuses_slots() {
        let mut q = EventQueue::new();
        let mut t = 0u64;
        for _ in 0..10_000 {
            t += 10;
            let tok = q.push_cancellable(Time::from_nanos(t), 0u8);
            q.cancel(tok);
            assert_eq!(q.pop(), None);
        }
        assert!(
            q.allocated_slots() <= 2,
            "slab grew to {} slots across cancel cycles",
            q.allocated_slots()
        );
    }

    #[test]
    fn stale_token_cannot_cancel_reused_slot() {
        let mut q = EventQueue::new();
        let tok = q.push_cancellable(Time::from_nanos(1), 1);
        assert_eq!(q.pop(), Some((Time::from_nanos(1), 1)));
        // The slot is recycled for a new event; the old token must not
        // touch it.
        q.push(Time::from_nanos(2), 2);
        q.cancel(tok);
        assert_eq!(q.pop(), Some((Time::from_nanos(2), 2)));
    }

    #[test]
    fn wide_time_spread_pops_sorted() {
        // Deadlines scattered across every wheel level and the overflow.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..200)
            .map(|i: u64| {
                let bucket = i % 8;
                1 + i + (1u64 << (4 * bucket)) // 1ns .. ~268s spread
            })
            .collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_nanos(t), i);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut last = 0;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(
                t.as_nanos() >= last,
                "out of order: {} after {last}",
                t.as_nanos()
            );
            last = t.as_nanos();
            n += 1;
        }
        assert_eq!(n, times.len());
        assert_eq!(last, *sorted.last().unwrap());
    }

    #[test]
    fn peek_key_matches_pop_order() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(50);
        q.push(t, 0u64);
        q.push(Time::from_nanos(10), 1);
        q.push(t, 2);
        // peek_key reports the exact (time, seq) of the next pop.
        assert_eq!(q.peek_key(), Some((Time::from_nanos(10), 1)));
        q.pop();
        assert_eq!(q.peek_key(), Some((t, 0)));
        q.pop();
        assert_eq!(q.peek_key(), Some((t, 2)));
        q.pop();
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn push_with_seq_orders_by_supplied_seq() {
        // Two wheels fed from one global sequence: each wheel must
        // deliver its share in global-seq order at equal timestamps,
        // even though the seqs arrive at each wheel with gaps and (after
        // a mailbox-style replay) out of push order.
        let mut q = EventQueue::new();
        let t = Time::from_nanos(100);
        q.push_with_seq(t, 5, 5u64);
        q.push_with_seq(t, 1, 1);
        q.push_with_seq(t, 3, 3);
        q.push_with_seq(Time::from_nanos(90), 7, 7);
        assert_eq!(q.peek_key(), Some((Time::from_nanos(90), 7)));
        assert_eq!(q.pop(), Some((Time::from_nanos(90), 7)));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 3)));
        assert_eq!(q.pop(), Some((t, 5)));
        // Internal stamping resumes past the largest supplied seq.
        q.push(t, 99);
        assert_eq!(q.peek_key(), Some((t, 8)));
        assert_eq!(q.pop(), Some((t, 99)));
    }

    #[test]
    fn push_after_peek_still_delivers_in_order() {
        // peek_key stages the upcoming window; a later push landing
        // before the staged entries must still deliver first.
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(1000), 1000u64);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(1000)));
        q.push(Time::from_nanos(40), 40);
        q.push(Time::from_nanos(990), 990);
        assert_eq!(q.peek_key(), Some((Time::from_nanos(40), 1)));
        assert_eq!(q.pop(), Some((Time::from_nanos(40), 40)));
        assert_eq!(q.pop(), Some((Time::from_nanos(990), 990)));
        assert_eq!(q.pop(), Some((Time::from_nanos(1000), 1000)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn global_seq_merge_across_wheels_matches_serial() {
        // The sharded-engine contract in miniature: route events from one
        // serial reference stream across two wheels by a deterministic
        // owner function, stamp a shared global seq, and pop by minimum
        // peeked (time, seq). The merged stream must equal the serial one.
        let mut reference = EventQueue::new();
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let mut seq = 0u64;
        for i in 0..2000u64 {
            let t = Time::from_nanos(1 + (i * 7919) % 4096);
            reference.push(t, i);
            let owner = if i % 3 == 0 { &mut a } else { &mut b };
            owner.push_with_seq(t, seq, i);
            seq += 1;
        }
        loop {
            let ka = a.peek_key();
            let kb = b.peek_key();
            let merged = match (ka, kb) {
                (None, None) => None,
                (Some(_), None) => a.pop(),
                (None, Some(_)) => b.pop(),
                (Some(x), Some(y)) => {
                    if x <= y {
                        a.pop()
                    } else {
                        b.pop()
                    }
                }
            };
            let serial = reference.pop();
            assert_eq!(merged, serial);
            if serial.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_matches_pop_under_churn() {
        let mut q = EventQueue::new();
        let mut toks = Vec::new();
        for i in 0..500u64 {
            let t = Time::from_nanos(1 + (i * 7919) % 100_000);
            if i % 3 == 0 {
                toks.push(q.push_cancellable(t, i));
            } else {
                q.push(t, i);
            }
        }
        for tok in toks.iter().step_by(2) {
            q.cancel(*tok);
        }
        loop {
            let peeked = q.peek_time();
            let popped = q.pop();
            match (peeked, popped) {
                (Some(pt), Some((t, _))) => assert_eq!(pt, t),
                (None, None) => break,
                (p, q) => panic!("peek {p:?} disagrees with pop {q:?}"),
            }
        }
    }
}
