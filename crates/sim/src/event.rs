//! The event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::Time;

/// Handle for a cancellable event, returned by
/// [`EventQueue::push_cancellable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken(u64);

struct Entry<P> {
    time: Time,
    seq: u64,
    token: u64, // 0 = not cancellable
    payload: P,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first. `seq` is a monotone counter, so two events scheduled
// for the same instant pop in the order they were pushed (FIFO). That
// tie-break is what makes simulations deterministic.
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for Entry<P> {}

/// A deterministic future-event list.
///
/// Generic over the event payload `P`, which the embedding simulation
/// defines (an enum of "packet arrives", "timer fires", ... variants).
///
/// Events at equal timestamps are delivered in push order. Events pushed
/// for a time earlier than the last popped time are a logic error in the
/// caller and panic in debug builds.
pub struct EventQueue<P> {
    heap: BinaryHeap<Entry<P>>,
    seq: u64,
    next_token: u64,
    cancelled: HashSet<u64>,
    now: Time,
    popped: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// An empty queue positioned at `Time::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            next_token: 1,
            cancelled: HashSet::new(),
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// The timestamp of the most recently popped event (the simulation
    /// clock).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (including cancelled ones not yet
    /// drained).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: Time, payload: P) {
        debug_assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time: at, seq, token: 0, payload });
    }

    /// Schedule `payload` at `delay` after the current clock.
    #[inline]
    pub fn push_after(&mut self, delay: Time, payload: P) {
        self.push(self.now + delay, payload);
    }

    /// Schedule a cancellable event; keep the token to [`cancel`] it.
    ///
    /// [`cancel`]: EventQueue::cancel
    pub fn push_cancellable(&mut self, at: Time, payload: P) -> EventToken {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        let token = self.next_token;
        self.next_token += 1;
        self.heap.push(Entry { time: at, seq, token, payload });
        EventToken(token)
    }

    /// Cancel a previously scheduled cancellable event. Cancelling an
    /// already-delivered or already-cancelled event is a no-op.
    pub fn cancel(&mut self, token: EventToken) {
        self.cancelled.insert(token.0);
    }

    /// Deliver the next event, advancing the clock. Cancelled events are
    /// skipped silently.
    pub fn pop(&mut self) -> Option<(Time, P)> {
        while let Some(e) = self.heap.pop() {
            if e.token != 0 && self.cancelled.remove(&e.token) {
                continue;
            }
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            self.popped += 1;
            return Some((e.time, e.payload));
        }
        None
    }

    /// Timestamp of the next (non-cancelled) pending event without
    /// delivering it.
    pub fn peek_time(&mut self) -> Option<Time> {
        // Drain cancelled entries off the top so the answer is accurate.
        while let Some(e) = self.heap.peek() {
            if e.token != 0 && self.cancelled.contains(&e.token) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.token);
            } else {
                return Some(e.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), 3);
        q.push(Time::from_nanos(10), 1);
        q.push(Time::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((Time::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.push(Time::from_nanos(5), ());
        q.push(Time::from_nanos(9), ());
        q.pop();
        assert_eq!(q.now(), Time::from_nanos(5));
        q.pop();
        assert_eq!(q.now(), Time::from_nanos(9));
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(100), "a");
        q.pop();
        q.push_after(Time::from_nanos(50), "b");
        assert_eq!(q.pop(), Some((Time::from_nanos(150), "b")));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let tok = q.push_cancellable(Time::from_nanos(10), "cancelled");
        q.push(Time::from_nanos(20), "kept");
        q.cancel(tok);
        assert_eq!(q.pop(), Some((Time::from_nanos(20), "kept")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_delivery_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.push_cancellable(Time::from_nanos(10), 1);
        assert_eq!(q.pop(), Some((Time::from_nanos(10), 1)));
        q.cancel(tok); // must not panic or affect later events
        q.push(Time::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((Time::from_nanos(20), 2)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let tok = q.push_cancellable(Time::from_nanos(10), 1);
        q.push(Time::from_nanos(30), 2);
        q.cancel(tok);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(30)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(10), 10u64);
        q.push(Time::from_nanos(40), 40);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), v), (10, 10));
        q.push(Time::from_nanos(20), 20);
        q.push(Time::from_nanos(30), 30);
        let mut seen = Vec::new();
        while let Some((_, v)) = q.pop() {
            seen.push(v);
        }
        assert_eq!(seen, vec![20, 30, 40]);
    }
}
