//! A deterministic, std-only FxHash-style hasher.
//!
//! `std::collections::HashMap`'s default `RandomState` seeds SipHash from
//! process entropy. That is fine for determinism here — none of the
//! simulator's maps are iterated, so the seed can never leak into event
//! order — but SipHash is a full 64-bit ARX permutation per word, which is
//! measurable overhead on maps probed once per packet (Presto flowcell
//! offsets, CONGA flowlet tables, WCMP weights). This module vendors the
//! multiply-rotate scheme popularized by rustc's FxHash: one rotate, one
//! xor and one multiply per 8-byte word, with a fixed (seedless) initial
//! state, so hashes are identical across processes and machines.
//!
//! Not collision-resistant against adversarial keys — only simulator
//! state (flow ids, port numbers, 64-bit flow hashes) goes through it.
//!
//! The exact output stream is pinned by golden tests below: a change to
//! these constants changes every `FxHashMap`'s bucket layout, which is
//! invisible to simulation results (the maps are never iterated) but
//! would silently alter the memory profile a perf investigation relies
//! on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Knuth's 2^64 golden-ratio multiplier, the FxHash diffusion constant.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The hasher state: a single 64-bit accumulator.
///
/// Implements [`Hasher`] by folding each written word as
/// `state = (state.rotate_left(5) ^ word) * K`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // 8-byte words, then one zero-padded tail word. Padding (instead
        // of 4/2/1-byte sub-reads) keeps the loop branch-free and is safe
        // here because `Hash` impls delimit variable-length data
        // themselves (e.g. `str` writes a 0xFF terminator).
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s from a fixed (empty) state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    /// The hash-stream golden: pinned outputs for the key types the
    /// per-packet maps use (u64 flow hashes, u32 flow ids, u16 ports).
    /// These constants were captured from this implementation; if they
    /// move, every FxHashMap's bucket layout moves with them — say so in
    /// the commit.
    #[test]
    fn hash_stream_golden() {
        let golden_u64: Vec<(u64, u64)> = vec![
            (0, 0),
            (1, 0x517cc1b727220a95),
            (0xdead_beef, 0x67f3_c037_2953_771b),
            (0x9e37_79b9_7f4a_7c15, 0x9308_e0be_acfd_0a39),
            (u64::MAX, 0xae83_3e48_d8dd_f56b),
        ];
        for (input, want) in golden_u64 {
            assert_eq!(
                hash_of(input),
                want,
                "u64 hash stream moved for input {input:#x}"
            );
        }
        assert_eq!(hash_of(7u32), 0x3a69_4c02_11ee_4a13, "u32 stream moved");
        assert_eq!(hash_of(7u16), 0x3a69_4c02_11ee_4a13, "u16 widens to u64");
        assert_eq!(
            hash_of((3u32, 9u16)),
            0xed66_f1c8_c58c_f8c3,
            "tuple stream moved"
        );
    }

    /// Byte-slice writes must agree across chunk boundaries with the
    /// padded-tail scheme (7, 8 and 9 bytes cover tail-only, exact and
    /// chunk+tail).
    #[test]
    fn byte_writes_are_deterministic() {
        for len in [0usize, 1, 7, 8, 9, 16, 23] {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut a = FxHasher::default();
            let mut b = FxHasher::default();
            a.write(&bytes);
            b.write(&bytes);
            assert_eq!(a.finish(), b.finish(), "len {len}");
        }
        let mut h = FxHasher::default();
        h.write(b"drill");
        assert_eq!(h.finish(), 0x9dfd_1b41_a51f_7c34, "byte stream moved");
    }

    /// The map type is a drop-in: insert/lookup behave like the default
    /// hasher's map (only bucket layout differs, and nothing iterates).
    #[test]
    fn fx_map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i.wrapping_mul(0x9e37_79b9_7f4a_7c15)), Some(&i));
        }
        let mut s: FxHashSet<u16> = FxHashSet::default();
        s.insert(3);
        assert!(s.contains(&3) && !s.contains(&4));
    }
}
