//! Deterministic, splittable randomness.

/// The simulation's random number generator.
///
/// A vendored xoshiro256++ generator (Blackman & Vigna) seeded through
/// SplitMix64, so the simulation kernel needs no external crates and the
/// workspace builds fully offline. On top of the raw stream it adds
/// *splitting*: each component of the simulation (every switch, every host,
/// the workload generator) derives its own independent stream from a root
/// seed plus a stable label, so that adding randomness consumption in one
/// component never perturbs another component's stream. This keeps
/// experiments comparable across schemes: with the same seed, ECMP and
/// DRILL see the exact same arriving workload.
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Root generator for a run.
    pub fn seed_from(seed: u64) -> SimRng {
        // Expand the 64-bit seed into 256 bits of state with SplitMix64,
        // the seeding procedure the xoshiro authors recommend; it can
        // never produce the all-zero state.
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64_mix(sm);
        }
        SimRng { s }
    }

    /// Derive an independent child stream identified by `(label, index)`.
    ///
    /// The derivation mixes the parent seed with the label through
    /// SplitMix64 steps, so children of the same parent with different
    /// labels are decorrelated.
    pub fn derive(seed: u64, label: &str, index: u64) -> SimRng {
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in label.bytes() {
            h = splitmix64(h ^ b as u64);
        }
        h = splitmix64(h ^ index);
        SimRng::seed_from(h)
    }

    /// The raw 256-bit generator state, for checkpointing. Feeding the
    /// returned words to [`SimRng::from_state`] resumes the exact draw
    /// sequence.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from [`SimRng::state`] output.
    ///
    /// The caller must supply state captured from a real generator; the
    /// all-zero state is a xoshiro fixed point and is rejected by debug
    /// assertion.
    pub fn from_state(s: [u64; 4]) -> SimRng {
        debug_assert!(s != [0; 4], "all-zero xoshiro state");
        SimRng { s }
    }

    /// Uniform `u64` (one xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    ///
    /// Lemire's multiply-shift reduction; the bias is at most `n / 2^64`,
    /// far below anything the simulation's statistics can observe, and it
    /// keeps the draw branch-free and deterministic.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed sample with the given mean.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; 1-u avoids ln(0).
        -mean * (1.0 - self.unit()).ln()
    }

    /// Standard normal sample (Box–Muller, one value per call).
    pub fn std_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.unit();
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Lognormal sample parameterized by the *underlying* normal's mu and
    /// sigma.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Choose `k` distinct indices from `[0, n)` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        debug_assert!(k <= n);
        // Partial Fisher-Yates over an index vector; fine for the small n
        // (port counts) this is used with.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[inline]
fn splitmix64(z: u64) -> u64 {
    splitmix64_mix(z.wrapping_add(0x9e37_79b9_7f4a_7c15))
}

/// The SplitMix64 output mix (finalizer) alone, without the golden-ratio
/// increment; used by the seeding loop which advances the counter itself.
#[inline]
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_is_stable_across_versions() {
        // Golden values for the vendored xoshiro256++ (splitmix64-seeded).
        // Every simulation result in results/ depends on these streams;
        // changing them silently invalidates all recorded goldens, so any
        // intentional generator change must update this test *and* them.
        let mut r = SimRng::seed_from(1);
        let head: Vec<u64> = (0..6).map(|_| r.next_u64()).collect();
        assert_eq!(
            head,
            [
                14971601782005023387,
                13781649495232077965,
                1847458086238483744,
                13765271635752736470,
                3406718355780431780,
                10892412867582108485,
            ]
        );
        let mut d = SimRng::derive(1, "net", 3);
        let head: Vec<u64> = (0..3).map(|_| d.next_u64()).collect();
        assert_eq!(
            head,
            [
                7690795725118980877,
                18380707128133689707,
                4592349343130818056
            ]
        );

        // Snapshot contract: capturing state mid-stream and resuming from
        // it replays the exact tail of the golden sequence above.
        let mut r = SimRng::seed_from(1);
        r.next_u64();
        r.next_u64();
        let mut resumed = SimRng::from_state(r.state());
        assert_eq!(resumed.next_u64(), 1847458086238483744);
        assert_eq!(resumed.next_u64(), 13765271635752736470);
        assert_eq!(resumed.next_u64(), 3406718355780431780);
    }

    #[test]
    fn state_round_trip_is_transparent() {
        let mut a = SimRng::derive(99, "wl", 7);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SimRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ_by_label_and_index() {
        let mut a = SimRng::derive(42, "switch", 0);
        let mut b = SimRng::derive(42, "switch", 1);
        let mut c = SimRng::derive(42, "host", 0);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::seed_from(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seed_from(1);
        let n = 200_000;
        let mean = 50.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() / mean < 0.02,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn std_normal_moments() {
        let mut r = SimRng::seed_from(2);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.std_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_frequency() {
        let mut r = SimRng::seed_from(3);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..100 {
            let s = r.sample_indices(10, 4);
            assert_eq!(s.len(), 4);
            let mut u = s.clone();
            u.sort_unstable();
            u.dedup();
            assert_eq!(u.len(), 4, "distinct");
            assert!(s.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_indices_full_is_permutation() {
        let mut r = SimRng::seed_from(6);
        let mut s = r.sample_indices(6, 6);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = SimRng::seed_from(8);
        for _ in 0..1000 {
            assert!(r.lognormal(0.0, 1.0) > 0.0);
        }
    }
}
