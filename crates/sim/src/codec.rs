//! Shared binary-codec primitives: LEB128 varints and a hardened slice
//! decoder.
//!
//! Both versioned binary formats in the workspace — the `DRILLTRC` flight
//! recorder traces (`drill-telemetry`) and the `DRILLSNAP` world snapshots
//! (`drill-snapshot`) — encode with these primitives and decode through
//! [`Decoder`], so the corruption-hardening discipline (bounded varints,
//! explicit truncation errors, no panics on hostile bytes) lives in one
//! place.
//!
//! All multi-byte integers are LEB128 varints, so the common case (small
//! ports, small queue depths, short deltas) costs 1–2 bytes per field.
//! High-entropy 64-bit values (float bits, RNG words, hashes) go through
//! the fixed-width helpers instead: a varint would inflate them to 10
//! bytes.

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Why a decode failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecErrorKind {
    /// The input ended before the field completed. Maps to
    /// [`io::ErrorKind::UnexpectedEof`].
    Truncated,
    /// The bytes were present but malformed (overlong varint, width
    /// overflow, bad tag, checksum mismatch, …). Maps to
    /// [`io::ErrorKind::InvalidData`].
    Invalid(String),
}

/// A typed decode error: what went wrong, in which container section, at
/// which byte offset.
///
/// Every decode failure in the workspace — `DRILLSNAP` sections,
/// `DRILLTRC` traces, `snapio` packet/event records — surfaces as one of
/// these wrapped in an `io::Error` (via [`From`]), so callers keep the
/// familiar `io::ErrorKind` semantics while diagnostics can recover the
/// structure with [`codec_error`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// The container section tag the decoder was labeled with
    /// ([`Decoder::in_section`]), when known.
    pub section: Option<u8>,
    /// Byte offset inside the decoded buffer where the failure surfaced,
    /// when the error came from a [`Decoder`] (free-function errors have
    /// no position).
    pub offset: Option<usize>,
    /// The failure itself.
    pub kind: CodecErrorKind,
}

impl CodecError {
    /// The `io::ErrorKind` this error maps to.
    pub fn io_kind(&self) -> io::ErrorKind {
        match self.kind {
            CodecErrorKind::Truncated => io::ErrorKind::UnexpectedEof,
            CodecErrorKind::Invalid(_) => io::ErrorKind::InvalidData,
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            CodecErrorKind::Truncated => write!(f, "truncated input")?,
            CodecErrorKind::Invalid(msg) => write!(f, "{msg}")?,
        }
        if let Some(tag) = self.section {
            write!(f, " (section {tag}")?;
            if let Some(off) = self.offset {
                write!(f, ", offset {off}")?;
            }
            write!(f, ")")?;
        } else if let Some(off) = self.offset {
            write!(f, " (offset {off})")?;
        }
        Ok(())
    }
}

impl StdError for CodecError {}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> io::Error {
        io::Error::new(e.io_kind(), e)
    }
}

/// Recover the typed [`CodecError`] from an `io::Error` produced by this
/// module, if there is one.
pub fn codec_error(err: &io::Error) -> Option<&CodecError> {
    err.get_ref()?.downcast_ref()
}

/// Append `v` as a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append `v` as 8 fixed little-endian bytes (for high-entropy words where
/// a varint would bloat: RNG state, hashes, float bits).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its 8 raw IEEE-754 bits, little-endian. Bit-exact
/// round-trip (NaN payloads included), which the determinism contract
/// requires.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// A truncation error (`UnexpectedEof`) with no position (use a labeled
/// [`Decoder`] to get section + offset attribution).
pub fn truncated() -> io::Error {
    CodecError {
        section: None,
        offset: None,
        kind: CodecErrorKind::Truncated,
    }
    .into()
}

/// A malformed-data error (`InvalidData`) with no position (use a labeled
/// [`Decoder`] to get section + offset attribution).
pub fn invalid(msg: &str) -> io::Error {
    CodecError {
        section: None,
        offset: None,
        kind: CodecErrorKind::Invalid(msg.to_string()),
    }
    .into()
}

/// A slice decoder with a running position.
///
/// Every read is bounds-checked and returns `io::Error` instead of
/// panicking, so hostile input (truncated files, flipped bits) degrades
/// into a clean decode error.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    section: Option<u8>,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf` starting at offset 0, with no section label.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder {
            buf,
            pos: 0,
            section: None,
        }
    }

    /// Decode from `buf` starting at offset 0, labeling every error this
    /// decoder produces with the container section tag `tag`.
    pub fn in_section(buf: &'a [u8], tag: u8) -> Decoder<'a> {
        Decoder {
            buf,
            pos: 0,
            section: Some(tag),
        }
    }

    /// The current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn truncated(&self) -> io::Error {
        CodecError {
            section: self.section,
            offset: Some(self.pos),
            kind: CodecErrorKind::Truncated,
        }
        .into()
    }

    fn invalid(&self, msg: &str) -> io::Error {
        CodecError {
            section: self.section,
            offset: Some(self.pos),
            kind: CodecErrorKind::Invalid(msg.to_string()),
        }
        .into()
    }

    /// Read one raw byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.truncated())?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a LEB128 varint.
    pub fn varint(&mut self) -> io::Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(self.invalid("varint overflows u64"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a varint that must fit a `u32`.
    pub fn varint_u32(&mut self) -> io::Result<u32> {
        match u32::try_from(self.varint()?) {
            Ok(v) => Ok(v),
            Err(_) => Err(self.invalid("field exceeds u32")),
        }
    }

    /// Read a varint that must fit a `u16`.
    pub fn varint_u16(&mut self) -> io::Result<u16> {
        match u16::try_from(self.varint()?) {
            Ok(v) => Ok(v),
            Err(_) => Err(self.invalid("field exceeds u16")),
        }
    }

    /// Read a varint that must fit a `u8`.
    pub fn varint_u8(&mut self) -> io::Result<u8> {
        match u8::try_from(self.varint()?) {
            Ok(v) => Ok(v),
            Err(_) => Err(self.invalid("field exceeds u8")),
        }
    }

    /// Read a varint that must fit a `usize`.
    pub fn varint_usize(&mut self) -> io::Result<usize> {
        match usize::try_from(self.varint()?) {
            Ok(v) => Ok(v),
            Err(_) => Err(self.invalid("field exceeds usize")),
        }
    }

    /// Read 8 fixed little-endian bytes as a `u64`.
    pub fn u64_fixed(&mut self) -> io::Result<u64> {
        let end = self.pos.checked_add(8).ok_or_else(|| self.truncated())?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Read 8 fixed little-endian bytes as raw IEEE-754 `f64` bits.
    pub fn f64_fixed(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64_fixed()?))
    }

    /// Read exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        self.pos = end;
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut d = Decoder::new(&buf);
            assert_eq!(d.varint().unwrap(), v);
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn fixed_words_round_trip_bit_exact() {
        let mut buf = Vec::new();
        let words = [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d];
        let floats = [0.0f64, -0.0, 1.5, f64::INFINITY, f64::NAN, -1e300];
        for w in words {
            put_u64(&mut buf, w);
        }
        for f in floats {
            put_f64(&mut buf, f);
        }
        let mut d = Decoder::new(&buf);
        for w in words {
            assert_eq!(d.u64_fixed().unwrap(), w);
        }
        for f in floats {
            assert_eq!(d.f64_fixed().unwrap().to_bits(), f.to_bits());
        }
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_cleanly() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        let mut d = Decoder::new(&buf[..5]);
        assert_eq!(
            d.u64_fixed().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        let mut d = Decoder::new(&[0x80, 0x80]); // unterminated varint
        assert_eq!(d.varint().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn overlong_varint_errors() {
        // 11 continuation bytes can't fit a u64.
        let buf = [0xff; 11];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.varint().unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn narrow_varint_readers_enforce_width() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u32::MAX as u64 + 1);
        assert!(Decoder::new(&buf).varint_u32().is_err());
        let mut buf = Vec::new();
        put_varint(&mut buf, u16::MAX as u64 + 1);
        assert!(Decoder::new(&buf).varint_u16().is_err());
        let mut buf = Vec::new();
        put_varint(&mut buf, 256);
        assert!(Decoder::new(&buf).varint_u8().is_err());
    }

    #[test]
    fn bytes_reader_is_bounds_checked() {
        let buf = [1u8, 2, 3];
        let mut d = Decoder::new(&buf);
        assert_eq!(d.bytes(2).unwrap(), &[1, 2]);
        assert!(d.bytes(2).is_err());
        assert_eq!(d.bytes(1).unwrap(), &[3]);
    }

    #[test]
    fn decoder_errors_carry_section_and_offset() {
        let buf = [7u8, 8];
        let mut d = Decoder::in_section(&buf, 3);
        d.u8().unwrap();
        let err = d.u64_fixed().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let ce = codec_error(&err).expect("typed error recoverable");
        assert_eq!(ce.section, Some(3));
        assert_eq!(ce.offset, Some(1));
        assert_eq!(ce.kind, CodecErrorKind::Truncated);
        assert!(err.to_string().contains("section 3"));
        assert!(err.to_string().contains("offset 1"));
    }

    #[test]
    fn invalid_data_errors_are_typed_too() {
        let buf = [0xff; 11];
        let mut d = Decoder::in_section(&buf, 9);
        let err = d.varint().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let ce = codec_error(&err).unwrap();
        assert_eq!(ce.section, Some(9));
        assert!(matches!(ce.kind, CodecErrorKind::Invalid(_)));
        // Free-function errors are typed as well, just unpositioned.
        let ce = codec_error(&invalid("bad magic")).cloned().unwrap();
        assert_eq!(ce.section, None);
        assert_eq!(ce.offset, None);
        let ce = codec_error(&truncated()).cloned().unwrap();
        assert_eq!(ce.kind, CodecErrorKind::Truncated);
    }
}
