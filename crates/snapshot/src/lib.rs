//! `DRILLSNAP`: the versioned binary container for full simulator-state
//! snapshots.
//!
//! A snapshot is a header followed by tagged *sections* and a trailing
//! checksum:
//!
//! ```text
//! +-----------+---------+-------+----------------------+----------+
//! | "DRILLSNAP" | version | flags | sections...          | FNV-1a64 |
//! |  9 bytes    | u16 LE  |  u8   | (tag u8, len, bytes) | u64 LE   |
//! +-----------+---------+-------+----------------------+----------+
//! ```
//!
//! Section payloads are opaque to this crate — the runtime fills them with
//! the engine queue, arenas, switches, flows, RNG streams and statistics
//! (see `drill_runtime`'s snapshot module). Tags a reader does not know are
//! skippable by construction (length-prefixed), so old readers survive new
//! writers within a version.
//!
//! Decoding follows the same hardening discipline as the `DRILLTRC` trace
//! codec it shares primitives with (`drill_sim::codec`): wrong magic,
//! unsupported version, a corrupted byte anywhere (checksum), truncation
//! mid-section, and hostile length prefixes all surface as `io::Error` —
//! never a panic or an over-allocation.

#![warn(missing_docs)]

use std::fs;
use std::io;
use std::path::Path;

use drill_sim::codec::{invalid, put_varint, truncated, Decoder};

/// File magic, 9 bytes.
pub const SNAP_MAGIC: [u8; 9] = *b"DRILLSNAP";

/// Current container version.
pub const SNAP_VERSION: u16 = 1;

/// Oldest container version this reader accepts.
pub const SNAP_VERSION_MIN: u16 = 1;

/// Flag bit: the snapshot was taken by a `fat-events` build (packets by
/// value in events; arena contents are reconstructed from the events
/// themselves rather than stored wholesale). A snapshot restores only into
/// a build with the same packet layout.
pub const FLAG_FAT_LAYOUT: u8 = 1 << 0;

const KNOWN_FLAGS: u8 = FLAG_FAT_LAYOUT;

/// Cap on any single decoded pre-allocation: a hostile length prefix may
/// claim terabytes; real sections grow incrementally past this.
const PREALLOC_CAP: usize = 1 << 16;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded (or under-construction) snapshot: an ordered list of tagged
/// sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    flags: u8,
    sections: Vec<(u8, Vec<u8>)>,
}

impl Snapshot {
    /// Whether this snapshot was written by a `fat-events` build.
    pub fn fat_layout(&self) -> bool {
        self.flags & FLAG_FAT_LAYOUT != 0
    }

    /// The payload of the first section with `tag`, if present.
    pub fn section(&self, tag: u8) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, b)| b.as_slice())
    }

    /// Number of sections.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Total payload bytes across sections (excluding framing).
    pub fn payload_bytes(&self) -> usize {
        self.sections.iter().map(|(_, b)| b.len()).sum()
    }

    /// Serialize to the `DRILLSNAP` wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + self.payload_bytes());
        buf.extend_from_slice(&SNAP_MAGIC);
        buf.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        buf.push(self.flags);
        for (tag, body) in &self.sections {
            buf.push(*tag);
            put_varint(&mut buf, body.len() as u64);
            buf.extend_from_slice(body);
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Parse and validate a `DRILLSNAP` byte stream.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Snapshot> {
        // Header (9 + 2 + 1) plus the 8-byte trailing checksum.
        if bytes.len() < 20 {
            return Err(truncated());
        }
        if bytes[..9] != SNAP_MAGIC {
            return Err(invalid("not a DRILLSNAP file"));
        }
        let version = u16::from_le_bytes([bytes[9], bytes[10]]);
        if !(SNAP_VERSION_MIN..=SNAP_VERSION).contains(&version) {
            return Err(invalid("unsupported DRILLSNAP version"));
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let expect = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if fnv1a64(body) != expect {
            return Err(invalid("DRILLSNAP checksum mismatch"));
        }
        let flags = bytes[11];
        if flags & !KNOWN_FLAGS != 0 {
            return Err(invalid("unknown DRILLSNAP flags"));
        }
        let mut d = Decoder::new(&body[12..]);
        let mut sections = Vec::new();
        while d.remaining() > 0 {
            let tag = d.u8()?;
            let len = d.varint_usize()?;
            let body = d.bytes(len)?.to_vec();
            if sections.len() >= PREALLOC_CAP {
                return Err(invalid("too many sections"));
            }
            sections.push((tag, body));
        }
        Ok(Snapshot { flags, sections })
    }

    /// Write the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// Read and validate a snapshot file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Snapshot> {
        Snapshot::from_bytes(&fs::read(path)?)
    }
}

/// Incremental snapshot writer: push sections in order, then
/// [`finish`](SnapshotBuilder::finish).
#[derive(Debug)]
pub struct SnapshotBuilder {
    snap: Snapshot,
}

impl SnapshotBuilder {
    /// Start a snapshot; `fat_layout` records the build's packet layout.
    pub fn new(fat_layout: bool) -> SnapshotBuilder {
        SnapshotBuilder {
            snap: Snapshot {
                flags: if fat_layout { FLAG_FAT_LAYOUT } else { 0 },
                sections: Vec::new(),
            },
        }
    }

    /// Append a section.
    pub fn section(&mut self, tag: u8, body: Vec<u8>) -> &mut SnapshotBuilder {
        self.snap.sections.push((tag, body));
        self
    }

    /// Finish building.
    pub fn finish(self) -> Snapshot {
        self.snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut b = SnapshotBuilder::new(false);
        b.section(1, vec![1, 2, 3]);
        b.section(7, Vec::new());
        b.section(2, (0..200u8).collect());
        b.finish()
    }

    #[test]
    fn round_trips() {
        let s = sample();
        let bytes = s.to_bytes();
        let t = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(s, t);
        assert_eq!(t.section(1), Some(&[1u8, 2, 3][..]));
        assert_eq!(t.section(7), Some(&[][..]));
        assert_eq!(t.section(9), None);
        assert!(!t.fat_layout());
        assert_eq!(t.num_sections(), 3);
        assert_eq!(t.payload_bytes(), 203);
    }

    #[test]
    fn fat_flag_round_trips() {
        let s = SnapshotBuilder::new(true).finish();
        let t = Snapshot::from_bytes(&s.to_bytes()).unwrap();
        assert!(t.fat_layout());
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(Snapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[9..11].copy_from_slice(&(SNAP_VERSION + 1).to_le_bytes());
        // Re-seal so the version check (not the checksum) is what trips.
        let end = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..end]);
        bytes[end..].copy_from_slice(&sum.to_le_bytes());
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn unknown_flags_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[11] |= 0x80;
        let end = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..end]);
        bytes[end..].copy_from_slice(&sum.to_le_bytes());
        assert!(Snapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut c = bytes.clone();
                c[i] ^= 1 << bit;
                assert!(
                    Snapshot::from_bytes(&c).is_err(),
                    "flip at byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().to_bytes();
        for n in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
    }

    #[test]
    fn hostile_section_length_is_bounded() {
        // A section claiming a huge length must error, not allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAP_MAGIC);
        buf.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        buf.push(0);
        buf.push(1); // tag
        put_varint(&mut buf, u64::MAX >> 1);
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        assert!(Snapshot::from_bytes(&buf).is_err());
    }

    #[test]
    fn save_load_file() {
        let dir = std::env::temp_dir().join("drillsnap-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.snap");
        let s = sample();
        s.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), s);
        fs::remove_file(&path).ok();
    }
}
