//! Experiment configuration.

use drill_faults::FaultSchedule;
use drill_net::{
    clos, fat_tree, fat_tree_custom, leaf_spine, leaf_spine_custom, vl2, ClosSpec, LeafSpineSpec,
    Topology, Vl2Spec, DEFAULT_PROP,
};
use drill_sim::Time;
use drill_transport::TcpConfig;
use drill_workload::{FlowSizeDist, IncastSpec, TrafficPattern};

use crate::Scheme;

/// Every topology the paper evaluates, by name.
#[derive(Clone, Debug)]
pub enum TopoSpec {
    /// A plain two-stage leaf-spine Clos.
    LeafSpine(LeafSpineSpec),
    /// Figure 13's heterogeneous striping: leaf `i` gets `extra_links`
    /// links to spines `i mod S` and `(i+1) mod S`, one link otherwise.
    HeteroStriped {
        /// The base leaf-spine shape.
        base: LeafSpineSpec,
        /// Parallel links to the two "neighbour" spines.
        extra_links: usize,
    },
    /// A VL2 three-stage Clos.
    Vl2(Vl2Spec),
    /// A k-ary fat-tree with uniform link rate.
    FatTree {
        /// Arity (even).
        k: usize,
        /// Link rate in bps.
        rate: u64,
    },
    /// A k-ary fat-tree with a custom (possibly oversubscribed) edge:
    /// `hosts_per_edge` hosts per edge switch instead of `k/2`. The
    /// `scalebench` 16k-host point is `k: 32, hosts_per_edge: 32` (2:1).
    FatTreeCustom {
        /// Arity (even).
        k: usize,
        /// Hosts attached to each edge switch.
        hosts_per_edge: usize,
        /// Fabric link rate in bps (hosts attach at the same rate).
        rate: u64,
    },
    /// A general three-tier folded Clos (independent tier widths).
    Clos(ClosSpec),
}

impl TopoSpec {
    /// Materialize the topology.
    pub fn build(&self) -> Topology {
        match self {
            TopoSpec::LeafSpine(spec) => leaf_spine(spec),
            TopoSpec::HeteroStriped { base, extra_links } => {
                let s = base.spines;
                leaf_spine_custom(base, |leaf, spine| {
                    let n = if spine == leaf % s || spine == (leaf + 1) % s {
                        *extra_links
                    } else {
                        1
                    };
                    vec![base.core_rate; n]
                })
            }
            TopoSpec::Vl2(spec) => vl2(spec),
            TopoSpec::FatTree { k, rate } => fat_tree(*k, *rate, DEFAULT_PROP),
            TopoSpec::FatTreeCustom {
                k,
                hosts_per_edge,
                rate,
            } => fat_tree_custom(*k, *hosts_per_edge, *rate, *rate, DEFAULT_PROP),
            TopoSpec::Clos(spec) => clos(spec),
        }
    }

    /// Total one-direction core capacity (all leaf up-links), used for the
    /// offered-load arithmetic.
    pub fn core_capacity_bps(&self) -> u64 {
        let topo = self.build();
        topo.links()
            .iter()
            .filter(|l| l.hop == drill_net::HopClass::LeafUp)
            .map(|l| l.rate_bps)
            .sum()
    }
}

/// What traffic to offer.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Offered core load in `[0, 1)`.
    pub load: f64,
    /// Flow-size distribution.
    pub sizes: FlowSizeDist,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Lognormal burstiness sigma; 0 = Poisson arrivals.
    pub burst_sigma: f64,
    /// Optional incast application layered on the background load.
    pub incast: Option<IncastSpec>,
}

impl WorkloadSpec {
    /// The paper's default: trace-driven sizes, Poisson arrivals, uniform
    /// inter-leaf destinations at the given load.
    pub fn trace_driven(load: f64) -> WorkloadSpec {
        WorkloadSpec {
            load,
            sizes: FlowSizeDist::fb_web(),
            pattern: TrafficPattern::Uniform,
            burst_sigma: 0.0,
            incast: None,
        }
    }
}

/// Table 1's synthetic elephant/mice mode.
#[derive(Clone, Debug)]
pub struct SyntheticMode {
    /// Elephant transfer size in bytes; each host keeps one elephant
    /// running to its pattern destination, starting the next transfer on
    /// completion (Shuffle advances to the next destination).
    pub elephant_bytes: u64,
    /// Mice flow size.
    pub mice_bytes: u64,
    /// Gap between mice flows per host.
    pub mice_period: Time,
}

impl Default for SyntheticMode {
    fn default() -> Self {
        SyntheticMode {
            elephant_bytes: 20_000_000,
            mice_bytes: 50_000,
            mice_period: Time::from_millis(100),
        }
    }
}

/// Flight-recorder telemetry knobs (see `drill-telemetry`). Attaching a
/// spec to [`ExperimentConfig::telemetry`] makes the run record lifecycle
/// events and queue time series; metrics stay bit-identical either way
/// (probes observe, never steer).
#[derive(Clone, Debug)]
pub struct TelemetrySpec {
    /// Events kept per (switch, engine) ring; the newest survive.
    pub ring_capacity: usize,
    /// Queue-depth sampling cadence.
    pub sample_every: Time,
    /// Where to write the `DRILLTRC` trace file after the run (`None` =
    /// keep the recorder in memory only, returned by `run_recorded`).
    pub trace_path: Option<std::path::PathBuf>,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec {
            ring_capacity: drill_telemetry::DEFAULT_RING_CAPACITY,
            sample_every: drill_telemetry::DEFAULT_SAMPLE_EVERY,
            trace_path: None,
        }
    }
}

/// Sharded-execution knobs (see `drill_net::ShardPlan` and DESIGN.md
/// §11). Attaching a spec splits the fabric into per-shard event wheels
/// and packet arenas advanced in conservative lookahead windows; results
/// stay bit-identical at every shard count. An explicit spec takes
/// precedence over the `DRILL_SHARDS` environment variable.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Requested shard count for the automatic partitioner (clamped to
    /// `1 + num_leaves`; `1` keeps the serial engine).
    pub count: usize,
    /// Manual override: explicit per-switch shard assignment (validated
    /// by `ShardPlan::manual`; `count` is ignored when set).
    pub switch_map: Option<Vec<u32>>,
}

impl ShardSpec {
    /// Automatic partition into `count` shards.
    pub fn count(count: usize) -> ShardSpec {
        ShardSpec {
            count,
            switch_map: None,
        }
    }
}

/// One simulation run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Topology.
    pub topo: TopoSpec,
    /// Load balancer under test.
    pub scheme: Scheme,
    /// Root RNG seed (same seed + same config = identical run).
    pub seed: u64,
    /// Background workload (ignored when `synthetic` is set).
    pub workload: WorkloadSpec,
    /// Table-1 style synthetic elephants+mice instead of background flows.
    pub synthetic: Option<SyntheticMode>,
    /// Explicit flows started at t=0 (src host, dst host, bytes;
    /// `u64::MAX` = persistent). Measured as elephants. Composable with
    /// the background workload.
    pub static_flows: Vec<(u32, u32, u64)>,
    /// Flow-arrival window; arrivals stop afterwards.
    pub duration: Time,
    /// Extra time to let in-flight flows finish after arrivals stop.
    pub drain: Time,
    /// Flows starting earlier than this are excluded from the statistics.
    pub warmup: Time,
    /// Forwarding engines per switch.
    pub engines: usize,
    /// Per-port buffer limit in bytes.
    pub queue_limit_bytes: u64,
    /// Model the §3.2.1 enqueue-commit visibility lag.
    pub model_commit: bool,
    /// TCP knobs.
    pub tcp: TcpConfig,
    /// Switch-to-switch link pairs (by switch id) to fail.
    pub failed_links: Vec<(u32, u32)>,
    /// When to apply the failures: `None` = before the run starts (routing
    /// already reconverged, the "ideal DRILL" of §4); `Some(t)` = links die
    /// at `t` and routing reconverges `ospf_delay` later.
    pub fail_at: Option<Time>,
    /// Failure-detection + reconvergence delay when `fail_at` is set.
    pub ospf_delay: Time,
    /// Chaos-engine fault schedule (link flaps, switch outages, capacity
    /// degradation, lossy links) driven through the run with staged
    /// detection and coalesced reconvergence (see `drill-faults`).
    /// Composes with the legacy `failed_links`/`fail_at` one-shot, which
    /// keeps `ospf_delay` as its detection delay; schedule events use the
    /// schedule's own `detection_delay`.
    pub faults: Option<FaultSchedule>,
    /// Install DRILL's symmetric-component decomposition (§3.4) for
    /// schemes that micro load balance. Disable to ablate asymmetry
    /// handling (DRILL then treats all candidates as one group).
    pub asymmetry_handling: bool,
    /// Use the legacy enumerative §3.4 control plane
    /// (`install_symmetric_groups_eager`: global Quiver + per-entry path
    /// re-enumeration) instead of the structural `SymmetryEngine`. Both
    /// produce identical group tables; this knob exists for A/B
    /// benchmarks and the structural-vs-eager regression tests. The eager
    /// path is O(leaves² × paths) — do not enable at scale.
    pub eager_control_plane: bool,
    /// Sample the Figure-2 queue-length STDV metric every 10 µs.
    pub sample_queues: bool,
    /// Open-loop packet-train mode (no TCP): used for the §3.2.3 queue
    /// studies, Figures 2 and 3.
    pub raw_packet_mode: bool,
    /// Hard cap on processed events (safety valve; 0 = unlimited).
    pub max_events: u64,
    /// Flight-recorder telemetry (off by default). Sweeps can opt in per
    /// point through [`SweepSpec::configure`](crate::SweepSpec::configure),
    /// e.g. setting a distinct `trace_path` per grid cell.
    pub telemetry: Option<TelemetrySpec>,
    /// Sharded execution (off by default = serial engine). `None` defers
    /// to the `DRILL_SHARDS` environment variable.
    pub shards: Option<ShardSpec>,
    /// Write `DRILLSNAP` state snapshots while the run executes (off by
    /// default). Crash recovery resumes from the latest file via
    /// [`World::restore`](crate::World::restore).
    pub checkpoint: Option<CheckpointSpec>,
    /// Run the invariant auditor alongside the simulation (off by
    /// default). Watchdogs fire at event-count boundaries; results stay
    /// bit-identical either way (audits observe, never steer).
    pub audit: Option<AuditSpec>,
    /// Deliberately break an invariant mid-run (auditor negative tests
    /// and the `tracedump --sabotage` demo; off by default). Only honored
    /// by audited builds — `NoopAudit` runs compile the hook away.
    pub sabotage: Option<drill_faults::SabotageSpec>,
}

/// Invariant-auditor knobs (see `drill-audit` and DESIGN.md §14).
/// Attaching a spec to [`ExperimentConfig::audit`] makes the run evaluate
/// the watchdog suite at every boundary, retain the [`SnapshotRing`]
/// (`drill_audit::SnapshotRing`), and on a trip dump ring + faulted
/// snapshot + `anomaly.meta` into `dump_dir`.
#[derive(Clone, Debug)]
pub struct AuditSpec {
    /// Evaluate watchdogs (and ring a checkpoint) every this many
    /// processed events. 0 disables boundaries entirely.
    pub every_events: u64,
    /// A started, uncompleted flow with no newly acknowledged byte for
    /// this long is reported stuck.
    pub stuck_after: Time,
    /// Snapshot-ring entry bound (oldest evicted first).
    pub ring_entries: usize,
    /// Snapshot-ring total-bytes bound (the newest entry always
    /// survives).
    pub ring_bytes: usize,
    /// Where a trip dumps `ring-*.drillsnap`, `faulted.drillsnap`, and
    /// `anomaly.meta`. `None` records reports only.
    pub dump_dir: Option<std::path::PathBuf>,
    /// Stop recording after this many anomaly reports.
    pub max_reports: usize,
}

impl Default for AuditSpec {
    fn default() -> AuditSpec {
        AuditSpec {
            every_events: 50_000,
            stuck_after: Time::from_millis(500),
            ring_entries: 4,
            ring_bytes: 64 << 20,
            dump_dir: None,
            max_reports: 8,
        }
    }
}

/// When to capture mid-run checkpoints.
#[derive(Clone, Copy, Debug)]
pub enum CheckpointPolicy {
    /// Snapshot once, when the next pending event would reach `t` — the
    /// state "as of `t⁻`". Drives warm-started sweeps: run the shared
    /// warmup once, fork the grid from the file.
    AtTime(Time),
    /// Snapshot every `n` processed events, overwriting the same file —
    /// the crash-recovery cadence (`scalebench --checkpoint-every`).
    EveryEvents(u64),
}

/// A checkpoint policy plus the file it writes.
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    /// When to snapshot.
    pub policy: CheckpointPolicy,
    /// Destination file, overwritten on each capture.
    pub path: std::path::PathBuf,
}

impl ExperimentConfig {
    /// A baseline config on the given topology and scheme: paper-default
    /// knobs, trace-driven workload at `load`.
    pub fn new(topo: TopoSpec, scheme: Scheme, load: f64) -> ExperimentConfig {
        ExperimentConfig {
            topo,
            scheme,
            seed: 1,
            workload: WorkloadSpec::trace_driven(load),
            synthetic: None,
            static_flows: Vec::new(),
            duration: Time::from_millis(30),
            drain: Time::from_millis(3000),
            warmup: Time::from_millis(2),
            engines: 1,
            queue_limit_bytes: 1_000_000,
            model_commit: true,
            tcp: TcpConfig::default(),
            failed_links: Vec::new(),
            fail_at: None,
            ospf_delay: Time::from_millis(50),
            faults: None,
            asymmetry_handling: true,
            eager_control_plane: false,
            sample_queues: false,
            raw_packet_mode: false,
            max_events: 0,
            telemetry: None,
            shards: None,
            checkpoint: None,
            audit: None,
            sabotage: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topo_specs_build() {
        let ls = TopoSpec::LeafSpine(LeafSpineSpec::paper_baseline());
        assert_eq!(ls.build().num_hosts(), 320);
        // Baseline: 16 leaves x 4 spines x 40G = 2.56 Tbps.
        assert_eq!(ls.core_capacity_bps(), 2_560_000_000_000);
        let so = TopoSpec::LeafSpine(LeafSpineSpec::paper_scale_out());
        assert_eq!(so.core_capacity_bps(), 2_560_000_000_000);
        let v = TopoSpec::Vl2(Vl2Spec::paper());
        assert_eq!(v.build().num_hosts(), 320);
        let f = TopoSpec::FatTree {
            k: 4,
            rate: 1_000_000_000,
        };
        assert_eq!(f.build().num_hosts(), 16);
        let fo = TopoSpec::FatTreeCustom {
            k: 4,
            hosts_per_edge: 4,
            rate: 1_000_000_000,
        };
        assert_eq!(fo.build().num_hosts(), 32);
        let c = TopoSpec::Clos(ClosSpec::smoke());
        assert_eq!(c.build().num_hosts(), 32);
        assert!(c.core_capacity_bps() > 0);
    }

    #[test]
    fn hetero_striping_links() {
        let base = LeafSpineSpec {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 2,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let t = TopoSpec::HeteroStriped {
            base,
            extra_links: 2,
        }
        .build();
        let l0 = t.leaves()[0];
        // Leaf 0: 2 links each to spines 0 and 1, 1 link to spines 2, 3.
        assert_eq!(t.ports_to_switch(l0, drill_net::SwitchId(4)).len(), 2);
        assert_eq!(t.ports_to_switch(l0, drill_net::SwitchId(6)).len(), 1);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ExperimentConfig::new(
            TopoSpec::LeafSpine(LeafSpineSpec::paper_baseline()),
            Scheme::Ecmp,
            0.5,
        );
        assert_eq!(cfg.workload.load, 0.5);
        assert!(cfg.model_commit);
        assert!(cfg.warmup < cfg.duration);
    }
}
