//! Load-balancing scheme registry.

use drill_core::{DrillPolicy, PerFlowDrill};
use drill_lb::{
    CongaConfig, CongaPolicy, EcmpPolicy, PrestoHostPolicy, RandomPolicy, RoundRobinPolicy,
    WcmpPolicy,
};
use drill_net::{HostId, HostPolicy, NullHostPolicy, RouteTable, SwitchId, SwitchPolicy, Topology};

fn drill_transport_shim_timeout() -> drill_sim::Time {
    drill_transport::SHIM_DEFAULT_TIMEOUT
}

/// Every load balancer evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Per-flow hashing (the deployed baseline).
    Ecmp,
    /// Per-packet uniform random ("Per-packet Random").
    Random,
    /// Per-packet round robin ("Per-packet RR").
    RoundRobin,
    /// DRILL(d, m); `shim` restores ordering at the receiver.
    Drill {
        /// Random samples per decision.
        d: usize,
        /// Memory units per engine.
        m: usize,
        /// Deploy the receiver-side reordering shim.
        shim: bool,
    },
    /// The "per-flow DRILL" strawman: load-aware first packet, then pinned.
    PerFlowDrill,
    /// Presto: 64 KB flowcells source-routed round robin; `shim` is
    /// Presto's standard configuration (disable to measure "before shim").
    Presto {
        /// Deploy the receiver-side reordering shim.
        shim: bool,
    },
    /// CONGA: congestion-aware flowlets.
    Conga,
    /// WCMP: capacity-weighted ECMP.
    Wcmp,
}

impl Scheme {
    /// DRILL at the paper's recommended operating point, with the shim.
    pub fn drill_default() -> Scheme {
        Scheme::Drill {
            d: 2,
            m: 1,
            shim: true,
        }
    }

    /// DRILL(2,1) without the shim ("DRILL w/o shim" in the figures).
    pub fn drill_no_shim() -> Scheme {
        Scheme::Drill {
            d: 2,
            m: 1,
            shim: false,
        }
    }

    /// Presto as deployed (with its shim).
    pub fn presto() -> Scheme {
        Scheme::Presto { shim: true }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Scheme::Ecmp => "ECMP".into(),
            Scheme::Random => "Per-packet Random".into(),
            Scheme::RoundRobin => "Per-packet RR".into(),
            Scheme::Drill { d, m, shim: true } => format!("DRILL({d},{m})"),
            Scheme::Drill { d, m, shim: false } => format!("DRILL({d},{m}) w/o shim"),
            Scheme::PerFlowDrill => "per-flow DRILL".into(),
            Scheme::Presto { shim: true } => "Presto".into(),
            Scheme::Presto { shim: false } => "Presto before shim".into(),
            Scheme::Conga => "CONGA".into(),
            Scheme::Wcmp => "WCMP".into(),
        }
    }

    /// Whether receivers run the reordering shim for this scheme.
    pub fn uses_shim(&self) -> bool {
        matches!(
            self,
            Scheme::Drill { shim: true, .. } | Scheme::Presto { shim: true }
        )
    }

    /// Shim parameters `(flush threshold in packets, hold timeout)`.
    ///
    /// DRILL reorders by a packet or two, so the shim flushes on TCP's own
    /// 3-packet loss evidence. Presto reorders at flowcell granularity —
    /// its real shim tracks flowcell sequence numbers and knows a whole
    /// cell may still be in flight — so its threshold covers one cell.
    pub fn shim_params(&self) -> (usize, drill_sim::Time) {
        match self {
            Scheme::Presto { .. } => (64, drill_sim::Time::from_micros(200)),
            _ => (3, drill_transport_shim_timeout()),
        }
    }

    /// Whether DRILL's symmetric-component decomposition should be
    /// installed (the scheme micro load balances per packet and therefore
    /// needs the §3.4 asymmetry handling).
    pub fn wants_symmetric_groups(&self) -> bool {
        matches!(self, Scheme::Drill { .. } | Scheme::PerFlowDrill)
    }

    /// Build the switch policy for one switch.
    pub fn make_switch_policy(
        &self,
        topo: &Topology,
        routes: &RouteTable,
        switch: SwitchId,
        engines: usize,
    ) -> Box<dyn SwitchPolicy> {
        match self {
            Scheme::Ecmp => Box::new(EcmpPolicy),
            Scheme::Random => Box::new(RandomPolicy),
            Scheme::RoundRobin => Box::new(RoundRobinPolicy::new(engines)),
            Scheme::Drill { d, m, .. } => Box::new(DrillPolicy::new(*d, *m, engines)),
            Scheme::PerFlowDrill => Box::new(PerFlowDrill::new(2, 1, engines)),
            // Presto's fabric behaviour for non-source-routed packets
            // (ACKs, fallbacks) is ECMP.
            Scheme::Presto { .. } => Box::new(EcmpPolicy),
            Scheme::Conga => Box::new(CongaPolicy::build(topo, switch, CongaConfig::default())),
            Scheme::Wcmp => Box::new(WcmpPolicy::build(topo, routes, switch)),
        }
    }

    /// Build the host policy for one sending host.
    pub fn make_host_policy(
        &self,
        topo: &Topology,
        routes: &RouteTable,
        host: HostId,
    ) -> Box<dyn HostPolicy> {
        match self {
            Scheme::Presto { .. } => Box::new(PrestoHostPolicy::build(topo, routes, host)),
            _ => Box::new(NullHostPolicy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_figures() {
        assert_eq!(Scheme::Ecmp.name(), "ECMP");
        assert_eq!(Scheme::drill_default().name(), "DRILL(2,1)");
        assert_eq!(Scheme::drill_no_shim().name(), "DRILL(2,1) w/o shim");
        assert_eq!(Scheme::Presto { shim: false }.name(), "Presto before shim");
    }

    #[test]
    fn shim_flags() {
        assert!(Scheme::drill_default().uses_shim());
        assert!(!Scheme::drill_no_shim().uses_shim());
        assert!(Scheme::presto().uses_shim());
        assert!(!Scheme::Conga.uses_shim());
    }

    #[test]
    fn group_flags() {
        assert!(Scheme::drill_default().wants_symmetric_groups());
        assert!(Scheme::PerFlowDrill.wants_symmetric_groups());
        assert!(!Scheme::Ecmp.wants_symmetric_groups());
        assert!(!Scheme::Conga.wants_symmetric_groups());
    }
}
