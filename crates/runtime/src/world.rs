//! The simulation world: event loop tying every substrate together.

use drill_audit::{
    AnomalyReport, Audit, BoundarySample, FlowProgress, InvariantAuditor, NoopAudit, SnapshotRing,
};
use drill_core::{install_symmetric_groups_eager, SymmetryEngine};
use drill_faults::{FaultInjector, FaultKind, SabotageKind, SabotageSpec};
use drill_net::{
    BufPool, EventSink, HopClass, HostId, HostNic, HostPolicy, NetEvent, Packet, PacketArena,
    PacketBufPool, PacketRef, RouteTable, ShardPlan, Switch, SwitchConfig, SwitchId, Topology,
};
use drill_sim::{SimRng, Time};
use drill_stats::stdev_of;
use drill_telemetry::{fault_kind, FaultInfo, FlightRecorder, NoopProbe, Probe, QueueSampler};
use drill_transport::{ShimBuffer, TcpFlow};
use drill_workload::{aggregate_flow_rate, ArrivalProcess, FlowSpec, TrafficPattern, WorkloadGen};

use crate::config::{CheckpointPolicy, CheckpointSpec, ExperimentConfig};
use crate::shards::EngineQueue;
use crate::stats::{hop_index, RunStats};
use crate::Scheme;

/// `DRILLSNAP` state capture and restore — a child module so it can walk
/// `World`'s private fields without widening their visibility.
#[path = "snapshot.rs"]
mod snapshot;

pub(crate) use snapshot::FAULT_SEQ_BASE;

/// Queue-STDV sampling period (the paper samples every 10 µs).
const SAMPLE_PERIOD: Time = Time::from_micros(10);

#[derive(Debug)]
enum Event {
    Net(NetEvent),
    FlowArrival,
    IncastEpoch,
    MiceTick,
    TcpTimer {
        flow: u32,
        gen: u64,
    },
    ShimTimer {
        flow: u32,
        gen: u64,
    },
    SampleQueues,
    /// The `idx`-th entry of the run's fault timeline strikes.
    Fault {
        idx: u32,
    },
    /// A staged reconvergence (routing recompute + symmetric
    /// re-decomposition) comes due. Stale generations — superseded by a
    /// later fault whose detection window subsumed this one — are popped
    /// and ignored, coalescing back-to-back faults into one recompute.
    Reconverge {
        gen: u64,
    },
}

/// The runtime event is what every timing-wheel slab node, batch sort and
/// push/pop copies; the arena refactor exists to keep it at two words plus
/// a discriminant. `TcpTimer`/`ShimTimer` (u32 + u64) set the 24-byte
/// floor; the packet-carrying `Net` variants fit under it only because
/// they hold a [`PacketRef`] handle.
#[cfg(not(feature = "fat-events"))]
const _: () = assert!(std::mem::size_of::<Event>() <= 24);

/// Whole-node bound: payload (`Option<Event>`, 24 + niche'd tag) + wheel
/// bookkeeping (time, seq, freelist link, generation, state) must stay
/// within one cache line with room to spare.
#[cfg(not(feature = "fat-events"))]
const _: () = assert!(drill_sim::node_size::<Event>() <= 56);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FlowClass {
    Background,
    Incast,
    Mice,
    Elephant,
}

/// One experiment mid-flight: the topology, every component's state, and
/// the event engine. Built by [`World::new`], advanced by
/// [`World::run_to`], captured/resumed by [`World::snapshot`] and
/// [`World::restore`], and finished into [`RunStats`] by
/// [`World::finish`]. The free functions [`run`]/[`run_probed`] drive the
/// same type end to end.
pub struct World<P: Probe = NoopProbe, A: Audit = NoopAudit> {
    cfg: ExperimentConfig,
    topo: Topology,
    routes: RouteTable,
    /// Structural §3.4 control plane. Persists interned structure across
    /// reconvergences so a fault only re-decomposes entries whose
    /// fingerprint changed (unused when `cfg.eager_control_plane`).
    symmetry: SymmetryEngine,
    switches: Vec<Switch>,
    nics: Vec<HostNic>,
    host_policies: Vec<Box<dyn HostPolicy>>,
    flows: Vec<TcpFlow>,
    classes: Vec<FlowClass>,
    measured: Vec<bool>,
    shims: Vec<Option<ShimBuffer>>,
    sched_gen: Vec<u64>,
    queue: EngineQueue<Event>,
    /// The fabric partition driving event ownership and arena residency;
    /// the trivial single-shard plan on the serial engine.
    plan: ShardPlan,
    rng_net: SimRng,
    rng_wl: SimRng,
    pkt_ids: u64,
    gen: Option<WorkloadGen>,
    pending_flow: Option<FlowSpec>,
    synth_pattern: Option<TrafficPattern>,
    net_buf: EventSink,
    /// Every in-flight packet, interned between host send and final
    /// delivery/drop; events and queues carry [`PacketRef`] handles. One
    /// arena per shard (a single arena on the serial engine): a packet
    /// lives in the arena of the shard currently handling it and is
    /// re-interned at the boundary when a wire hop crosses shards.
    arenas: Vec<PacketArena>,
    /// Recycled `Vec<Packet>` buffers for TCP/ACK emission batches.
    pkt_pool: PacketBufPool,
    /// Recycled `Vec<PacketRef>` buffers for shim release batches.
    ref_pool: BufPool<PacketRef>,
    /// Scratch for per-sample queue lengths in `sample_queues`.
    lens_scratch: Vec<f64>,
    stats: RunStats,
    arrivals_end: Time,
    leaf_of: Vec<u32>,
    leaf_up_ports: Vec<Vec<(usize, u16)>>,
    spine_down_ports: Vec<Vec<(usize, u16)>>,
    shim_enabled: bool,
    data_delivered: u64,
    bytes_delivered: u64,
    /// The run's fault timeline: `(strike time, kind, detection delay)`,
    /// time-sorted (legacy `failed_links`/`fail_at` entries first on
    /// ties). Indexed by `Event::Fault`.
    faults: Vec<(Time, FaultKind, Time)>,
    injector: FaultInjector,
    /// Timeline entries that have struck so far (`faults[..faults_applied]`
    /// are applied to the topology). Restore replays exactly this prefix.
    faults_applied: u64,
    /// `faults_applied` at the moment of the last reconvergence — the
    /// fault prefix the current routing state was computed against.
    faults_applied_at_reconv: u64,
    /// Latest scheduled reconvergence generation; only the newest
    /// generation's `Reconverge` pop actually recomputes.
    reconv_gen: u64,
    /// Open fault window: when the oldest still-unreconverged fault
    /// struck (`None` = routing is stable).
    window_open_at: Option<Time>,
    /// Total switch blackhole count when the open window started.
    blackhole_mark: u64,
    /// Closed fault windows, for FCT in/out-of-window classification.
    fault_windows: Vec<(Time, Time)>,
    /// Telemetry probe. `NoopProbe` monomorphizes every hook away; a
    /// recording probe observes but never steers (no access to RNGs, the
    /// event queue, or packets), so metrics are bit-identical either way.
    probe: P,
    /// Invariant auditor, mirroring the probe pattern: `NoopAudit`
    /// (`ENABLED = false`) compiles the whole boundary path away; the
    /// real auditor observes samples but never steers, so auditor-on
    /// fingerprints are pinned bit-identical to auditor-off.
    audit: A,
    /// Recycled per-flow progress rows for audit boundaries.
    audit_scratch: Vec<FlowProgress>,
    /// Last-K `DRILLSNAP` ring retaining the most recent *clean*
    /// boundaries (audited builds only); the rewind pool a trip dumps.
    audit_ring: Option<SnapshotRing>,
    /// Audit boundary period in processed events (0 = no boundaries).
    audit_every: u64,
    /// A trip dumps ring + faulted snapshot + meta exactly once.
    audit_dumped: bool,
    /// One-shot sabotage bookkeeping (`LeakPacket` fires a single time).
    sabotage_done: bool,
}

/// Fail the link pair `(a, b)`, trying both orientations, and panic with
/// a clear message if no live link matches — identical behaviour whether
/// failures apply at build time or at the `fail_at` event.
fn apply_failure(topo: &mut Topology, a: u32, b: u32) {
    let ok = topo.fail_switch_link(SwitchId(a), SwitchId(b), 0)
        || topo.fail_switch_link(SwitchId(b), SwitchId(a), 0);
    assert!(
        ok,
        "failed link ({a},{b}) matches no live switch-to-switch link in the topology"
    );
}

/// Pick `n` random distinct, currently-alive leaf-to-spine link pairs
/// (as `(leaf switch id, spine-side switch id)`), for the failure
/// experiments (Figures 11b/c and 12).
pub fn random_leaf_spine_failures(topo: &Topology, n: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = topo
        .links()
        .iter()
        .filter(|l| l.up && l.hop == HopClass::LeafUp)
        .filter_map(|l| match (l.src, l.dst) {
            (drill_net::NodeRef::Switch(a), drill_net::NodeRef::Switch(b)) => Some((a.0, b.0)),
            _ => None,
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut rng = SimRng::seed_from(seed ^ 0xfa11_fa11);
    rng.shuffle(&mut pairs);
    pairs.truncate(n);
    pairs
}

/// Execute one experiment configuration to completion.
///
/// With `cfg.telemetry` unset (the default) this runs the probe-free
/// build; with a [`TelemetrySpec`](crate::config::TelemetrySpec) attached
/// it records a flight-recorder trace (see [`run_recorded`]) and discards
/// the telemetry, returning the — bit-identical — stats either way.
pub fn run(cfg: &ExperimentConfig) -> RunStats {
    if cfg.telemetry.is_some() {
        run_recorded(cfg).0
    } else {
        run_probed(cfg, NoopProbe).0
    }
}

/// Execute one experiment with a caller-supplied telemetry probe, returning
/// the stats together with the probe for inspection. `run_probed(cfg,
/// NoopProbe)` compiles to exactly the probe-free simulation.
///
/// With `cfg.audit` attached the invariant auditor rides along (reports
/// are counted into [`RunStats::anomalies`] and any trip dumps to the
/// spec's `dump_dir`); without it the `NoopAudit` build runs.
pub fn run_probed<P: Probe>(cfg: &ExperimentConfig, probe: P) -> (RunStats, P) {
    if let Some(spec) = &cfg.audit {
        let auditor = InvariantAuditor::new(spec.stuck_after, spec.max_reports);
        let (stats, probe, _auditor) = run_with(cfg, probe, auditor);
        (stats, probe)
    } else {
        let (stats, probe, _noop) = run_with(cfg, probe, NoopAudit);
        (stats, probe)
    }
}

/// Execute one experiment with both a telemetry probe and an invariant
/// audit attached, returning stats, probe, and audit. `run_with(cfg,
/// NoopProbe, NoopAudit)` compiles to exactly the plain simulation.
pub fn run_with<P: Probe, A: Audit>(
    cfg: &ExperimentConfig,
    probe: P,
    audit: A,
) -> (RunStats, P, A) {
    let mut w = World::build(cfg.clone(), probe, audit);
    w.prime();
    w.event_loop();
    w.finalize()
}

/// Execute one experiment under the invariant auditor (using `cfg.audit`,
/// or [`Default`] knobs when unset) and return the stats together with
/// every anomaly report. An empty report list is the auditor's verdict
/// that all watchdog invariants held at every boundary.
pub fn run_audited(cfg: &ExperimentConfig) -> (RunStats, Vec<AnomalyReport>) {
    let spec = cfg.audit.clone().unwrap_or_default();
    let mut cfg = cfg.clone();
    cfg.audit = Some(spec.clone());
    let auditor = InvariantAuditor::new(spec.stuck_after, spec.max_reports);
    let (stats, _, auditor) = run_with(&cfg, NoopProbe, auditor);
    (stats, auditor.reports().to_vec())
}

/// The telemetry captured by a recorded run.
pub struct Telemetry {
    /// Per-(switch, engine) lifecycle-event rings.
    pub recorder: FlightRecorder,
    /// Queue-depth time series and high-water marks.
    pub sampler: QueueSampler,
}

/// Execute one experiment with the flight recorder and queue sampler
/// attached (using `cfg.telemetry`, or [`Default`] knobs when unset), and
/// write the trace file if the spec names a path.
pub fn run_recorded(cfg: &ExperimentConfig) -> (RunStats, Telemetry) {
    let spec = cfg.telemetry.clone().unwrap_or_default();
    let topo = cfg.topo.build();
    let recorder = FlightRecorder::new(topo.num_switches(), cfg.engines, spec.ring_capacity);
    let sampler = QueueSampler::new(spec.sample_every);
    let (stats, (recorder, sampler)) = run_probed(cfg, (recorder, sampler));
    if let Some(path) = &spec.trace_path {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("telemetry trace {}: {e}", path.display()));
        let mut w = std::io::BufWriter::new(file);
        drill_telemetry::write_trace(&recorder, &mut w)
            .unwrap_or_else(|e| panic!("telemetry trace {}: {e}", path.display()));
    }
    (stats, Telemetry { recorder, sampler })
}

impl World<NoopProbe> {
    /// Build and prime an experiment without running it — the entry point
    /// for stepwise execution: [`run_to`](World::run_to) →
    /// [`snapshot`](World::snapshot) → [`finish`](World::finish).
    pub fn new(cfg: &ExperimentConfig) -> World<NoopProbe> {
        let mut w = World::build(cfg.clone(), NoopProbe, NoopAudit);
        w.prime();
        w
    }
}

impl<P: Probe, A: Audit> World<P, A> {
    /// Advance the simulation until the next pending event would be at or
    /// past `t` — the state "as of `t⁻`" — honouring the run deadline and
    /// `max_events` exactly like a straight-through run.
    pub fn run_to(&mut self, t: Time) {
        let deadline = self.cfg.duration + self.cfg.drain;
        loop {
            match self.queue.peek_time() {
                Some(next) if next < t => {}
                _ => break,
            }
            let Some((now, ev)) = self.queue.pop() else {
                break;
            };
            if now > deadline {
                break;
            }
            if self.cfg.max_events > 0 && self.queue.events_processed() > self.cfg.max_events {
                break;
            }
            self.dispatch(now, ev);
        }
    }

    /// Run every remaining event and produce the final statistics.
    pub fn finish(mut self) -> RunStats {
        self.event_loop();
        self.finalize().0
    }

    /// Run every remaining event and return the stats together with the
    /// probe and audit — the stepwise analogue of [`run_with`], used by
    /// rewind-replay to recover the [`FlightRecorder`] attached to a
    /// restored world.
    pub fn finish_parts(mut self) -> (RunStats, P, A) {
        self.event_loop();
        self.finalize()
    }

    /// Events processed so far — stepwise progress inspection between
    /// [`run_to`](World::run_to) calls.
    pub fn events_processed(&self) -> u64 {
        self.queue.events_processed()
    }
}

impl<P: Probe, A: Audit> World<P, A> {
    fn build(cfg: ExperimentConfig, probe: P, audit: A) -> World<P, A> {
        let mut topo = cfg.topo.build();
        // Validate the failure list up front, whether failures apply now
        // or at `fail_at`: a pair that matches no switch-to-switch link is
        // a config bug and must fail loudly in both modes (the
        // ApplyFailures event used to ignore unknown pairs silently).
        for &(a, b) in &cfg.failed_links {
            assert!(
                (a as usize) < topo.num_switches()
                    && (b as usize) < topo.num_switches()
                    && (!topo.ports_to_switch(SwitchId(a), SwitchId(b)).is_empty()
                        || !topo.ports_to_switch(SwitchId(b), SwitchId(a)).is_empty()),
                "failed link ({a},{b}) matches no live switch-to-switch link in the topology"
            );
        }
        if cfg.fail_at.is_none() {
            for &(a, b) in &cfg.failed_links {
                apply_failure(&mut topo, a, b);
            }
        }
        let mut routes = RouteTable::compute(&topo);
        let mut symmetry = SymmetryEngine::new();
        if cfg.scheme.wants_symmetric_groups() && cfg.asymmetry_handling {
            if cfg.eager_control_plane {
                install_symmetric_groups_eager(&topo, &mut routes);
            } else {
                symmetry.install(&topo, &mut routes);
            }
        }

        let sw_cfg = SwitchConfig {
            engines: cfg.engines,
            queue_limit_bytes: cfg.queue_limit_bytes,
            model_enqueue_commit: cfg.model_commit,
        };
        let mut switches: Vec<Switch> = (0..topo.num_switches())
            .map(|i| {
                let id = SwitchId(i as u32);
                let policy = cfg
                    .scheme
                    .make_switch_policy(&topo, &routes, id, cfg.engines);
                Switch::new(id, topo.num_ports(id), sw_cfg.clone(), policy)
            })
            .collect();
        for sw in switches.iter_mut() {
            sw.sync_link_state(&topo);
        }
        let nics: Vec<HostNic> = (0..topo.num_hosts() as u32)
            .map(|h| HostNic::new(HostId(h)))
            .collect();
        let host_policies: Vec<Box<dyn HostPolicy>> = (0..topo.num_hosts() as u32)
            .map(|h| cfg.scheme.make_host_policy(&topo, &routes, HostId(h)))
            .collect();

        let leaf_of: Vec<u32> = (0..topo.num_hosts() as u32)
            .map(|h| topo.host_leaf_index(HostId(h)))
            .collect();

        // Queue-STDV sampling port lists.
        let n_leaves = topo.num_leaves();
        let mut leaf_up_ports = vec![Vec::new(); n_leaves];
        let mut spine_down_ports = vec![Vec::new(); n_leaves];
        for l in topo.links() {
            if let (drill_net::NodeRef::Switch(src), drill_net::NodeRef::Switch(dst)) =
                (l.src, l.dst)
            {
                if l.hop == HopClass::LeafUp {
                    let li = topo.leaf_index(src).expect("leaf-up from a leaf") as usize;
                    leaf_up_ports[li].push((src.index(), l.src_port));
                } else if l.hop == HopClass::SpineDown {
                    if let Some(li) = topo.leaf_index(dst) {
                        spine_down_ports[li as usize].push((src.index(), l.src_port));
                    }
                }
            }
        }

        let mut rng_wl = SimRng::derive(cfg.seed, "workload", 0);
        let rng_net = SimRng::derive(cfg.seed, "net", 0);

        let gen = if cfg.synthetic.is_none() && cfg.workload.load > 0.0 {
            let mean = cfg.workload.sizes.mean();
            // Offered load is defined against the *available* core capacity
            // (the paper loads "up to 90% of the available core capacity"
            // in its failure experiments), so count only live links.
            let avail_core_bps: u64 = topo
                .links()
                .iter()
                .filter(|l| l.up && l.hop == HopClass::LeafUp)
                .map(|l| l.rate_bps)
                .sum();
            let rate = aggregate_flow_rate(cfg.workload.load, avail_core_bps, mean);
            let arrivals = if cfg.workload.burst_sigma > 0.0 {
                ArrivalProcess::lognormal(rate, cfg.workload.burst_sigma)
            } else {
                ArrivalProcess::poisson(rate)
            };
            Some(WorkloadGen::new(
                cfg.workload.sizes.clone(),
                arrivals,
                cfg.workload.pattern.clone(),
                leaf_of.clone(),
                &mut rng_wl,
            ))
        } else {
            None
        };
        let synth_pattern = cfg.synthetic.as_ref().map(|_| {
            cfg.workload
                .pattern
                .clone()
                .bind(leaf_of.clone(), &mut rng_wl)
        });

        let stats = RunStats::new(cfg.scheme.name());
        let shim_enabled = cfg.scheme.uses_shim();
        let arrivals_end = cfg.duration;

        // Fold the legacy one-shot (`failed_links` at `fail_at`, detected
        // after `ospf_delay`) and the chaos schedule into one timeline.
        // The sort is stable, so legacy entries precede schedule entries
        // striking at the same instant.
        let mut faults: Vec<(Time, FaultKind, Time)> = Vec::new();
        if let Some(at) = cfg.fail_at {
            for &(a, b) in &cfg.failed_links {
                faults.push((at, FaultKind::LinkDown { a, b }, cfg.ospf_delay));
            }
        }
        if let Some(sched) = &cfg.faults {
            for e in sched.events() {
                faults.push((e.at, e.kind, sched.detection_delay));
            }
        }
        faults.sort_by_key(|&(at, _, _)| at);

        // Sharded execution: an explicit config spec wins, else the
        // DRILL_SHARDS environment variable, else serial. The plan is
        // computed on the (possibly pre-failed) topology; downed links
        // still count toward the lookahead bound, so the window length is
        // identical whether failures apply at build time or mid-run.
        let plan = match &cfg.shards {
            Some(spec) => match &spec.switch_map {
                Some(map) => ShardPlan::manual(&topo, map.clone()),
                None => ShardPlan::auto(&topo, spec.count),
            },
            None => ShardPlan::auto(&topo, drill_exec::shards_from_env().unwrap_or(1)),
        };
        let queue = if plan.num_shards > 1 {
            EngineQueue::sharded(&plan)
        } else {
            EngineQueue::serial()
        };
        let arenas = (0..plan.num_shards).map(|_| PacketArena::new()).collect();
        // Audit plumbing: the boundary cadence and ring exist only on
        // audited builds (`A::ENABLED`); a `NoopAudit` world carries zero
        // state and the boundary branch below compiles away. A world
        // built with an explicit auditor but no spec gets the defaults.
        let (audit_every, audit_ring) = if A::ENABLED {
            let spec = cfg.audit.clone().unwrap_or_default();
            // The ring is only ever observable through a trip dump, so it
            // is armed — and the per-boundary snapshot cost paid — only
            // when the spec names a dump_dir. Watchdog-only audit runs
            // pay just the holder walk at each boundary.
            let ring = spec
                .dump_dir
                .is_some()
                .then(|| SnapshotRing::new(spec.ring_entries, spec.ring_bytes));
            (spec.every_events, ring)
        } else {
            (0, None)
        };
        World {
            cfg,
            topo,
            routes,
            symmetry,
            switches,
            nics,
            host_policies,
            flows: Vec::new(),
            classes: Vec::new(),
            measured: Vec::new(),
            shims: Vec::new(),
            sched_gen: Vec::new(),
            queue,
            plan,
            rng_net,
            rng_wl,
            pkt_ids: 0,
            gen,
            pending_flow: None,
            synth_pattern,
            net_buf: Vec::new(),
            arenas,
            pkt_pool: PacketBufPool::new(),
            ref_pool: BufPool::new(),
            lens_scratch: Vec::new(),
            stats,
            arrivals_end,
            leaf_of,
            leaf_up_ports,
            spine_down_ports,
            shim_enabled,
            data_delivered: 0,
            bytes_delivered: 0,
            faults,
            injector: FaultInjector::new(),
            faults_applied: 0,
            faults_applied_at_reconv: 0,
            reconv_gen: 0,
            window_open_at: None,
            blackhole_mark: 0,
            fault_windows: Vec::new(),
            probe,
            audit,
            audit_scratch: Vec::new(),
            audit_ring,
            audit_every,
            audit_dumped: false,
            sabotage_done: false,
        }
    }

    /// Schedule the initial events.
    fn prime(&mut self) {
        if let Some(g) = self.gen.as_mut() {
            let spec = g.next_flow(&mut self.rng_wl);
            self.queue
                .push_control(Time::ZERO + spec.gap, Event::FlowArrival);
            self.pending_flow = Some(spec);
        }
        if let Some(incast) = &self.cfg.workload.incast {
            self.queue
                .push_control(self.cfg.warmup + incast.epoch_gap, Event::IncastEpoch);
        }
        if let Some(synth) = self.cfg.synthetic.clone() {
            // One elephant per host, started immediately.
            for src in 0..self.topo.num_hosts() as u32 {
                let dst = self
                    .synth_pattern
                    .as_mut()
                    .expect("synthetic mode has a bound pattern")
                    .pick_dst(src, &mut self.rng_wl);
                self.start_flow(
                    src,
                    dst,
                    synth.elephant_bytes,
                    FlowClass::Elephant,
                    Time::ZERO,
                );
            }
            self.queue.push_control(synth.mice_period, Event::MiceTick);
        }
        if self.cfg.sample_queues {
            self.queue.push_control(SAMPLE_PERIOD, Event::SampleQueues);
        }
        for &(src, dst, bytes) in &self.cfg.static_flows.clone() {
            self.start_flow(src, dst, bytes, FlowClass::Elephant, Time::ZERO);
        }
        // Fault events past the run's deadline are filtered here, not at
        // pop time: the timing wheel counts every pop (including
        // deadline-discarded ones) in `events_processed`, so enqueueing
        // them would perturb the event-count golden of an otherwise
        // identical run — and a fault nobody can observe is a no-op.
        // Faults are stamped from the reserved sequence band (they pop
        // after every ordinary event sharing their timestamp) so that a
        // restored run — which re-injects its not-yet-struck suffix from
        // the restore config's timeline — reproduces the cold run's tie
        // order exactly, and a warm-started fork can substitute a
        // divergent schedule without perturbing any other event's seq.
        let deadline = self.cfg.duration + self.cfg.drain;
        for (idx, &(at, _, _)) in self.faults.iter().enumerate() {
            if at <= deadline {
                self.queue.push_control_stamped(
                    at,
                    FAULT_SEQ_BASE + idx as u64,
                    Event::Fault { idx: idx as u32 },
                );
            }
        }
    }

    fn event_loop(&mut self) {
        let deadline = self.cfg.duration + self.cfg.drain;
        let ckpt = self.cfg.checkpoint.clone();
        // An at-time checkpoint fires once, when the next pending event
        // would reach the target instant (state "as of t⁻").
        let mut at_armed = matches!(
            ckpt,
            Some(CheckpointSpec {
                policy: CheckpointPolicy::AtTime(_),
                ..
            })
        );
        loop {
            if at_armed {
                if let Some(CheckpointSpec {
                    policy: CheckpointPolicy::AtTime(t),
                    path,
                }) = ckpt.as_ref()
                {
                    if self.queue.peek_time().is_none_or(|next| next >= *t) {
                        self.snapshot()
                            .save(path)
                            .unwrap_or_else(|e| panic!("checkpoint {}: {e}", path.display()));
                        at_armed = false;
                    }
                }
            }
            let Some((now, ev)) = self.queue.pop() else {
                break;
            };
            if now > deadline {
                break;
            }
            if self.cfg.max_events > 0 && self.queue.events_processed() > self.cfg.max_events {
                break;
            }
            // Sabotage hook (audited builds only; negative tests and the
            // tracedump demo): a one-shot LeakPacket interns a dummy
            // packet and drops the handle the moment its time comes.
            if A::ENABLED && !self.sabotage_done {
                if let Some(SabotageSpec {
                    at,
                    kind: SabotageKind::LeakPacket,
                }) = self.cfg.sabotage
                {
                    if now >= at {
                        self.sabotage_done = true;
                        self.pkt_ids += 1;
                        let p = Packet::data(
                            self.pkt_ids,
                            drill_net::FlowId(u32::MAX),
                            HostId(0),
                            HostId(0),
                            0,
                            0,
                            1,
                            now,
                        );
                        let _leaked = self.arenas[0].insert(p);
                    }
                }
            }
            self.dispatch(now, ev);
            if let Some(CheckpointSpec {
                policy: CheckpointPolicy::EveryEvents(n),
                path,
            }) = ckpt.as_ref()
            {
                if *n > 0 && self.queue.events_processed().is_multiple_of(*n) {
                    self.snapshot()
                        .save(path)
                        .unwrap_or_else(|e| panic!("checkpoint {}: {e}", path.display()));
                }
            }
            if A::ENABLED
                && self.audit_every > 0
                && self
                    .queue
                    .events_processed()
                    .is_multiple_of(self.audit_every)
            {
                self.audit_boundary();
            }
        }
    }

    /// Assemble one [`BoundarySample`] — between dispatches, so every
    /// count is consistent — and hand it to the auditor. Clean boundaries
    /// feed the snapshot ring; the first tripped boundary dumps it.
    fn audit_boundary(&mut self) {
        let now = self.queue.now();
        let events = self.queue.events_processed();

        // Holder walk: every live arena handle is in exactly one of the
        // switch queues (waiting + in-flight), NIC queues (the in-flight
        // head stays queued until tx-done), shim reorder buffers, or
        // packet-carrying pending events. Along the way, find the fullest
        // waiting queue for the ceiling watchdog.
        let mut holders: u64 = 0;
        let mut max_wait_bytes = 0u64;
        let mut max_wait_switch = 0u32;
        let mut max_wait_port = 0u16;
        for (si, sw) in self.switches.iter().enumerate() {
            for port in 0..sw.num_ports() as u16 {
                holders += sw.queue_pkts(port) as u64;
                let wb = sw.waiting_bytes(port);
                if wb > max_wait_bytes {
                    max_wait_bytes = wb;
                    max_wait_switch = si as u32;
                    max_wait_port = port;
                }
            }
        }
        for nic in &self.nics {
            holders += nic.backlog_pkts() as u64;
        }
        for shim in self.shims.iter().flatten() {
            holders += shim.held() as u64;
        }
        let mut pending: u64 = 0;
        self.queue.for_each_pending(|_, _, ev| {
            if let Event::Net(NetEvent::ArriveSwitch { .. } | NetEvent::ArriveHost { .. }) = ev {
                pending += 1;
            }
        });
        holders += pending;

        let arena_live: u64 = self.arenas.iter().map(|a| a.live() as u64).sum();
        let (handoffs, handoff_hash, _) = self.queue.shard_stats();
        let next_event_time = self.queue.peek_time();

        let mut flows = std::mem::take(&mut self.audit_scratch);
        flows.clear();
        flows.extend(self.flows.iter().enumerate().map(|(i, f)| FlowProgress {
            flow: i as u32,
            bytes_acked: f.bytes_acked,
            start: f.start,
            done: f.done.is_some(),
        }));
        let before = self.audit.reports().len();
        self.audit.on_boundary(&BoundarySample {
            now,
            events,
            arena_live,
            holders,
            max_wait_bytes,
            max_wait_switch,
            max_wait_port,
            queue_limit_bytes: self.cfg.queue_limit_bytes,
            next_event_time,
            handoffs,
            handoff_hash,
            flows: &flows,
        });
        self.audit_scratch = flows;

        if self.audit.reports().len() > before {
            self.audit_trip(before);
        } else if self.audit_ring.is_some() && self.audit.reports().is_empty() {
            // Only clean boundaries enter the ring: after a trip the ring
            // freezes as the rewind pool ending just before the anomaly.
            let bytes = self.snapshot().to_bytes();
            if let Some(ring) = self.audit_ring.as_mut() {
                ring.push(now, events, bytes);
            }
        }
    }

    /// Graceful degradation on a watchdog trip: no panic — dump the
    /// snapshot ring, a `DRILLSNAP` of the faulted instant, and an
    /// `anomaly.meta` describing the first new report into the spec's
    /// `dump_dir` (once per run), leaving the run to complete normally.
    fn audit_trip(&mut self, first_new: usize) {
        if self.audit_dumped {
            return;
        }
        self.audit_dumped = true;
        let Some(dir) = self
            .cfg
            .audit
            .as_ref()
            .and_then(|spec| spec.dump_dir.clone())
        else {
            return;
        };
        let report = self.audit.reports()[first_new].clone();
        let result = (|| -> std::io::Result<()> {
            std::fs::create_dir_all(&dir)?;
            let ring_paths = match &self.audit_ring {
                Some(ring) => ring.dump(&dir)?,
                None => Vec::new(),
            };
            self.snapshot().save(dir.join("faulted.drillsnap"))?;
            let mut meta = report.meta_lines();
            if let Some(rewind) = ring_paths.last().and_then(|p| p.file_name()) {
                meta.push(format!("rewind={}", rewind.to_string_lossy()));
            }
            if let Some(e) = self.audit_ring.as_ref().and_then(|r| r.newest()) {
                meta.push(format!("rewind_events={}", e.events));
            }
            meta.push("faulted=faulted.drillsnap".to_string());
            std::fs::write(dir.join("anomaly.meta"), meta.join("\n") + "\n")
        })();
        if let Err(e) = result {
            eprintln!("audit dump {}: {e}", dir.display());
        }
    }

    fn dispatch(&mut self, now: Time, ev: Event) {
        match ev {
            Event::Net(NetEvent::ArriveSwitch {
                switch,
                ingress,
                pkt,
            }) => {
                let k = self.sw_shard(switch);
                self.switches[switch.index()].receive(
                    &self.topo,
                    &self.routes,
                    &mut self.arenas[k as usize],
                    pkt,
                    ingress,
                    now,
                    &mut self.rng_net,
                    &mut self.net_buf,
                    &mut self.probe,
                );
                self.drain_net(k);
            }
            Event::Net(NetEvent::ArriveHost { host, pkt }) => self.on_host_arrival(host, pkt, now),
            Event::Net(NetEvent::SwitchTxDone { switch, port }) => {
                let k = self.sw_shard(switch);
                self.switches[switch.index()].on_tx_done(
                    &self.topo,
                    &mut self.arenas[k as usize],
                    port,
                    now,
                    &mut self.rng_net,
                    &mut self.net_buf,
                    &mut self.probe,
                );
                self.drain_net(k);
            }
            Event::Net(NetEvent::HostTxDone { host }) => {
                let k = self.host_shard(host);
                self.nics[host.index()].on_tx_done(&self.topo, now, &mut self.net_buf);
                self.drain_net(k);
            }
            Event::Net(NetEvent::EnqueueCommit {
                switch,
                port,
                bytes,
                engine,
            }) => {
                self.switches[switch.index()].on_enqueue_commit(port, bytes, engine);
            }
            Event::FlowArrival => {
                if let Some(spec) = self.pending_flow.take() {
                    self.start_flow(spec.src, spec.dst, spec.bytes, FlowClass::Background, now);
                }
                if now <= self.arrivals_end {
                    if let Some(g) = self.gen.as_mut() {
                        let next = g.next_flow(&mut self.rng_wl);
                        self.queue.push_control(now + next.gap, Event::FlowArrival);
                        self.pending_flow = Some(next);
                    }
                }
            }
            Event::IncastEpoch => {
                if let Some(incast) = self.cfg.workload.incast.clone() {
                    let flows = incast.epoch_flows(self.topo.num_hosts() as u32, &mut self.rng_wl);
                    for (server, requester, bytes) in flows {
                        self.start_flow(server, requester, bytes, FlowClass::Incast, now);
                    }
                    if now + incast.epoch_gap <= self.arrivals_end {
                        self.queue
                            .push_control(now + incast.epoch_gap, Event::IncastEpoch);
                    }
                }
            }
            Event::MiceTick => {
                if let Some(synth) = self.cfg.synthetic.clone() {
                    for src in 0..self.topo.num_hosts() as u32 {
                        let dst = self.uniform_other_leaf(src);
                        self.start_flow(src, dst, synth.mice_bytes, FlowClass::Mice, now);
                    }
                    if now + synth.mice_period <= self.arrivals_end {
                        self.queue
                            .push_control(now + synth.mice_period, Event::MiceTick);
                    }
                }
            }
            Event::TcpTimer { flow, gen } => {
                let mut out = self.pkt_pool.get();
                let fired =
                    self.flows[flow as usize].on_timer(gen, now, &mut self.pkt_ids, &mut out);
                if fired {
                    let src = self.flows[flow as usize].src;
                    for p in out.drain(..) {
                        self.host_send(src, p, now);
                    }
                    self.schedule_rto(flow, now);
                }
                self.pkt_pool.put(out);
            }
            Event::ShimTimer { flow, gen } => {
                if self.shims[flow as usize].is_some() {
                    let k = self.host_shard(self.flows[flow as usize].dst);
                    let mut released = self.ref_pool.get();
                    let shim = self.shims[flow as usize].as_mut().expect("checked above");
                    shim.on_timer(&self.arenas[k as usize], gen, now, &mut released);
                    for p in released.drain(..) {
                        self.recv_data(flow, p, now);
                    }
                    self.ref_pool.put(released);
                }
            }
            Event::SampleQueues => {
                self.sample_queues();
                if now + SAMPLE_PERIOD <= self.cfg.duration {
                    self.queue
                        .push_control(now + SAMPLE_PERIOD, Event::SampleQueues);
                }
            }
            Event::Fault { idx } => {
                let (_, kind, delay) = self.faults[idx as usize];
                // Strikes arrive in timeline order (time-sorted, and the
                // reserved-band seq `FAULT_SEQ_BASE + idx` orders ties by
                // index), so the applied set is always `faults[..applied]`.
                debug_assert_eq!(self.faults_applied, idx as u64);
                self.faults_applied += 1;
                let info = self.injector.apply(&mut self.topo, kind);
                // Local reaction at line speed: every switch prunes its own
                // dead egress members immediately; only the multi-hop
                // routing state stays stale until reconvergence.
                self.sync_switch_link_state();
                if P::ENABLED {
                    self.probe.on_fault(now, &info);
                }
                // Attribute the strike to the shard owning the fault's
                // primary switch (no-op on the serial engine).
                if let [Some(sw), _] = kind.involved_switches() {
                    let owner = self.sw_shard(SwitchId(sw));
                    self.queue.note_fault(owner);
                }
                self.stats.fault_events += 1;
                if kind.needs_reconvergence() {
                    // During the detection window packets keep steering
                    // into the dead/degraded paths (graceful-degradation
                    // window); open it on the first outstanding fault.
                    if self.window_open_at.is_none() {
                        self.window_open_at = Some(now);
                        self.blackhole_mark = self.total_blackholed();
                    }
                    self.reconv_gen += 1;
                    let due = now + delay;
                    if due <= self.cfg.duration + self.cfg.drain {
                        self.queue.push_control(
                            due,
                            Event::Reconverge {
                                gen: self.reconv_gen,
                            },
                        );
                    }
                }
            }
            Event::Reconverge { gen } => {
                if gen == self.reconv_gen {
                    self.reconverge(now, gen);
                }
            }
        }
    }

    /// Install the post-fault routing state atomically: recompute routes,
    /// re-run the §3.4 symmetric-component decomposition, and let
    /// controller-driven schemes rebuild their tables. Fires only for the
    /// newest reconvergence generation, then closes the fault window.
    fn reconverge(&mut self, now: Time, gen: u64) {
        // Snapshot before any table rebuild: Wcmp's rebuild replaces the
        // switch objects, zeroing their counters.
        let blackholed_now = self.total_blackholed();
        // The BFS is a pure function of the up/down link state, so a
        // window of faults none of which can change reachability (e.g.
        // pure capacity degradation) provably leaves `routes` as-is; only
        // the capacity-dependent group decomposition must rerun. The skip
        // is audited by a regression test pinning stats bit-identical
        // against the always-recompute eager path.
        let window =
            &self.faults[self.faults_applied_at_reconv as usize..self.faults_applied as usize];
        let routes_stale = window.is_empty()
            || window
                .iter()
                .any(|&(_, kind, _)| kind.changes_reachability())
            || self.cfg.eager_control_plane;
        if routes_stale {
            self.routes = RouteTable::compute(&self.topo);
        }
        if self.cfg.scheme.wants_symmetric_groups() && self.cfg.asymmetry_handling {
            if self.cfg.eager_control_plane {
                install_symmetric_groups_eager(&self.topo, &mut self.routes);
            } else {
                self.symmetry.install(&self.topo, &mut self.routes);
            }
        }
        if matches!(self.cfg.scheme, Scheme::Wcmp) {
            for i in 0..self.switches.len() {
                let id = SwitchId(i as u32);
                let p = self.cfg.scheme.make_switch_policy(
                    &self.topo,
                    &self.routes,
                    id,
                    self.cfg.engines,
                );
                // Packets queued at the replaced switch are dropped with
                // it (as before the arena); release their slots so the
                // end-of-run leak check stays exact.
                let k = self.plan.switch_shard[i] as usize;
                self.switches[i].free_queued(&mut self.arenas[k]);
                self.switches[i] = rebuild_switch(&self.topo, &self.switches[i], p, &self.cfg);
            }
            // Rebuilt switch objects start with an all-live pruning table.
            self.sync_switch_link_state();
        }
        if matches!(self.cfg.scheme, Scheme::Presto { .. }) {
            for h in 0..self.host_policies.len() {
                self.host_policies[h] =
                    self.cfg
                        .scheme
                        .make_host_policy(&self.topo, &self.routes, HostId(h as u32));
            }
        }
        self.stats.reconvergences += 1;
        self.stats.stable_at = now;
        self.faults_applied_at_reconv = self.faults_applied;
        if P::ENABLED {
            self.probe.on_fault(
                now,
                &FaultInfo {
                    kind: fault_kind::RECONVERGE,
                    a: u32::MAX,
                    b: u32::MAX,
                    param: gen,
                },
            );
        }
        if let Some(open) = self.window_open_at.take() {
            let window_ns = (now - open).as_nanos();
            self.stats.fault_blackholed += blackholed_now.saturating_sub(self.blackhole_mark);
            self.stats.fault_window_ns += window_ns;
            self.fault_windows.push((open, now));
            if P::ENABLED {
                self.probe.on_fault(
                    now,
                    &FaultInfo {
                        kind: fault_kind::STABLE,
                        a: u32::MAX,
                        b: u32::MAX,
                        param: window_ns,
                    },
                );
            }
        }
    }

    /// Mirror the topology's link state into every switch's local pruning
    /// table (see [`Switch::sync_link_state`]).
    fn sync_switch_link_state(&mut self) {
        for sw in self.switches.iter_mut() {
            sw.sync_link_state(&self.topo);
        }
    }

    /// Sum of per-switch blackhole counters (snapshotted at fault-window
    /// boundaries for the graceful-degradation delta).
    fn total_blackholed(&self) -> u64 {
        self.switches.iter().map(|s| s.blackholed).sum()
    }

    fn uniform_other_leaf(&mut self, src: u32) -> u32 {
        let my_leaf = self.leaf_of[src as usize];
        loop {
            let d = self.rng_wl.below(self.leaf_of.len()) as u32;
            if self.leaf_of[d as usize] != my_leaf {
                return d;
            }
        }
    }

    /// Shard owning a switch.
    #[inline]
    fn sw_shard(&self, s: SwitchId) -> u32 {
        self.plan.switch_shard[s.index()]
    }

    /// Shard owning a host (always its leaf's shard).
    #[inline]
    fn host_shard(&self, h: HostId) -> u32 {
        self.plan.host_shard[h.index()]
    }

    /// Drain newly emitted network events into the engine. `src` is the
    /// shard whose component just ran; an event targeting another shard
    /// is a wire hop crossing the partition, so its packet is re-interned
    /// into the destination shard's arena and the event rides the
    /// `(src, dst)` mailbox to the next window barrier.
    fn drain_net(&mut self, src: u32) {
        // net_buf is a field to avoid per-event allocation. Drain in FIFO
        // order: components rely on push order as the tie-break for
        // same-timestamp events (enqueue-commit before tx-done).
        for (t, e) in self.net_buf.drain(..) {
            let dst = match &e {
                NetEvent::ArriveSwitch { switch, .. }
                | NetEvent::SwitchTxDone { switch, .. }
                | NetEvent::EnqueueCommit { switch, .. } => self.plan.switch_shard[switch.index()],
                NetEvent::ArriveHost { host, .. } | NetEvent::HostTxDone { host } => {
                    self.plan.host_shard[host.index()]
                }
            };
            let e = if dst == src {
                e
            } else {
                match e {
                    NetEvent::ArriveSwitch {
                        switch,
                        ingress,
                        pkt,
                    } => {
                        let p = self.arenas[src as usize].take(pkt);
                        let pkt = self.arenas[dst as usize].insert(p);
                        NetEvent::ArriveSwitch {
                            switch,
                            ingress,
                            pkt,
                        }
                    }
                    // Tx-done and enqueue-commit are switch/host-local,
                    // and hosts are colocated with their leaf: the only
                    // event that can cross shards is a switch-to-switch
                    // wire hop.
                    other => unreachable!("non-wire event crossed shards: {other:?}"),
                }
            };
            self.queue.push_shard(t, dst, src, Event::Net(e));
        }
    }

    fn start_flow(&mut self, src: u32, dst: u32, bytes: u64, class: FlowClass, now: Time) {
        if src == dst {
            return;
        }
        let id = drill_net::FlowId(self.flows.len() as u32);
        let flow_hash = self.rng_wl.next_u64();
        let flow = TcpFlow::new(
            id,
            HostId(src),
            HostId(dst),
            flow_hash,
            bytes,
            now,
            self.cfg.tcp,
        );
        // Elephants are the measured subject wherever they appear (they
        // start at t=0 by design); other classes honour the warmup window.
        let measured =
            class == FlowClass::Elephant || (now >= self.cfg.warmup && now <= self.arrivals_end);
        self.flows.push(flow);
        self.classes.push(class);
        self.measured.push(measured);
        self.shims.push(None);
        self.sched_gen.push(0);
        if measured {
            self.stats.flows_started += 1;
        }

        if self.cfg.raw_packet_mode {
            // Open-loop packet train: the whole flow is dumped into the
            // NIC at arrival (the NIC paces it at line rate).
            let mss = 1442u64;
            let mut off = 0u64;
            while off < bytes {
                let payload = (bytes - off).min(mss) as u32;
                self.pkt_ids += 1;
                let p = Packet::data(
                    self.pkt_ids,
                    id,
                    HostId(src),
                    HostId(dst),
                    flow_hash,
                    off,
                    payload,
                    now,
                );
                self.host_send(HostId(src), p, now);
                off += payload as u64;
            }
            return;
        }

        let mut out = self.pkt_pool.get();
        let idx = id.0;
        self.flows[idx as usize].start_sending(now, &mut self.pkt_ids, &mut out);
        for p in out.drain(..) {
            self.host_send(HostId(src), p, now);
        }
        self.pkt_pool.put(out);
        self.schedule_rto(idx, now);
    }

    fn schedule_rto(&mut self, flow: u32, now: Time) {
        if let Some((at, gen)) = self.flows[flow as usize].rto_deadline(now) {
            if self.sched_gen[flow as usize] != gen {
                self.sched_gen[flow as usize] = gen;
                self.queue.push_control(at, Event::TcpTimer { flow, gen });
            }
        }
    }

    fn host_send(&mut self, host: HostId, mut pkt: Packet, now: Time) {
        let k = self.host_shard(host);
        self.host_policies[host.index()].on_send(&mut pkt, now, &mut self.rng_net);
        // The packet enters its host's shard arena here and leaves at
        // final delivery (`take`) or at whichever drop site claims it
        // (`free`) — re-interned along the way when a wire hop crosses
        // shards (see `drain_net`).
        let pref = self.arenas[k as usize].insert(pkt);
        self.nics[host.index()].send(
            &self.topo,
            &mut self.arenas[k as usize],
            pref,
            now,
            &mut self.net_buf,
            &mut self.probe,
        );
        self.drain_net(k);
    }

    fn on_host_arrival(&mut self, host: HostId, pref: PacketRef, now: Time) {
        let k = self.host_shard(host) as usize;
        if P::ENABLED {
            self.probe
                .on_host_recv(now, host.0, &self.arenas[k].get(&pref).meta());
        }
        if self.cfg.raw_packet_mode {
            self.data_delivered += 1;
            self.bytes_delivered += self.arenas[k].get(&pref).payload as u64;
            self.arenas[k].free(pref);
            return;
        }
        let (flow, is_ack) = {
            let pkt = self.arenas[k].get(&pref);
            (pkt.flow.0, pkt.is_ack())
        };
        // Sabotage hook (audited builds only): blackhole the target
        // flow's data at the receiver — freed, not leaked, so packet
        // conservation stays clean while the sender stalls into RTOs.
        if A::ENABLED {
            if let Some(SabotageSpec {
                at,
                kind: SabotageKind::BlackholeFlow { flow: target },
            }) = self.cfg.sabotage
            {
                if flow == target && !is_ack && now >= at {
                    self.arenas[k].free(pref);
                    return;
                }
            }
        }
        if is_ack {
            // Sender side.
            let pkt = self.arenas[k].take(pref);
            debug_assert_eq!(self.flows[flow as usize].src, host);
            let mut out = self.pkt_pool.get();
            self.flows[flow as usize].on_ack(&pkt, now, &mut self.pkt_ids, &mut out);
            for p in out.drain(..) {
                self.host_send(host, p, now);
            }
            self.pkt_pool.put(out);
            self.schedule_rto(flow, now);
            if self.flows[flow as usize].is_done()
                && self.classes[flow as usize] == FlowClass::Elephant
            {
                self.chain_elephant(flow, now);
            }
        } else {
            // Receiver side; the shim (if enabled) restores ordering first.
            if self.shim_enabled {
                if self.shims[flow as usize].is_none() {
                    let (threshold, timeout) = self.cfg.scheme.shim_params();
                    self.shims[flow as usize] =
                        Some(ShimBuffer::with_threshold(timeout, threshold));
                }
                let mut deliver = self.ref_pool.get();
                let shim = self.shims[flow as usize].as_mut().expect("just created");
                let timer = shim.on_packet(&self.arenas[k], pref, now, &mut deliver);
                if let Some((at, gen)) = timer {
                    self.queue.push_control(at, Event::ShimTimer { flow, gen });
                }
                for p in deliver.drain(..) {
                    self.recv_data(flow, p, now);
                }
                self.ref_pool.put(deliver);
            } else {
                self.recv_data(flow, pref, now);
            }
        }
    }

    fn recv_data(&mut self, flow: u32, pref: PacketRef, now: Time) {
        self.data_delivered += 1;
        let receiver = self.flows[flow as usize].dst;
        let k = self.host_shard(receiver) as usize;
        let pkt = self.arenas[k].take(pref);
        self.bytes_delivered += pkt.payload as u64;
        let mut acks = self.pkt_pool.get();
        self.flows[flow as usize].on_data(&pkt, now, &mut self.pkt_ids, &mut acks);
        for a in acks.drain(..) {
            self.host_send(receiver, a, now);
        }
        self.pkt_pool.put(acks);
    }

    fn chain_elephant(&mut self, flow: u32, now: Time) {
        let synth = match self.cfg.synthetic.clone() {
            Some(s) => s,
            None => return,
        };
        let src = self.flows[flow as usize].src.0;
        let dst = self
            .synth_pattern
            .as_mut()
            .expect("synthetic mode has a bound pattern")
            .pick_dst(src, &mut self.rng_wl);
        if now <= self.arrivals_end {
            self.start_flow(src, dst, synth.elephant_bytes, FlowClass::Elephant, now);
        }
    }

    fn sample_queues(&mut self) {
        let mut lens = std::mem::take(&mut self.lens_scratch);
        for ports in self.leaf_up_ports.iter().chain(&self.spine_down_ports) {
            if ports.len() < 2 {
                continue;
            }
            lens.clear();
            lens.extend(
                ports
                    .iter()
                    .map(|&(s, p)| self.switches[s].queue_pkts(p) as f64),
            );
            self.stats.queue_stdv.add(stdev_of(&lens));
        }
        self.lens_scratch = lens;
    }

    fn finalize(mut self) -> (RunStats, P, A) {
        // A fault whose reconvergence never came due (detection window
        // past the deadline, or the run drained first) leaves its window
        // open: close it at the end of simulated time so the degradation
        // accounting still covers it.
        if let Some(open) = self.window_open_at.take() {
            let end = self.queue.now().max(open);
            self.stats.fault_blackholed +=
                self.total_blackholed().saturating_sub(self.blackhole_mark);
            self.stats.fault_window_ns += (end - open).as_nanos();
            self.fault_windows.push((open, end));
        }

        // Per-hop aggregates.
        for (si, sw) in self.switches.iter().enumerate() {
            let id = SwitchId(si as u32);
            for port in 0..sw.num_ports() as u16 {
                let hop = hop_index(self.topo.egress(id, port).hop);
                let ps = sw.port_stats(port);
                self.stats.hops.wait_ns[hop] += ps.wait_ns_sum;
                self.stats.hops.wait_samples[hop] += ps.wait_count;
                self.stats.hops.drops[hop] += ps.drops;
                self.stats.hops.tx[hop] += ps.tx_pkts;
            }
            self.stats.blackholed += sw.blackholed;
        }
        self.stats.nic_drops = self.nics.iter().map(|n| n.drops).sum();
        self.stats.data_pkts_delivered = self.data_delivered;
        self.stats.bytes_delivered = self.bytes_delivered;

        // Per-flow metrics.
        let sim_end = self.queue.now();
        for (i, f) in self.flows.iter().enumerate() {
            if !self.measured[i] {
                continue;
            }
            self.stats.retransmissions += f.retransmissions as u64;
            self.stats.timeouts += f.timeouts as u64;
            self.stats.gro_batches += f.gro_batches;
            match self.classes[i] {
                FlowClass::Elephant => {
                    // Per-flow goodput over the flow's own active lifetime
                    // (completed flows: until the final ACK; persistent
                    // flows: until the end of the run).
                    let end = f.done.unwrap_or(sim_end);
                    let active = end.saturating_sub(f.start).max(Time::from_nanos(1));
                    self.stats
                        .elephant_gbps
                        .add(f.bytes_acked as f64 * 8.0 / active.as_secs_f64() / 1e9);
                }
                class => {
                    self.stats.dupacks.add(f.dup_acks_sent as usize);
                    self.stats.reorders.add(f.reorder_events as usize);
                    if let Some(fct) = f.fct() {
                        self.stats.flows_completed += 1;
                        let ms = fct.as_nanos() as f64 / 1e6;
                        // Graceful-degradation split: flows whose lifetime
                        // overlapped a fault window vs. undisturbed flows.
                        let done = f.done.unwrap_or(sim_end);
                        if self
                            .fault_windows
                            .iter()
                            .any(|&(ws, we)| f.start <= we && done >= ws)
                        {
                            self.stats.fct_fault_ms.add(ms);
                        } else if !self.fault_windows.is_empty() {
                            self.stats.fct_clear_ms.add(ms);
                        }
                        match class {
                            FlowClass::Mice => self.stats.fct_mice_ms.add(ms),
                            FlowClass::Incast => {
                                self.stats.fct_ms.add(ms);
                                self.stats.fct_incast_ms.add(ms);
                            }
                            _ => self.stats.fct_ms.add(ms),
                        }
                    }
                }
            }
        }
        self.stats.events = self.queue.events_processed();
        self.stats.sim_end = self.queue.now();
        // Packets still interned when the loop stopped. A fully drained
        // run ends at zero (every insert met its take/free); runs cut off
        // by the deadline or `max_events` legitimately leave packets in
        // flight, so the golden suite (not this method) asserts zero.
        self.stats.arena_live_at_end = self.arenas.iter().map(|a| a.live() as u64).sum();
        let (handoffs, hash, windows) = self.queue.shard_stats();
        self.stats.shard_handoffs = handoffs;
        self.stats.shard_handoff_hash = hash;
        self.stats.shard_windows = windows;
        self.stats.anomalies = self.audit.reports().len() as u64;
        (self.stats, self.probe, self.audit)
    }
}

/// Replace a switch's policy while keeping its id/shape (used when a
/// controller rebuilds tables after failures). Queue contents are carried
/// over conceptually by building a fresh switch — packets in flight at the
/// dead switch are dropped, which approximates a real reconvergence blip.
fn rebuild_switch(
    topo: &Topology,
    old: &Switch,
    policy: Box<dyn drill_net::SwitchPolicy>,
    cfg: &ExperimentConfig,
) -> Switch {
    let sw_cfg = SwitchConfig {
        engines: cfg.engines,
        queue_limit_bytes: cfg.queue_limit_bytes,
        model_enqueue_commit: cfg.model_commit,
    };
    Switch::new(old.id(), topo.num_ports(old.id()), sw_cfg, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopoSpec;
    use drill_faults::FaultSchedule;
    use drill_net::LeafSpineSpec;

    fn tiny_topo() -> TopoSpec {
        TopoSpec::LeafSpine(LeafSpineSpec {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 4,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: drill_net::DEFAULT_PROP,
        })
    }

    fn quick_cfg(scheme: Scheme, load: f64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(tiny_topo(), scheme, load);
        cfg.duration = Time::from_millis(5);
        cfg.drain = Time::from_millis(100);
        cfg.warmup = Time::from_micros(200);
        cfg
    }

    #[test]
    fn ecmp_run_completes_flows() {
        let stats = run(&quick_cfg(Scheme::Ecmp, 0.3));
        assert!(stats.flows_started > 50, "{}", stats.flows_started);
        assert!(
            stats.completion_rate() > 0.95,
            "{}",
            stats.completion_rate()
        );
        assert!(stats.mean_fct_ms() > 0.0);
        assert!(stats.events > 1000);
    }

    #[test]
    fn drill_run_completes_flows_with_low_reordering() {
        // Paper-shaped fabric: fast (40G) core over 10G edges. A one-packet
        // queue imbalance then costs 300ns against 1200ns packet spacing,
        // which is what keeps DRILL's reordering rare (§3.3); a slow-core
        // fabric is far more reorder-prone (the paper's scale-out study).
        let mut cfg = quick_cfg(Scheme::drill_no_shim(), 0.3);
        cfg.topo = TopoSpec::LeafSpine(LeafSpineSpec {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 4,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: drill_net::DEFAULT_PROP,
        });
        let stats = run(&cfg);
        assert!(stats.completion_rate() > 0.95);
        // The overwhelming majority of flows see no dup ACKs.
        assert!(stats.dupacks.frac(0) > 0.9, "{}", stats.dupacks.frac(0));
    }

    #[test]
    fn same_seed_same_result() {
        let a = run(&quick_cfg(Scheme::drill_default(), 0.4));
        let b = run(&quick_cfg(Scheme::drill_default(), 0.4));
        assert_eq!(a.flows_started, b.flows_started);
        assert_eq!(a.flows_completed, b.flows_completed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.mean_fct_ms(), b.mean_fct_ms());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = quick_cfg(Scheme::Ecmp, 0.4);
        let a = run(&cfg);
        cfg.seed = 99;
        let b = run(&cfg);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn queue_sampler_records() {
        let mut cfg = quick_cfg(Scheme::Random, 0.5);
        cfg.sample_queues = true;
        cfg.raw_packet_mode = true;
        let stats = run(&cfg);
        assert!(
            stats.queue_stdv.count() > 100,
            "{}",
            stats.queue_stdv.count()
        );
    }

    #[test]
    fn random_failures_are_deterministic_and_distinct() {
        let topo = tiny_topo().build();
        let a = random_leaf_spine_failures(&topo, 3, 42);
        let b = random_leaf_spine_failures(&topo, 3, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let mut u = a.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn random_failures_exhaustion_edges() {
        // 4 leaves x 4 spines = 16 leaf-spine pairs in total.
        let topo = tiny_topo().build();
        assert!(random_leaf_spine_failures(&topo, 0, 1).is_empty());
        // Asking for more than exist returns every pair, each exactly once.
        let all = random_leaf_spine_failures(&topo, 1000, 1);
        assert_eq!(all.len(), 16);
        let mut u = all.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 16, "no duplicates at exhaustion");
        assert_eq!(random_leaf_spine_failures(&topo, 16, 1).len(), 16);
    }

    #[test]
    fn random_failures_are_duplicate_free_across_seeds_and_skip_dead_links() {
        let mut topo = tiny_topo().build();
        for seed in 0..50u64 {
            let picks = random_leaf_spine_failures(&topo, 8, seed);
            assert_eq!(picks.len(), 8);
            let mut u = picks.clone();
            u.sort_unstable();
            u.dedup();
            assert_eq!(u.len(), 8, "seed {seed} produced duplicates");
        }
        // Failed pairs are no longer candidates.
        let victim = random_leaf_spine_failures(&topo, 1, 7)[0];
        assert!(topo.fail_switch_link(SwitchId(victim.0), SwitchId(victim.1), 0));
        for seed in 0..50u64 {
            let picks = random_leaf_spine_failures(&topo, 15, seed);
            assert_eq!(picks.len(), 15, "one pair is down");
            assert!(!picks.contains(&victim), "dead pair re-picked");
        }
    }

    #[test]
    #[should_panic(expected = "matches no live switch-to-switch link")]
    fn unknown_failed_link_panics_at_build() {
        let mut cfg = quick_cfg(Scheme::Ecmp, 0.1);
        cfg.failed_links = vec![(97, 98)];
        run(&cfg);
    }

    #[test]
    #[should_panic(expected = "matches no live switch-to-switch link")]
    fn unknown_failed_link_panics_with_fail_at_too() {
        // Regression: the ApplyFailures path used to drop unknown pairs
        // silently while the build-time path asserted. Both now surface
        // the same error, and they surface it before the run starts.
        let mut cfg = quick_cfg(Scheme::Ecmp, 0.1);
        cfg.failed_links = vec![(97, 98)];
        cfg.fail_at = Some(Time::from_micros(100));
        run(&cfg);
    }

    #[test]
    #[should_panic(expected = "matches no live switch-to-switch link")]
    fn duplicate_single_link_failure_panics_when_applied() {
        // Two leaves are joined by exactly one link pair; failing it twice
        // exhausts the pair mid-run and must be loud, not silent.
        let mut cfg = quick_cfg(Scheme::Ecmp, 0.1);
        let topo = cfg.topo.build();
        let pair = random_leaf_spine_failures(&topo, 1, 3)[0];
        cfg.failed_links = vec![pair, pair];
        cfg.fail_at = Some(Time::from_micros(100));
        run(&cfg);
    }

    #[test]
    fn failure_run_still_completes() {
        let mut cfg = quick_cfg(Scheme::drill_default(), 0.3);
        let topo = cfg.topo.build();
        cfg.failed_links = random_leaf_spine_failures(&topo, 1, 7);
        let stats = run(&cfg);
        assert!(stats.completion_rate() > 0.9, "{}", stats.completion_rate());
    }

    #[test]
    fn chaos_schedule_runs_with_staged_reconvergence() {
        let mut cfg = quick_cfg(Scheme::drill_default(), 0.3);
        cfg.duration = Time::from_millis(8);
        let topo = cfg.topo.build();
        let pairs = random_leaf_spine_failures(&topo, 4, 11);
        let mut s = FaultSchedule::new(Time::from_micros(200));
        s.link_flap(
            pairs[0].0,
            pairs[0].1,
            Time::from_millis(1),
            Time::from_millis(2),
        );
        s.link_flap(
            pairs[1].0,
            pairs[1].1,
            Time::from_millis(3),
            Time::from_millis(4),
        );
        s.degrade_window(
            pairs[2].0,
            pairs[2].1,
            1,
            4,
            Time::from_millis(2),
            Time::from_millis(5),
        );
        s.switch_outage(pairs[3].1, Time::from_millis(5), Time::from_millis(6));
        cfg.faults = Some(s);
        let stats = run(&cfg);
        assert_eq!(stats.fault_events, 8, "2 flaps + degrade window + outage");
        assert!(stats.reconvergences >= 1, "{}", stats.reconvergences);
        assert!(stats.fault_window_ns > 0);
        assert!(stats.stable_at > Time::ZERO);
        assert!(
            stats.fct_fault_ms.count() + stats.fct_clear_ms.count() > 0,
            "FCTs were classified against the fault windows"
        );
        assert!(
            stats.completion_rate() > 0.85,
            "{}",
            stats.completion_rate()
        );
    }

    #[test]
    fn chaos_runs_are_deterministic_and_empty_schedule_is_free() {
        let mut cfg = quick_cfg(Scheme::drill_default(), 0.3);
        let base = run(&cfg);
        // Attaching an empty schedule changes nothing: no events, no RNG
        // draws, bit-identical metrics.
        cfg.faults = Some(FaultSchedule::default());
        let with_empty = run(&cfg);
        assert_eq!(base.events, with_empty.events);
        assert_eq!(
            base.mean_fct_ms().to_bits(),
            with_empty.mean_fct_ms().to_bits()
        );
        assert_eq!(with_empty.fault_events, 0);
        assert_eq!(with_empty.fct_clear_ms.count(), 0, "no windows, no split");

        // A generated chaos schedule replays bit-identically.
        let topo = cfg.topo.build();
        let pairs = random_leaf_spine_failures(&topo, 2, 3);
        let mut s = FaultSchedule::default();
        s.random_flaps(
            &pairs,
            9,
            6,
            Time::from_millis(1),
            Time::from_millis(4),
            Time::from_micros(100),
            Time::from_micros(500),
        );
        cfg.faults = Some(s);
        let a = run(&cfg);
        let b = run(&cfg);
        assert!(a.fault_events > 0);
        assert_eq!(a.events, b.events);
        assert_eq!(a.fault_events, b.fault_events);
        assert_eq!(a.fault_window_ns, b.fault_window_ns);
        assert_eq!(a.mean_fct_ms().to_bits(), b.mean_fct_ms().to_bits());
    }

    #[test]
    fn fail_restore_fail_on_same_pair_ends_failed_and_routing_reflects_it() {
        // Injector level: the final state of a down/up/down train is down.
        let mut topo = tiny_topo().build();
        let (a, b) = random_leaf_spine_failures(&topo, 1, 13)[0];
        let mut inj = FaultInjector::new();
        inj.apply(&mut topo, FaultKind::LinkDown { a, b });
        inj.apply(&mut topo, FaultKind::LinkUp { a, b });
        inj.apply(&mut topo, FaultKind::LinkDown { a, b });
        assert!(
            topo.ports_to_switch(SwitchId(a), SwitchId(b)).is_empty(),
            "pair ends the sequence failed"
        );
        topo.validate();

        // World level: the same mid-run sequence reconverges each time and
        // traffic routes around the dead pair (the run still completes).
        let mut cfg = quick_cfg(Scheme::drill_default(), 0.3);
        let mut s = FaultSchedule::new(Time::from_micros(100));
        s.push(Time::from_millis(1), FaultKind::LinkDown { a, b });
        s.push(Time::from_millis(2), FaultKind::LinkUp { a, b });
        s.push(Time::from_millis(3), FaultKind::LinkDown { a, b });
        cfg.faults = Some(s);
        let stats = run(&cfg);
        assert_eq!(stats.fault_events, 3);
        assert_eq!(stats.reconvergences, 3, "windows are disjoint");
        assert!(stats.completion_rate() > 0.9, "{}", stats.completion_rate());
    }

    #[test]
    fn legacy_fail_at_matches_the_equivalent_schedule() {
        let mut legacy = quick_cfg(Scheme::Ecmp, 0.3);
        let topo = legacy.topo.build();
        let (a, b) = random_leaf_spine_failures(&topo, 1, 5)[0];
        legacy.failed_links = vec![(a, b)];
        legacy.fail_at = Some(Time::from_millis(1));
        legacy.ospf_delay = Time::from_millis(2);
        let l = run(&legacy);

        let mut sched = quick_cfg(Scheme::Ecmp, 0.3);
        let mut s = FaultSchedule::new(Time::from_millis(2));
        s.push(Time::from_millis(1), FaultKind::LinkDown { a, b });
        sched.faults = Some(s);
        let r = run(&sched);

        assert_eq!(l.fault_events, 1);
        assert_eq!(l.events, r.events);
        assert_eq!(l.flows_started, r.flows_started);
        assert_eq!(l.flows_completed, r.flows_completed);
        assert_eq!(l.reconvergences, r.reconvergences);
        assert_eq!(l.mean_fct_ms().to_bits(), r.mean_fct_ms().to_bits());
    }

    #[test]
    fn overlapping_detection_windows_coalesce_into_one_reconvergence() {
        let mut cfg = quick_cfg(Scheme::Ecmp, 0.2);
        let topo = cfg.topo.build();
        let pairs = random_leaf_spine_failures(&topo, 2, 21);
        // Two faults 100 µs apart, each detected after 1 ms: the second
        // fault supersedes the first reconvergence generation.
        let mut s = FaultSchedule::new(Time::from_millis(1));
        s.push(
            Time::from_millis(1),
            FaultKind::LinkDown {
                a: pairs[0].0,
                b: pairs[0].1,
            },
        );
        s.push(
            Time::from_millis(1) + Time::from_micros(100),
            FaultKind::LinkDown {
                a: pairs[1].0,
                b: pairs[1].1,
            },
        );
        cfg.faults = Some(s);
        let stats = run(&cfg);
        assert_eq!(stats.fault_events, 2);
        assert_eq!(stats.reconvergences, 1, "coalesced into one recompute");
        assert_eq!(
            stats.stable_at,
            Time::from_millis(2) + Time::from_micros(100)
        );
    }

    #[test]
    fn lossy_window_drops_packets_without_reconvergence() {
        let mut cfg = quick_cfg(Scheme::Ecmp, 0.3);
        let topo = cfg.topo.build();
        let (a, b) = random_leaf_spine_failures(&topo, 1, 2)[0];
        let mut s = FaultSchedule::default();
        s.lossy_window(a, b, 200_000, Time::from_millis(1), Time::from_millis(4));
        cfg.faults = Some(s);
        let stats = run(&cfg);
        assert_eq!(stats.fault_events, 2, "set + clear");
        assert_eq!(stats.reconvergences, 0, "loss keeps the graph intact");
        assert!(
            stats.retransmissions > 0,
            "wire loss forced TCP to retransmit"
        );
        assert!(stats.completion_rate() > 0.9, "{}", stats.completion_rate());
    }

    #[test]
    fn structural_plane_and_degrade_route_skip_match_eager_bitwise() {
        // A pure-capacity window (the structural plane skips the routing
        // BFS — Degrade cannot change reachability), then a reachability
        // window (full recompute), then a restore. The legacy eager plane
        // recomputes routes at every reconvergence; stats must still be
        // bit-identical, pinning both the group tables and the skip.
        let mut cfg = quick_cfg(Scheme::drill_default(), 0.3);
        let topo = cfg.topo.build();
        let pairs = random_leaf_spine_failures(&topo, 2, 17);
        let mut s = FaultSchedule::new(Time::from_micros(300));
        s.push(
            Time::from_millis(1),
            FaultKind::Degrade {
                a: pairs[0].0,
                b: pairs[0].1,
                num: 1,
                den: 4,
            },
        );
        s.push(
            Time::from_millis(2),
            FaultKind::LinkDown {
                a: pairs[1].0,
                b: pairs[1].1,
            },
        );
        s.push(
            Time::from_millis(3),
            FaultKind::LinkUp {
                a: pairs[1].0,
                b: pairs[1].1,
            },
        );
        cfg.faults = Some(s);
        let structural = run(&cfg);
        cfg.eager_control_plane = true;
        let eager = run(&cfg);
        assert_eq!(structural.fault_events, 3);
        assert_eq!(structural.reconvergences, 3, "degrade still reconverges");
        assert_eq!(structural.events, eager.events);
        assert_eq!(structural.flows_started, eager.flows_started);
        assert_eq!(structural.flows_completed, eager.flows_completed);
        assert_eq!(structural.reconvergences, eager.reconvergences);
        assert_eq!(structural.fault_window_ns, eager.fault_window_ns);
        assert_eq!(structural.retransmissions, eager.retransmissions);
        assert_eq!(structural.blackholed, eager.blackholed);
        assert_eq!(
            structural.mean_fct_ms().to_bits(),
            eager.mean_fct_ms().to_bits()
        );
        assert_eq!(
            structural.dupacks.frac(0).to_bits(),
            eager.dupacks.frac(0).to_bits()
        );
    }

    #[test]
    fn incast_flows_are_tracked() {
        let mut cfg = quick_cfg(Scheme::Ecmp, 0.1);
        cfg.workload.incast = Some(drill_workload::IncastSpec {
            epoch_gap: Time::from_millis(1),
            ..Default::default()
        });
        let stats = run(&cfg);
        assert!(stats.fct_incast_ms.count() > 0, "incast flows measured");
    }

    #[test]
    fn synthetic_mode_produces_elephants_and_mice() {
        let mut cfg = quick_cfg(Scheme::Ecmp, 0.0);
        cfg.workload.pattern = TrafficPattern::Stride(4);
        cfg.synthetic = Some(crate::config::SyntheticMode {
            elephant_bytes: 2_000_000,
            mice_bytes: 50_000,
            mice_period: Time::from_millis(1),
        });
        cfg.duration = Time::from_millis(10);
        let stats = run(&cfg);
        assert!(stats.elephant_gbps.count() > 0, "elephants measured");
        assert!(stats.fct_mice_ms.count() > 0, "mice measured");
    }

    #[test]
    fn recorded_run_captures_events_with_identical_stats() {
        let mut cfg = quick_cfg(Scheme::drill_default(), 0.3);
        cfg.duration = Time::from_millis(2);
        let base = run(&cfg);
        let (stats, tel) = run_recorded(&cfg);
        // The probe observes but never steers: every counter matches the
        // probe-free run exactly.
        assert_eq!(base.events, stats.events);
        assert_eq!(base.flows_started, stats.flows_started);
        assert_eq!(base.flows_completed, stats.flows_completed);
        assert_eq!(base.mean_fct_ms().to_bits(), stats.mean_fct_ms().to_bits());
        assert!(tel.recorder.event_count() > 1000, "recorder saw traffic");
        assert!(!tel.sampler.ports().is_empty(), "sampler saw queues");
        assert!(tel.sampler.max_high_water_pkts() > 0);
    }

    #[test]
    fn telemetry_config_knob_writes_trace_file() {
        let path = std::env::temp_dir().join(format!(
            "drill_world_trace_test_{}.drilltrc",
            std::process::id()
        ));
        let mut cfg = quick_cfg(Scheme::Ecmp, 0.2);
        cfg.duration = Time::from_millis(1);
        cfg.telemetry = Some(crate::config::TelemetrySpec {
            trace_path: Some(path.clone()),
            ..Default::default()
        });
        let stats = run(&cfg);
        assert!(stats.flows_started > 0);
        let bytes = std::fs::read(&path).expect("trace file written");
        let trace = drill_telemetry::read_trace(&mut &bytes[..]).expect("trace decodes");
        assert!(trace.event_count() > 0);
        assert_eq!(trace.num_switches as usize, cfg.topo.build().num_switches());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_schemes_run_to_completion() {
        for scheme in [
            Scheme::Ecmp,
            Scheme::Random,
            Scheme::RoundRobin,
            Scheme::drill_default(),
            Scheme::drill_no_shim(),
            Scheme::PerFlowDrill,
            Scheme::presto(),
            Scheme::Presto { shim: false },
            Scheme::Conga,
            Scheme::Wcmp,
        ] {
            let mut cfg = quick_cfg(scheme, 0.2);
            cfg.duration = Time::from_millis(2);
            let stats = run(&cfg);
            assert!(
                stats.completion_rate() > 0.9,
                "{}: completion {}",
                scheme.name(),
                stats.completion_rate()
            );
        }
    }
}
