//! Parallel sweep runner: experiment runs are independent, so sweeps
//! (schemes x loads) run one per thread.

use crate::{run, ExperimentConfig, RunStats};

/// Run every configuration, in order, spreading runs across OS threads
/// (bounded by available parallelism). Results come back in input order.
pub fn run_many(cfgs: &[ExperimentConfig]) -> Vec<RunStats> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<RunStats>> = (0..cfgs.len()).map(|_| None).collect();
    let slot_refs: Vec<std::sync::Mutex<&mut Option<RunStats>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(cfgs.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cfgs.len() {
                    break;
                }
                let stats = run(&cfgs[i]);
                **slot_refs[i].lock().expect("slot lock") = Some(stats);
            });
        }
    });
    drop(slot_refs);
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scheme, TopoSpec};
    use drill_net::LeafSpineSpec;
    use drill_sim::Time;

    #[test]
    fn parallel_matches_serial() {
        let mk = |scheme| {
            let mut cfg = ExperimentConfig::new(
                TopoSpec::LeafSpine(LeafSpineSpec {
                    spines: 2,
                    leaves: 2,
                    hosts_per_leaf: 2,
                    host_rate: 10_000_000_000,
                    core_rate: 10_000_000_000,
                    prop: drill_net::DEFAULT_PROP,
                }),
                scheme,
                0.3,
            );
            cfg.duration = Time::from_millis(2);
            cfg.drain = Time::from_millis(50);
            cfg
        };
        let cfgs = vec![
            mk(Scheme::Ecmp),
            mk(Scheme::drill_default()),
            mk(Scheme::Random),
        ];
        let par = run_many(&cfgs);
        assert_eq!(par.len(), 3);
        for (cfg, stats) in cfgs.iter().zip(&par) {
            let serial = run(cfg);
            assert_eq!(stats.events, serial.events, "{}", cfg.scheme.name());
            assert_eq!(stats.flows_started, serial.flows_started);
        }
        assert_eq!(par[0].scheme, "ECMP");
        assert_eq!(par[1].scheme, "DRILL(2,1)");
    }
}
