//! Declarative sweeps: a cartesian grid of experiment points executed in
//! parallel with bit-identical results to a serial replay.
//!
//! Every figure in the paper's §4 is a sweep over independent
//! `(scheme, load, engines, seed)` simulation points. [`SweepSpec`]
//! describes such a grid declaratively — axes plus a per-point config
//! hook — and [`SweepSpec::run`] executes it on the [`drill_exec`] pool.
//!
//! # Determinism contract
//!
//! * **Per-point isolation.** Each point clones the base config, applies
//!   its axis values and the hook, and [`run`]s a fresh `World`. No
//!   simulation state is shared between points, so a point's result is a
//!   pure function of its config.
//! * **Per-point seed derivation.** Replication `rep` of a sweep runs at
//!   seed [`derive_seed`]`(base_seed, rep)`: rep 0 keeps the base seed
//!   (so single-rep sweeps reproduce historic single-run results), later
//!   reps get decorrelated SplitMix64-derived seeds. All points of one
//!   rep share a seed — common random numbers, so scheme A and scheme B
//!   face the exact same arriving workload.
//! * **Ordered collection.** Results land at their point's grid index
//!   regardless of which worker finishes first; `DRILL_THREADS` (and the
//!   completion order it induces) can change wall clock, never output.
//!
//! `tests/determinism_golden.rs` differentially tests serial replay
//! against 1/2/8-thread runs of the same grid.

use drill_exec::Executor;
use drill_sim::Time;
use drill_snapshot::Snapshot;

use crate::{run, ExperimentConfig, RunStats, Scheme, World};

/// Derive the seed for replication `rep` of a sweep with root seed
/// `base`. Rep 0 is the base seed itself; later reps are SplitMix64
/// mixes, decorrelated from the base and from each other.
pub fn derive_seed(base: u64, rep: usize) -> u64 {
    if rep == 0 {
        return base;
    }
    // SplitMix64 over (base, rep): one golden-ratio step per component.
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((rep as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One cell of a sweep grid: the axis values and indices identifying a
/// single simulation point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Flat index in grid order (`rep`-major, `scheme`-minor).
    pub index: usize,
    /// Scheme under test.
    pub scheme: Scheme,
    /// Offered load.
    pub load: f64,
    /// Forwarding engines per switch.
    pub engines: usize,
    /// Label of the variant axis cell (empty when the axis is unused).
    pub variant: String,
    /// Replication number (selects the derived seed).
    pub rep: usize,
    /// The derived per-point seed actually used.
    pub seed: u64,
    /// Index into the scheme axis.
    pub scheme_idx: usize,
    /// Index into the load axis.
    pub load_idx: usize,
    /// Index into the engines axis.
    pub engines_idx: usize,
    /// Index into the variant axis.
    pub variant_idx: usize,
}

type ConfigHook = Box<dyn Fn(&mut ExperimentConfig, &SweepPoint) + Sync>;

/// A declarative sweep: a base config, up to five axes (scheme, load,
/// engines, variant, seed replication), and an optional per-point hook
/// for knobs that are not an axis.
///
/// Grid order is row-major with `rep` outermost and `scheme` innermost:
/// `rep → load → engines → variant → scheme`. Unset axes default to the
/// base config's value, so a simple "schemes × loads" sweep is:
///
/// ```
/// use drill_runtime::{ExperimentConfig, Scheme, SweepSpec, TopoSpec};
/// use drill_net::LeafSpineSpec;
/// # let topo = TopoSpec::LeafSpine(LeafSpineSpec {
/// #     spines: 2, leaves: 2, hosts_per_leaf: 2,
/// #     host_rate: 10_000_000_000, core_rate: 10_000_000_000,
/// #     prop: drill_net::DEFAULT_PROP,
/// # });
/// let mut base = ExperimentConfig::new(topo, Scheme::Ecmp, 0.3);
/// base.duration = drill_sim::Time::from_millis(1);
/// base.drain = drill_sim::Time::from_millis(20);
/// let results = SweepSpec::new(base)
///     .schemes(vec![Scheme::Ecmp, Scheme::drill_default()])
///     .loads(vec![0.2, 0.3])
///     .threads(2)
///     .run();
/// assert_eq!(results.len(), 4);
/// ```
pub struct SweepSpec {
    base: ExperimentConfig,
    schemes: Vec<Scheme>,
    loads: Vec<f64>,
    engines: Vec<usize>,
    variants: Vec<String>,
    reps: usize,
    threads: Option<usize>,
    configure: Option<ConfigHook>,
    warm_start: Option<Time>,
}

impl SweepSpec {
    /// A sweep whose every axis is the base config's single value.
    pub fn new(base: ExperimentConfig) -> SweepSpec {
        SweepSpec {
            schemes: vec![base.scheme],
            loads: vec![base.workload.load],
            engines: vec![base.engines],
            variants: vec![String::new()],
            reps: 1,
            threads: None,
            configure: None,
            warm_start: None,
            base,
        }
    }

    /// Set the scheme axis.
    pub fn schemes(mut self, schemes: Vec<Scheme>) -> SweepSpec {
        assert!(!schemes.is_empty(), "scheme axis must be non-empty");
        self.schemes = schemes;
        self
    }

    /// Set the offered-load axis.
    pub fn loads(mut self, loads: Vec<f64>) -> SweepSpec {
        assert!(!loads.is_empty(), "load axis must be non-empty");
        self.loads = loads;
        self
    }

    /// Set the forwarding-engines axis.
    pub fn engines(mut self, engines: Vec<usize>) -> SweepSpec {
        assert!(!engines.is_empty(), "engines axis must be non-empty");
        self.engines = engines;
        self
    }

    /// Set the free-form variant axis. Variants carry no config meaning on
    /// their own; pair them with [`configure`](SweepSpec::configure).
    pub fn variants<S: Into<String>>(mut self, variants: Vec<S>) -> SweepSpec {
        assert!(!variants.is_empty(), "variant axis must be non-empty");
        self.variants = variants.into_iter().map(Into::into).collect();
        self
    }

    /// Run `reps` seed replications of the whole grid (per-point seeds
    /// derived with [`derive_seed`]).
    pub fn reps(mut self, reps: usize) -> SweepSpec {
        assert!(reps > 0, "at least one replication");
        self.reps = reps;
        self
    }

    /// Override the worker count (default: `DRILL_THREADS`, else available
    /// parallelism).
    pub fn threads(mut self, threads: usize) -> SweepSpec {
        self.threads = Some(threads);
        self
    }

    /// Install a per-point config hook, applied after the axis values.
    pub fn configure<F>(mut self, f: F) -> SweepSpec
    where
        F: Fn(&mut ExperimentConfig, &SweepPoint) + Sync + 'static,
    {
        self.configure = Some(Box::new(f));
        self
    }

    /// Warm-start the sweep: amortize the simulation up to `at` across
    /// each group of points that differ only in `variant`.
    ///
    /// Each group runs its first point's config once to `at`, takes a
    /// `DRILLSNAP` [`Snapshot`](crate::Snapshot), and forks every member
    /// from it: [`World::restore`] with the member's own config, then run
    /// to completion. Both phases spread across the `drill-exec` pool,
    /// and results stay bit-identical to a cold sweep *provided the
    /// variants are inert before `at`* — they may only change state the
    /// simulation has not consumed yet, the canonical case being fault
    /// timelines whose divergent strikes all land at or after `at`
    /// (restore verifies the already-struck prefix and rejects a
    /// not-yet-struck strike in the past; other pre-`at` divergence, e.g.
    /// a variant changing the workload, is the caller's contract to
    /// avoid). Schemes, loads, engines and reps all shape the warmup
    /// itself, so each gets its own group and donor snapshot.
    pub fn warm_start(mut self, at: Time) -> SweepSpec {
        self.warm_start = Some(at);
        self
    }

    fn shape(&self) -> SweepShape {
        SweepShape {
            schemes: self.schemes.len(),
            loads: self.loads.len(),
            engines: self.engines.len(),
            variants: self.variants.len(),
            reps: self.reps,
        }
    }

    /// Materialize every grid point and its fully-configured
    /// `ExperimentConfig`, in grid order.
    pub fn points(&self) -> Vec<(SweepPoint, ExperimentConfig)> {
        let mut out = Vec::with_capacity(self.shape().len());
        for rep in 0..self.reps {
            let seed = derive_seed(self.base.seed, rep);
            for (load_idx, &load) in self.loads.iter().enumerate() {
                for (engines_idx, &engines) in self.engines.iter().enumerate() {
                    for (variant_idx, variant) in self.variants.iter().enumerate() {
                        for (scheme_idx, &scheme) in self.schemes.iter().enumerate() {
                            let point = SweepPoint {
                                index: out.len(),
                                scheme,
                                load,
                                engines,
                                variant: variant.clone(),
                                rep,
                                seed,
                                scheme_idx,
                                load_idx,
                                engines_idx,
                                variant_idx,
                            };
                            let mut cfg = self.base.clone();
                            cfg.scheme = scheme;
                            cfg.workload.load = load;
                            cfg.engines = engines;
                            cfg.seed = seed;
                            if let Some(hook) = &self.configure {
                                hook(&mut cfg, &point);
                            }
                            out.push((point, cfg));
                        }
                    }
                }
            }
        }
        out
    }

    /// Execute the sweep in parallel. Results are bit-identical to
    /// [`run_serial`](SweepSpec::run_serial) for every thread count.
    pub fn run(&self) -> SweepResults {
        let executor = match self.threads {
            Some(n) => Executor::new(n),
            None => Executor::from_env(),
        };
        self.run_on(executor)
    }

    /// Execute the sweep serially on the calling thread (the replay
    /// reference for differential tests).
    pub fn run_serial(&self) -> SweepResults {
        self.run_on(Executor::serial())
    }

    fn run_on(&self, executor: Executor) -> SweepResults {
        let points = self.points();
        let stats = match self.warm_start {
            None => executor.map(&points, |_, (_, cfg)| run(cfg)),
            Some(at) => Self::run_warm(&executor, &points, at),
        };
        SweepResults {
            shape: self.shape(),
            points: points.into_iter().map(|(p, _)| p).collect(),
            stats,
        }
    }

    fn run_warm(
        executor: &Executor,
        points: &[(SweepPoint, ExperimentConfig)],
        at: Time,
    ) -> Vec<RunStats> {
        // Group points differing only in variant. Grid order puts the
        // variant axis second-innermost, so members of one group sit a
        // scheme-stride apart; the group's first point donates the
        // snapshot.
        let mut groups: std::collections::HashMap<(usize, usize, usize, usize), usize> =
            std::collections::HashMap::new();
        let mut donors: Vec<usize> = Vec::new();
        let mut group_of = vec![0usize; points.len()];
        for (i, (p, _)) in points.iter().enumerate() {
            let key = (p.rep, p.load_idx, p.engines_idx, p.scheme_idx);
            group_of[i] = *groups.entry(key).or_insert_with(|| {
                donors.push(i);
                donors.len() - 1
            });
        }
        let snaps: Vec<Snapshot> = executor.map(&donors, |_, &i| {
            let mut w = World::new(&points[i].1);
            w.run_to(at);
            w.snapshot()
        });
        executor.map(points, |i, (point, cfg)| {
            let w = World::restore(&snaps[group_of[i]], cfg).unwrap_or_else(|e| {
                panic!(
                    "warm-start fork of point {} (variant {:?}) is incompatible \
                     with its group snapshot: {e}",
                    point.index, point.variant
                )
            });
            w.finish()
        })
    }
}

#[derive(Clone, Copy, Debug)]
struct SweepShape {
    schemes: usize,
    loads: usize,
    engines: usize,
    variants: usize,
    reps: usize,
}

impl SweepShape {
    fn len(&self) -> usize {
        self.schemes * self.loads * self.engines * self.variants * self.reps
    }

    fn index(
        &self,
        rep: usize,
        load: usize,
        engines: usize,
        variant: usize,
        scheme: usize,
    ) -> usize {
        assert!(
            rep < self.reps
                && load < self.loads
                && engines < self.engines
                && variant < self.variants
                && scheme < self.schemes,
            "sweep index out of range"
        );
        (((rep * self.loads + load) * self.engines + engines) * self.variants + variant)
            * self.schemes
            + scheme
    }
}

/// Results of a sweep, in grid order, with per-cell access and
/// cross-replication aggregation.
pub struct SweepResults {
    shape: SweepShape,
    points: Vec<SweepPoint>,
    stats: Vec<RunStats>,
}

impl SweepResults {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether the sweep was empty.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Iterate points and their stats in grid order.
    pub fn iter(&self) -> impl Iterator<Item = (&SweepPoint, &RunStats)> {
        self.points.iter().zip(&self.stats)
    }

    /// The stats of one grid cell.
    pub fn get(
        &self,
        rep: usize,
        load_idx: usize,
        engines_idx: usize,
        variant_idx: usize,
        scheme_idx: usize,
    ) -> &RunStats {
        &self.stats[self
            .shape
            .index(rep, load_idx, engines_idx, variant_idx, scheme_idx)]
    }

    /// The stats of one `(load, scheme)` cell of a single-rep,
    /// single-engines, single-variant sweep.
    pub fn at(&self, load_idx: usize, scheme_idx: usize) -> &RunStats {
        self.get(0, load_idx, 0, 0, scheme_idx)
    }

    /// Merge the replications of one `(load, engines, variant, scheme)`
    /// cell into a single aggregated `RunStats`.
    pub fn merged(
        &self,
        load_idx: usize,
        engines_idx: usize,
        variant_idx: usize,
        scheme_idx: usize,
    ) -> RunStats {
        let mut acc = self
            .get(0, load_idx, engines_idx, variant_idx, scheme_idx)
            .clone();
        for rep in 1..self.shape.reps {
            acc.merge(self.get(rep, load_idx, engines_idx, variant_idx, scheme_idx));
        }
        acc
    }

    /// Collapse to a `[load][scheme]` grid, merging replications. The
    /// engines and variant axes must be singletons.
    pub fn by_load_scheme(&self) -> Vec<Vec<RunStats>> {
        assert_eq!(self.shape.engines, 1, "engines axis is not a singleton");
        assert_eq!(self.shape.variants, 1, "variant axis is not a singleton");
        (0..self.shape.loads)
            .map(|li| {
                (0..self.shape.schemes)
                    .map(|si| self.merged(li, 0, 0, si))
                    .collect()
            })
            .collect()
    }

    /// Consume the results, yielding the flat stats vector in grid order.
    pub fn into_stats(self) -> Vec<RunStats> {
        self.stats
    }
}

/// Run every configuration, spreading runs across the `DRILL_THREADS`
/// pool. Results come back in input order, bit-identical to running each
/// config serially.
///
/// Kept for free-form config lists; grids should use [`SweepSpec`].
pub fn run_many(cfgs: &[ExperimentConfig]) -> Vec<RunStats> {
    Executor::from_env().map(cfgs, |_, cfg| run(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopoSpec;
    use drill_net::LeafSpineSpec;
    use drill_sim::Time;

    fn tiny_base(scheme: Scheme, load: f64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(
            TopoSpec::LeafSpine(LeafSpineSpec {
                spines: 2,
                leaves: 2,
                hosts_per_leaf: 2,
                host_rate: 10_000_000_000,
                core_rate: 10_000_000_000,
                prop: drill_net::DEFAULT_PROP,
            }),
            scheme,
            load,
        );
        cfg.duration = Time::from_millis(2);
        cfg.drain = Time::from_millis(50);
        cfg
    }

    #[test]
    fn parallel_matches_serial() {
        let cfgs = vec![
            tiny_base(Scheme::Ecmp, 0.3),
            tiny_base(Scheme::drill_default(), 0.3),
            tiny_base(Scheme::Random, 0.3),
        ];
        let par = run_many(&cfgs);
        assert_eq!(par.len(), 3);
        for (cfg, stats) in cfgs.iter().zip(&par) {
            let serial = run(cfg);
            assert_eq!(stats.events, serial.events, "{}", cfg.scheme.name());
            assert_eq!(stats.flows_started, serial.flows_started);
        }
        assert_eq!(par[0].scheme, "ECMP");
        assert_eq!(par[1].scheme, "DRILL(2,1)");
    }

    #[test]
    fn grid_order_is_rep_major_scheme_minor() {
        let spec = SweepSpec::new(tiny_base(Scheme::Ecmp, 0.3))
            .schemes(vec![Scheme::Ecmp, Scheme::Random])
            .loads(vec![0.2, 0.4])
            .engines(vec![1, 2])
            .variants(vec!["a", "b"])
            .reps(2);
        let points = spec.points();
        assert_eq!(points.len(), 2 * 2 * 2 * 2 * 2);
        for (i, (p, cfg)) in points.iter().enumerate() {
            assert_eq!(p.index, i);
            assert_eq!(cfg.scheme, p.scheme);
            assert_eq!(cfg.workload.load, p.load);
            assert_eq!(cfg.engines, p.engines);
            assert_eq!(cfg.seed, p.seed);
        }
        // Scheme is the fastest-moving axis; rep the slowest.
        assert_eq!(points[0].0.scheme, Scheme::Ecmp);
        assert_eq!(points[1].0.scheme, Scheme::Random);
        assert_eq!(points[1].0.variant, "a");
        assert_eq!(points[2].0.variant, "b");
        assert_eq!(points[4].0.engines, 2);
        assert_eq!(points[8].0.load, 0.4);
        assert_eq!(points[16].0.rep, 1);
    }

    #[test]
    fn seed_derivation_is_stable_and_rep0_preserves_base() {
        assert_eq!(derive_seed(42, 0), 42);
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), 42);
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn hook_sees_axis_values_and_can_override() {
        let spec = SweepSpec::new(tiny_base(Scheme::Ecmp, 0.3))
            .variants(vec!["commit", "no-commit"])
            .configure(|cfg, p| cfg.model_commit = p.variant == "commit");
        let points = spec.points();
        assert!(points[0].1.model_commit);
        assert!(!points[1].1.model_commit);
    }

    #[test]
    fn sweep_results_index_and_merge() {
        let spec = SweepSpec::new(tiny_base(Scheme::Ecmp, 0.3))
            .schemes(vec![Scheme::Ecmp, Scheme::drill_default()])
            .loads(vec![0.2, 0.4])
            .reps(2)
            .threads(2);
        let res = spec.run();
        assert_eq!(res.len(), 8);
        // Each cell matches a direct run of its config.
        for (p, st) in res.iter() {
            assert_eq!(
                st.events,
                res.get(p.rep, p.load_idx, 0, 0, p.scheme_idx).events
            );
        }
        // Reps differ (different seeds), and the merged cell sums them.
        let a = res.get(0, 0, 0, 0, 0);
        let b = res.get(1, 0, 0, 0, 0);
        assert_ne!(a.events, b.events, "reps use distinct seeds");
        let m = res.merged(0, 0, 0, 0);
        assert_eq!(m.events, a.events + b.events);
        assert_eq!(m.flows_started, a.flows_started + b.flows_started);
        assert_eq!(m.fct_ms.count(), a.fct_ms.count() + b.fct_ms.count());
    }

    #[test]
    fn by_load_scheme_matches_cells() {
        let res = SweepSpec::new(tiny_base(Scheme::Ecmp, 0.3))
            .schemes(vec![Scheme::Ecmp, Scheme::Random])
            .loads(vec![0.2, 0.4])
            .threads(1)
            .run();
        let grid = res.by_load_scheme();
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].len(), 2);
        for li in 0..2 {
            for si in 0..2 {
                assert_eq!(grid[li][si].events, res.at(li, si).events);
            }
        }
    }
}
