//! `DRILLSNAP` capture and restore of a [`World`] mid-flight.
//!
//! A snapshot records the *dynamic* state only: pending events (as a flat
//! `(time, seq)`-sorted list — where an event waits is engine topology,
//! not simulation state), per-shard packet arenas, switch/NIC/policy
//! state, TCP flows and shims, RNG streams, workload cursors, and the
//! in-run statistics scalars. Everything structural — the topology,
//! routes, bound traffic patterns, shard plan — is rebuilt from the
//! restore config, with the applied fault prefix replayed on top so the
//! link/route state lands exactly where the saved run left it.
//!
//! Restore accepts a *different* fault timeline than the one saved, as
//! long as it agrees on the already-struck prefix: not-yet-struck entries
//! are re-injected from the restore config's own schedule (stamped from
//! the reserved [`FAULT_SEQ_BASE`] band, exactly as a cold run stamps
//! them), which is what lets a warm-started sweep fork one warmed-up
//! snapshot into many divergent fault scenarios.

use std::io;

use drill_audit::{Audit, NoopAudit};
use drill_core::install_symmetric_groups_eager;
use drill_faults::FaultKind;
use drill_net::snapio::{get_net_event, put_net_event};
use drill_net::{HostId, NetEvent, PacketArena, RouteTable, ShardPlan, SwitchId};
use drill_sim::codec::{
    invalid, put_f64, put_u64, put_varint, CodecError, CodecErrorKind, Decoder,
};
use drill_sim::{SimRng, Time};
use drill_snapshot::{Snapshot, SnapshotBuilder};
use drill_stats::Moments;
use drill_telemetry::{NoopProbe, Probe};
use drill_transport::{ShimBuffer, TcpFlow};

use super::{rebuild_switch, Event, FlowClass, World};
use crate::config::ExperimentConfig;
use crate::Scheme;

/// Reserved sequence band for fault injections. Ordinary events consume
/// the global FIFO sequence from zero; fault strikes are stamped
/// `FAULT_SEQ_BASE + timeline index` so they (a) pop after every ordinary
/// event sharing their timestamp, deterministically ordered by index, and
/// (b) can be re-injected at restore — from a possibly divergent
/// schedule — without perturbing any other event's sequence.
pub(crate) const FAULT_SEQ_BASE: u64 = 1 << 62;

// Section tags. New sections may be appended in later versions; readers
// skip unknown tags by construction.
const SEC_META: u8 = 1;
const SEC_ARENAS: u8 = 2;
const SEC_SWITCHES: u8 = 3;
const SEC_NICS: u8 = 4;
const SEC_HOST_POLICIES: u8 = 5;
const SEC_FLOWS: u8 = 6;
const SEC_WORKLOAD: u8 = 7;
const SEC_FAULTS: u8 = 8;
const SEC_STATS: u8 = 9;
const SEC_EVENTS: u8 = 10;

// Pending-event tags (Event::Fault is never serialized: the not-yet-struck
// suffix is re-injected from the restore config's timeline).
const EV_NET: u8 = 0;
const EV_FLOW_ARRIVAL: u8 = 1;
const EV_INCAST_EPOCH: u8 = 2;
const EV_MICE_TICK: u8 = 3;
const EV_TCP_TIMER: u8 = 4;
const EV_SHIM_TIMER: u8 = 5;
const EV_SAMPLE_QUEUES: u8 = 6;
const EV_RECONVERGE: u8 = 7;

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

fn get_bool(d: &mut Decoder<'_>) -> io::Result<bool> {
    match d.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(invalid("bad bool byte")),
    }
}

fn put_time(buf: &mut Vec<u8>, t: Time) {
    put_varint(buf, t.as_nanos());
}

fn get_time(d: &mut Decoder<'_>) -> io::Result<Time> {
    Ok(Time::from_nanos(d.varint()?))
}

fn put_fault_kind(buf: &mut Vec<u8>, k: &FaultKind) {
    match *k {
        FaultKind::LinkDown { a, b } => {
            buf.push(0);
            put_varint(buf, a as u64);
            put_varint(buf, b as u64);
        }
        FaultKind::LinkUp { a, b } => {
            buf.push(1);
            put_varint(buf, a as u64);
            put_varint(buf, b as u64);
        }
        FaultKind::SwitchDown { switch } => {
            buf.push(2);
            put_varint(buf, switch as u64);
        }
        FaultKind::SwitchUp { switch } => {
            buf.push(3);
            put_varint(buf, switch as u64);
        }
        FaultKind::Degrade { a, b, num, den } => {
            buf.push(4);
            put_varint(buf, a as u64);
            put_varint(buf, b as u64);
            put_varint(buf, num as u64);
            put_varint(buf, den as u64);
        }
        FaultKind::SetLoss { a, b, ppm } => {
            buf.push(5);
            put_varint(buf, a as u64);
            put_varint(buf, b as u64);
            put_varint(buf, ppm as u64);
        }
    }
}

fn get_fault_kind(d: &mut Decoder<'_>) -> io::Result<FaultKind> {
    Ok(match d.u8()? {
        0 => FaultKind::LinkDown {
            a: d.varint_u32()?,
            b: d.varint_u32()?,
        },
        1 => FaultKind::LinkUp {
            a: d.varint_u32()?,
            b: d.varint_u32()?,
        },
        2 => FaultKind::SwitchDown {
            switch: d.varint_u32()?,
        },
        3 => FaultKind::SwitchUp {
            switch: d.varint_u32()?,
        },
        4 => FaultKind::Degrade {
            a: d.varint_u32()?,
            b: d.varint_u32()?,
            num: d.varint_u32()?,
            den: d.varint_u32()?,
        },
        5 => FaultKind::SetLoss {
            a: d.varint_u32()?,
            b: d.varint_u32()?,
            ppm: d.varint_u32()?,
        },
        _ => return Err(invalid("unknown fault kind tag")),
    })
}

/// Shard owning a network event's destination component.
fn net_dst(plan: &ShardPlan, ev: &NetEvent) -> u32 {
    match ev {
        NetEvent::ArriveSwitch { switch, .. }
        | NetEvent::SwitchTxDone { switch, .. }
        | NetEvent::EnqueueCommit { switch, .. } => plan.switch_shard[switch.index()],
        NetEvent::ArriveHost { host, .. } | NetEvent::HostTxDone { host } => {
            plan.host_shard[host.index()]
        }
    }
}

/// The required section `tag`, as a decoder labeled with the tag so any
/// decode error carries (section, byte offset).
fn section<'a>(snap: &'a Snapshot, tag: u8) -> io::Result<Decoder<'a>> {
    match snap.section(tag) {
        Some(body) => Ok(Decoder::in_section(body, tag)),
        None => Err(CodecError {
            section: Some(tag),
            offset: None,
            kind: CodecErrorKind::Invalid("missing DRILLSNAP section".to_string()),
        }
        .into()),
    }
}

/// Every section must be consumed exactly — trailing bytes mean the
/// writer and reader disagree about the layout.
fn done(d: &Decoder<'_>) -> io::Result<()> {
    if d.remaining() != 0 {
        return Err(invalid("trailing bytes in DRILLSNAP section"));
    }
    Ok(())
}

impl<P: Probe, A: Audit> World<P, A> {
    /// Capture the complete dynamic state as a [`Snapshot`].
    ///
    /// Must be called between events (never from inside a dispatch); the
    /// event loop's checkpoint hook and the stepwise
    /// [`run_to`](World::run_to) boundary both satisfy this.
    pub fn snapshot(&self) -> Snapshot {
        debug_assert!(self.net_buf.is_empty(), "snapshot between dispatches");
        // Distributions and per-flow aggregates are filled by finalize();
        // mid-run they are provably empty, so only scalars serialize.
        debug_assert_eq!(self.stats.fct_ms.count(), 0, "snapshot of a finalized run");
        debug_assert_eq!(self.stats.flows_completed, 0);

        let mut b = SnapshotBuilder::new(cfg!(feature = "fat-events"));

        // META: engine identity + clock.
        let mut buf = Vec::new();
        put_varint(&mut buf, self.plan.num_shards as u64);
        put_varint(&mut buf, self.switches.len() as u64);
        put_varint(&mut buf, self.nics.len() as u64);
        put_varint(&mut buf, self.cfg.engines as u64);
        put_time(&mut buf, self.queue.now());
        put_varint(&mut buf, self.queue.next_seq());
        put_varint(&mut buf, self.queue.events_processed());
        b.section(SEC_META, buf);

        // ARENAS: wholesale slot + free-list state (slim layout; the fat
        // layout records live counts and reconstructs from inline packets).
        let mut buf = Vec::new();
        put_varint(&mut buf, self.arenas.len() as u64);
        for a in &self.arenas {
            a.save_state(&mut buf);
        }
        b.section(SEC_ARENAS, buf);

        // SWITCHES: queues, in-flight heads, counters, policy state.
        let mut buf = Vec::new();
        put_varint(&mut buf, self.switches.len() as u64);
        for (i, sw) in self.switches.iter().enumerate() {
            let k = self.plan.switch_shard[i] as usize;
            sw.save_state(&self.arenas[k], &mut buf);
        }
        b.section(SEC_SWITCHES, buf);

        // NICS.
        let mut buf = Vec::new();
        put_varint(&mut buf, self.nics.len() as u64);
        for (h, nic) in self.nics.iter().enumerate() {
            let k = self.plan.host_shard[h] as usize;
            nic.save_state(&self.arenas[k], &mut buf);
        }
        b.section(SEC_NICS, buf);

        // HOST POLICIES (stateless policies write nothing).
        let mut buf = Vec::new();
        put_varint(&mut buf, self.host_policies.len() as u64);
        for p in &self.host_policies {
            p.save_state(&mut buf);
        }
        b.section(SEC_HOST_POLICIES, buf);

        // FLOWS: TCP state + class/measured/shim/timer-generation.
        let mut buf = Vec::new();
        put_varint(&mut buf, self.flows.len() as u64);
        for (i, f) in self.flows.iter().enumerate() {
            f.save_state(&mut buf);
            buf.push(match self.classes[i] {
                FlowClass::Background => 0,
                FlowClass::Incast => 1,
                FlowClass::Mice => 2,
                FlowClass::Elephant => 3,
            });
            put_bool(&mut buf, self.measured[i]);
            match &self.shims[i] {
                Some(shim) => {
                    put_bool(&mut buf, true);
                    let k = self.plan.host_shard[f.dst.index()] as usize;
                    shim.save_state(&self.arenas[k], &mut buf);
                }
                None => put_bool(&mut buf, false),
            }
            put_varint(&mut buf, self.sched_gen[i]);
        }
        b.section(SEC_FLOWS, buf);

        // WORKLOAD: RNG streams, packet ids, the pre-drawn next flow, and
        // pattern cursors (bound structure is rebuilt from the config).
        let mut buf = Vec::new();
        for w in self.rng_net.state() {
            put_u64(&mut buf, w);
        }
        for w in self.rng_wl.state() {
            put_u64(&mut buf, w);
        }
        put_varint(&mut buf, self.pkt_ids);
        match &self.pending_flow {
            Some(spec) => {
                put_bool(&mut buf, true);
                put_time(&mut buf, spec.gap);
                put_varint(&mut buf, spec.src as u64);
                put_varint(&mut buf, spec.dst as u64);
                put_varint(&mut buf, spec.bytes);
            }
            None => put_bool(&mut buf, false),
        }
        match &self.gen {
            Some(g) => {
                put_bool(&mut buf, true);
                g.pattern().save_cursors(&mut buf);
            }
            None => put_bool(&mut buf, false),
        }
        match &self.synth_pattern {
            Some(p) => {
                put_bool(&mut buf, true);
                p.save_cursors(&mut buf);
            }
            None => put_bool(&mut buf, false),
        }
        b.section(SEC_WORKLOAD, buf);

        // FAULTS: applied prefix (for the restore-compatibility check and
        // injector replay) + window accounting. The injector itself is not
        // serialized: replaying the prefix reproduces its crash state.
        let mut buf = Vec::new();
        put_varint(&mut buf, self.faults_applied);
        put_varint(&mut buf, self.faults_applied_at_reconv);
        put_varint(&mut buf, self.reconv_gen);
        match self.window_open_at {
            Some(t) => {
                put_bool(&mut buf, true);
                put_time(&mut buf, t);
            }
            None => put_bool(&mut buf, false),
        }
        put_varint(&mut buf, self.blackhole_mark);
        put_varint(&mut buf, self.fault_windows.len() as u64);
        for &(a, z) in &self.fault_windows {
            put_time(&mut buf, a);
            put_time(&mut buf, z);
        }
        for &(at, kind, delay) in &self.faults[..self.faults_applied as usize] {
            put_time(&mut buf, at);
            put_fault_kind(&mut buf, &kind);
            put_time(&mut buf, delay);
        }
        b.section(SEC_FAULTS, buf);

        // STATS: the in-run scalars only.
        let mut buf = Vec::new();
        put_varint(&mut buf, self.stats.flows_started);
        let (n, mean, m2, min, max) = self.stats.queue_stdv.state();
        put_varint(&mut buf, n);
        for v in [mean, m2, min, max] {
            put_f64(&mut buf, v);
        }
        put_varint(&mut buf, self.stats.fault_events);
        put_varint(&mut buf, self.stats.reconvergences);
        put_varint(&mut buf, self.stats.fault_blackholed);
        put_varint(&mut buf, self.stats.fault_window_ns);
        put_time(&mut buf, self.stats.stable_at);
        put_varint(&mut buf, self.data_delivered);
        put_varint(&mut buf, self.bytes_delivered);
        b.section(SEC_STATS, buf);

        // EVENTS: every pending event except fault strikes, as a flat
        // `(time, seq)`-sorted list. Net events carry the owning shard so
        // their packet refs decode against the right arena.
        let mut entries: Vec<(u64, u64, Vec<u8>)> = Vec::new();
        self.queue.for_each_pending(|t, seq, ev| {
            let mut body = Vec::new();
            match ev {
                Event::Fault { .. } => return,
                Event::Net(ne) => {
                    body.push(EV_NET);
                    let dst = net_dst(&self.plan, ne);
                    put_varint(&mut body, dst as u64);
                    put_net_event(&mut body, &self.arenas[dst as usize], ne);
                }
                Event::FlowArrival => body.push(EV_FLOW_ARRIVAL),
                Event::IncastEpoch => body.push(EV_INCAST_EPOCH),
                Event::MiceTick => body.push(EV_MICE_TICK),
                Event::TcpTimer { flow, gen } => {
                    body.push(EV_TCP_TIMER);
                    put_varint(&mut body, *flow as u64);
                    put_varint(&mut body, *gen);
                }
                Event::ShimTimer { flow, gen } => {
                    body.push(EV_SHIM_TIMER);
                    put_varint(&mut body, *flow as u64);
                    put_varint(&mut body, *gen);
                }
                Event::SampleQueues => body.push(EV_SAMPLE_QUEUES),
                Event::Reconverge { gen } => {
                    body.push(EV_RECONVERGE);
                    put_varint(&mut body, *gen);
                }
            }
            entries.push((t.as_nanos(), seq, body));
        });
        entries.sort();
        let mut buf = Vec::new();
        put_varint(&mut buf, entries.len() as u64);
        for (t, seq, body) in entries {
            put_varint(&mut buf, t);
            put_varint(&mut buf, seq);
            buf.extend_from_slice(&body);
        }
        b.section(SEC_EVENTS, buf);

        b.finish()
    }
}

impl World<NoopProbe> {
    /// Rebuild a runnable world from `snap`, structurally reconstructed
    /// from `cfg`. The config must describe the same experiment shape
    /// (topology, scheme, engine count, shard count, packet layout) and
    /// agree with the snapshot on the already-struck fault prefix; its
    /// not-yet-struck fault suffix may diverge freely (warm-started
    /// forks). Any mismatch or corruption surfaces as an error, never as
    /// a silently wrong simulation.
    pub fn restore(snap: &Snapshot, cfg: &ExperimentConfig) -> io::Result<World<NoopProbe>> {
        World::restore_probed(snap, cfg, NoopProbe)
    }
}

impl<P: Probe> World<P> {
    /// [`restore`](World::restore), generic over the telemetry probe: the
    /// decode layer is probe-agnostic, so a restored world can carry a
    /// recording probe — rewind-replay restores a ring snapshot with a
    /// `FlightRecorder` attached and re-runs the window to the anomaly.
    pub fn restore_probed(
        snap: &Snapshot,
        cfg: &ExperimentConfig,
        probe: P,
    ) -> io::Result<World<P>> {
        if snap.fat_layout() != cfg!(feature = "fat-events") {
            return Err(invalid("snapshot packet layout differs from this build"));
        }
        let mut w = World::build(cfg.clone(), probe, NoopAudit);

        // META: engine identity must match the rebuilt world.
        let mut d = section(snap, SEC_META)?;
        if d.varint()? != w.plan.num_shards as u64 {
            return Err(invalid("snapshot shard count differs from config"));
        }
        if d.varint()? != w.switches.len() as u64 {
            return Err(invalid("snapshot switch count differs from config"));
        }
        if d.varint()? != w.nics.len() as u64 {
            return Err(invalid("snapshot host count differs from config"));
        }
        if d.varint()? != w.cfg.engines as u64 {
            return Err(invalid("snapshot engine count differs from config"));
        }
        let now = get_time(&mut d)?;
        let next_seq = d.varint()?;
        let popped = d.varint()?;
        done(&d)?;

        // FAULTS: check the applied prefix against this config's
        // timeline, then replay it — injector crash state, link state and
        // (at the k1 boundary) the routing recompute all land exactly
        // where the saved run left them.
        let mut d = section(snap, SEC_FAULTS)?;
        let k2 = d.varint()? as usize;
        let k1 = d.varint()? as usize;
        if k1 > k2 || k2 > w.faults.len() {
            return Err(invalid("applied fault prefix exceeds the config timeline"));
        }
        let reconv_gen = d.varint()?;
        let window_open_at = if get_bool(&mut d)? {
            Some(get_time(&mut d)?)
        } else {
            None
        };
        let blackhole_mark = d.varint()?;
        let n_windows = d.varint_usize()?;
        let mut fault_windows = Vec::new();
        for _ in 0..n_windows {
            let a = get_time(&mut d)?;
            let z = get_time(&mut d)?;
            fault_windows.push((a, z));
        }
        for i in 0..k2 {
            let at = get_time(&mut d)?;
            let kind = get_fault_kind(&mut d)?;
            let delay = get_time(&mut d)?;
            if (at, kind, delay) != w.faults[i] {
                return Err(invalid("fault timeline prefix diverges from snapshot"));
            }
        }
        done(&d)?;
        for i in 0..k1 {
            let kind = w.faults[i].1;
            w.injector.apply(&mut w.topo, kind);
        }
        if k1 > 0 {
            // The saved routing state was computed (at the last
            // reconvergence) against the first k1 faults. Routes are a
            // pure function of the topology, so one recompute at the
            // boundary reproduces any number of intermediate passes.
            w.routes = RouteTable::compute(&w.topo);
            if w.cfg.scheme.wants_symmetric_groups() && w.cfg.asymmetry_handling {
                // The installed groups are a pure function of (topo,
                // routes) — engine memo warmth never changes the output —
                // so a cold engine here reproduces the live run's tables.
                if w.cfg.eager_control_plane {
                    install_symmetric_groups_eager(&w.topo, &mut w.routes);
                } else {
                    w.symmetry.install(&w.topo, &mut w.routes);
                }
            }
            if matches!(w.cfg.scheme, Scheme::Wcmp) {
                for i in 0..w.switches.len() {
                    let id = SwitchId(i as u32);
                    let p = w
                        .cfg
                        .scheme
                        .make_switch_policy(&w.topo, &w.routes, id, w.cfg.engines);
                    // Fresh build: nothing queued, so no free_queued pass.
                    w.switches[i] = rebuild_switch(&w.topo, &w.switches[i], p, &w.cfg);
                }
            }
            if matches!(w.cfg.scheme, Scheme::Presto { .. }) {
                for h in 0..w.host_policies.len() {
                    w.host_policies[h] =
                        w.cfg
                            .scheme
                            .make_host_policy(&w.topo, &w.routes, HostId(h as u32));
                }
            }
        }
        for i in k1..k2 {
            let kind = w.faults[i].1;
            w.injector.apply(&mut w.topo, kind);
        }
        w.sync_switch_link_state();
        w.faults_applied = k2 as u64;
        w.faults_applied_at_reconv = k1 as u64;
        w.reconv_gen = reconv_gen;
        w.window_open_at = window_open_at;
        w.blackhole_mark = blackhole_mark;
        w.fault_windows = fault_windows;

        // ARENAS.
        let mut d = section(snap, SEC_ARENAS)?;
        if d.varint()? != w.plan.num_shards as u64 {
            return Err(invalid("arena count differs from shard plan"));
        }
        let mut recorded_live = 0usize;
        let mut arenas = Vec::new();
        for _ in 0..w.plan.num_shards {
            let (a, live) = PacketArena::load_state(&mut d)?;
            recorded_live += live;
            arenas.push(a);
        }
        done(&d)?;
        w.arenas = arenas;

        // SWITCHES.
        let mut d = section(snap, SEC_SWITCHES)?;
        if d.varint()? != w.switches.len() as u64 {
            return Err(invalid("switch count mismatch"));
        }
        for i in 0..w.switches.len() {
            let k = w.plan.switch_shard[i] as usize;
            w.switches[i].load_state(&mut w.arenas[k], &mut d)?;
        }
        done(&d)?;

        // NICS.
        let mut d = section(snap, SEC_NICS)?;
        if d.varint()? != w.nics.len() as u64 {
            return Err(invalid("host count mismatch"));
        }
        for h in 0..w.nics.len() {
            let k = w.plan.host_shard[h] as usize;
            w.nics[h].load_state(&mut w.arenas[k], &mut d)?;
        }
        done(&d)?;

        // HOST POLICIES.
        let mut d = section(snap, SEC_HOST_POLICIES)?;
        if d.varint()? != w.host_policies.len() as u64 {
            return Err(invalid("host policy count mismatch"));
        }
        for p in w.host_policies.iter_mut() {
            p.load_state(&mut d)?;
        }
        done(&d)?;

        // FLOWS.
        let mut d = section(snap, SEC_FLOWS)?;
        let n_flows = d.varint_usize()?;
        for _ in 0..n_flows {
            let f = TcpFlow::load_state(&mut d, w.cfg.tcp)?;
            let class = match d.u8()? {
                0 => FlowClass::Background,
                1 => FlowClass::Incast,
                2 => FlowClass::Mice,
                3 => FlowClass::Elephant,
                _ => return Err(invalid("unknown flow class")),
            };
            let measured = get_bool(&mut d)?;
            let shim = if get_bool(&mut d)? {
                if !w.shim_enabled {
                    return Err(invalid("shim state for a shim-less scheme"));
                }
                let (threshold, timeout) = w.cfg.scheme.shim_params();
                let mut s = ShimBuffer::with_threshold(timeout, threshold);
                let k = w.plan.host_shard[f.dst.index()] as usize;
                s.load_state(&mut w.arenas[k], &mut d)?;
                Some(s)
            } else {
                None
            };
            let sched_gen = d.varint()?;
            w.flows.push(f);
            w.classes.push(class);
            w.measured.push(measured);
            w.shims.push(shim);
            w.sched_gen.push(sched_gen);
        }
        done(&d)?;

        // WORKLOAD. The RNG streams overwrite the post-build state (build
        // consumed workload randomness binding patterns — identical
        // consumption to the saved run's own build, but the snapshot's
        // word is authoritative either way).
        let mut d = section(snap, SEC_WORKLOAD)?;
        let mut s = [0u64; 4];
        for w_ in s.iter_mut() {
            *w_ = d.u64_fixed()?;
        }
        w.rng_net = SimRng::from_state(s);
        for w_ in s.iter_mut() {
            *w_ = d.u64_fixed()?;
        }
        w.rng_wl = SimRng::from_state(s);
        w.pkt_ids = d.varint()?;
        w.pending_flow = if get_bool(&mut d)? {
            Some(drill_workload::FlowSpec {
                gap: get_time(&mut d)?,
                src: d.varint_u32()?,
                dst: d.varint_u32()?,
                bytes: d.varint()?,
            })
        } else {
            None
        };
        let has_gen = get_bool(&mut d)?;
        if has_gen != w.gen.is_some() {
            return Err(invalid("workload generator presence mismatch"));
        }
        if let Some(g) = w.gen.as_mut() {
            g.pattern_mut().load_cursors(&mut d)?;
        }
        let has_synth = get_bool(&mut d)?;
        if has_synth != w.synth_pattern.is_some() {
            return Err(invalid("synthetic pattern presence mismatch"));
        }
        if let Some(p) = w.synth_pattern.as_mut() {
            p.load_cursors(&mut d)?;
        }
        done(&d)?;

        // STATS.
        let mut d = section(snap, SEC_STATS)?;
        w.stats.flows_started = d.varint()?;
        let n = d.varint()?;
        let mean = d.f64_fixed()?;
        let m2 = d.f64_fixed()?;
        let min = d.f64_fixed()?;
        let max = d.f64_fixed()?;
        w.stats.queue_stdv = Moments::from_state(n, mean, m2, min, max);
        w.stats.fault_events = d.varint()?;
        w.stats.reconvergences = d.varint()?;
        w.stats.fault_blackholed = d.varint()?;
        w.stats.fault_window_ns = d.varint()?;
        w.stats.stable_at = get_time(&mut d)?;
        w.data_delivered = d.varint()?;
        w.bytes_delivered = d.varint()?;
        done(&d)?;

        // EVENTS: position the fresh engine at the saved clock first, then
        // re-insert every pending entry with its recorded sequence, then
        // re-inject the not-yet-struck fault suffix from *this* config's
        // timeline with the same band stamps a cold run would use.
        w.queue.restore_clock(now, next_seq, popped);
        let mut d = section(snap, SEC_EVENTS)?;
        let n_events = d.varint_usize()?;
        for _ in 0..n_events {
            let at = get_time(&mut d)?;
            let seq = d.varint()?;
            if at < now {
                return Err(invalid("pending event precedes the restored clock"));
            }
            match d.u8()? {
                EV_NET => {
                    let dst = d.varint_u32()?;
                    if dst >= w.plan.num_shards {
                        return Err(invalid("net event names a shard outside the plan"));
                    }
                    let ne = get_net_event(&mut d, &mut w.arenas[dst as usize])?;
                    if net_dst(&w.plan, &ne) != dst {
                        return Err(invalid("net event owner disagrees with shard plan"));
                    }
                    w.queue.restore_net(at, seq, dst, Event::Net(ne));
                }
                EV_FLOW_ARRIVAL => w.queue.push_control_stamped(at, seq, Event::FlowArrival),
                EV_INCAST_EPOCH => w.queue.push_control_stamped(at, seq, Event::IncastEpoch),
                EV_MICE_TICK => w.queue.push_control_stamped(at, seq, Event::MiceTick),
                EV_TCP_TIMER => {
                    let flow = d.varint_u32()?;
                    let gen = d.varint()?;
                    if flow as usize >= w.flows.len() {
                        return Err(invalid("timer names an unknown flow"));
                    }
                    w.queue
                        .push_control_stamped(at, seq, Event::TcpTimer { flow, gen });
                }
                EV_SHIM_TIMER => {
                    let flow = d.varint_u32()?;
                    let gen = d.varint()?;
                    if flow as usize >= w.flows.len() {
                        return Err(invalid("timer names an unknown flow"));
                    }
                    w.queue
                        .push_control_stamped(at, seq, Event::ShimTimer { flow, gen });
                }
                EV_SAMPLE_QUEUES => w.queue.push_control_stamped(at, seq, Event::SampleQueues),
                EV_RECONVERGE => {
                    let gen = d.varint()?;
                    w.queue
                        .push_control_stamped(at, seq, Event::Reconverge { gen });
                }
                _ => return Err(invalid("unknown pending event tag")),
            }
        }
        done(&d)?;
        let deadline = w.cfg.duration + w.cfg.drain;
        for (idx, &(at, _, _)) in w.faults.iter().enumerate().skip(k2) {
            if at < now {
                // A divergent fork timeline may only diverge *after* the
                // snapshot point; an unapplied strike in the past cannot
                // be replayed faithfully.
                return Err(invalid("not-yet-struck fault precedes the restored clock"));
            }
            if at <= deadline {
                w.queue.push_control_stamped(
                    at,
                    FAULT_SEQ_BASE + idx as u64,
                    Event::Fault { idx: idx as u32 },
                );
            }
        }

        // Leak check: every packet recorded live must have found exactly
        // one holder (arena slots in the slim layout; switch/NIC/shim/event
        // decode re-insertions in the fat layout).
        let live: usize = w.arenas.iter().map(|a| a.live()).sum();
        if live != recorded_live {
            return Err(invalid("restored packet count disagrees with snapshot"));
        }
        Ok(w)
    }
}
