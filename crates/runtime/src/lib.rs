//! Experiment runtime: glues the substrate crates into runnable
//! simulations.
//!
//! * [`Scheme`] — every load balancer evaluated in the paper, by name.
//! * [`TopoSpec`] — every topology evaluated in the paper, by name.
//! * [`ExperimentConfig`] — one simulation run: topology + scheme + load +
//!   workload + failures + switch/TCP knobs.
//! * [`run`] — execute one configuration deterministically; returns
//!   [`RunStats`] with every metric a paper figure needs (FCT
//!   distributions, queue-length STDV, per-hop queueing/loss, duplicate
//!   ACK histogram, GRO batches, elephant throughput).
//! * [`run_many`] — a parallel sweep helper (one OS thread per run).

#![warn(missing_docs)]

mod config;
mod scheme;
mod stats;
mod sweep;
mod world;

pub use config::{ExperimentConfig, SyntheticMode, TopoSpec, WorkloadSpec};
pub use scheme::Scheme;
pub use stats::{hop_index, hop_name, HopReport, RunStats};
pub use sweep::run_many;
pub use world::{random_leaf_spine_failures, run};
