//! Experiment runtime: glues the substrate crates into runnable
//! simulations.
//!
//! * [`Scheme`] — every load balancer evaluated in the paper, by name.
//! * [`TopoSpec`] — every topology evaluated in the paper, by name.
//! * [`ExperimentConfig`] — one simulation run: topology + scheme + load +
//!   workload + failures + switch/TCP knobs.
//! * [`run`] — execute one configuration deterministically; returns
//!   [`RunStats`] with every metric a paper figure needs (FCT
//!   distributions, queue-length STDV, per-hop queueing/loss, duplicate
//!   ACK histogram, GRO batches, elephant throughput).
//! * [`SweepSpec`] — a declarative sweep grid (scheme × load × engines ×
//!   variant × seed replication) executed in parallel on the
//!   `drill-exec` pool with results bit-identical to a serial replay;
//!   [`SweepResults`] gives ordered per-cell access and cross-seed
//!   aggregation via [`RunStats::merge`].
//! * [`run_many`] — parallel execution of a free-form config list.
//! * [`run_recorded`] / [`run_probed`] — the same run with the
//!   `drill-telemetry` flight recorder + queue sampler (or any custom
//!   [`Probe`](drill_telemetry::Probe)) attached; probes observe but never
//!   steer, so every metric is bit-identical with telemetry on or off.
//! * [`run_audited`] / [`run_with`] — the same run with the `drill-audit`
//!   invariant watchdogs (packet conservation, stuck flows, queue
//!   ceilings, time monotonicity, handoff fingerprints) evaluated at
//!   event-count boundaries; audits observe but never steer, and a trip
//!   dumps the snapshot ring for `tracedump --replay-from`.

#![warn(missing_docs)]

mod config;
mod scheme;
mod shards;
mod stats;
mod sweep;
mod world;

pub use config::{
    AuditSpec, CheckpointPolicy, CheckpointSpec, ExperimentConfig, ShardSpec, SyntheticMode,
    TelemetrySpec, TopoSpec, WorkloadSpec,
};
pub use drill_snapshot::Snapshot;
pub use scheme::Scheme;
pub use stats::{hop_index, hop_name, HopReport, RunStats};
pub use sweep::{derive_seed, run_many, SweepPoint, SweepResults, SweepSpec};
pub use world::{
    random_leaf_spine_failures, run, run_audited, run_probed, run_recorded, run_with, Telemetry,
    World,
};
