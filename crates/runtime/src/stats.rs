//! Run-level metrics.

use drill_net::HopClass;
use drill_sim::Time;
use drill_stats::{Distribution, Histogram, Moments};

/// Per-hop aggregates: the paper's Hop 1 (leaf up), Hop 2 (top-stage
/// down), Hop 3 (leaf to host) — plus the host uplink and (in 3-stage
/// fabrics) the agg hops.
#[derive(Clone, Debug, Default)]
pub struct HopReport {
    /// Sum of queueing waits in ns, per hop class.
    pub wait_ns: [u64; 6],
    /// Number of wait samples, per hop class.
    pub wait_samples: [u64; 6],
    /// Packets dropped, per hop class.
    pub drops: [u64; 6],
    /// Packets transmitted, per hop class.
    pub tx: [u64; 6],
}

/// Index of a hop class in the report arrays.
pub fn hop_index(h: HopClass) -> usize {
    match h {
        HopClass::HostUp => 0,
        HopClass::LeafUp => 1,
        HopClass::AggUp => 2,
        HopClass::SpineDown => 3,
        HopClass::AggDown => 4,
        HopClass::ToHost => 5,
    }
}

/// Human name for a hop-class index.
pub fn hop_name(i: usize) -> &'static str {
    [
        "host-up",
        "hop1 leaf-up",
        "agg-up",
        "hop2 spine-down",
        "agg-down",
        "hop3 to-host",
    ][i]
}

impl HopReport {
    /// Mean queueing wait at a hop class, microseconds.
    pub fn mean_wait_us(&self, h: HopClass) -> f64 {
        let i = hop_index(h);
        if self.wait_samples[i] == 0 {
            0.0
        } else {
            self.wait_ns[i] as f64 / self.wait_samples[i] as f64 / 1000.0
        }
    }

    /// Loss rate at a hop class (drops / offered).
    pub fn loss_rate(&self, h: HopClass) -> f64 {
        let i = hop_index(h);
        let offered = self.drops[i] + self.tx[i];
        if offered == 0 {
            0.0
        } else {
            self.drops[i] as f64 / offered as f64
        }
    }
}

/// Everything measured in one run.
#[derive(Debug)]
pub struct RunStats {
    /// Scheme display name.
    pub scheme: String,
    /// FCTs of completed background + incast flows, in milliseconds.
    pub fct_ms: Distribution,
    /// FCTs of incast flows only.
    pub fct_incast_ms: Distribution,
    /// FCTs of mice flows only (Table 1).
    pub fct_mice_ms: Distribution,
    /// Per-elephant goodput in Gbps (Table 1).
    pub elephant_gbps: Distribution,
    /// Per-flow duplicate-ACK counts (Figure 11a).
    pub dupacks: Histogram,
    /// Per-flow counts of true path inversions (loss-independent).
    pub reorders: Histogram,
    /// Flows started (measured window).
    pub flows_started: u64,
    /// Flows completed (measured window).
    pub flows_completed: u64,
    /// Mean-over-time of the queue-length STDV metric (§3.2.3), packets.
    pub queue_stdv: Moments,
    /// Per-hop queueing and loss.
    pub hops: HopReport,
    /// Total GRO batches formed at receivers.
    pub gro_batches: u64,
    /// Data packets delivered to receivers (GRO normalization).
    pub data_pkts_delivered: u64,
    /// TCP retransmissions.
    pub retransmissions: u64,
    /// TCP timeouts.
    pub timeouts: u64,
    /// Packets dropped with no route / dead egress.
    pub blackholed: u64,
    /// Packets dropped at host NICs.
    pub nic_drops: u64,
    /// Events processed.
    pub events: u64,
    /// Final simulated time.
    pub sim_end: Time,
}

impl RunStats {
    /// An empty stats block for `scheme`.
    pub fn new(scheme: String) -> RunStats {
        RunStats {
            scheme,
            fct_ms: Distribution::new(),
            fct_incast_ms: Distribution::new(),
            fct_mice_ms: Distribution::new(),
            elephant_gbps: Distribution::new(),
            dupacks: Histogram::new(16),
            reorders: Histogram::new(16),
            flows_started: 0,
            flows_completed: 0,
            queue_stdv: Moments::new(),
            hops: HopReport::default(),
            gro_batches: 0,
            data_pkts_delivered: 0,
            retransmissions: 0,
            timeouts: 0,
            blackholed: 0,
            nic_drops: 0,
            events: 0,
            sim_end: Time::ZERO,
        }
    }

    /// Mean FCT in ms.
    pub fn mean_fct_ms(&self) -> f64 {
        self.fct_ms.mean()
    }

    /// The `p`-th percentile FCT in ms.
    pub fn fct_percentile_ms(&mut self, p: f64) -> f64 {
        self.fct_ms.percentile(p)
    }

    /// Fraction of started flows that completed in time.
    pub fn completion_rate(&self) -> f64 {
        if self.flows_started == 0 {
            1.0
        } else {
            self.flows_completed as f64 / self.flows_started as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_report_math() {
        let mut h = HopReport::default();
        let i = hop_index(HopClass::LeafUp);
        h.wait_ns[i] = 30_000;
        h.wait_samples[i] = 3;
        h.drops[i] = 5;
        h.tx[i] = 95;
        assert!((h.mean_wait_us(HopClass::LeafUp) - 10.0).abs() < 1e-12);
        assert!((h.loss_rate(HopClass::LeafUp) - 0.05).abs() < 1e-12);
        assert_eq!(h.mean_wait_us(HopClass::ToHost), 0.0);
        assert_eq!(h.loss_rate(HopClass::ToHost), 0.0);
    }

    #[test]
    fn hop_indices_are_distinct() {
        let all = [
            HopClass::HostUp,
            HopClass::LeafUp,
            HopClass::AggUp,
            HopClass::SpineDown,
            HopClass::AggDown,
            HopClass::ToHost,
        ];
        let mut seen: Vec<usize> = all.iter().map(|&h| hop_index(h)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6);
        for i in 0..6 {
            assert!(!hop_name(i).is_empty());
        }
    }

    #[test]
    fn completion_rate_empty_is_one() {
        let s = RunStats::new("x".into());
        assert_eq!(s.completion_rate(), 1.0);
    }
}
