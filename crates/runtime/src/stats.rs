//! Run-level metrics.

use drill_net::HopClass;
use drill_sim::Time;
use drill_stats::{Distribution, Histogram, Moments};

/// Per-hop aggregates: the paper's Hop 1 (leaf up), Hop 2 (top-stage
/// down), Hop 3 (leaf to host) — plus the host uplink and (in 3-stage
/// fabrics) the agg hops.
#[derive(Clone, Debug, Default)]
pub struct HopReport {
    /// Sum of queueing waits in ns, per hop class.
    pub wait_ns: [u64; 6],
    /// Number of wait samples, per hop class.
    pub wait_samples: [u64; 6],
    /// Packets dropped, per hop class.
    pub drops: [u64; 6],
    /// Packets transmitted, per hop class.
    pub tx: [u64; 6],
}

/// Index of a hop class in the report arrays.
pub fn hop_index(h: HopClass) -> usize {
    match h {
        HopClass::HostUp => 0,
        HopClass::LeafUp => 1,
        HopClass::AggUp => 2,
        HopClass::SpineDown => 3,
        HopClass::AggDown => 4,
        HopClass::ToHost => 5,
    }
}

/// Human name for a hop-class index.
pub fn hop_name(i: usize) -> &'static str {
    [
        "host-up",
        "hop1 leaf-up",
        "agg-up",
        "hop2 spine-down",
        "agg-down",
        "hop3 to-host",
    ][i]
}

impl HopReport {
    /// Mean queueing wait at a hop class, microseconds.
    pub fn mean_wait_us(&self, h: HopClass) -> f64 {
        let i = hop_index(h);
        if self.wait_samples[i] == 0 {
            0.0
        } else {
            self.wait_ns[i] as f64 / self.wait_samples[i] as f64 / 1000.0
        }
    }

    /// Loss rate at a hop class (drops / offered).
    pub fn loss_rate(&self, h: HopClass) -> f64 {
        let i = hop_index(h);
        let offered = self.drops[i] + self.tx[i];
        if offered == 0 {
            0.0
        } else {
            self.drops[i] as f64 / offered as f64
        }
    }

    /// Accumulate another report (parallel/cross-seed reduction).
    pub fn merge(&mut self, other: &HopReport) {
        for i in 0..self.wait_ns.len() {
            self.wait_ns[i] += other.wait_ns[i];
            self.wait_samples[i] += other.wait_samples[i];
            self.drops[i] += other.drops[i];
            self.tx[i] += other.tx[i];
        }
    }
}

/// Everything measured in one run (or, after [`RunStats::merge`], in a
/// group of runs — e.g. the seed replications of one sweep cell).
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Scheme display name.
    pub scheme: String,
    /// FCTs of completed background + incast flows, in milliseconds.
    pub fct_ms: Distribution,
    /// FCTs of incast flows only.
    pub fct_incast_ms: Distribution,
    /// FCTs of mice flows only (Table 1).
    pub fct_mice_ms: Distribution,
    /// Per-elephant goodput in Gbps (Table 1).
    pub elephant_gbps: Distribution,
    /// Per-flow duplicate-ACK counts (Figure 11a).
    pub dupacks: Histogram,
    /// Per-flow counts of true path inversions (loss-independent).
    pub reorders: Histogram,
    /// Flows started (measured window).
    pub flows_started: u64,
    /// Flows completed (measured window).
    pub flows_completed: u64,
    /// Mean-over-time of the queue-length STDV metric (§3.2.3), packets.
    pub queue_stdv: Moments,
    /// Per-hop queueing and loss.
    pub hops: HopReport,
    /// Total GRO batches formed at receivers.
    pub gro_batches: u64,
    /// Data packets delivered to receivers (GRO normalization).
    pub data_pkts_delivered: u64,
    /// Payload bytes delivered to receivers — the numerator of
    /// `scalebench`'s bytes/host throughput metric.
    pub bytes_delivered: u64,
    /// TCP retransmissions.
    pub retransmissions: u64,
    /// TCP timeouts.
    pub timeouts: u64,
    /// Packets dropped with no route / dead egress.
    pub blackholed: u64,
    /// Packets dropped at host NICs.
    pub nic_drops: u64,
    /// Chaos-engine faults applied (schedule events + legacy `fail_at`).
    pub fault_events: u64,
    /// Routing reconvergence passes executed. Faults whose detection
    /// windows overlap coalesce into one pass, so this can be lower than
    /// the number of reconvergence-worthy faults.
    pub reconvergences: u64,
    /// Packets blackholed inside fault windows (fault struck,
    /// reconvergence still pending) — the graceful-degradation loss.
    pub fault_blackholed: u64,
    /// Total simulated time spent inside fault windows, ns.
    pub fault_window_ns: u64,
    /// FCTs (ms) of measured flows whose lifetime overlapped a fault
    /// window — the degraded-service population.
    pub fct_fault_ms: Distribution,
    /// FCTs (ms) of measured flows untouched by any fault window.
    pub fct_clear_ms: Distribution,
    /// When routing last returned to stability after a fault
    /// (`Time::ZERO` when the run never reconverged).
    pub stable_at: Time,
    /// Events processed.
    pub events: u64,
    /// Final simulated time.
    pub sim_end: Time,
    /// Packets still interned in the arena when the run ended. Zero for
    /// fully drained runs; the golden suite asserts this as a leak check.
    pub arena_live_at_end: u64,
    /// Cross-shard packet handoffs exchanged at window barriers (zero on
    /// the serial engine). Deliberately *not* part of the determinism
    /// fingerprint: it varies with the shard count while every simulated
    /// metric stays bit-identical.
    pub shard_handoffs: u64,
    /// FNV-1a fingerprint of the barrier drain order `(src, dst, time,
    /// seq)` — the mailbox-ordering golden asserts it is a pure function
    /// of the event stream. `0` on the serial engine.
    pub shard_handoff_hash: u64,
    /// Lookahead windows the sharded engine advanced through (zero on
    /// the serial engine).
    pub shard_windows: u64,
    /// Invariant-watchdog anomaly reports recorded by an attached
    /// auditor (always zero with `NoopAudit`). Deliberately *not* part of
    /// the determinism fingerprint: the auditor observes, fingerprints
    /// pin simulated behavior.
    pub anomalies: u64,
}

impl RunStats {
    /// An empty stats block for `scheme`.
    pub fn new(scheme: String) -> RunStats {
        RunStats {
            scheme,
            fct_ms: Distribution::new(),
            fct_incast_ms: Distribution::new(),
            fct_mice_ms: Distribution::new(),
            elephant_gbps: Distribution::new(),
            dupacks: Histogram::new(16),
            reorders: Histogram::new(16),
            flows_started: 0,
            flows_completed: 0,
            queue_stdv: Moments::new(),
            hops: HopReport::default(),
            gro_batches: 0,
            data_pkts_delivered: 0,
            bytes_delivered: 0,
            retransmissions: 0,
            timeouts: 0,
            blackholed: 0,
            nic_drops: 0,
            fault_events: 0,
            reconvergences: 0,
            fault_blackholed: 0,
            fault_window_ns: 0,
            fct_fault_ms: Distribution::new(),
            fct_clear_ms: Distribution::new(),
            stable_at: Time::ZERO,
            events: 0,
            sim_end: Time::ZERO,
            arena_live_at_end: 0,
            shard_handoffs: 0,
            shard_handoff_hash: 0,
            shard_windows: 0,
            anomalies: 0,
        }
    }

    /// Mean FCT slowdown of flows that lived through a fault window
    /// relative to undisturbed flows (1.0 = no degradation; 0.0 when
    /// either population is empty).
    pub fn fault_fct_ratio(&self) -> f64 {
        if self.fct_fault_ms.count() == 0 || self.fct_clear_ms.count() == 0 {
            return 0.0;
        }
        let clear = self.fct_clear_ms.mean();
        if clear <= 0.0 {
            0.0
        } else {
            self.fct_fault_ms.mean() / clear
        }
    }

    /// Mean FCT in ms.
    pub fn mean_fct_ms(&self) -> f64 {
        self.fct_ms.mean()
    }

    /// The `p`-th percentile FCT in ms.
    pub fn fct_percentile_ms(&mut self, p: f64) -> f64 {
        self.fct_ms.percentile(p)
    }

    /// Fraction of started flows that completed in time.
    pub fn completion_rate(&self) -> f64 {
        if self.flows_started == 0 {
            1.0
        } else {
            self.flows_completed as f64 / self.flows_started as f64
        }
    }

    /// Fold another run's measurements into this one (cross-seed or
    /// cross-shard aggregation).
    ///
    /// Distributions merge through [`drill_stats::Distribution::merge`]:
    /// at figure scale both stores are still exact and concatenate, so
    /// merged quantiles remain exact order statistics; past
    /// [`drill_stats::EXACT_SPILL_LIMIT`] samples the merged store is a
    /// deterministic quantile sketch and quantiles become rank-bounded
    /// estimates (see `Distribution::rank_error_bound`). Either way the
    /// merge is a pure function of the operand states, so a fixed merge
    /// order reproduces bit-identical stores at any thread count.
    /// Everything else stays exact regardless of scale: histograms and
    /// per-hop tallies add, streaming moments combine with the standard
    /// Chan et al. update, counters (including `bytes_delivered`) sum,
    /// distribution counts/means/extrema are exact, and `sim_end` keeps
    /// the latest end time. The scheme name is kept from `self`; merging
    /// different schemes is a caller bug and panics.
    pub fn merge(&mut self, other: &RunStats) {
        assert_eq!(
            self.scheme, other.scheme,
            "merging RunStats of different schemes"
        );
        self.fct_ms.merge(&other.fct_ms);
        self.fct_incast_ms.merge(&other.fct_incast_ms);
        self.fct_mice_ms.merge(&other.fct_mice_ms);
        self.elephant_gbps.merge(&other.elephant_gbps);
        self.dupacks.merge(&other.dupacks);
        self.reorders.merge(&other.reorders);
        self.flows_started += other.flows_started;
        self.flows_completed += other.flows_completed;
        self.queue_stdv.merge(&other.queue_stdv);
        self.hops.merge(&other.hops);
        self.gro_batches += other.gro_batches;
        self.data_pkts_delivered += other.data_pkts_delivered;
        self.bytes_delivered += other.bytes_delivered;
        self.retransmissions += other.retransmissions;
        self.timeouts += other.timeouts;
        self.blackholed += other.blackholed;
        self.nic_drops += other.nic_drops;
        self.fault_events += other.fault_events;
        self.reconvergences += other.reconvergences;
        self.fault_blackholed += other.fault_blackholed;
        self.fault_window_ns += other.fault_window_ns;
        self.fct_fault_ms.merge(&other.fct_fault_ms);
        self.fct_clear_ms.merge(&other.fct_clear_ms);
        self.stable_at = self.stable_at.max(other.stable_at);
        self.events += other.events;
        self.sim_end = self.sim_end.max(other.sim_end);
        self.arena_live_at_end += other.arena_live_at_end;
        self.shard_handoffs += other.shard_handoffs;
        self.shard_handoff_hash = self
            .shard_handoff_hash
            .wrapping_add(other.shard_handoff_hash);
        self.shard_windows += other.shard_windows;
        self.anomalies += other.anomalies;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_report_math() {
        let mut h = HopReport::default();
        let i = hop_index(HopClass::LeafUp);
        h.wait_ns[i] = 30_000;
        h.wait_samples[i] = 3;
        h.drops[i] = 5;
        h.tx[i] = 95;
        assert!((h.mean_wait_us(HopClass::LeafUp) - 10.0).abs() < 1e-12);
        assert!((h.loss_rate(HopClass::LeafUp) - 0.05).abs() < 1e-12);
        assert_eq!(h.mean_wait_us(HopClass::ToHost), 0.0);
        assert_eq!(h.loss_rate(HopClass::ToHost), 0.0);
    }

    #[test]
    fn hop_indices_are_distinct() {
        let all = [
            HopClass::HostUp,
            HopClass::LeafUp,
            HopClass::AggUp,
            HopClass::SpineDown,
            HopClass::AggDown,
            HopClass::ToHost,
        ];
        let mut seen: Vec<usize> = all.iter().map(|&h| hop_index(h)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6);
        for i in 0..6 {
            assert!(!hop_name(i).is_empty());
        }
    }

    #[test]
    fn completion_rate_empty_is_one() {
        let s = RunStats::new("x".into());
        assert_eq!(s.completion_rate(), 1.0);
    }

    #[test]
    fn run_stats_merge_accumulates_everything() {
        let mut a = RunStats::new("x".into());
        a.fct_ms.add(1.0);
        a.fct_ms.add(3.0);
        a.dupacks.add(0);
        a.queue_stdv.add(2.0);
        a.hops.tx[1] = 10;
        a.flows_started = 5;
        a.events = 100;
        a.sim_end = Time::from_millis(3);
        a.fault_events = 2;
        a.fault_window_ns = 500;
        a.fct_fault_ms.add(8.0);
        a.stable_at = Time::from_millis(2);
        let mut b = RunStats::new("x".into());
        b.fct_ms.add(2.0);
        b.dupacks.add(2);
        b.queue_stdv.add(4.0);
        b.hops.tx[1] = 7;
        b.hops.drops[1] = 3;
        b.flows_started = 2;
        b.events = 50;
        b.sim_end = Time::from_millis(9);
        b.fault_events = 1;
        b.reconvergences = 1;
        b.fault_blackholed = 4;
        b.fault_window_ns = 250;
        b.fct_clear_ms.add(2.0);
        b.stable_at = Time::from_millis(1);
        a.merge(&b);
        assert_eq!(a.fct_ms.count(), 3);
        assert!((a.fct_ms.mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.dupacks.total(), 2);
        assert_eq!(a.queue_stdv.count(), 2);
        assert!((a.queue_stdv.mean() - 3.0).abs() < 1e-12);
        assert_eq!(a.hops.tx[1], 17);
        assert_eq!(a.hops.drops[1], 3);
        assert_eq!(a.flows_started, 7);
        assert_eq!(a.events, 150);
        assert_eq!(a.sim_end, Time::from_millis(9));
        assert_eq!(a.fault_events, 3);
        assert_eq!(a.reconvergences, 1);
        assert_eq!(a.fault_blackholed, 4);
        assert_eq!(a.fault_window_ns, 750);
        assert_eq!(a.fct_fault_ms.count(), 1);
        assert_eq!(a.fct_clear_ms.count(), 1);
        assert_eq!(a.stable_at, Time::from_millis(2));
        assert!((a.fault_fct_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fault_fct_ratio_handles_empty_populations() {
        let mut s = RunStats::new("x".into());
        assert_eq!(s.fault_fct_ratio(), 0.0);
        s.fct_fault_ms.add(5.0);
        assert_eq!(s.fault_fct_ratio(), 0.0, "no clear flows yet");
        s.fct_clear_ms.add(2.5);
        assert!((s.fault_fct_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different schemes")]
    fn run_stats_merge_rejects_mixed_schemes() {
        let mut a = RunStats::new("ECMP".into());
        a.merge(&RunStats::new("DRILL(2,1)".into()));
    }
}
