//! The sharded event engine: one timing wheel per fabric shard, advanced
//! in conservative lookahead windows and merged deterministically.
//!
//! # The lookahead contract
//!
//! A [`ShardPlan`](drill_net::ShardPlan) splits the fabric so that every
//! cross-shard link has propagation delay ≥ `lookahead`. The engine
//! advances all shards through a window `[W, W + lookahead)` and only
//! exchanges cross-shard handoffs at the window barrier: an event emitted
//! at `now < W + lookahead` toward another shard is timestamped
//! `now + prop ≥ W + lookahead`, so deferring it to the barrier can never
//! starve the destination shard of an event it should have seen inside
//! the window. Handoffs travel through per-`(src, dst)` mailboxes that
//! the barrier drains in a fixed `(src, dst)`-major order.
//!
//! # Bit-identical merge
//!
//! Determinism goldens must replay identically at *any* shard count. The
//! engine guarantees this by stamping one **global** FIFO sequence across
//! every wheel at logical emit time (`push_*` consumes sequence numbers
//! in exactly the order a single serial wheel would) and popping the
//! wheel whose [`peek_key`](drill_sim::EventQueue::peek_key) is the
//! minimum `(time, seq)`. The merged pop order is therefore *equal* to
//! the serial order, windows and mailboxes included — the sharded
//! structure changes where events wait, never when they fire. The flip
//! side is that the merge itself is sequential; executing whole windows
//! concurrently additionally requires per-shard RNG streams and
//! flow-state ownership, which today's simulation shares globally (see
//! DESIGN.md §11 for what gates that step).

use drill_exec::inner_budget;
use drill_net::ShardPlan;
use drill_sim::{EventQueue, Time};

/// FNV-1a 64-bit offset/prime for the handoff-order fingerprint.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Minimum number of handoffs at one barrier before draining them on
/// scoped worker threads pays for the spawns (destinations are
/// independent wheels, so the parallel drain is trivially deterministic).
const PAR_DRAIN_MIN: usize = 512;

/// One mailbox: cross-shard events waiting for the next barrier, each
/// carrying its global sequence stamp.
type Mailbox<P> = Vec<(Time, u64, P)>;

/// The event queue behind [`World`](crate::world): the byte-identical
/// serial wheel, or the sharded windowed engine.
// One EngineQueue exists per World, and the serial wheel is the hot
// path — boxing `Serial` to shrink the enum would put a pointer deref
// on every serial push/pop for no aggregate memory win.
#[allow(clippy::large_enum_variant)]
pub(crate) enum EngineQueue<P> {
    /// The pre-sharding path: one wheel, internal sequence stamping.
    /// `DRILL_SHARDS=1` resolves here, so it *is* today's serial run.
    Serial(EventQueue<P>),
    /// Per-shard wheels + control wheel + mailboxes.
    Sharded(Box<Sharded<P>>),
}

impl<P: Send> EngineQueue<P> {
    pub fn serial() -> EngineQueue<P> {
        EngineQueue::Serial(EventQueue::new())
    }

    pub fn sharded(plan: &ShardPlan) -> EngineQueue<P> {
        EngineQueue::Sharded(Box::new(Sharded::new(plan)))
    }

    /// Schedule a world-level event (arrivals, timers, faults, sampling):
    /// owned by the driver, not by any fabric shard.
    #[inline]
    pub fn push_control(&mut self, at: Time, ev: P) {
        match self {
            EngineQueue::Serial(q) => q.push(at, ev),
            EngineQueue::Sharded(s) => s.push_control(at, ev),
        }
    }

    /// Schedule a network event owned by shard `dst`, emitted while
    /// dispatching in shard `src`. Same-shard (and serial) pushes go
    /// straight into the owner's wheel; cross-shard pushes enter the
    /// `(src, dst)` mailbox until the next window barrier.
    #[inline]
    pub fn push_shard(&mut self, at: Time, dst: u32, src: u32, ev: P) {
        match self {
            EngineQueue::Serial(q) => q.push(at, ev),
            EngineQueue::Sharded(s) => s.push_shard(at, dst, src, ev),
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<(Time, P)> {
        match self {
            EngineQueue::Serial(q) => q.pop(),
            EngineQueue::Sharded(s) => s.pop(),
        }
    }

    /// The timestamp of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Time {
        match self {
            EngineQueue::Serial(q) => q.now(),
            EngineQueue::Sharded(s) => s.now,
        }
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        match self {
            EngineQueue::Serial(q) => q.events_processed(),
            EngineQueue::Sharded(s) => s.popped,
        }
    }

    /// The next global FIFO sequence number — recorded by snapshots so a
    /// restored engine keeps stamping exactly where the saved one left
    /// off.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        match self {
            EngineQueue::Serial(q) => q.next_seq(),
            EngineQueue::Sharded(s) => s.seq,
        }
    }

    /// Schedule a control event carrying a caller-supplied sequence
    /// number *without* consuming a global sequence (see
    /// [`drill_sim::EventQueue::push_stamped`]): fault injections are
    /// stamped from a reserved band so divergent fault schedules can be
    /// re-injected at restore without perturbing any other event's seq.
    #[inline]
    pub fn push_control_stamped(&mut self, at: Time, seq: u64, ev: P) {
        match self {
            EngineQueue::Serial(q) => q.push_stamped(at, seq, ev),
            EngineQueue::Sharded(s) => {
                let control = s.num_shards;
                s.wheels[control].push_stamped(at, seq, ev);
            }
        }
    }

    /// Visit every pending event as `(time, seq, &event)`, in arbitrary
    /// order. Mailboxed cross-shard handoffs are included — where an event
    /// *waits* is engine topology, not simulation state, so the snapshot
    /// layer records a flat `(time, seq)`-sorted list that restores into
    /// any engine shape.
    pub fn for_each_pending<F: FnMut(Time, u64, &P)>(&self, mut f: F) {
        match self {
            EngineQueue::Serial(q) => q.for_each_pending(&mut f),
            EngineQueue::Sharded(s) => {
                for w in &s.wheels {
                    w.for_each_pending(&mut f);
                }
                for mb in &s.mailboxes {
                    for (t, seq, ev) in mb {
                        f(*t, *seq, ev);
                    }
                }
            }
        }
    }

    /// Re-insert a pending network event owned by shard `dst` during
    /// restore, preserving its recorded global sequence. Goes straight
    /// into the owner's wheel — never a mailbox — which is safe because
    /// restore precedes the first window barrier (`window_end` is zero).
    #[inline]
    pub fn restore_net(&mut self, at: Time, seq: u64, dst: u32, ev: P) {
        match self {
            EngineQueue::Serial(q) => q.push_stamped(at, seq, ev),
            EngineQueue::Sharded(s) => s.wheels[dst as usize].push_stamped(at, seq, ev),
        }
    }

    /// Position a **fresh** engine at a restored clock: simulation time
    /// `now`, next global sequence `seq`, and `popped` delivered events.
    /// Must run before any `restore_net`/`push_control_stamped` calls.
    ///
    /// Every pending event restored afterwards carries `time >= now` (pop
    /// order is globally `(time, seq)`-sorted, so nothing earlier than
    /// the last popped instant can still be pending), which makes the
    /// per-wheel cursor jump safe on the sharded engine too. Window and
    /// handoff statistics restart from zero: they describe engine
    /// mechanics, not simulation state, and are excluded from determinism
    /// fingerprints.
    pub fn restore_clock(&mut self, now: Time, seq: u64, popped: u64) {
        match self {
            EngineQueue::Serial(q) => q.restore_clock(now, seq, popped),
            EngineQueue::Sharded(s) => {
                for w in &mut s.wheels {
                    w.restore_clock(now, 0, 0);
                }
                s.now = now;
                s.seq = seq;
                s.popped = popped;
                s.window_end = 0;
            }
        }
    }

    /// Timestamp of the next pending event anywhere — wheels *and*
    /// mailboxes (a mailboxed handoff can precede every wheel-resident
    /// event) — without delivering it. Drives the at-time checkpoint
    /// trigger: snapshot when the next event would cross the target.
    pub fn peek_time(&mut self) -> Option<Time> {
        match self {
            EngineQueue::Serial(q) => q.peek_time(),
            EngineQueue::Sharded(s) => {
                let mut best = s.min_key().map(|(t, _, _)| t);
                for mb in &s.mailboxes {
                    for &(t, _, _) in mb {
                        if best.is_none_or(|b| t < b) {
                            best = Some(t);
                        }
                    }
                }
                best
            }
        }
    }

    /// Record a fault strike against its owning shard (no-op when
    /// serial); faults are control events, but attributing them keeps the
    /// per-shard accounting honest and testable.
    #[inline]
    pub fn note_fault(&mut self, shard: u32) {
        if let EngineQueue::Sharded(s) = self {
            s.fault_strikes[shard as usize] += 1;
        }
    }

    /// `(handoffs, handoff order hash, windows)` for the run's stats;
    /// zeros when serial.
    pub fn shard_stats(&self) -> (u64, u64, u64) {
        match self {
            EngineQueue::Serial(_) => (0, 0, 0),
            EngineQueue::Sharded(s) => (s.handoffs, s.handoff_hash, s.windows),
        }
    }
}

/// The windowed multi-wheel engine (see the module docs).
pub(crate) struct Sharded<P> {
    /// One wheel per shard, plus the control wheel at index `num_shards`.
    wheels: Vec<EventQueue<P>>,
    /// Per-`(src, dst)` mailboxes, flattened `src * num_shards + dst`;
    /// only cross-shard pairs are ever populated.
    mailboxes: Vec<Mailbox<P>>,
    num_shards: usize,
    /// Window length in ns (the plan's lookahead bound).
    lookahead: u64,
    /// Events strictly before this instant may pop; crossing it forces a
    /// barrier. Starts at zero so the first pop opens the first window.
    window_end: u64,
    /// Global FIFO sequence, consumed in logical emit order.
    seq: u64,
    now: Time,
    popped: u64,
    /// Entries currently waiting in mailboxes.
    pending_handoffs: usize,
    /// Worker budget for barrier drains (its share of `DRILL_THREADS`,
    /// captured at construction; see `drill_exec::inner_budget`).
    drain_workers: usize,
    pub handoffs: u64,
    pub handoff_hash: u64,
    pub windows: u64,
    /// Fault strikes attributed to each shard (control wheel excluded).
    pub fault_strikes: Vec<u64>,
}

impl<P: Send> Sharded<P> {
    pub fn new(plan: &ShardPlan) -> Sharded<P> {
        let n = plan.num_shards as usize;
        assert!(n >= 2, "the serial path handles one shard");
        assert!(
            plan.lookahead > Time::ZERO && plan.lookahead != Time::MAX,
            "a multi-shard plan needs a finite positive lookahead"
        );
        Sharded {
            wheels: (0..=n).map(|_| EventQueue::new()).collect(),
            mailboxes: (0..n * n).map(|_| Vec::new()).collect(),
            num_shards: n,
            lookahead: plan.lookahead.as_nanos(),
            window_end: 0,
            seq: 0,
            now: Time::ZERO,
            popped: 0,
            pending_handoffs: 0,
            drain_workers: inner_budget(),
            handoffs: 0,
            handoff_hash: FNV_OFFSET,
            windows: 0,
            fault_strikes: vec![0; n],
        }
    }

    #[inline]
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    #[inline]
    fn push_control(&mut self, at: Time, ev: P) {
        let seq = self.next_seq();
        let control = self.num_shards;
        self.wheels[control].push_with_seq(at, seq, ev);
    }

    #[inline]
    fn push_shard(&mut self, at: Time, dst: u32, src: u32, ev: P) {
        let seq = self.next_seq();
        if dst == src {
            self.wheels[dst as usize].push_with_seq(at, seq, ev);
        } else {
            // The conservative contract: a cross-shard event can never be
            // due inside the window that emitted it.
            debug_assert!(
                at.as_nanos() >= self.window_end,
                "cross-shard handoff due inside the emitting window"
            );
            self.mailboxes[src as usize * self.num_shards + dst as usize].push((at, seq, ev));
            self.pending_handoffs += 1;
        }
    }

    /// Minimum `(time, seq)` over every wheel and the wheel holding it.
    fn min_key(&mut self) -> Option<(Time, u64, usize)> {
        let mut best: Option<(Time, u64, usize)> = None;
        for (i, w) in self.wheels.iter_mut().enumerate() {
            if let Some((t, s)) = w.peek_key() {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, i));
                }
            }
        }
        best
    }

    fn pop(&mut self) -> Option<(Time, P)> {
        loop {
            if let Some((t, _, w)) = self.min_key() {
                if t.as_nanos() < self.window_end {
                    let (pt, ev) = self.wheels[w].pop().expect("peeked entry pops");
                    debug_assert_eq!(pt, t);
                    self.now = t;
                    self.popped += 1;
                    return Some((t, ev));
                }
            } else if self.pending_handoffs == 0 {
                return None;
            }
            // Window barrier: exchange handoffs, then open the next
            // window at the earliest pending event anywhere.
            self.drain_mailboxes();
            let (start, _, _) = self.min_key().expect("barrier reached with events pending");
            self.window_end = start.as_nanos().saturating_add(self.lookahead);
            self.windows += 1;
        }
    }

    /// Deliver every mailbox into its destination wheel, in fixed
    /// `(src, dst)`-major order. The handoff fingerprint hashes the drain
    /// order serially first; delivery itself is per-destination
    /// independent (each entry carries its global seq, and each wheel
    /// re-sorts by `(time, seq)`), so large barriers hand the
    /// per-destination batches to scoped worker threads.
    fn drain_mailboxes(&mut self) {
        if self.pending_handoffs == 0 {
            return;
        }
        let n = self.num_shards;
        let mut hash = self.handoff_hash;
        for src in 0..n {
            for dst in 0..n {
                for &(t, seq, _) in &self.mailboxes[src * n + dst] {
                    for word in [src as u64, dst as u64, t.as_nanos(), seq] {
                        hash = (hash ^ word).wrapping_mul(FNV_PRIME);
                    }
                }
            }
        }
        self.handoff_hash = hash;
        self.handoffs += self.pending_handoffs as u64;
        if self.drain_workers > 1 && self.pending_handoffs >= PAR_DRAIN_MIN {
            // One worker per destination shard with pending mail; wheels
            // are disjoint, so plain scoped threads suffice.
            let mut batches: Vec<(usize, Vec<Mailbox<P>>)> = Vec::new();
            for dst in 0..n {
                let mut per_src: Vec<Mailbox<P>> = Vec::new();
                for src in 0..n {
                    per_src.push(std::mem::take(&mut self.mailboxes[src * n + dst]));
                }
                if per_src.iter().any(|b| !b.is_empty()) {
                    batches.push((dst, per_src));
                }
            }
            let mut rest: &mut [EventQueue<P>] = &mut self.wheels[..n];
            let mut offset = 0usize;
            std::thread::scope(|scope| {
                for (dst, per_src) in batches {
                    let (head, tail) = rest.split_at_mut(dst - offset + 1);
                    let wheel: &mut EventQueue<P> = head.last_mut().expect("split is non-empty");
                    rest = tail;
                    offset = dst + 1;
                    scope.spawn(move || {
                        for batch in per_src {
                            for (t, seq, ev) in batch {
                                wheel.push_with_seq(t, seq, ev);
                            }
                        }
                    });
                }
            });
        } else {
            for src in 0..n {
                for dst in 0..n {
                    let mut batch = std::mem::take(&mut self.mailboxes[src * n + dst]);
                    for (t, seq, ev) in batch.drain(..) {
                        self.wheels[dst].push_with_seq(t, seq, ev);
                    }
                    // Hand the allocation back for the next window.
                    self.mailboxes[src * n + dst] = batch;
                }
            }
        }
        self.pending_handoffs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drill_net::{leaf_spine, LeafSpineSpec, DEFAULT_PROP};

    fn plan(shards: usize) -> ShardPlan {
        let topo = leaf_spine(&LeafSpineSpec {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 2,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        });
        ShardPlan::auto(&topo, shards)
    }

    /// Feed the same event stream through the serial engine and a
    /// sharded engine (round-robin ownership, cross-shard emissions
    /// mailboxed with lookahead-respecting timestamps); pops must match
    /// exactly.
    #[test]
    fn sharded_merge_equals_serial_order() {
        let p = plan(3);
        let la = p.lookahead.as_nanos();
        let mut serial: EngineQueue<u64> = EngineQueue::serial();
        let mut sharded: EngineQueue<u64> = EngineQueue::sharded(&p);
        // Seed both with one control event so the first window opens.
        serial.push_control(Time::ZERO, u64::MAX);
        sharded.push_control(Time::ZERO, u64::MAX);
        let mut emitted = 0u64;
        loop {
            let a = serial.pop();
            let b = sharded.pop();
            assert_eq!(a, b);
            let Some((now, _)) = a else { break };
            // Deterministic cascade: each pop emits a few future events,
            // some same-shard, some cross-shard at ≥ lookahead.
            while emitted < 3000 && emitted < serial.events_processed() * 3 {
                let src = (emitted % 3) as u32;
                let cross = emitted % 5 == 0;
                let dst = if cross { (src + 1) % 3 } else { src };
                let delay = if cross {
                    la + emitted % 97
                } else {
                    1 + emitted % 61
                };
                let at = Time::from_nanos(now.as_nanos() + delay);
                serial.push_shard(at, dst, src, emitted);
                sharded.push_shard(at, dst, src, emitted);
                emitted += 1;
            }
        }
        assert_eq!(serial.events_processed(), sharded.events_processed());
        assert_eq!(serial.now(), sharded.now());
        let (handoffs, hash, windows) = sharded.shard_stats();
        assert!(handoffs > 0, "cross-shard traffic used the mailboxes");
        assert_ne!(hash, FNV_OFFSET, "handoff fingerprint accumulated");
        assert!(windows > 0, "the run advanced through barriers");
        assert_eq!(serial.shard_stats(), (0, 0, 0));
    }

    /// The drain order — and therefore the handoff fingerprint — is a
    /// pure function of the event stream, not of batch sizes or the
    /// parallel-drain path.
    #[test]
    fn handoff_fingerprint_is_reproducible() {
        let p = plan(2);
        let run = |workers: usize| {
            let mut e: EngineQueue<u64> = EngineQueue::sharded(&p);
            if let EngineQueue::Sharded(s) = &mut e {
                s.drain_workers = workers;
            }
            e.push_control(Time::ZERO, 0);
            let la = p.lookahead.as_nanos();
            // Burst well past PAR_DRAIN_MIN so the parallel path engages.
            for i in 0..2000u64 {
                e.push_shard(
                    Time::from_nanos(la + i % 13),
                    (i % 2) as u32,
                    ((i + 1) % 2) as u32,
                    i,
                );
            }
            let mut order = Vec::new();
            while let Some((t, v)) = e.pop() {
                order.push((t, v));
            }
            let (handoffs, hash, _) = e.shard_stats();
            assert_eq!(handoffs, 2000);
            (order, hash)
        };
        let (serial_order, serial_hash) = run(1);
        let (par_order, par_hash) = run(8);
        assert_eq!(serial_order, par_order);
        assert_eq!(serial_hash, par_hash);
    }

    #[test]
    fn fault_attribution_counts_per_shard() {
        let p = plan(3);
        let mut e: EngineQueue<u64> = EngineQueue::sharded(&p);
        e.note_fault(0);
        e.note_fault(2);
        e.note_fault(2);
        match &e {
            EngineQueue::Sharded(s) => assert_eq!(s.fault_strikes, vec![1, 0, 2]),
            EngineQueue::Serial(_) => unreachable!(),
        }
        let mut s: EngineQueue<u64> = EngineQueue::serial();
        s.note_fault(7); // no-op, must not panic
    }
}
