//! Discrete-time M×N switch model for the §3.2.4 stability results.
//!
//! The paper proves two theorems about DRILL's scheduling inside one
//! switch with `M` forwarding engines and `N` output queues:
//!
//! * **Theorem 1**: memoryless random sampling — DRILL(d, 0) — is *not*
//!   stable for all admissible independent arrivals when `d < N` (a slow
//!   queue keeps receiving `d/N` of the load regardless of its service
//!   rate).
//! * **Theorem 2**: sampling with memory — DRILL(d, m) with `m ≥ 1` — is
//!   stable and achieves 100% throughput for all admissible arrivals.
//!
//! This module implements the abstract queueing model so the theorems can
//! be *observed*: [`simulate`] runs the slotted system and reports queue
//! trajectories. The integration tests and the `stability` example drive
//! the exact counterexample construction from the Theorem 1 proof.

use drill_sim::SimRng;

/// Parameters of the slotted M×N switch model.
#[derive(Clone, Debug)]
pub struct StabilityConfig {
    /// Per-engine packet arrival probability per slot (`M` entries).
    pub arrival_prob: Vec<f64>,
    /// Per-queue service probability per slot (`N` entries).
    pub service_prob: Vec<f64>,
    /// DRILL samples per decision.
    pub d: usize,
    /// DRILL memory units per engine.
    pub m: usize,
    /// Number of slots to run.
    pub slots: u64,
    /// RNG seed.
    pub seed: u64,
}

impl StabilityConfig {
    /// Whether the offered load is admissible (Σλ < Σμ).
    pub fn is_admissible(&self) -> bool {
        let lambda: f64 = self.arrival_prob.iter().sum();
        let mu: f64 = self.service_prob.iter().sum();
        lambda < mu
    }
}

/// Result of a stability run.
#[derive(Clone, Debug)]
pub struct StabilityOutcome {
    /// Queue lengths at the end of the run.
    pub final_queues: Vec<u64>,
    /// Largest total backlog observed.
    pub max_total: u64,
    /// Time-averaged total backlog.
    pub mean_total: f64,
    /// Packets that arrived.
    pub arrivals: u64,
    /// Packets served.
    pub served: u64,
    /// Total backlog sampled every `slots/64` slots (trajectory).
    pub trajectory: Vec<u64>,
}

impl StabilityOutcome {
    /// Achieved throughput: fraction of arrived packets served by the end
    /// of the run (backlog counts against it).
    pub fn throughput(&self) -> f64 {
        if self.arrivals == 0 {
            return 1.0;
        }
        self.served as f64 / self.arrivals as f64
    }
}

/// Run the slotted M×N model under DRILL(d, m) scheduling.
///
/// Each slot: every engine independently receives a packet with its arrival
/// probability and immediately places it via DRILL(d, m) over the *actual*
/// queue lengths; then every queue independently serves one packet with its
/// service probability.
pub fn simulate(cfg: &StabilityConfig) -> StabilityOutcome {
    let n = cfg.service_prob.len();
    assert!(n >= 1 && cfg.d >= 1);
    let mut rng = SimRng::seed_from(cfg.seed);
    let mut queues = vec![0u64; n];
    let mut memory: Vec<Vec<usize>> = vec![Vec::new(); cfg.arrival_prob.len()];
    let mut max_total = 0u64;
    let mut sum_total = 0f64;
    let mut arrivals = 0u64;
    let mut served = 0u64;
    let mut trajectory = Vec::with_capacity(64);
    let sample_every = (cfg.slots / 64).max(1);

    let mut considered: Vec<usize> = Vec::new();
    for slot in 0..cfg.slots {
        for (e, &lambda) in cfg.arrival_prob.iter().enumerate() {
            if !rng.chance(lambda) {
                continue;
            }
            arrivals += 1;
            considered.clear();
            if cfg.d >= n {
                considered.extend(0..n);
            } else {
                considered.extend(rng.sample_indices(n, cfg.d));
            }
            for &q in &memory[e] {
                if !considered.contains(&q) {
                    considered.push(q);
                }
            }
            let &best = considered
                .iter()
                .min_by_key(|&&q| queues[q])
                .expect("non-empty consideration set");
            queues[best] += 1;
            if cfg.m > 0 {
                considered.sort_by_key(|&q| queues[q]);
                memory[e].clear();
                memory[e].extend(considered.iter().take(cfg.m));
            }
        }
        for (q, &mu) in cfg.service_prob.iter().enumerate() {
            if queues[q] > 0 && rng.chance(mu) {
                queues[q] -= 1;
                served += 1;
            }
        }
        let total: u64 = queues.iter().sum();
        max_total = max_total.max(total);
        sum_total += total as f64;
        if slot % sample_every == 0 {
            trajectory.push(total);
        }
    }

    StabilityOutcome {
        final_queues: queues,
        max_total,
        mean_total: sum_total / cfg.slots as f64,
        arrivals,
        served,
        trajectory,
    }
}

/// The Theorem 1 counterexample: one engine at load `lambda`, two queues
/// with service rates `(mu_fast, mu_slow)` such that the traffic is
/// admissible but `lambda * d / N > mu_slow`.
pub fn theorem1_counterexample(d: usize, m: usize, slots: u64, seed: u64) -> StabilityConfig {
    StabilityConfig {
        arrival_prob: vec![0.85],
        service_prob: vec![0.92, 0.08],
        d,
        m,
        slots,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admissibility_check() {
        let cfg = theorem1_counterexample(1, 0, 10, 1);
        assert!(cfg.is_admissible(), "0.85 < 0.92 + 0.08");
        let bad = StabilityConfig {
            arrival_prob: vec![1.0, 0.5],
            ..cfg
        };
        assert!(!bad.is_admissible());
    }

    #[test]
    fn theorem1_memoryless_is_unstable() {
        // DRILL(1, 0) sends half the 0.85 load to a queue that serves 0.08:
        // backlog grows linearly (~0.345/slot).
        let out = simulate(&theorem1_counterexample(1, 0, 100_000, 42));
        let total: u64 = out.final_queues.iter().sum();
        assert!(total > 20_000, "diverging backlog, got {total}");
        // The trajectory keeps growing: last quarter > 2x first quarter.
        let q1 = out.trajectory[16];
        let q4 = out.trajectory[60];
        assert!(q4 > q1 * 2, "monotone growth: {q1} vs {q4}");
        assert!(
            out.throughput() < 0.8,
            "lost throughput: {}",
            out.throughput()
        );
    }

    #[test]
    fn theorem2_memory_restores_stability() {
        // DRILL(1, 1) under the same admissible traffic stays bounded and
        // serves essentially everything.
        let out = simulate(&theorem1_counterexample(1, 1, 100_000, 42));
        let total: u64 = out.final_queues.iter().sum();
        assert!(total < 100, "bounded backlog, got {total}");
        assert!(
            out.max_total < 1_000,
            "max backlog bounded: {}",
            out.max_total
        );
        assert!(
            out.throughput() > 0.99,
            "full throughput: {}",
            out.throughput()
        );
    }

    #[test]
    fn more_samples_do_not_fix_memorylessness() {
        // Theorem 1 holds for any d < N. Per the proof's construction: one
        // very fast queue absorbs every sample set containing it (its
        // length is pinned at ~0), so whenever the d=2 samples are the two
        // slow queues — probability 1/3 — a slow queue receives the packet:
        // 0.8/3 ≈ 0.27 offered vs 0.10 combined service => divergence.
        let cfg = StabilityConfig {
            arrival_prob: vec![0.8],
            service_prob: vec![1.0, 0.05, 0.05],
            d: 2,
            m: 0,
            slots: 200_000,
            seed: 7,
        };
        assert!(cfg.is_admissible());
        let out = simulate(&cfg);
        let slow_backlog = out.final_queues[1] + out.final_queues[2];
        assert!(
            slow_backlog > 10_000,
            "slow queues diverge: {:?}",
            out.final_queues
        );

        // ... while one unit of memory fixes it.
        let fixed = simulate(&StabilityConfig { m: 1, ..cfg });
        assert!(
            fixed.final_queues.iter().sum::<u64>() < 200,
            "stable with memory: {:?}",
            fixed.final_queues
        );
    }

    #[test]
    fn d_equals_n_is_join_shortest_queue() {
        // With d = N the sampling degenerates to JSQ, which is stable.
        let cfg = StabilityConfig {
            arrival_prob: vec![0.4, 0.4],
            service_prob: vec![0.88, 0.08],
            d: 2,
            m: 0,
            slots: 100_000,
            seed: 3,
        };
        let out = simulate(&cfg);
        assert!(out.final_queues.iter().sum::<u64>() < 100);
    }

    #[test]
    fn multiple_engines_with_memory_stay_stable() {
        let cfg = StabilityConfig {
            arrival_prob: vec![0.2; 4],
            service_prob: vec![0.6, 0.3, 0.05],
            d: 2,
            m: 1,
            slots: 100_000,
            seed: 11,
        };
        assert!(cfg.is_admissible());
        let out = simulate(&cfg);
        assert!(
            out.final_queues.iter().sum::<u64>() < 500,
            "{:?}",
            out.final_queues
        );
        assert!(out.throughput() > 0.98);
    }

    #[test]
    fn zero_load_is_trivially_stable() {
        let cfg = StabilityConfig {
            arrival_prob: vec![0.0],
            service_prob: vec![0.5, 0.5],
            d: 1,
            m: 1,
            slots: 1_000,
            seed: 1,
        };
        let out = simulate(&cfg);
        assert_eq!(out.arrivals, 0);
        assert_eq!(out.max_total, 0);
        assert_eq!(out.throughput(), 1.0);
    }
}
