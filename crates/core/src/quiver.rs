//! The Quiver (§3.4.1): a labeled multidigraph capturing which
//! source-destination leaf pairs traverse each fabric link, extended with
//! capacity factors (§3.4.3) for heterogeneous links.

use std::collections::{BTreeSet, HashMap};

use drill_net::{LinkId, NodeRef, RouteTable, SwitchId, Topology};

/// The capacity-factor component of a Quiver edge label (§3.4.3).
///
/// For a path `p` from `src` traversing link `(a, b)`, the paper defines
/// `cf(a,b,p) = capacity(src, a) / capacity(a, b)` — the rate at which
/// `src`'s traffic can build a queue at `a` toward `b` — with `cf = ∞` when
/// `a` is the source.
///
/// **Deviation note**: applying the definition verbatim breaks the paper's
/// own worked example (in Fig. 4a with L0-S0, L0-S1, L1-S0 at 40 Gbps it
/// would make H0 = L0S0L1 and H2 = L0S2L1 asymmetric, while §3.4.3 states
/// H0 ~ H2). The intent — "the rate at which traffic builds a queue" — is
/// that any `cf ≤ 1` is equivalent: an input slower than the output cannot
/// build a queue. We therefore clamp `cf` to `max(cf, 1)` and store it as a
/// reduced fraction; this reproduces every example in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CapFactor {
    /// `a` is the path's source: infinite input rate.
    Source,
    /// Reduced fraction `input/output`, clamped to at least 1/1.
    Ratio(u64, u64),
}

impl CapFactor {
    /// Build a (clamped, reduced) ratio from input and output capacities.
    pub fn ratio(input_bps: u64, output_bps: u64) -> CapFactor {
        assert!(output_bps > 0);
        if input_bps <= output_bps {
            return CapFactor::Ratio(1, 1);
        }
        let g = gcd(input_bps, output_bps);
        CapFactor::Ratio(input_bps / g, output_bps / g)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// A Quiver edge label: "traffic from leaf `src` to leaf `dst` traverses
/// this link, able to build a queue at rate factor `cf`".
pub type Label = (u32, u32, CapFactor);

/// Facts about one shortest path, as used by the decomposition.
#[derive(Clone, Debug)]
pub struct PathInfo {
    /// The links along the path, in order.
    pub links: Vec<LinkId>,
    /// Egress port at the path's first switch.
    pub first_port: u16,
    /// Path capacity: the rate of its slowest link (`p.cap` in the paper).
    pub cap_bps: u64,
    /// The path score: per-link hashes of the links' label sets. Two paths
    /// are symmetric iff their scores are equal (§3.4.1 step 2).
    pub score: Vec<u64>,
}

/// The labeled multidigraph of §3.4.1.
#[derive(Clone, Debug)]
pub struct Quiver {
    labels: HashMap<LinkId, BTreeSet<Label>>,
    scores: HashMap<LinkId, u64>,
    /// Total number of leaf-to-leaf shortest paths enumerated.
    pub paths_enumerated: u64,
}

/// Enumerate every shortest path from `from` to leaf `dst_leaf` as link
/// sequences, following the routing table's candidate sets. `cap` bounds
/// the number of paths (guards against pathological topologies); Clos path
/// counts are small.
pub fn enumerate_shortest_paths(
    topo: &Topology,
    routes: &RouteTable,
    from: SwitchId,
    dst_leaf: u32,
    cap: usize,
) -> Vec<Vec<LinkId>> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    dfs(topo, routes, from, dst_leaf, cap, &mut path, &mut out);
    out
}

fn dfs(
    topo: &Topology,
    routes: &RouteTable,
    cur: SwitchId,
    dst_leaf: u32,
    cap: usize,
    path: &mut Vec<LinkId>,
    out: &mut Vec<Vec<LinkId>>,
) {
    if out.len() >= cap {
        return;
    }
    if topo.leaf_index(cur) == Some(dst_leaf) {
        out.push(path.clone());
        return;
    }
    for &port in routes.candidates(cur, dst_leaf) {
        let link = topo.egress(cur, port);
        if let NodeRef::Switch(next) = link.dst {
            path.push(link.id);
            dfs(topo, routes, next, dst_leaf, cap, path, out);
            path.pop();
        }
    }
}

impl Quiver {
    /// Default per-pair path-enumeration cap.
    pub const DEFAULT_PATH_CAP: usize = 1 << 16;

    /// Build the Quiver from every leaf-pair's shortest paths.
    pub fn build(topo: &Topology, routes: &RouteTable) -> Quiver {
        Quiver::build_capped(topo, routes, Quiver::DEFAULT_PATH_CAP)
    }

    /// Build with an explicit per-pair path cap.
    pub fn build_capped(topo: &Topology, routes: &RouteTable, cap: usize) -> Quiver {
        let mut labels: HashMap<LinkId, BTreeSet<Label>> = HashMap::new();
        let mut paths_enumerated = 0u64;
        let leaves = topo.leaves();
        for (src_idx, &src) in leaves.iter().enumerate() {
            for dst_idx in 0..leaves.len() {
                if src_idx == dst_idx {
                    continue;
                }
                for path in enumerate_shortest_paths(topo, routes, src, dst_idx as u32, cap) {
                    paths_enumerated += 1;
                    // Walk the path tracking the bottleneck capacity from
                    // the source, producing the capacity-factor labels.
                    let mut bottleneck = u64::MAX;
                    for (i, &lid) in path.iter().enumerate() {
                        let link = topo.link(lid);
                        let cf = if i == 0 {
                            CapFactor::Source
                        } else {
                            CapFactor::ratio(bottleneck, link.rate_bps)
                        };
                        labels
                            .entry(lid)
                            .or_default()
                            .insert((src_idx as u32, dst_idx as u32, cf));
                        bottleneck = bottleneck.min(link.rate_bps);
                    }
                }
            }
        }
        let scores = labels
            .iter()
            .map(|(&lid, set)| (lid, hash_label_set(set)))
            .collect();
        Quiver {
            labels,
            scores,
            paths_enumerated,
        }
    }

    /// The label set of a link (`None` if the link is on no shortest path).
    pub fn labels(&self, link: LinkId) -> Option<&BTreeSet<Label>> {
        self.labels.get(&link)
    }

    /// The link's score: a hash of its label set. Two links are symmetric
    /// (ℓ1 ~ ℓ2) iff they carry the same label set; scores collide only
    /// with negligible probability, mirroring the paper's hashing shortcut.
    pub fn link_score(&self, link: LinkId) -> u64 {
        self.scores.get(&link).copied().unwrap_or(0)
    }

    /// Exact link symmetry (label-set equality, no hashing).
    pub fn links_symmetric(&self, a: LinkId, b: LinkId) -> bool {
        self.labels.get(&a) == self.labels.get(&b)
    }

    /// Score and capacity of a path (its per-link score list + bottleneck).
    pub fn path_info(&self, topo: &Topology, links: Vec<LinkId>) -> PathInfo {
        let first_port = topo.link(links[0]).src_port;
        let cap_bps = links
            .iter()
            .map(|&l| topo.link(l).rate_bps)
            .min()
            .unwrap_or(0);
        let score = links.iter().map(|&l| self.link_score(l)).collect();
        PathInfo {
            links,
            first_port,
            cap_bps,
            score,
        }
    }
}

fn hash_label_set(set: &BTreeSet<Label>) -> u64 {
    let mut h = 0x243f_6a88_85a3_08d3u64; // deterministic seed
    for &(s, d, cf) in set {
        h = mix(h ^ s as u64);
        h = mix(h ^ d as u64);
        match cf {
            CapFactor::Source => h = mix(h ^ 0xffff_ffff_ffff_fffe),
            CapFactor::Ratio(n, m) => {
                h = mix(h ^ n);
                h = mix(h ^ m);
            }
        }
    }
    h
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drill_net::{leaf_spine, leaf_spine_custom, LeafSpineSpec, DEFAULT_PROP};

    fn spec(spines: usize, leaves: usize) -> LeafSpineSpec {
        LeafSpineSpec {
            spines,
            leaves,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }
    }

    #[test]
    fn cap_factor_clamps_and_reduces() {
        assert_eq!(CapFactor::ratio(10, 40), CapFactor::Ratio(1, 1));
        assert_eq!(CapFactor::ratio(40, 40), CapFactor::Ratio(1, 1));
        assert_eq!(CapFactor::ratio(40, 10), CapFactor::Ratio(4, 1));
        assert_eq!(CapFactor::ratio(30, 20), CapFactor::Ratio(3, 2));
    }

    #[test]
    fn symmetric_clos_all_links_in_a_layer_symmetric() {
        let topo = leaf_spine(&spec(3, 4));
        let routes = RouteTable::compute(&topo);
        let q = Quiver::build(&topo, &routes);
        // All uplinks from leaf 0 have identical labels.
        let l0 = topo.leaves()[0];
        let up0 = topo.egress(l0, 0).id;
        let up1 = topo.egress(l0, 1).id;
        let up2 = topo.egress(l0, 2).id;
        assert!(q.links_symmetric(up0, up1));
        assert!(q.links_symmetric(up1, up2));
        assert_eq!(q.link_score(up0), q.link_score(up1));
        // 4*3 pairs x 3 spine paths.
        assert_eq!(q.paths_enumerated, 36);
    }

    #[test]
    fn path_enumeration_counts() {
        let topo = leaf_spine(&spec(4, 3));
        let routes = RouteTable::compute(&topo);
        let l0 = topo.leaves()[0];
        let paths = enumerate_shortest_paths(&topo, &routes, l0, 1, 1024);
        assert_eq!(paths.len(), 4, "one per spine");
        for p in &paths {
            assert_eq!(p.len(), 2, "leaf-spine-leaf");
        }
    }

    #[test]
    fn path_cap_truncates() {
        let topo = leaf_spine(&spec(8, 2));
        let routes = RouteTable::compute(&topo);
        let l0 = topo.leaves()[0];
        let paths = enumerate_shortest_paths(&topo, &routes, l0, 1, 3);
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn figure4_failure_breaks_symmetry() {
        // Figure 4(a): 4 leaves, 3 spines, L0-S0 fails. The L3->L1 paths
        // through S1/S2 stay symmetric; the S0 path becomes asymmetric.
        let mut topo = leaf_spine(&spec(3, 4));
        let l0 = topo.leaves()[0];
        let s0 = SwitchId(4); // switches: 4 leaves then 3 spines
        assert!(topo.fail_switch_link(l0, s0, 0));
        let routes = RouteTable::compute(&topo);
        let q = Quiver::build(&topo, &routes);

        let l3 = topo.leaves()[3];
        let paths = enumerate_shortest_paths(&topo, &routes, l3, 1, 1024);
        assert_eq!(paths.len(), 3);
        let infos: Vec<PathInfo> = paths.into_iter().map(|p| q.path_info(&topo, p)).collect();
        // Identify each path by its transit spine (dst of first link).
        let by_spine = |want: SwitchId| {
            infos
                .iter()
                .find(|i| topo.link(i.links[0]).dst == NodeRef::Switch(want))
                .expect("path via spine")
        };
        let p0 = by_spine(SwitchId(4));
        let p1 = by_spine(SwitchId(5));
        let p2 = by_spine(SwitchId(6));
        assert_eq!(p1.score, p2.score, "P1 ~ P2");
        assert_ne!(p0.score, p1.score, "P0 !~ P1");
        // The downlink S0->L1 lacks the (L0, L1) label that S1->L1 carries.
        let s0_l1 = *p0.links.last().unwrap();
        let s1_l1 = *p1.links.last().unwrap();
        let lbl0 = q.labels(s0_l1).unwrap();
        let lbl1 = q.labels(s1_l1).unwrap();
        assert!(!lbl0.iter().any(|&(s, d, _)| (s, d) == (0, 1)));
        assert!(lbl1.iter().any(|&(s, d, _)| (s, d) == (0, 1)));
    }

    #[test]
    fn host_link_failure_preserves_symmetry() {
        // §3.4.1: "not all failures cause asymmetry" — losing a host link
        // removes that host's flows from all paths equally.
        let base = leaf_spine(&spec(3, 4));
        let routes = RouteTable::compute(&base);
        let q = Quiver::build(&base, &routes);
        let l0 = base.leaves()[0];
        let scores: Vec<u64> = (0..3)
            .map(|p| q.link_score(base.egress(l0, p).id))
            .collect();
        assert!(scores.windows(2).all(|w| w[0] == w[1]), "uplinks symmetric");
    }

    #[test]
    fn heterogeneous_example_3_4_3() {
        // §3.4.3: L0-S0, L0-S1, L1-S0 at 40G, everything else 10G.
        // Among L0->L1 paths H0 (via S0), H1 (via S1), H2 (via S2):
        // H0 ~ H2 but H0 !~ H1.
        let s = LeafSpineSpec {
            spines: 3,
            leaves: 4,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let topo = leaf_spine_custom(&s, |leaf, spine| {
            let fat = (leaf == 0 && spine <= 1) || (leaf == 1 && spine == 0);
            vec![if fat { 40_000_000_000 } else { 10_000_000_000 }]
        });
        let routes = RouteTable::compute(&topo);
        let q = Quiver::build(&topo, &routes);
        let l0 = topo.leaves()[0];
        let paths = enumerate_shortest_paths(&topo, &routes, l0, 1, 64);
        assert_eq!(paths.len(), 3);
        let infos: Vec<PathInfo> = paths.into_iter().map(|p| q.path_info(&topo, p)).collect();
        let by_spine = |want: u32| {
            infos
                .iter()
                .find(|i| topo.link(i.links[0]).dst == NodeRef::Switch(SwitchId(want)))
                .unwrap()
        };
        let h0 = by_spine(4);
        let h1 = by_spine(5);
        let h2 = by_spine(6);
        assert_eq!(h0.score, h2.score, "H0 ~ H2");
        assert_ne!(h0.score, h1.score, "H0 !~ H1");
        assert_eq!(h0.cap_bps, 40_000_000_000);
        assert_eq!(h2.cap_bps, 10_000_000_000);
    }

    #[test]
    fn label_sets_record_leaf_pairs() {
        let topo = leaf_spine(&spec(2, 3));
        let routes = RouteTable::compute(&topo);
        let q = Quiver::build(&topo, &routes);
        let l0 = topo.leaves()[0];
        let up = topo.egress(l0, 0).id;
        let labels = q.labels(up).unwrap();
        // Uplink from leaf 0 carries exactly (0, 1) and (0, 2), as Source.
        let pairs: Vec<(u32, u32)> = labels.iter().map(|&(s, d, _)| (s, d)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2)]);
        assert!(labels.iter().all(|&(_, _, cf)| cf == CapFactor::Source));
    }
}
