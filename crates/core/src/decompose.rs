//! Symmetric component decomposition (§3.4.1 step 2) and installation into
//! the routing table.

use std::collections::HashMap;

use drill_net::{PortGroup, RouteTable, SwitchId, Topology};

use crate::quiver::{enumerate_shortest_paths, Quiver};

/// Summary of a grouping pass over the whole fabric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupingReport {
    /// (switch, dst-leaf) entries examined (those with >1 candidate).
    pub entries: usize,
    /// Entries that decomposed into more than one symmetric component.
    pub asymmetric_entries: usize,
    /// Largest number of components in any entry.
    pub max_components: usize,
    /// Shortest paths actually enumerated. The eager path walks every
    /// leaf-to-leaf path twice (once for the Quiver, once per entry in
    /// [`decompose_groups`]); the structural engine only enumerates inside
    /// entries whose fingerprint is new *and* not provably one component,
    /// so this is 0 on symmetric fabrics.
    pub paths_enumerated: u64,
    /// Distinct structural equivalence classes among the examined entries
    /// (eager path: every entry is its own class, `classes == entries`).
    pub classes: usize,
    /// Entries whose group table was replicated from an already-decomposed
    /// class representative instead of being recomputed
    /// (`entries - classes` for the structural engine, 0 for eager).
    pub entries_reused: usize,
    /// Wall-clock time of the install pass, in nanoseconds.
    pub build_ns: u64,
}

/// Decompose the shortest paths from `switch` toward `dst_leaf` into
/// symmetric components of egress ports, weighted by aggregate path
/// capacity (§3.4.1 step 2).
///
/// Returns one [`PortGroup`] per component. A fully symmetric entry yields
/// a single group containing every candidate port.
pub fn decompose_groups(
    topo: &Topology,
    routes: &RouteTable,
    quiver: &Quiver,
    switch: SwitchId,
    dst_leaf: u32,
) -> Vec<PortGroup> {
    decompose_groups_counted(topo, routes, quiver, switch, dst_leaf).0
}

/// [`decompose_groups`] plus the number of paths it enumerated.
fn decompose_groups_counted(
    topo: &Topology,
    routes: &RouteTable,
    quiver: &Quiver,
    switch: SwitchId,
    dst_leaf: u32,
) -> (Vec<PortGroup>, u64) {
    let paths = enumerate_shortest_paths(topo, routes, switch, dst_leaf, Quiver::DEFAULT_PATH_CAP);
    let n = paths.len() as u64;
    let groups = group_scored_paths(paths.into_iter().map(|links| {
        let info = quiver.path_info(topo, links);
        (info.first_port, info.score, info.cap_bps)
    }));
    (groups, n)
}

/// Core of the §3.4.1 step-2 decomposition, shared by the eager
/// ([`decompose_groups`]) and structural ([`crate::SymmetryEngine`]) paths:
/// group scored paths `(first_port, score, cap_bps)` into symmetric
/// components of ports, weighted by aggregate capacity and gcd-reduced.
///
/// The "ports" need not be real egress ports — the structural engine calls
/// this in candidate-index space and maps indices to ports afterwards; the
/// output is identical because the candidate list is in ascending port
/// order, so index order and port order agree.
pub(crate) fn group_scored_paths(
    scored: impl IntoIterator<Item = (u16, Vec<u64>, u64)>,
) -> Vec<PortGroup> {
    // Group paths by score; accumulate per-group ports and capacity.
    let mut by_score: HashMap<Vec<u64>, (Vec<u16>, u128)> = HashMap::new();
    for (first_port, score, cap_bps) in scored {
        let entry = by_score.entry(score).or_default();
        if !entry.0.contains(&first_port) {
            entry.0.push(first_port);
        }
        entry.1 += cap_bps as u128;
    }
    let mut groups: Vec<(Vec<u16>, u128)> = by_score.into_values().collect();

    // A port carrying paths of two different scores cannot be split at
    // port granularity: merge such groups (conservative fallback; does not
    // occur in layered Clos fabrics, where downstream asymmetry is resolved
    // by the downstream switch's own decomposition).
    let mut merged = true;
    while merged {
        merged = false;
        'outer: for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                if groups[i].0.iter().any(|p| groups[j].0.contains(p)) {
                    let (ports, w) = groups.swap_remove(j);
                    for p in ports {
                        if !groups[i].0.contains(&p) {
                            groups[i].0.push(p);
                        }
                    }
                    groups[i].1 += w;
                    merged = true;
                    break 'outer;
                }
            }
        }
    }

    // Deterministic order + reduced integer weights.
    for g in &mut groups {
        g.0.sort_unstable();
    }
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    let gcd_all = groups.iter().fold(0u128, |acc, g| gcd(acc, g.1.max(1)));
    groups
        .into_iter()
        .map(|(ports, w)| PortGroup {
            ports,
            weight: (w.max(1) / gcd_all.max(1)).max(1) as u64,
        })
        .collect()
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Run DRILL's control plane over the whole fabric and install the
/// component groups into the routing table.
///
/// This is the structural (§3.4-at-scale) path: a one-shot
/// [`crate::SymmetryEngine`] install, which produces the exact same group
/// tables as [`install_symmetric_groups_eager`] without enumerating the
/// whole fabric's paths. Keep the engine itself (see
/// [`crate::SymmetryEngine::install`]) when reinstalling after faults to
/// also reuse work across reconvergences.
///
/// Entries that remain fully symmetric get their groups cleared (the data
/// plane then micro load balances over the whole candidate set with no
/// hashing step, exactly as in the symmetric design).
pub fn install_symmetric_groups(topo: &Topology, routes: &mut RouteTable) -> GroupingReport {
    crate::SymmetryEngine::new().install(topo, routes)
}

/// The original enumerative control plane: build the global [`Quiver`]
/// (every leaf-to-leaf shortest path), then decompose every
/// multi-candidate (switch, dst-leaf) entry independently — re-walking
/// each entry's paths a second time.
///
/// O(leaves² × paths) in time and memory; kept as the differential-golden
/// reference for the structural engine and as the
/// `eager_control_plane` A/B path in the runtime.
pub fn install_symmetric_groups_eager(topo: &Topology, routes: &mut RouteTable) -> GroupingReport {
    let start = std::time::Instant::now();
    let quiver = Quiver::build(topo, routes);
    let mut report = GroupingReport {
        paths_enumerated: quiver.paths_enumerated,
        ..Default::default()
    };
    for si in 0..topo.num_switches() {
        let s = SwitchId(si as u32);
        for dst_leaf in 0..topo.num_leaves() as u32 {
            if routes.candidates(s, dst_leaf).len() < 2 {
                continue;
            }
            report.entries += 1;
            let (groups, walked) = decompose_groups_counted(topo, routes, &quiver, s, dst_leaf);
            // decompose_groups re-enumerated this entry's paths on top of
            // the Quiver's own walk: count the double work honestly.
            report.paths_enumerated += walked;
            report.max_components = report.max_components.max(groups.len());
            if groups.len() > 1 {
                report.asymmetric_entries += 1;
                routes.set_groups(s, dst_leaf, groups);
            } else {
                routes.set_groups(s, dst_leaf, Vec::new());
            }
        }
    }
    report.classes = report.entries;
    report.build_ns = start.elapsed().as_nanos() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use drill_net::{leaf_spine, leaf_spine_custom, vl2, LeafSpineSpec, Vl2Spec, DEFAULT_PROP};

    fn spec(spines: usize, leaves: usize) -> LeafSpineSpec {
        LeafSpineSpec {
            spines,
            leaves,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }
    }

    #[test]
    fn symmetric_fabric_single_group() {
        let topo = leaf_spine(&spec(4, 4));
        let mut routes = RouteTable::compute(&topo);
        let report = install_symmetric_groups(&topo, &mut routes);
        assert_eq!(report.asymmetric_entries, 0);
        assert_eq!(report.max_components, 1);
        // Routing table keeps implicit single groups.
        let l0 = topo.leaves()[0];
        assert!(routes.groups(l0, 1).is_empty());
    }

    #[test]
    fn figure4_decomposition() {
        // Fig 4: L0-S0 fails. L3's paths to L1 decompose into {P0} (via S0)
        // and {P1, P2} (via S1, S2) with weights 1:2.
        let mut topo = leaf_spine(&spec(3, 4));
        let l0 = topo.leaves()[0];
        topo.fail_switch_link(l0, SwitchId(4), 0);
        let mut routes = RouteTable::compute(&topo);
        let quiver = Quiver::build(&topo, &routes);
        let l3 = topo.leaves()[3];
        let groups = decompose_groups(&topo, &routes, &quiver, l3, 1);
        assert_eq!(groups.len(), 2);
        // Identify the group containing the S0 port.
        let s0_ports = topo.ports_to_switch(l3, SwitchId(4));
        let g_s0 = groups
            .iter()
            .find(|g| g.ports == s0_ports)
            .expect("S0 component");
        let g_rest = groups.iter().find(|g| g.ports != s0_ports).unwrap();
        assert_eq!(g_s0.ports.len(), 1);
        assert_eq!(g_rest.ports.len(), 2);
        // Aggregate capacities 40G vs 80G -> weights 1:2.
        assert_eq!(g_rest.weight, 2 * g_s0.weight);

        // install pass records the asymmetry fabric-wide.
        let report = install_symmetric_groups(&topo, &mut routes);
        assert!(report.asymmetric_entries > 0);
        // (The spine that lost its L0 link gains inert 3-hop detour routes
        // toward leaf 0 which decompose into singleton components, so the
        // fabric-wide max can exceed 2.)
        assert!(report.max_components >= 2);
        assert_eq!(routes.groups(l3, 1).len(), 2);
    }

    #[test]
    fn affected_leaf_keeps_symmetric_remainder() {
        // L0 itself (which lost its S0 uplink) has only S1/S2 paths left,
        // and those are symmetric with each other: a single group.
        let mut topo = leaf_spine(&spec(3, 4));
        let l0 = topo.leaves()[0];
        topo.fail_switch_link(l0, SwitchId(4), 0);
        let mut routes = RouteTable::compute(&topo);
        install_symmetric_groups(&topo, &mut routes);
        assert!(
            routes.groups(l0, 1).is_empty(),
            "two symmetric paths, one group"
        );
        assert_eq!(routes.candidates(l0, 1).len(), 2);
    }

    #[test]
    fn heterogeneous_striping_weights() {
        // §3.4.3 example: among L0->L1 paths, {H0 via S0, H2 via S2} form
        // one component (cap 40G + 10G), {H1 via S1} the other (cap 10G,
        // bottlenecked by S1-L1).
        let s = LeafSpineSpec {
            spines: 3,
            leaves: 4,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let topo = leaf_spine_custom(&s, |leaf, spine| {
            let fat = (leaf == 0 && spine <= 1) || (leaf == 1 && spine == 0);
            vec![if fat { 40_000_000_000 } else { 10_000_000_000 }]
        });
        let mut routes = RouteTable::compute(&topo);
        let quiver = Quiver::build(&topo, &routes);
        let l0 = topo.leaves()[0];
        let groups = decompose_groups(&topo, &routes, &quiver, l0, 1);
        assert_eq!(groups.len(), 2);
        let s1_ports = topo.ports_to_switch(l0, SwitchId(5));
        let g_h1 = groups
            .iter()
            .find(|g| g.ports == s1_ports)
            .expect("S1 alone");
        let g_h02 = groups.iter().find(|g| g.ports != s1_ports).unwrap();
        assert_eq!(g_h02.ports.len(), 2);
        // Weights: (40+10) : 10 = 5 : 1.
        assert_eq!(g_h02.weight, 5);
        assert_eq!(g_h1.weight, 1);
        install_symmetric_groups(&topo, &mut routes);
        assert_eq!(routes.groups(l0, 1).len(), 2);
    }

    #[test]
    fn parallel_links_stay_one_group_when_symmetric() {
        // Figure 13-style extra parallel links, but uniform rates across
        // the fabric: leaf 0 has two links to spine 0. Both parallel links
        // carry identical labels, so everything stays one component.
        let s = spec(3, 3);
        let topo = leaf_spine_custom(&s, |leaf, spine| {
            if leaf == spine {
                vec![s.core_rate; 2]
            } else {
                vec![s.core_rate]
            }
        });
        let mut routes = RouteTable::compute(&topo);
        let report = install_symmetric_groups(&topo, &mut routes);
        // The doubled striping *is* an asymmetry between spine paths:
        // paths via the doubled spine differ from singles.
        assert!(report.entries > 0);
        let l0 = topo.leaves()[0];
        let groups = routes.groups(l0, 1);
        if !groups.is_empty() {
            // Whatever the decomposition, it must partition all 4 ports.
            let total: usize = groups.iter().map(|g| g.ports.len()).sum();
            assert_eq!(total, routes.candidates(l0, 1).len());
        }
    }

    #[test]
    fn vl2_failure_decomposes_at_remote_tor() {
        // Figure 5 analog: fail a ToR-Agg link and check that some remote
        // switch sees a multi-component decomposition.
        let mut topo = vl2(&Vl2Spec::paper());
        let tor0 = topo.leaves()[0];
        // ToR0's first uplink goes to Agg (id 16).
        assert!(topo.fail_switch_link(tor0, SwitchId(16), 0));
        let mut routes = RouteTable::compute(&topo);
        let report = install_symmetric_groups(&topo, &mut routes);
        assert!(
            report.asymmetric_entries > 0,
            "failure creates asymmetric entries"
        );
        // Groups always partition candidates wherever installed.
        for si in 0..topo.num_switches() {
            let s = SwitchId(si as u32);
            for leaf in 0..topo.num_leaves() as u32 {
                let groups = routes.groups(s, leaf);
                if groups.is_empty() {
                    continue;
                }
                let mut all: Vec<u16> = groups
                    .iter()
                    .flat_map(|g| g.ports.iter().copied())
                    .collect();
                all.sort_unstable();
                let mut cand = routes.candidates(s, leaf).to_vec();
                cand.sort_unstable();
                assert_eq!(all, cand);
            }
        }
    }

    #[test]
    fn weights_are_reduced() {
        let mut topo = leaf_spine(&spec(3, 4));
        let l0 = topo.leaves()[0];
        topo.fail_switch_link(l0, SwitchId(4), 0);
        let routes = RouteTable::compute(&topo);
        let quiver = Quiver::build(&topo, &routes);
        let groups = decompose_groups(&topo, &routes, &quiver, topo.leaves()[3], 1);
        let mut ws: Vec<u64> = groups.iter().map(|g| g.weight).collect();
        ws.sort_unstable();
        assert_eq!(ws, vec![1, 2], "weights reduced by gcd");
    }
}
