//! The DRILL(d, m) scheduling policy (§3.2.2).

use std::collections::HashMap;
use std::io;

use drill_net::{FlowId, QueueView, SelectCtx, SwitchPolicy};
use drill_sim::codec::{invalid, put_varint, Decoder};
use drill_sim::SimRng;

/// DRILL(d, m): per-packet, per-engine "power of two choices with memory".
///
/// On each packet, the handling engine
///
/// 1. samples `d` distinct candidate ports uniformly at random,
/// 2. adds its `m` remembered ports (those that are still candidates for
///    this destination),
/// 3. sends the packet to the member of that set with the minimum *visible*
///    queue occupancy (bytes), and
/// 4. re-fills its memory with the `m` least-loaded ports it just observed.
///
/// Each engine has its own memory (the paper's engines decide independently
/// and in parallel); the policy object is per-switch, so engines of the
/// same switch share nothing but the queues themselves.
///
/// The paper's recommended operating point is `DRILL(2, 1)`; larger `d`/`m`
/// can trigger the synchronization effect on many-engine switches (§3.2.3).
pub struct DrillPolicy {
    d: usize,
    m: usize,
    /// Per-engine remembered ports.
    mem: Vec<Vec<u16>>,
    /// Scratch: candidate ports considered this decision.
    scratch: Vec<u16>,
}

impl DrillPolicy {
    /// DRILL(d, m) for a switch with `engines` forwarding engines.
    pub fn new(d: usize, m: usize, engines: usize) -> DrillPolicy {
        assert!(d >= 1, "DRILL needs at least one sample");
        assert!(engines >= 1);
        DrillPolicy {
            d,
            m,
            mem: vec![Vec::with_capacity(m); engines],
            scratch: Vec::new(),
        }
    }

    /// The configured number of random samples `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The configured number of memory units `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Remembered ports of an engine (test/diagnostic access).
    pub fn memory(&self, engine: usize) -> &[u16] {
        &self.mem[engine]
    }
}

impl SwitchPolicy for DrillPolicy {
    fn select(&mut self, ctx: &SelectCtx<'_>, queues: &dyn QueueView, rng: &mut SimRng) -> u16 {
        let cand = ctx.candidates;
        debug_assert!(!cand.is_empty());
        let mem = &mut self.mem[ctx.engine];
        self.scratch.clear();

        // 1-2. Random samples first (so equal-length ties resolve to a
        // random fresh sample rather than herding onto remembered ports),
        // then still-valid memory entries. When d covers the whole
        // candidate set the ports are still visited in random order:
        // a deterministic scan would tie-break every empty-queue decision
        // onto the lowest port index, herding all engines there.
        let k = self.d.min(cand.len());
        for i in rng.sample_indices(cand.len(), k) {
            self.scratch.push(cand[i]);
        }
        for &p in mem.iter() {
            if cand.contains(&p) && !self.scratch.contains(&p) {
                self.scratch.push(p);
            }
        }

        // 3. Minimum visible occupancy wins (strict `<`: first seen wins
        // ties). The engine sees committed state plus its own in-flight
        // writes (`visible_bytes_for`).
        let mut best = self.scratch[0];
        let mut best_len = queues.visible_bytes_for(ctx.engine, best);
        for &p in &self.scratch[1..] {
            let len = queues.visible_bytes_for(ctx.engine, p);
            if len < best_len {
                best = p;
                best_len = len;
            }
        }

        // 4. Remember the m least-loaded ports observed this decision.
        if self.m > 0 {
            self.scratch
                .sort_by_key(|&p| queues.visible_bytes_for(ctx.engine, p));
            mem.clear();
            mem.extend(self.scratch.iter().take(self.m));
        }

        best
    }

    fn save_state(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.mem.len() as u64);
        for m in &self.mem {
            put_varint(buf, m.len() as u64);
            for &p in m {
                put_varint(buf, p as u64);
            }
        }
    }

    fn load_state(&mut self, d: &mut Decoder<'_>) -> io::Result<()> {
        if d.varint_usize()? != self.mem.len() {
            return Err(invalid("DRILL engine count mismatch"));
        }
        for m in &mut self.mem {
            let n = d.varint_usize()?;
            if n > self.m {
                return Err(invalid("DRILL memory exceeds m"));
            }
            m.clear();
            for _ in 0..n {
                m.push(d.varint_u16()?);
            }
        }
        Ok(())
    }
}

/// The paper's "per-flow DRILL" strawman: the first packet of a flow makes
/// a DRILL(d, m) decision, then the flow is pinned to that port (like ECMP,
/// but load-aware at flow start).
pub struct PerFlowDrill {
    inner: DrillPolicy,
    pins: HashMap<FlowId, u16>,
}

impl PerFlowDrill {
    /// Per-flow DRILL using a DRILL(d, m) first-packet decision.
    pub fn new(d: usize, m: usize, engines: usize) -> PerFlowDrill {
        PerFlowDrill {
            inner: DrillPolicy::new(d, m, engines),
            pins: HashMap::new(),
        }
    }

    /// Number of pinned flows (diagnostics).
    pub fn pinned(&self) -> usize {
        self.pins.len()
    }
}

impl SwitchPolicy for PerFlowDrill {
    fn select(&mut self, ctx: &SelectCtx<'_>, queues: &dyn QueueView, rng: &mut SimRng) -> u16 {
        if let Some(&p) = self.pins.get(&ctx.flow) {
            // Pinned port may have vanished after a failure; re-decide then.
            if ctx.candidates.contains(&p) {
                return p;
            }
        }
        let p = self.inner.select(ctx, queues, rng);
        self.pins.insert(ctx.flow, p);
        p
    }

    fn save_state(&self, buf: &mut Vec<u8>) {
        // Sort: HashMap iteration order is nondeterministic.
        let mut pins: Vec<(FlowId, u16)> = self.pins.iter().map(|(&f, &p)| (f, p)).collect();
        pins.sort_unstable_by_key(|&(f, _)| f.0);
        put_varint(buf, pins.len() as u64);
        for (f, p) in pins {
            put_varint(buf, f.0 as u64);
            put_varint(buf, p as u64);
        }
        self.inner.save_state(buf);
    }

    fn load_state(&mut self, d: &mut Decoder<'_>) -> io::Result<()> {
        let n = d.varint_usize()?;
        self.pins.clear();
        for _ in 0..n {
            let f = FlowId(d.varint_u32()?);
            let p = d.varint_u16()?;
            self.pins.insert(f, p);
        }
        self.inner.load_state(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drill_sim::Time;

    /// Fixed queue lengths for testing.
    struct FixedQueues(Vec<u64>);
    impl QueueView for FixedQueues {
        fn visible_bytes(&self, port: u16) -> u64 {
            self.0[port as usize]
        }
        fn visible_pkts(&self, port: u16) -> u32 {
            (self.0[port as usize] / 1500) as u32
        }
        fn num_ports(&self) -> usize {
            self.0.len()
        }
    }

    fn ctx<'a>(candidates: &'a [u16], engine: usize) -> SelectCtx<'a> {
        SelectCtx {
            now: Time::ZERO,
            engine,
            flow_hash: 42,
            flow: FlowId(7),
            dst_leaf: 1,
            candidates,
        }
    }

    #[test]
    fn full_sampling_picks_global_min() {
        // d >= #candidates: DRILL degenerates to exact min.
        let mut p = DrillPolicy::new(8, 1, 1);
        let q = FixedQueues(vec![500, 100, 900, 400]);
        let cand = [0u16, 1, 2, 3];
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(p.select(&ctx(&cand, 0), &q, &mut rng), 1);
        }
    }

    #[test]
    fn selection_is_among_candidates_only() {
        let mut p = DrillPolicy::new(2, 1, 1);
        let q = FixedQueues(vec![0, 0, 0, 0, 0, 0]);
        let cand = [2u16, 4, 5];
        let mut rng = SimRng::seed_from(2);
        for _ in 0..100 {
            let sel = p.select(&ctx(&cand, 0), &q, &mut rng);
            assert!(cand.contains(&sel));
        }
    }

    #[test]
    fn memory_remembers_least_loaded() {
        let mut p = DrillPolicy::new(4, 2, 1);
        let q = FixedQueues(vec![500, 100, 900, 50]);
        let cand = [0u16, 1, 2, 3];
        let mut rng = SimRng::seed_from(3);
        p.select(&ctx(&cand, 0), &q, &mut rng);
        // d=4 sees all ports; memory = two least loaded = {3, 1}.
        assert_eq!(p.memory(0), &[3, 1]);
    }

    #[test]
    fn memory_beats_bad_samples() {
        // d=1: a lone random sample would often pick a long queue, but the
        // remembered short port must win whenever sampled port is longer.
        let mut p = DrillPolicy::new(1, 1, 1);
        let q = FixedQueues(vec![1000, 1000, 0, 1000]);
        let cand = [0u16, 1, 2, 3];
        let mut rng = SimRng::seed_from(4);
        // Warm memory: run until port 2 gets sampled once.
        let mut hits = 0;
        for _ in 0..50 {
            let sel = p.select(&ctx(&cand, 0), &q, &mut rng);
            if sel == 2 {
                hits += 1;
            }
        }
        assert!(hits > 0);
        // Once remembered, port 2 is chosen every time.
        for _ in 0..20 {
            assert_eq!(p.select(&ctx(&cand, 0), &q, &mut rng), 2);
            assert_eq!(p.memory(0), &[2]);
        }
    }

    #[test]
    fn zero_memory_forgets() {
        let mut p = DrillPolicy::new(1, 0, 1);
        let q = FixedQueues(vec![1000, 0]);
        let cand = [0u16, 1];
        let mut rng = SimRng::seed_from(5);
        // With d=1, m=0, selection is uniform random regardless of load.
        let mut zeros = 0;
        for _ in 0..2000 {
            if p.select(&ctx(&cand, 0), &q, &mut rng) == 0 {
                zeros += 1;
            }
        }
        let frac = zeros as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "uniform without memory: {frac}");
        assert!(p.memory(0).is_empty());
    }

    #[test]
    fn engines_have_independent_memory() {
        let mut p = DrillPolicy::new(4, 1, 2);
        let q = FixedQueues(vec![10, 20, 30, 40]);
        let cand = [0u16, 1, 2, 3];
        let mut rng = SimRng::seed_from(6);
        p.select(&ctx(&cand, 0), &q, &mut rng);
        assert_eq!(p.memory(0), &[0]);
        assert!(p.memory(1).is_empty(), "engine 1 untouched");
        p.select(&ctx(&cand, 1), &q, &mut rng);
        assert_eq!(p.memory(1), &[0]);
    }

    #[test]
    fn memory_invalid_for_other_destination_is_ignored() {
        let mut p = DrillPolicy::new(1, 1, 1);
        let q = FixedQueues(vec![0, 1000, 1000, 0]);
        let mut rng = SimRng::seed_from(7);
        // Warm memory on candidates {0,1}: remembers port 0.
        for _ in 0..20 {
            p.select(&ctx(&[0, 1], 0), &q, &mut rng);
        }
        assert_eq!(p.memory(0), &[0]);
        // Different destination with candidates {2,3}: the remembered port 0
        // must not be selected.
        for _ in 0..20 {
            let sel = p.select(&ctx(&[2, 3], 0), &q, &mut rng);
            assert!(sel == 2 || sel == 3);
        }
    }

    #[test]
    fn two_choices_beat_random_in_distribution() {
        // Statistical sanity: DRILL(2,1) lands on the shorter of two queues
        // far more often than 50%.
        let mut p = DrillPolicy::new(2, 1, 1);
        let q = FixedQueues(vec![3000, 0, 3000, 3000]);
        let cand = [0u16, 1, 2, 3];
        let mut rng = SimRng::seed_from(8);
        let mut best = 0;
        for _ in 0..1000 {
            if p.select(&ctx(&cand, 0), &q, &mut rng) == 1 {
                best += 1;
            }
        }
        // With d=2 + memory of the best port, port 1 should dominate.
        assert!(best > 900, "short queue chosen {best}/1000");
    }

    #[test]
    fn per_flow_drill_pins() {
        let mut p = PerFlowDrill::new(2, 1, 1);
        let q = FixedQueues(vec![100, 200, 300, 400]);
        let cand = [0u16, 1, 2, 3];
        let mut rng = SimRng::seed_from(9);
        let first = p.select(&ctx(&cand, 0), &q, &mut rng);
        for _ in 0..50 {
            assert_eq!(p.select(&ctx(&cand, 0), &q, &mut rng), first);
        }
        assert_eq!(p.pinned(), 1);
    }

    #[test]
    fn per_flow_drill_repins_after_failure() {
        let mut p = PerFlowDrill::new(4, 1, 1);
        let q = FixedQueues(vec![0, 100, 200, 300]);
        let mut rng = SimRng::seed_from(10);
        let first = p.select(&ctx(&[0, 1, 2, 3], 0), &q, &mut rng);
        assert_eq!(first, 0);
        // Port 0 disappears from the candidate set (failure).
        let sel = p.select(&ctx(&[1, 2, 3], 0), &q, &mut rng);
        assert_eq!(sel, 1, "re-decides on remaining candidates");
        // And stays pinned to the new port.
        assert_eq!(p.select(&ctx(&[1, 2, 3], 0), &q, &mut rng), 1);
    }
}
