//! Structural §3.4 control plane: symmetry-class decomposition with lazy
//! per-entry quivers and incremental reconvergence.
//!
//! The eager control plane ([`crate::install_symmetric_groups_eager`])
//! enumerates every leaf-to-leaf shortest path to build the global
//! [`Quiver`], then re-enumerates each entry's paths to decompose it —
//! O(leaves² × paths) time and memory, ~67M paths and gigabytes of labels
//! at a k=32 fat-tree. The [`SymmetryEngine`] produces the **exact same
//! group tables** from the structure of the candidate DAG instead:
//!
//! 1. **Link classes** (the Quiver, without materializing it). For one
//!    destination leaf `d`, the labels eager places on a link are the image
//!    of the set of *prefix states* reaching its tail: every shortest path
//!    from a source leaf arrives with a `(src_leaf, bottleneck)` pair, and
//!    the link's label restriction is `{(src, cf(bottleneck, rate))}`.
//!    Candidate edges always point from hop distance `k` to `k-1`
//!    ([`RouteTable::dist_levels`]), so propagating interned prefix-state
//!    sets down the levels visits each candidate edge exactly once and
//!    yields, per destination, each link's label restriction — without
//!    enumerating a single path. Links are then partition-refined over
//!    destinations: two links end in the same class iff every restriction
//!    matches, i.e. iff their full label sets are equal — exactly the
//!    paper's `ℓ1 ~ ℓ2` (and *stricter* than the eager path's 64-bit score
//!    hash, which can collide). Set operations are memoized on interned
//!    ids, so a symmetric fabric costs O(distinct sets) ≈ O(tiers × pods)
//!    real set constructions per destination, everything else being id
//!    lookups.
//! 2. **Entry fingerprints + template reuse**. Walking the levels back up,
//!    each (switch, dst-leaf) entry gets an *exact* fingerprint: the
//!    interned list, in candidate order, of `(link class, link rate,
//!    child fingerprint)`. By induction it determines the entry's entire
//!    labeled candidate subgraph. If all candidate tuples are equal the
//!    entry is provably one symmetric component and nothing more is
//!    computed (the early-collapse path — on fully symmetric fabrics the
//!    whole install enumerates zero paths). Otherwise the entry's
//!    subgraph is walked **exactly once** (the lazy per-entry quiver —
//!    peak memory is one entry's subgraph, never the fabric's), producing
//!    a *canonical* signature with class ids renumbered by first
//!    occurrence: the decomposition only depends on the equality pattern
//!    of scores, which is invariant under consistent renaming, so entries
//!    in mirrored positions of different pods collapse to one canonical
//!    class. Each canonical class is decomposed once, on its first
//!    representative, and the resulting groups are stored as a template
//!    over candidate indices, replicated to every entry of the class.
//!    Candidates are in ascending port order, so mapping index groups
//!    through an entry's candidate list preserves the eager sort order
//!    bit-for-bit.
//! 3. **Incremental reconvergence.** All interners, set-operation memos,
//!    class-refinement chains, and decomposition templates are
//!    content-addressed and persist across installs. After a fault, the
//!    propagation replays mostly memo hits; only entries whose fingerprint
//!    actually changed (their candidate set or a downstream link's
//!    class/rate moved) miss the template cache and get re-decomposed.
//!
//! **Known deviation** (shared with the figure goldens, documented in
//! DESIGN.md): eager truncates enumeration at
//! [`Quiver::DEFAULT_PATH_CAP`] paths per (entry, destination). The
//! engine's class propagation is exact (set-based, uncapped) and its
//! template enumeration uses the same cap, so results can differ from
//! eager only on fabrics with more than 65 536 shortest paths for a
//! single entry — far beyond every topology family in this repo.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use drill_net::{NodeRef, PortGroup, RouteTable, SwitchId, Topology};

use crate::decompose::{group_scored_paths, GroupingReport};
use crate::quiver::{enumerate_shortest_paths, CapFactor, Quiver};

/// Sentinel bottleneck meaning "the path starts here": mirrors the eager
/// builder's `bottleneck = u64::MAX` seed, so the first link of a path maps
/// to [`CapFactor::Source`] and `min(MAX, rate) = rate` thereafter.
const SOURCE_CAP: u64 = u64::MAX;

/// A prefix state: traffic from leaf `.0` arrives with bottleneck `.1`.
type BSet = Vec<(u32, u64)>;
/// A link's per-destination label restriction: `(src_leaf, cap_factor)`.
type LSet = Vec<(u32, CapFactor)>;
/// An entry fingerprint: `(link class, rate_bps, child fingerprint)` per
/// candidate, in candidate order. Canonical signatures reuse the same
/// tuple shape (see [`canonical_signature`]).
type FKey = Vec<(u32, u64, u32)>;

/// Content-addressed store mapping values to dense `u32` ids.
///
/// Id 0 is always the empty (default) value, so "no prefix states" and the
/// terminal fingerprint are the zero id and never need a lookup.
struct Interner<T> {
    vals: Vec<T>,
    ids: HashMap<T, u32>,
}

impl<T: Clone + Eq + Hash + Default> Interner<T> {
    fn new() -> Interner<T> {
        let mut it = Interner {
            vals: Vec::new(),
            ids: HashMap::new(),
        };
        it.intern(T::default());
        it
    }

    fn intern(&mut self, val: T) -> u32 {
        if let Some(&id) = self.ids.get(&val) {
            return id;
        }
        let id = self.vals.len() as u32;
        self.vals.push(val.clone());
        self.ids.insert(val, id);
        id
    }

    #[inline]
    fn get(&self, id: u32) -> &T {
        &self.vals[id as usize]
    }
}

/// The structural §3.4 control plane (see module docs).
///
/// One-shot use reproduces [`crate::install_symmetric_groups_eager`]
/// exactly; keeping the engine alive across [`SymmetryEngine::install`]
/// calls additionally reuses all structural work that a fault did not
/// invalidate (incremental reconvergence).
pub struct SymmetryEngine {
    bsets: Interner<BSet>,
    lsets: Interner<LSet>,
    fps: Interner<FKey>,
    /// `(bset, rate)` -> bset with every bottleneck clamped to `rate`.
    advance_memo: HashMap<(u32, u64), u32>,
    /// `(bset, rate)` -> the label restriction those prefixes induce.
    shift_memo: HashMap<(u32, u64), u32>,
    /// `(bset, bset)` -> set union.
    union_memo: HashMap<(u32, u32), u32>,
    /// `(old class, lset)` -> refined class. Chains are content-addressed:
    /// replaying identical restrictions yields identical final classes,
    /// across destinations and across installs.
    class_memo: HashMap<(u32, u32), u32>,
    next_class: u32,
    /// Canonical signatures of entry subgraphs (class ids renumbered by
    /// first occurrence), in their own id space.
    sigs: Interner<FKey>,
    /// Exact fingerprint -> canonical signature id. On a warm reinstall an
    /// unchanged entry hits this map and skips its subgraph walk entirely.
    canon_memo: HashMap<u32, u32>,
    /// Canonical signature -> decomposition over candidate *indices*;
    /// `None` means a single symmetric component (install clears the
    /// entry's groups).
    templates: HashMap<u32, Option<Vec<PortGroup>>>,
}

impl Default for SymmetryEngine {
    fn default() -> SymmetryEngine {
        SymmetryEngine::new()
    }
}

impl SymmetryEngine {
    /// An empty engine with no cached structure.
    pub fn new() -> SymmetryEngine {
        SymmetryEngine {
            bsets: Interner::new(),
            lsets: Interner::new(),
            fps: Interner::new(),
            advance_memo: HashMap::new(),
            shift_memo: HashMap::new(),
            union_memo: HashMap::new(),
            class_memo: HashMap::new(),
            next_class: 1,
            sigs: Interner::new(),
            canon_memo: HashMap::new(),
            templates: HashMap::new(),
        }
    }

    /// Decompose every multi-candidate (switch, dst-leaf) entry of
    /// `routes` into symmetric components and install them, exactly as
    /// [`crate::install_symmetric_groups_eager`] would.
    ///
    /// Reuses any structure cached by previous installs on this engine.
    pub fn install(&mut self, topo: &Topology, routes: &mut RouteTable) -> GroupingReport {
        let start = std::time::Instant::now();
        let n_switches = topo.num_switches();
        let n_leaves = topo.num_leaves();
        let mut report = GroupingReport::default();

        // Phase 1: link classes by partition refinement over destinations.
        // `class[link] == 0` means "on no shortest path at all", matching
        // the eager score 0 for unlabeled links.
        let mut class: Vec<u32> = vec![0; topo.links().len()];
        let mut bstate: Vec<u32> = vec![0; n_switches];
        for d in 0..n_leaves as u32 {
            let levels = routes.dist_levels(d);
            bstate.fill(0);
            // Sources first: candidate edges go from level k to k-1, so by
            // the time a level is processed its prefix states are final.
            for (dist, level) in levels.iter().enumerate().rev() {
                for &a in level {
                    let mut b = bstate[a.index()];
                    // A leaf that is not the destination originates its own
                    // paths (even while relaying others': eager enumerates
                    // from every source leaf independently).
                    if dist > 0 && topo.leaf_index(a).is_some() {
                        let li = topo.leaf_index(a).unwrap();
                        let seed = self.bsets.intern(vec![(li, SOURCE_CAP)]);
                        b = self.union(b, seed);
                    }
                    if b == 0 {
                        // No shortest path reaches this switch for `d`:
                        // its candidate links stay unlabeled, exactly like
                        // the inert detour entries eager never walks.
                        continue;
                    }
                    for &p in routes.candidates(a, d) {
                        let link = topo.egress(a, p);
                        let lset = self.shift(b, link.rate_bps);
                        let li = link.id.index();
                        class[li] = self.refine(class[li], lset);
                        if let NodeRef::Switch(t) = link.dst {
                            let adv = self.advance(b, link.rate_bps);
                            bstate[t.index()] = self.union(bstate[t.index()], adv);
                        }
                    }
                }
            }
        }

        // Phase 2: entry fingerprints, destination first, and one
        // decomposition per distinct fingerprint.
        let mut fid: Vec<u32> = vec![0; n_switches];
        let mut seen_fids: HashSet<u32> = HashSet::new();
        let mut cand_buf: Vec<u16> = Vec::new();
        for d in 0..n_leaves as u32 {
            let levels = routes.dist_levels(d);
            for (dist, level) in levels.iter().enumerate() {
                for &a in level {
                    if dist == 0 {
                        fid[a.index()] = 0;
                        continue;
                    }
                    cand_buf.clear();
                    cand_buf.extend_from_slice(routes.candidates(a, d));
                    let mut key: FKey = Vec::with_capacity(cand_buf.len());
                    for &p in &cand_buf {
                        let link = topo.egress(a, p);
                        let child = match link.dst {
                            NodeRef::Switch(t) => fid[t.index()],
                            NodeRef::Host(_) => unreachable!("candidates are switch links"),
                        };
                        key.push((class[link.id.index()], link.rate_bps, child));
                    }
                    // All candidate subtrees identical => every score group
                    // spans every port => provably one component, nothing
                    // to walk or enumerate.
                    let collapsed = key.windows(2).all(|w| w[0] == w[1]);
                    let f = self.fps.intern(key);
                    fid[a.index()] = f;
                    if cand_buf.len() < 2 {
                        continue;
                    }
                    report.entries += 1;
                    let canon = if collapsed {
                        // Marker signature: "n identical subtrees". The
                        // `u32::MAX` node field can't appear in a real walk
                        // signature, whose references are visit numbers.
                        self.sigs
                            .intern(vec![(u32::MAX, cand_buf.len() as u64, u32::MAX)])
                    } else if let Some(&c) = self.canon_memo.get(&f) {
                        c
                    } else {
                        // The lazy per-entry quiver: walk this entry's
                        // candidate subgraph exactly once.
                        let sig = canonical_signature(topo, routes, a, d, &class);
                        let c = self.sigs.intern(sig);
                        self.canon_memo.insert(f, c);
                        c
                    };
                    if seen_fids.insert(canon) {
                        report.classes += 1;
                    } else {
                        report.entries_reused += 1;
                    }
                    let tmpl = self.templates.entry(canon).or_insert_with(|| {
                        if collapsed {
                            None
                        } else {
                            let paths = enumerate_shortest_paths(
                                topo,
                                routes,
                                a,
                                d,
                                Quiver::DEFAULT_PATH_CAP,
                            );
                            report.paths_enumerated += paths.len() as u64;
                            let groups = group_scored_paths(paths.into_iter().map(|links| {
                                let first_port = topo.link(links[0]).src_port;
                                let idx = cand_buf
                                    .iter()
                                    .position(|&p| p == first_port)
                                    .expect("first hop is a candidate")
                                    as u16;
                                let cap = links
                                    .iter()
                                    .map(|&l| topo.link(l).rate_bps)
                                    .min()
                                    .unwrap_or(0);
                                let score =
                                    links.iter().map(|&l| class[l.index()] as u64).collect();
                                (idx, score, cap)
                            }));
                            (groups.len() > 1).then_some(groups)
                        }
                    });
                    match &*tmpl {
                        None => {
                            report.max_components = report.max_components.max(1);
                            routes.set_groups(a, d, Vec::new());
                        }
                        Some(template) => {
                            report.max_components = report.max_components.max(template.len());
                            report.asymmetric_entries += 1;
                            let groups = template
                                .iter()
                                .map(|g| PortGroup {
                                    ports: g.ports.iter().map(|&i| cand_buf[i as usize]).collect(),
                                    weight: g.weight,
                                })
                                .collect();
                            routes.set_groups(a, d, groups);
                        }
                    }
                }
            }
        }

        report.build_ns = start.elapsed().as_nanos() as u64;
        report
    }

    /// Union of two interned prefix-state sets.
    fn union(&mut self, a: u32, b: u32) -> u32 {
        if a == 0 || a == b {
            return b;
        }
        if b == 0 {
            return a;
        }
        if let Some(&id) = self.union_memo.get(&(a, b)) {
            return id;
        }
        let merged = {
            let (va, vb) = (self.bsets.get(a), self.bsets.get(b));
            let mut out: BSet = Vec::with_capacity(va.len() + vb.len());
            out.extend_from_slice(va);
            out.extend_from_slice(vb);
            out.sort_unstable();
            out.dedup();
            out
        };
        let id = self.bsets.intern(merged);
        self.union_memo.insert((a, b), id);
        id
    }

    /// Clamp every prefix bottleneck to `rate` (the state after crossing a
    /// link of that rate), mirroring `bottleneck.min(rate)` in the eager
    /// builder.
    fn advance(&mut self, b: u32, rate: u64) -> u32 {
        if let Some(&id) = self.advance_memo.get(&(b, rate)) {
            return id;
        }
        let advanced = {
            let mut out: BSet = self
                .bsets
                .get(b)
                .iter()
                .map(|&(s, cap)| (s, cap.min(rate)))
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        };
        let id = self.bsets.intern(advanced);
        self.advance_memo.insert((b, rate), id);
        id
    }

    /// The label restriction a prefix-state set induces on a link of
    /// `rate`: `(src, Source)` for path-starting prefixes, else
    /// `(src, cf(bottleneck, rate))` — exactly the eager per-path labels,
    /// aggregated as a set.
    fn shift(&mut self, b: u32, rate: u64) -> u32 {
        if let Some(&id) = self.shift_memo.get(&(b, rate)) {
            return id;
        }
        let shifted = {
            let mut out: LSet = self
                .bsets
                .get(b)
                .iter()
                .map(|&(s, cap)| {
                    let cf = if cap == SOURCE_CAP {
                        CapFactor::Source
                    } else {
                        CapFactor::ratio(cap, rate)
                    };
                    (s, cf)
                })
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        };
        let id = self.lsets.intern(shifted);
        self.shift_memo.insert((b, rate), id);
        id
    }

    /// Partition-refine a link class by this destination's restriction.
    /// Fresh ids never collide with pre-refinement ids, so links *not*
    /// labeled for this destination (which keep their class) can never
    /// stay merged with links that were.
    fn refine(&mut self, class: u32, lset: u32) -> u32 {
        if let Some(&id) = self.class_memo.get(&(class, lset)) {
            return id;
        }
        let id = self.next_class;
        self.next_class += 1;
        self.class_memo.insert((class, lset), id);
        id
    }
}

/// Canonical preorder serialization of one entry's candidate subgraph:
/// nodes numbered by first visit, link classes renumbered by first
/// occurrence. Each node contributes a `(u32::MAX, arity, visit_no)`
/// header followed by one `(renumbered class, rate_bps, child visit_no)`
/// tuple per candidate, with a newly visited child's block interleaved
/// right after its edge (preorder), so the encoding is prefix-unambiguous.
///
/// Two entries with equal signatures have isomorphic class-labeled
/// candidate DAGs (candidate order preserved), hence identical unrolled
/// path trees up to a consistent renaming of class ids — and path-score
/// grouping only depends on the *equality pattern* of scores, so their
/// decompositions in candidate-index space coincide, weights included
/// (capacities come from the rates, which the signature carries verbatim).
fn canonical_signature(
    topo: &Topology,
    routes: &RouteTable,
    entry: SwitchId,
    dst_leaf: u32,
    class: &[u32],
) -> FKey {
    let mut node_no: HashMap<u32, u32> = HashMap::new();
    let mut class_no: HashMap<u32, u32> = HashMap::new();
    let mut sig: FKey = Vec::new();
    node_no.insert(entry.0, 0);
    walk(
        topo,
        routes,
        entry,
        dst_leaf,
        class,
        &mut node_no,
        &mut class_no,
        &mut sig,
    );
    sig
}

#[allow(clippy::too_many_arguments)]
fn walk(
    topo: &Topology,
    routes: &RouteTable,
    s: SwitchId,
    dst_leaf: u32,
    class: &[u32],
    node_no: &mut HashMap<u32, u32>,
    class_no: &mut HashMap<u32, u32>,
    sig: &mut FKey,
) {
    let cands = routes.candidates(s, dst_leaf);
    sig.push((u32::MAX, cands.len() as u64, node_no[&s.0]));
    for &p in cands {
        let link = topo.egress(s, p);
        let next_class_no = class_no.len() as u32;
        let cn = *class_no
            .entry(class[link.id.index()])
            .or_insert(next_class_no);
        let t = match link.dst {
            NodeRef::Switch(t) => t,
            NodeRef::Host(_) => unreachable!("candidates are switch links"),
        };
        let (tn, first_visit) = match node_no.get(&t.0) {
            Some(&n) => (n, false),
            None => {
                let n = node_no.len() as u32;
                node_no.insert(t.0, n);
                (n, true)
            }
        };
        sig.push((cn, link.rate_bps, tn));
        if first_visit {
            walk(topo, routes, t, dst_leaf, class, node_no, class_no, sig);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::install_symmetric_groups_eager;
    use drill_net::{
        clos, leaf_spine, leaf_spine_custom, vl2, ClosSpec, LeafSpineSpec, LinkId, SwitchId,
        Vl2Spec, DEFAULT_PROP,
    };

    fn spec(spines: usize, leaves: usize) -> LeafSpineSpec {
        LeafSpineSpec {
            spines,
            leaves,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }
    }

    /// Every installed group table, as a comparable value.
    fn group_table(topo: &Topology, routes: &RouteTable) -> Vec<(u32, u32, Vec<PortGroup>)> {
        let mut out = Vec::new();
        for si in 0..topo.num_switches() {
            let s = SwitchId(si as u32);
            for d in 0..topo.num_leaves() as u32 {
                let g = routes.groups(s, d);
                if !g.is_empty() {
                    out.push((si as u32, d, g.to_vec()));
                }
            }
        }
        out
    }

    fn assert_structural_matches_eager(topo: &Topology) {
        let mut eager = RouteTable::compute(topo);
        let re = install_symmetric_groups_eager(topo, &mut eager);
        let mut structural = RouteTable::compute(topo);
        let rs = SymmetryEngine::new().install(topo, &mut structural);
        assert_eq!(
            group_table(topo, &eager),
            group_table(topo, &structural),
            "group tables must match bit-for-bit"
        );
        assert_eq!(re.entries, rs.entries);
        assert_eq!(re.asymmetric_entries, rs.asymmetric_entries);
        assert_eq!(re.max_components, rs.max_components);
        assert!(rs.classes <= rs.entries);
        assert_eq!(rs.entries_reused, rs.entries - rs.classes);
        assert!(
            rs.paths_enumerated <= re.paths_enumerated,
            "structural must never walk more paths than eager"
        );
    }

    #[test]
    fn matches_eager_on_figure4() {
        let mut topo = leaf_spine(&spec(3, 4));
        let l0 = topo.leaves()[0];
        topo.fail_switch_link(l0, SwitchId(4), 0);
        assert_structural_matches_eager(&topo);
    }

    #[test]
    fn matches_eager_on_heterogeneous_striping() {
        let s = LeafSpineSpec {
            spines: 3,
            leaves: 4,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let topo = leaf_spine_custom(&s, |leaf, spine| {
            let fat = (leaf == 0 && spine <= 1) || (leaf == 1 && spine == 0);
            vec![if fat { 40_000_000_000 } else { 10_000_000_000 }]
        });
        assert_structural_matches_eager(&topo);
    }

    #[test]
    fn matches_eager_on_vl2_failure() {
        let mut topo = vl2(&Vl2Spec::paper());
        let tor0 = topo.leaves()[0];
        assert!(topo.fail_switch_link(tor0, SwitchId(16), 0));
        assert_structural_matches_eager(&topo);
    }

    #[test]
    fn matches_eager_on_clos_failures() {
        let mut topo = clos(&ClosSpec::smoke());
        // Fail one leaf-agg and one agg-core link.
        let l0 = topo.leaves()[0];
        let agg = match topo.egress(l0, 0).dst {
            NodeRef::Switch(s) => s,
            _ => unreachable!(),
        };
        assert!(topo.fail_switch_link(l0, agg, 0));
        let core = match topo.egress(agg, 2).dst {
            NodeRef::Switch(s) => s,
            _ => unreachable!(),
        };
        assert!(topo.fail_switch_link(agg, core, 0));
        assert_structural_matches_eager(&topo);
    }

    #[test]
    fn symmetric_fabrics_enumerate_zero_paths() {
        for topo in [
            leaf_spine(&spec(4, 4)),
            clos(&ClosSpec::smoke()),
            vl2(&Vl2Spec::paper()),
        ] {
            let mut routes = RouteTable::compute(&topo);
            let report = SymmetryEngine::new().install(&topo, &mut routes);
            assert_eq!(
                report.paths_enumerated, 0,
                "symmetric fabrics collapse without enumeration"
            );
            assert_eq!(report.asymmetric_entries, 0);
            assert!(report.entries > 0);
            assert!(
                report.classes < report.entries,
                "symmetric entries share classes"
            );
        }
    }

    #[test]
    fn warm_reinstall_is_incremental_and_exact() {
        let mut topo = clos(&ClosSpec::smoke());
        let mut engine = SymmetryEngine::new();
        let mut routes = RouteTable::compute(&topo);
        engine.install(&topo, &mut routes);

        // Fault: lose a leaf-agg link, reconverge.
        let l0 = topo.leaves()[0];
        let agg = match topo.egress(l0, 0).dst {
            NodeRef::Switch(s) => s,
            _ => unreachable!(),
        };
        assert!(topo.fail_switch_link(l0, agg, 0));
        let mut warm_routes = RouteTable::compute(&topo);
        let warm = engine.install(&topo, &mut warm_routes);

        let mut eager_routes = RouteTable::compute(&topo);
        install_symmetric_groups_eager(&topo, &mut eager_routes);
        assert_eq!(
            group_table(&topo, &eager_routes),
            group_table(&topo, &warm_routes),
            "warm incremental reinstall matches fresh eager"
        );
        assert!(warm.entries_reused > 0);

        // Restore: the pre-fault structure is fully cached, so the third
        // install enumerates nothing.
        assert!(topo.restore_switch_link(l0, agg, 0));
        let mut back = RouteTable::compute(&topo);
        let third = engine.install(&topo, &mut back);
        assert_eq!(third.paths_enumerated, 0, "restore replays cached work");
    }

    /// Hand-built pod-symmetric Clos: links in mirrored positions of
    /// different pods are exactly symmetric (equal label sets), pinned via
    /// the eager Quiver's `links_symmetric`/`link_score`, and the engine
    /// assigns them one class (single-component entries everywhere).
    #[test]
    fn pod_symmetric_clos_link_classes() {
        let topo = clos(&ClosSpec::smoke());
        let routes = RouteTable::compute(&topo);
        let q = Quiver::build(&topo, &routes);
        // Pods are built identically: leaf 0 of pod 0 is switch 0, leaf 0
        // of pod 1 is switch 4 (2 leaves + 2 aggs per pod).
        let pod0_leaf = topo.leaves()[0];
        let pod1_leaf = topo.leaves()[2];
        let up0: LinkId = topo.egress(pod0_leaf, 0).id;
        let up0b: LinkId = topo.egress(pod0_leaf, 1).id;
        let up1: LinkId = topo.egress(pod1_leaf, 0).id;
        // Within a pod, both agg uplinks of a leaf are symmetric.
        assert!(q.links_symmetric(up0, up0b));
        assert_eq!(q.link_score(up0), q.link_score(up0b));
        // Across pods, label sets differ (sources differ) — the same
        // *score partition* shape, but not the same labels.
        assert!(!q.links_symmetric(up0, up1));
        assert_ne!(q.link_score(up0), q.link_score(up1));
        // The engine agrees with the Quiver: symmetric uplinks land in one
        // entry class and the whole fabric stays single-component.
        let mut r2 = RouteTable::compute(&topo);
        let report = SymmetryEngine::new().install(&topo, &mut r2);
        assert_eq!(report.asymmetric_entries, 0);
        assert_eq!(report.max_components, 1);
        assert!(group_table(&topo, &r2).is_empty());
    }
}
