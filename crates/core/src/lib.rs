//! The paper's contribution: **DRILL** (Distributed Randomized In-network
//! Localized Load-balancing).
//!
//! * [`DrillPolicy`] — the DRILL(d, m) per-packet scheduling algorithm
//!   (§3.2.2): every forwarding engine samples `d` random candidate output
//!   ports, compares them with its `m` remembered least-loaded ports, and
//!   enqueues the packet at the shortest of those queues.
//! * [`PerFlowDrill`] — the paper's "per-flow DRILL" strawman (§4): a
//!   load-aware decision for the first packet of each flow, after which the
//!   flow is pinned.
//! * [`Quiver`] — the labeled multidigraph of §3.4.1, with the §3.4.3
//!   capacity-factor extension for heterogeneous links.
//! * [`decompose_groups`] / [`install_symmetric_groups`] — the symmetric
//!   path decomposition that lets DRILL degrade gracefully to weighted
//!   ECMP-of-DRILL under asymmetry.
//! * [`SymmetryEngine`] — the structural control plane: symmetry-class
//!   decomposition with lazy per-entry quivers and incremental
//!   reconvergence, producing the exact group tables of the eager path
//!   ([`install_symmetric_groups_eager`]) without enumerating the fabric.
//! * [`stability`] — a discrete-time M×N queueing model reproducing the
//!   §3.2.4 stability results (DRILL(d,0) is unstable for admissible
//!   heterogeneous service rates; DRILL(d,m≥1) is stable).

#![warn(missing_docs)]

mod decompose;
mod drill;
mod quiver;
pub mod stability;
mod symmetry;

pub use decompose::{
    decompose_groups, install_symmetric_groups, install_symmetric_groups_eager, GroupingReport,
};
pub use drill::{DrillPolicy, PerFlowDrill};
pub use quiver::{enumerate_shortest_paths, CapFactor, Label, PathInfo, Quiver};
pub use symmetry::SymmetryEngine;
