//! The simulated packet.

use drill_sim::Time;

use crate::ids::{FlowId, HostId};

/// Ethernet + IP + TCP header overhead added to every data segment, in
/// bytes (14 Ethernet + 4 FCS + 20 IP + 20 TCP).
pub const HEADER_BYTES: u32 = 58;

/// Wire size of a pure ACK (headers only, padded to the Ethernet minimum).
pub const ACK_WIRE_BYTES: u32 = 64;

/// TCP-style packet flags.
pub mod flags {
    /// Carries payload bytes.
    pub const DATA: u8 = 1 << 0;
    /// Carries a cumulative acknowledgement.
    pub const ACK: u8 = 1 << 1;
    /// Final segment of the flow.
    pub const FIN: u8 = 1 << 2;
    /// Retransmission (Karn's rule: do not sample RTT).
    pub const RETX: u8 = 1 << 3;
}

/// CONGA metadata carried in the (simulated) VXLAN overlay header.
///
/// `path` identifies the uplink chosen at the source leaf; `ce` is the
/// congestion-extent metric aggregated along the path (max of per-hop DREs).
/// The `fb_*` fields piggyback one feedback entry in the reverse direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CongaTag {
    /// Uplink (path) index chosen at the source leaf.
    pub path: u16,
    /// Congestion extent gathered along the path (3-bit quantized).
    pub ce: u8,
    /// Feedback: path index at the *destination* leaf this feedback refers to.
    pub fb_path: u16,
    /// Feedback: congestion extent for `fb_path`.
    pub fb_ce: u8,
    /// Whether the feedback fields are meaningful.
    pub fb_valid: bool,
}

/// A packet in flight.
///
/// Sized for by-value movement through the event queue. Higher layers
/// interpret the TCP-ish fields; switches only read `dst`, `flow_hash`, the
/// source-route and the CONGA tag.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Globally unique packet id (diagnostics, reorder tracking).
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Stable hash of the flow's 5-tuple (assigned at flow creation).
    pub flow_hash: u64,
    /// Total bytes on the wire (payload + [`HEADER_BYTES`]).
    pub size: u32,
    /// TCP payload bytes (0 for pure ACKs).
    pub payload: u32,
    /// First payload byte's sequence number.
    pub seq: u64,
    /// Cumulative acknowledgement (valid when `flags::ACK`).
    pub ack: u64,
    /// Packet flags (see [`flags`]).
    pub flags: u8,
    /// Time the packet was handed to the sender NIC (for RTT sampling the
    /// receiver echoes this in `echo`).
    pub sent: Time,
    /// Echoed `sent` timestamp of the segment this ACK acknowledges.
    pub echo: Time,
    /// Sender-side emission index within the flow (reordering metrics).
    pub emit_idx: u32,
    /// Source route: up to three explicit transit switch ids (Presto; a
    /// 3-stage Clos up-and-down path has three transit choices).
    pub srcroute: [u32; 3],
    /// Number of valid entries in `srcroute`.
    pub srcroute_len: u8,
    /// Next unconsumed entry in `srcroute`.
    pub srcroute_pos: u8,
    /// CONGA overlay metadata.
    pub conga: CongaTag,
}

impl Packet {
    /// A data segment of `payload` bytes.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        id: u64,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        flow_hash: u64,
        seq: u64,
        payload: u32,
        now: Time,
    ) -> Packet {
        Packet {
            id,
            flow,
            src,
            dst,
            flow_hash,
            size: payload + HEADER_BYTES,
            payload,
            seq,
            ack: 0,
            flags: flags::DATA,
            sent: now,
            echo: Time::ZERO,
            emit_idx: 0,
            srcroute: [0; 3],
            srcroute_len: 0,
            srcroute_pos: 0,
            conga: CongaTag::default(),
        }
    }

    /// A pure ACK from `src` back to `dst` acknowledging `ack` bytes.
    pub fn pure_ack(
        id: u64,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        flow_hash: u64,
        ack: u64,
        now: Time,
    ) -> Packet {
        Packet {
            id,
            flow,
            src,
            dst,
            flow_hash,
            size: ACK_WIRE_BYTES,
            payload: 0,
            seq: 0,
            ack,
            flags: flags::ACK,
            sent: now,
            echo: Time::ZERO,
            emit_idx: 0,
            srcroute: [0; 3],
            srcroute_len: 0,
            srcroute_pos: 0,
            conga: CongaTag::default(),
        }
    }

    /// Whether this packet carries payload.
    #[inline]
    pub fn is_data(&self) -> bool {
        self.flags & flags::DATA != 0
    }

    /// Whether this packet carries an acknowledgement.
    #[inline]
    pub fn is_ack(&self) -> bool {
        self.flags & flags::ACK != 0
    }

    /// Whether this is a retransmission.
    #[inline]
    pub fn is_retx(&self) -> bool {
        self.flags & flags::RETX != 0
    }

    /// End of this segment's payload in sequence space.
    #[inline]
    pub fn seq_end(&self) -> u64 {
        self.seq + self.payload as u64
    }

    /// The telemetry-facing field mirror (see `drill_telemetry::Probe`).
    /// Call sites gate on `Probe::ENABLED` so the copy never happens on
    /// the disabled path.
    #[inline]
    pub fn meta(&self) -> drill_telemetry::PacketMeta {
        drill_telemetry::PacketMeta {
            id: self.id,
            flow: self.flow.0,
            src: self.src.0,
            dst: self.dst.0,
            size: self.size,
            seq: self.seq,
            emit_idx: self.emit_idx,
            flags: self.flags,
        }
    }

    /// Push a source-route hop (panics if the route is full).
    pub fn push_route(&mut self, switch: u32) {
        assert!(
            (self.srcroute_len as usize) < self.srcroute.len(),
            "source route full"
        );
        self.srcroute[self.srcroute_len as usize] = switch;
        self.srcroute_len += 1;
    }

    /// Consume the next source-route hop, if any remain.
    pub fn next_route_hop(&mut self) -> Option<u32> {
        if self.srcroute_pos < self.srcroute_len {
            let hop = self.srcroute[self.srcroute_pos as usize];
            self.srcroute_pos += 1;
            Some(hop)
        } else {
            None
        }
    }
}

/// A recycling pool of batch buffers.
///
/// The event loop repeatedly collects small bursts of items (TCP
/// transmissions, ACK batches, shim releases) into a `Vec`, hands each
/// item onward by value, and discards the vector. Allocating a fresh
/// vector per event dominated the allocator profile of long runs; the
/// pool keeps emptied buffers (capacity intact) for reuse, so the
/// steady-state hot path performs no allocation at all.
///
/// Buffers are returned cleared; `get` on an empty pool falls back to a
/// fresh `Vec`, so the pool is always safe to use and never a correctness
/// concern — only a recycling hint.
#[derive(Default)]
pub struct BufPool<T> {
    bufs: Vec<Vec<T>>,
}

/// Pool of [`Packet`] batch buffers (TCP/ACK emission bursts).
pub type PacketBufPool = BufPool<Packet>;

impl<T> BufPool<T> {
    /// An empty pool.
    pub const fn new() -> BufPool<T> {
        BufPool { bufs: Vec::new() }
    }

    /// Take an empty buffer from the pool (or allocate one).
    #[inline]
    pub fn get(&mut self) -> Vec<T> {
        self.bufs.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool for reuse. Contents are dropped.
    #[inline]
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        self.bufs.push(buf);
    }

    /// Number of idle buffers currently pooled.
    #[inline]
    pub fn idle(&self) -> usize {
        self.bufs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_flag_mirror_matches() {
        // drill-telemetry sits below this crate and mirrors the flag bits;
        // the two encodings must never drift apart.
        use drill_telemetry::meta_flags;
        assert_eq!(meta_flags::DATA, flags::DATA);
        assert_eq!(meta_flags::ACK, flags::ACK);
        assert_eq!(meta_flags::FIN, flags::FIN);
        assert_eq!(meta_flags::RETX, flags::RETX);
    }

    #[test]
    fn meta_mirrors_packet_fields() {
        let mut p = Packet::data(
            9,
            FlowId(2),
            HostId(3),
            HostId(4),
            0xdead,
            1460,
            1000,
            Time::from_micros(5),
        );
        p.emit_idx = 17;
        let m = p.meta();
        assert_eq!(m.id, 9);
        assert_eq!(m.flow, 2);
        assert_eq!(m.src, 3);
        assert_eq!(m.dst, 4);
        assert_eq!(m.size, 1000 + HEADER_BYTES);
        assert_eq!(m.seq, 1460);
        assert_eq!(m.emit_idx, 17);
        assert_eq!(m.flags, flags::DATA);
    }

    #[test]
    fn data_packet_fields() {
        let p = Packet::data(
            1,
            FlowId(2),
            HostId(3),
            HostId(4),
            0xdead,
            1460,
            1460,
            Time::from_micros(5),
        );
        assert!(p.is_data());
        assert!(!p.is_ack());
        assert_eq!(p.size, 1460 + HEADER_BYTES);
        assert_eq!(p.seq_end(), 2920);
        assert_eq!(p.sent, Time::from_micros(5));
    }

    #[test]
    fn ack_packet_fields() {
        let p = Packet::pure_ack(1, FlowId(2), HostId(4), HostId(3), 0xdead, 2920, Time::ZERO);
        assert!(p.is_ack());
        assert!(!p.is_data());
        assert_eq!(p.size, ACK_WIRE_BYTES);
        assert_eq!(p.ack, 2920);
        assert_eq!(p.payload, 0);
    }

    #[test]
    fn source_route_roundtrip() {
        let mut p = Packet::data(1, FlowId(0), HostId(0), HostId(1), 0, 0, 100, Time::ZERO);
        assert_eq!(p.next_route_hop(), None);
        p.push_route(10);
        p.push_route(20);
        assert_eq!(p.next_route_hop(), Some(10));
        assert_eq!(p.next_route_hop(), Some(20));
        assert_eq!(p.next_route_hop(), None);
    }

    #[test]
    #[should_panic(expected = "source route full")]
    fn source_route_overflow_panics() {
        let mut p = Packet::data(1, FlowId(0), HostId(0), HostId(1), 0, 0, 100, Time::ZERO);
        p.push_route(1);
        p.push_route(2);
        p.push_route(3);
        p.push_route(4);
    }

    #[test]
    fn packet_is_reasonably_small() {
        // Packets move by value through the event queue; keep them compact.
        assert!(
            std::mem::size_of::<Packet>() <= 112,
            "{}",
            std::mem::size_of::<Packet>()
        );
    }

    #[test]
    fn buf_pool_recycles_capacity() {
        let mut pool = PacketBufPool::new();
        let mut buf = pool.get();
        for i in 0..32 {
            buf.push(Packet::data(
                i,
                FlowId(0),
                HostId(0),
                HostId(1),
                0,
                0,
                100,
                Time::ZERO,
            ));
        }
        let cap = buf.capacity();
        pool.put(buf);
        assert_eq!(pool.idle(), 1);
        let buf = pool.get();
        assert!(buf.is_empty(), "pooled buffers come back cleared");
        assert_eq!(buf.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.idle(), 0);
    }
}
