//! Snapshot serialization of the network-layer value types.
//!
//! Encoding discipline follows `drill_sim::codec`: LEB128 varints for
//! small-magnitude fields, fixed 8-byte words for high-entropy ones
//! (`flow_hash` would cost 10 varint bytes), and decode paths that turn
//! hostile bytes into `io::Error` instead of panics. Container framing
//! (magic, version, checksum) lives in `drill-snapshot`; this module only
//! knows how to lay down one [`Packet`].

use std::io;

use drill_sim::codec::{invalid, put_u64, put_varint, Decoder};
use drill_sim::Time;

use crate::arena::PacketArena;
use crate::ids::{FlowId, HostId, SwitchId};
use crate::packet::{CongaTag, Packet};
use crate::NetEvent;

/// Append every field of `p`.
pub fn put_packet(buf: &mut Vec<u8>, p: &Packet) {
    put_varint(buf, p.id);
    put_varint(buf, p.flow.0 as u64);
    put_varint(buf, p.src.0 as u64);
    put_varint(buf, p.dst.0 as u64);
    put_u64(buf, p.flow_hash);
    put_varint(buf, p.size as u64);
    put_varint(buf, p.payload as u64);
    put_varint(buf, p.seq);
    put_varint(buf, p.ack);
    buf.push(p.flags);
    put_varint(buf, p.sent.as_nanos());
    put_varint(buf, p.echo.as_nanos());
    put_varint(buf, p.emit_idx as u64);
    for hop in p.srcroute {
        put_varint(buf, hop as u64);
    }
    buf.push(p.srcroute_len);
    buf.push(p.srcroute_pos);
    put_varint(buf, p.conga.path as u64);
    buf.push(p.conga.ce);
    put_varint(buf, p.conga.fb_path as u64);
    buf.push(p.conga.fb_ce);
    buf.push(p.conga.fb_valid as u8);
}

/// Decode one packet written by [`put_packet`].
pub fn get_packet(d: &mut Decoder<'_>) -> io::Result<Packet> {
    let id = d.varint()?;
    let flow = FlowId(d.varint_u32()?);
    let src = HostId(d.varint_u32()?);
    let dst = HostId(d.varint_u32()?);
    let flow_hash = d.u64_fixed()?;
    let size = d.varint_u32()?;
    let payload = d.varint_u32()?;
    let seq = d.varint()?;
    let ack = d.varint()?;
    let flags = d.u8()?;
    let sent = Time::from_nanos(d.varint()?);
    let echo = Time::from_nanos(d.varint()?);
    let emit_idx = d.varint_u32()?;
    let mut srcroute = [0u32; 3];
    for hop in &mut srcroute {
        *hop = d.varint_u32()?;
    }
    let srcroute_len = d.u8()?;
    let srcroute_pos = d.u8()?;
    if srcroute_len as usize > srcroute.len() || srcroute_pos > srcroute_len {
        return Err(invalid("source route cursor out of bounds"));
    }
    let conga = CongaTag {
        path: d.varint_u16()?,
        ce: d.u8()?,
        fb_path: d.varint_u16()?,
        fb_ce: d.u8()?,
        fb_valid: match d.u8()? {
            0 => false,
            1 => true,
            _ => return Err(invalid("bad bool byte")),
        },
    };
    Ok(Packet {
        id,
        flow,
        src,
        dst,
        flow_hash,
        size,
        payload,
        seq,
        ack,
        flags,
        sent,
        echo,
        emit_idx,
        srcroute,
        srcroute_len,
        srcroute_pos,
        conga,
    })
}

/// Append one [`NetEvent`]. Packet handles are encoded against `arena` —
/// the arena owning the event's packet (the destination shard's arena in a
/// sharded run).
pub fn put_net_event(buf: &mut Vec<u8>, arena: &PacketArena, ev: &NetEvent) {
    match ev {
        NetEvent::ArriveSwitch {
            switch,
            ingress,
            pkt,
        } => {
            buf.push(0);
            put_varint(buf, switch.0 as u64);
            put_varint(buf, *ingress as u64);
            arena.encode_ref(buf, pkt);
        }
        NetEvent::ArriveHost { host, pkt } => {
            buf.push(1);
            put_varint(buf, host.0 as u64);
            arena.encode_ref(buf, pkt);
        }
        NetEvent::SwitchTxDone { switch, port } => {
            buf.push(2);
            put_varint(buf, switch.0 as u64);
            put_varint(buf, *port as u64);
        }
        NetEvent::HostTxDone { host } => {
            buf.push(3);
            put_varint(buf, host.0 as u64);
        }
        NetEvent::EnqueueCommit {
            switch,
            port,
            bytes,
            engine,
        } => {
            buf.push(4);
            put_varint(buf, switch.0 as u64);
            put_varint(buf, *port as u64);
            put_varint(buf, *bytes as u64);
            put_varint(buf, *engine as u64);
        }
    }
}

/// Decode one event written by [`put_net_event`] against the same arena.
pub fn get_net_event(d: &mut Decoder<'_>, arena: &mut PacketArena) -> io::Result<NetEvent> {
    Ok(match d.u8()? {
        0 => NetEvent::ArriveSwitch {
            switch: SwitchId(d.varint_u32()?),
            ingress: d.varint_u16()?,
            pkt: arena.decode_ref(d)?,
        },
        1 => NetEvent::ArriveHost {
            host: HostId(d.varint_u32()?),
            pkt: arena.decode_ref(d)?,
        },
        2 => NetEvent::SwitchTxDone {
            switch: SwitchId(d.varint_u32()?),
            port: d.varint_u16()?,
        },
        3 => NetEvent::HostTxDone {
            host: HostId(d.varint_u32()?),
        },
        4 => NetEvent::EnqueueCommit {
            switch: SwitchId(d.varint_u32()?),
            port: d.varint_u16()?,
            bytes: d.varint_u32()?,
            engine: d.varint_u16()?,
        },
        _ => return Err(invalid("unknown net event tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_round_trips_every_field() {
        let mut p = Packet::data(
            0xdead_beef_0042,
            FlowId(7),
            HostId(3),
            HostId(250),
            0x1234_5678_9abc_def0,
            146_000,
            1460,
            Time::from_micros(17),
        );
        p.ack = 99;
        p.flags |= crate::packet::flags::RETX;
        p.echo = Time::from_nanos(123_456);
        p.emit_idx = 41;
        p.push_route(10);
        p.push_route(20);
        assert_eq!(p.next_route_hop(), Some(10));
        p.conga = CongaTag {
            path: 3,
            ce: 5,
            fb_path: 1,
            fb_ce: 2,
            fb_valid: true,
        };
        let mut buf = Vec::new();
        put_packet(&mut buf, &p);
        let mut d = Decoder::new(&buf);
        let q = get_packet(&mut d).unwrap();
        assert_eq!(d.remaining(), 0);
        assert_eq!(q.id, p.id);
        assert_eq!(q.flow, p.flow);
        assert_eq!(q.src, p.src);
        assert_eq!(q.dst, p.dst);
        assert_eq!(q.flow_hash, p.flow_hash);
        assert_eq!(q.size, p.size);
        assert_eq!(q.payload, p.payload);
        assert_eq!(q.seq, p.seq);
        assert_eq!(q.ack, p.ack);
        assert_eq!(q.flags, p.flags);
        assert_eq!(q.sent, p.sent);
        assert_eq!(q.echo, p.echo);
        assert_eq!(q.emit_idx, p.emit_idx);
        assert_eq!(q.srcroute, p.srcroute);
        assert_eq!(q.srcroute_len, p.srcroute_len);
        assert_eq!(q.srcroute_pos, p.srcroute_pos);
        assert_eq!(q.conga, p.conga);
    }

    #[test]
    fn corrupt_route_cursor_errors() {
        let p = Packet::data(1, FlowId(0), HostId(0), HostId(1), 0, 0, 100, Time::ZERO);
        let mut buf = Vec::new();
        put_packet(&mut buf, &p);
        // srcroute_pos byte sits right after srcroute_len; force pos > len.
        let pos_byte = buf.len() - 6;
        buf[pos_byte] = 3;
        let mut d = Decoder::new(&buf);
        assert!(get_packet(&mut d).is_err());
    }
}
