//! Typed identifiers for network entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type! {
    /// A host (server) in the topology.
    HostId(u32)
}
id_type! {
    /// A switch in the topology.
    SwitchId(u32)
}
id_type! {
    /// A unidirectional link.
    LinkId(u32)
}
id_type! {
    /// A TCP flow (index into the runtime's flow table).
    FlowId(u32)
}

/// Either endpoint kind of a link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeRef {
    /// A host endpoint.
    Host(HostId),
    /// A switch endpoint.
    Switch(SwitchId),
}

impl NodeRef {
    /// The switch id, if this is a switch.
    pub fn switch(self) -> Option<SwitchId> {
        match self {
            NodeRef::Switch(s) => Some(s),
            NodeRef::Host(_) => None,
        }
    }

    /// The host id, if this is a host.
    pub fn host(self) -> Option<HostId> {
        match self {
            NodeRef::Host(h) => Some(h),
            NodeRef::Switch(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compare_and_index() {
        assert_eq!(HostId(3).index(), 3);
        assert!(SwitchId(1) < SwitchId(2));
        assert_eq!(format!("{:?}", LinkId(7)), "LinkId(7)");
    }

    #[test]
    fn noderef_accessors() {
        let h = NodeRef::Host(HostId(1));
        let s = NodeRef::Switch(SwitchId(2));
        assert_eq!(h.host(), Some(HostId(1)));
        assert_eq!(h.switch(), None);
        assert_eq!(s.switch(), Some(SwitchId(2)));
        assert_eq!(s.host(), None);
    }
}
