//! Network substrate for the DRILL reproduction: packets, Clos topologies,
//! output-queued switches with multiple forwarding engines, host NICs, and
//! the load-balancer plug-in API.
//!
//! The models here implement what the paper's OMNET++/INET setup provided:
//!
//! * store-and-forward links with exact serialization + propagation timing;
//! * output-queued switches with tail-drop FIFO port queues;
//! * multiple independent *forwarding engines* per switch (§3.2.1), each
//!   packet handled by the engine of its ingress port;
//! * the queue-occupancy *visibility lag* the paper models: a packet that is
//!   still being written into an output queue is invisible to the engines'
//!   load sensing until fully enqueued — the root cause of the paper's
//!   synchronization effect (§3.2.3);
//! * topology builders for every network evaluated in the paper (two-stage
//!   leaf-spine with arbitrary over-subscription, the scale-out variant,
//!   heterogeneous/imbalanced striping, VL2 and fat-tree), plus
//!   production-scale fabrics: general three-tier Clos ([`clos`]) and
//!   oversubscribed large fat-trees ([`fat_tree_custom`], k=32/64);
//! * shortest-path (ECMP-style) routing with link-failure support.
//!
//! Load-balancing *policies* plug in through [`SwitchPolicy`] /
//! [`HostPolicy`]; the DRILL algorithm itself lives in `drill-core`, and the
//! baselines (ECMP, per-packet Random/RR, Presto, CONGA, WCMP) in
//! `drill-lb`.

#![warn(missing_docs)]

mod arena;
mod builders;
mod host;
mod ids;
mod lbapi;
mod packet;
mod routing;
mod shard;
pub mod snapio;
mod switch;
mod topology;

pub use arena::{PacketArena, PacketRef};
pub use builders::{
    clos, fat_tree, fat_tree_custom, leaf_spine, leaf_spine_custom, vl2, ClosSpec, LeafSpineSpec,
    Vl2Spec, DEFAULT_PROP,
};
pub use host::{HostNic, HOST_NIC_BUF_BYTES};
pub use ids::{FlowId, HostId, LinkId, NodeRef, SwitchId};
pub use lbapi::{
    weighted_group_pick, HostPolicy, NullHostPolicy, PortGroup, QueueView, SelectCtx, SwitchPolicy,
};
pub use packet::{flags, BufPool, CongaTag, Packet, PacketBufPool, ACK_WIRE_BYTES, HEADER_BYTES};
pub use routing::{RouteTable, UNREACHABLE};
pub use shard::ShardPlan;
pub use switch::{PortQueues, PortStats, Switch, SwitchConfig};
pub use topology::{HopClass, Link, SwitchKind, Topology};

use drill_sim::Time;

/// Events produced by the network layer, to be embedded in the simulation's
/// global event enum by the runtime.
///
/// Packet-carrying variants hold a [`PacketRef`] into the run's
/// [`PacketArena`], not the packet itself: events are what the timing
/// wheel's slab nodes, batch sorts and `EventSink` drains copy around, so
/// they are pinned small by the `const` assert below (the `fat-events`
/// A/B build carries packets by value and lifts the pin).
#[derive(Debug)]
pub enum NetEvent {
    /// A packet has fully arrived at a switch (store-and-forward).
    ArriveSwitch {
        /// Destination switch.
        switch: SwitchId,
        /// Ingress port at that switch (selects the forwarding engine).
        ingress: u16,
        /// Handle to the packet.
        pkt: PacketRef,
    },
    /// A packet has fully arrived at a host NIC.
    ArriveHost {
        /// Destination host.
        host: HostId,
        /// Handle to the packet.
        pkt: PacketRef,
    },
    /// A switch output port finished serializing its head packet.
    SwitchTxDone {
        /// The switch.
        switch: SwitchId,
        /// The output port.
        port: u16,
    },
    /// A host NIC finished serializing its head packet.
    HostTxDone {
        /// The host.
        host: HostId,
    },
    /// A packet previously appended to a switch output queue has been fully
    /// written to buffer memory and becomes visible to the forwarding
    /// engines' load sensing (§3.2.1).
    EnqueueCommit {
        /// The switch.
        switch: SwitchId,
        /// The output port.
        port: u16,
        /// Bytes that become visible.
        bytes: u32,
        /// The forwarding engine that performed the enqueue (its pending
        /// counter is released by the commit).
        engine: u16,
    },
}

/// Sink for newly produced events: `(deliver_at, event)` pairs.
///
/// Network components push into a plain `Vec` that the runtime drains into
/// its global event queue; this avoids borrow entanglement between
/// components and the queue.
pub type EventSink = Vec<(Time, NetEvent)>;

/// The whole point of the arena: handle-based events stay two words.
/// `ArriveSwitch` (u32 switch + u16 ingress + 8-byte [`PacketRef`]) is the
/// largest variant at 16 bytes including the discriminant.
#[cfg(not(feature = "fat-events"))]
const _: () = assert!(std::mem::size_of::<NetEvent>() <= 16);
