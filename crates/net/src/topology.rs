//! Topology graph: switches, hosts and unidirectional links.

use drill_sim::Time;

use crate::ids::{HostId, LinkId, NodeRef, SwitchId};

/// Role of a switch in the Clos hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchKind {
    /// Edge switch hosts attach to (ToR / leaf).
    Leaf,
    /// Middle stage of a 3-stage Clos (VL2 Aggregation, fat-tree Agg).
    Agg,
    /// Top stage (2-stage spine, VL2 Intermediate, fat-tree core).
    Spine,
}

/// Classification of a link for the paper's per-hop metrics
/// (Figure 6c / Figure 14c).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HopClass {
    /// Host NIC to its leaf.
    HostUp,
    /// Leaf upward (to spine in 2-stage, to agg in 3-stage) — the paper's
    /// "Hop 1".
    LeafUp,
    /// Agg upward to the top stage (3-stage only).
    AggUp,
    /// Top stage downward — the paper's "Hop 2".
    SpineDown,
    /// Agg downward to a leaf (3-stage only).
    AggDown,
    /// Leaf to host — the paper's "Hop 3" (last hop).
    ToHost,
}

/// A unidirectional link.
#[derive(Clone, Debug)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// Transmitting endpoint.
    pub src: NodeRef,
    /// Egress port index at `src` (0 for hosts).
    pub src_port: u16,
    /// Receiving endpoint.
    pub dst: NodeRef,
    /// Ingress port index at `dst` (0 for hosts).
    pub dst_port: u16,
    /// Current capacity in bits per second (may be lowered by
    /// [`Topology::degrade_switch_link`]).
    pub rate_bps: u64,
    /// Healthy (as-built) capacity in bits per second. Degradation scales
    /// `rate_bps` down from this value; restoration returns to it.
    pub nominal_bps: u64,
    /// Propagation delay.
    pub prop: Time,
    /// Whether the link is operational.
    pub up: bool,
    /// Random packet-loss probability in parts per million (0 = lossless).
    pub loss_ppm: u32,
    /// Hop classification.
    pub hop: HopClass,
    /// The reverse-direction link.
    pub peer: LinkId,
}

#[derive(Clone, Debug)]
struct SwitchMeta {
    kind: SwitchKind,
    /// Egress links, indexed by port number.
    ports: Vec<LinkId>,
    /// Ingress links, indexed by ingress port number (same index space as
    /// the egress port of the paired reverse link).
    ingress: Vec<LinkId>,
    /// Dense leaf index if this is a leaf.
    leaf_index: Option<u32>,
}

#[derive(Clone, Debug)]
struct HostMeta {
    leaf: SwitchId,
    /// Host's uplink (host -> leaf).
    uplink: LinkId,
    /// Egress port at the leaf pointing back to this host.
    leaf_port: u16,
}

/// The network graph.
///
/// Built by the topology constructors (`leaf_spine`, `vl2`, `fat_tree`,
/// `leaf_spine_custom`) or assembled manually
/// with [`Topology::add_switch`] / [`Topology::add_host`] /
/// [`Topology::connect_switches`].
#[derive(Clone, Debug, Default)]
pub struct Topology {
    links: Vec<Link>,
    switches: Vec<SwitchMeta>,
    hosts: Vec<HostMeta>,
    leaves: Vec<SwitchId>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Add a switch of the given kind.
    pub fn add_switch(&mut self, kind: SwitchKind) -> SwitchId {
        let id = SwitchId(self.switches.len() as u32);
        let leaf_index = (kind == SwitchKind::Leaf).then(|| {
            self.leaves.push(id);
            (self.leaves.len() - 1) as u32
        });
        self.switches.push(SwitchMeta {
            kind,
            ports: Vec::new(),
            ingress: Vec::new(),
            leaf_index,
        });
        id
    }

    /// Add a host attached to `leaf` with a bidirectional link of `rate_bps`
    /// and `prop` propagation delay.
    pub fn add_host(&mut self, leaf: SwitchId, rate_bps: u64, prop: Time) -> HostId {
        assert_eq!(
            self.switches[leaf.index()].kind,
            SwitchKind::Leaf,
            "hosts attach to leaves"
        );
        let host = HostId(self.hosts.len() as u32);
        let (up, _down) = self.add_link_pair(
            NodeRef::Host(host),
            NodeRef::Switch(leaf),
            rate_bps,
            rate_bps,
            prop,
            HopClass::HostUp,
            HopClass::ToHost,
        );
        let leaf_port = self.links[up.index()].dst_port;
        self.hosts.push(HostMeta {
            leaf,
            uplink: up,
            leaf_port,
        });
        host
    }

    /// Connect two switches with a bidirectional link (possibly one of
    /// several parallel links). `rate_ab`/`rate_ba` are the two directions'
    /// capacities. Returns `(a->b, b->a)` link ids.
    pub fn connect_switches(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        rate_ab: u64,
        rate_ba: u64,
        prop: Time,
    ) -> (LinkId, LinkId) {
        let ka = self.switches[a.index()].kind;
        let kb = self.switches[b.index()].kind;
        let (hop_ab, hop_ba) = match (ka, kb) {
            (SwitchKind::Leaf, SwitchKind::Spine) => (HopClass::LeafUp, HopClass::SpineDown),
            (SwitchKind::Spine, SwitchKind::Leaf) => (HopClass::SpineDown, HopClass::LeafUp),
            (SwitchKind::Leaf, SwitchKind::Agg) => (HopClass::LeafUp, HopClass::AggDown),
            (SwitchKind::Agg, SwitchKind::Leaf) => (HopClass::AggDown, HopClass::LeafUp),
            (SwitchKind::Agg, SwitchKind::Spine) => (HopClass::AggUp, HopClass::SpineDown),
            (SwitchKind::Spine, SwitchKind::Agg) => (HopClass::SpineDown, HopClass::AggUp),
            _ => panic!("unsupported switch adjacency {ka:?}-{kb:?}"),
        };
        self.add_link_pair(
            NodeRef::Switch(a),
            NodeRef::Switch(b),
            rate_ab,
            rate_ba,
            prop,
            hop_ab,
            hop_ba,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn add_link_pair(
        &mut self,
        a: NodeRef,
        b: NodeRef,
        rate_ab: u64,
        rate_ba: u64,
        prop: Time,
        hop_ab: HopClass,
        hop_ba: HopClass,
    ) -> (LinkId, LinkId) {
        assert!(rate_ab > 0 && rate_ba > 0, "link rates must be positive");
        let id_ab = LinkId(self.links.len() as u32);
        let id_ba = LinkId(self.links.len() as u32 + 1);
        let port_a = self.next_port(a);
        let port_b = self.next_port(b);
        self.links.push(Link {
            id: id_ab,
            src: a,
            src_port: port_a,
            dst: b,
            dst_port: port_b,
            rate_bps: rate_ab,
            nominal_bps: rate_ab,
            prop,
            up: true,
            loss_ppm: 0,
            hop: hop_ab,
            peer: id_ba,
        });
        self.links.push(Link {
            id: id_ba,
            src: b,
            src_port: port_b,
            dst: a,
            dst_port: port_a,
            rate_bps: rate_ba,
            nominal_bps: rate_ba,
            prop,
            up: true,
            loss_ppm: 0,
            hop: hop_ba,
            peer: id_ab,
        });
        self.register_port(a, id_ab, id_ba);
        self.register_port(b, id_ba, id_ab);
        (id_ab, id_ba)
    }

    fn next_port(&self, node: NodeRef) -> u16 {
        match node {
            NodeRef::Switch(s) => self.switches[s.index()].ports.len() as u16,
            NodeRef::Host(_) => 0,
        }
    }

    fn register_port(&mut self, node: NodeRef, egress: LinkId, ingress: LinkId) {
        if let NodeRef::Switch(s) = node {
            let meta = &mut self.switches[s.index()];
            meta.ports.push(egress);
            meta.ingress.push(ingress);
        }
    }

    /// Mark both directions between two switches as failed. With parallel
    /// links, fails the `nth` (0-based) pair. Returns whether a pair was
    /// found.
    pub fn fail_switch_link(&mut self, a: SwitchId, b: SwitchId, nth: usize) -> bool {
        let mut seen = 0;
        for i in 0..self.links.len() {
            let l = &self.links[i];
            if l.up && l.src == NodeRef::Switch(a) && l.dst == NodeRef::Switch(b) {
                if seen == nth {
                    let peer = l.peer;
                    self.links[i].up = false;
                    self.links[peer.index()].up = false;
                    return true;
                }
                seen += 1;
            }
        }
        false
    }

    /// Reverse [`Topology::fail_switch_link`]: mark both directions of the
    /// `nth` (0-based) currently-*failed* pair between two switches as up
    /// again. Restoring a never-failed (or already-restored) pair is a
    /// clean no-op returning `false`.
    pub fn restore_switch_link(&mut self, a: SwitchId, b: SwitchId, nth: usize) -> bool {
        let mut seen = 0;
        for i in 0..self.links.len() {
            let l = &self.links[i];
            if !l.up && l.src == NodeRef::Switch(a) && l.dst == NodeRef::Switch(b) {
                if seen == nth {
                    let peer = l.peer;
                    self.links[i].up = true;
                    self.links[peer.index()].up = true;
                    return true;
                }
                seen += 1;
            }
        }
        false
    }

    /// Mark both directions of a link pair as failed, by the id of either
    /// direction. Returns `false` (no-op) if the pair is already down.
    pub fn fail_link_pair(&mut self, id: LinkId) -> bool {
        let peer = self.links[id.index()].peer;
        if !self.links[id.index()].up {
            return false;
        }
        self.links[id.index()].up = false;
        self.links[peer.index()].up = false;
        true
    }

    /// Mark both directions of a link pair as up, by the id of either
    /// direction. Returns `false` (no-op) if the pair is already up.
    pub fn restore_link_pair(&mut self, id: LinkId) -> bool {
        let peer = self.links[id.index()].peer;
        if self.links[id.index()].up {
            return false;
        }
        self.links[id.index()].up = true;
        self.links[peer.index()].up = true;
        true
    }

    /// Degrade both directions of the `nth` switch-to-switch pair between
    /// `a` and `b` (0-based over pairs in either state, matching creation
    /// order) to `num/den` of each direction's *nominal* capacity. The
    /// result is clamped to at least 1 bps so transmit times stay finite.
    /// `num >= den` (with `num/den >= 1`) restores full nominal capacity.
    /// Returns whether a pair was found.
    pub fn degrade_switch_link(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        nth: usize,
        num: u32,
        den: u32,
    ) -> bool {
        assert!(den > 0, "degradation fraction denominator must be positive");
        let mut seen = 0;
        for i in 0..self.links.len() {
            let l = &self.links[i];
            if l.src == NodeRef::Switch(a) && l.dst == NodeRef::Switch(b) {
                if seen == nth {
                    let peer = l.peer.index();
                    for j in [i, peer] {
                        let nominal = self.links[j].nominal_bps;
                        let scaled = (nominal as u128 * num as u128 / den as u128) as u64;
                        self.links[j].rate_bps = scaled.clamp(1, nominal);
                    }
                    return true;
                }
                seen += 1;
            }
        }
        false
    }

    /// Set the random packet-loss probability (parts per million) on both
    /// directions of the `nth` switch-to-switch pair between `a` and `b`
    /// (0-based over pairs in either state). `ppm = 0` clears the loss.
    /// Returns whether a pair was found.
    pub fn set_switch_link_loss(&mut self, a: SwitchId, b: SwitchId, nth: usize, ppm: u32) -> bool {
        assert!(ppm <= 1_000_000, "loss probability exceeds 100%");
        let mut seen = 0;
        for i in 0..self.links.len() {
            let l = &self.links[i];
            if l.src == NodeRef::Switch(a) && l.dst == NodeRef::Switch(b) {
                if seen == nth {
                    let peer = l.peer.index();
                    self.links[i].loss_ppm = ppm;
                    self.links[peer].loss_ppm = ppm;
                    return true;
                }
                seen += 1;
            }
        }
        false
    }

    // ---- queries -------------------------------------------------------

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// All leaf switches, in creation order (dense leaf-index order).
    pub fn leaves(&self) -> &[SwitchId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Kind of a switch.
    pub fn switch_kind(&self, s: SwitchId) -> SwitchKind {
        self.switches[s.index()].kind
    }

    /// Dense leaf index of a leaf switch.
    pub fn leaf_index(&self, s: SwitchId) -> Option<u32> {
        self.switches[s.index()].leaf_index
    }

    /// A link by id.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// All links (both directions).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Egress link of `(switch, port)`.
    #[inline]
    pub fn egress(&self, s: SwitchId, port: u16) -> &Link {
        let lid = self.switches[s.index()].ports[port as usize];
        &self.links[lid.index()]
    }

    /// Egress link ids of a switch, indexed by port.
    pub fn egress_links(&self, s: SwitchId) -> &[LinkId] {
        &self.switches[s.index()].ports
    }

    /// Ingress link of `(switch, port)` — the reverse direction of the
    /// egress link on the same port index.
    #[inline]
    pub fn ingress_link(&self, s: SwitchId, port: u16) -> &Link {
        let lid = self.switches[s.index()].ingress[port as usize];
        &self.links[lid.index()]
    }

    /// Number of ports on a switch.
    pub fn num_ports(&self, s: SwitchId) -> usize {
        self.switches[s.index()].ports.len()
    }

    /// The leaf a host attaches to.
    #[inline]
    pub fn host_leaf(&self, h: HostId) -> SwitchId {
        self.hosts[h.index()].leaf
    }

    /// Dense leaf index of the leaf a host attaches to.
    #[inline]
    pub fn host_leaf_index(&self, h: HostId) -> u32 {
        self.switches[self.hosts[h.index()].leaf.index()]
            .leaf_index
            .expect("host leaf has a leaf index")
    }

    /// The host's uplink (host -> leaf).
    #[inline]
    pub fn host_uplink(&self, h: HostId) -> &Link {
        &self.links[self.hosts[h.index()].uplink.index()]
    }

    /// Egress port at the host's leaf that points to the host.
    #[inline]
    pub fn host_leaf_port(&self, h: HostId) -> u16 {
        self.hosts[h.index()].leaf_port
    }

    /// All hosts attached to a leaf.
    pub fn hosts_of_leaf(&self, leaf: SwitchId) -> Vec<HostId> {
        (0..self.hosts.len() as u32)
            .map(HostId)
            .filter(|h| self.hosts[h.index()].leaf == leaf)
            .collect()
    }

    /// Egress ports of `s` whose link leads to switch `to` and is up.
    pub fn ports_to_switch(&self, s: SwitchId, to: SwitchId) -> Vec<u16> {
        self.switches[s.index()]
            .ports
            .iter()
            .enumerate()
            .filter_map(|(p, &lid)| {
                let l = &self.links[lid.index()];
                (l.up && l.dst == NodeRef::Switch(to)).then_some(p as u16)
            })
            .collect()
    }

    /// Check structural invariants; panics with a description on violation.
    /// Intended for tests and builder validation.
    pub fn validate(&self) {
        for (i, l) in self.links.iter().enumerate() {
            assert_eq!(l.id.index(), i, "link id matches slot");
            let peer = &self.links[l.peer.index()];
            assert_eq!(peer.peer, l.id, "peer links are mutual");
            assert_eq!(peer.src, l.dst, "peer reverses endpoints");
            assert_eq!(peer.dst, l.src, "peer reverses endpoints");
            assert_eq!(l.up, peer.up, "both directions share fate");
            assert_eq!(l.loss_ppm, peer.loss_ppm, "both directions share loss");
            assert!(l.rate_bps >= 1, "degraded rate stays positive");
            assert!(l.rate_bps <= l.nominal_bps, "rate never exceeds nominal");
            if let NodeRef::Switch(s) = l.src {
                assert_eq!(
                    self.switches[s.index()].ports[l.src_port as usize],
                    l.id,
                    "egress port table consistent"
                );
            }
        }
        for (h, meta) in self.hosts.iter().enumerate() {
            let up = &self.links[meta.uplink.index()];
            assert_eq!(up.src, NodeRef::Host(HostId(h as u32)));
            assert_eq!(up.dst, NodeRef::Switch(meta.leaf));
            let down = &self.links[up.peer.index()];
            assert_eq!(
                down.src_port, meta.leaf_port,
                "leaf port points back at host"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Topology, SwitchId, SwitchId, SwitchId) {
        // 2 leaves, 1 spine, 1 host per leaf.
        let mut t = Topology::new();
        let l0 = t.add_switch(SwitchKind::Leaf);
        let l1 = t.add_switch(SwitchKind::Leaf);
        let s0 = t.add_switch(SwitchKind::Spine);
        t.connect_switches(
            l0,
            s0,
            40_000_000_000,
            40_000_000_000,
            Time::from_nanos(500),
        );
        t.connect_switches(
            l1,
            s0,
            40_000_000_000,
            40_000_000_000,
            Time::from_nanos(500),
        );
        t.add_host(l0, 10_000_000_000, Time::from_nanos(500));
        t.add_host(l1, 10_000_000_000, Time::from_nanos(500));
        t.validate();
        (t, l0, l1, s0)
    }

    #[test]
    fn build_and_validate() {
        let (t, l0, _l1, s0) = tiny();
        assert_eq!(t.num_switches(), 3);
        assert_eq!(t.num_hosts(), 2);
        assert_eq!(t.num_leaves(), 2);
        assert_eq!(t.leaf_index(l0), Some(0));
        assert_eq!(t.leaf_index(s0), None);
        assert_eq!(t.switch_kind(s0), SwitchKind::Spine);
    }

    #[test]
    fn ports_and_links_are_consistent() {
        let (t, l0, _l1, s0) = tiny();
        // l0 has 2 ports: to spine, to host.
        assert_eq!(t.num_ports(l0), 2);
        let up = t.egress(l0, 0);
        assert_eq!(up.dst, NodeRef::Switch(s0));
        assert_eq!(up.hop, HopClass::LeafUp);
        let h0 = HostId(0);
        assert_eq!(t.host_leaf(h0), l0);
        let to_host = t.egress(l0, t.host_leaf_port(h0));
        assert_eq!(to_host.dst, NodeRef::Host(h0));
        assert_eq!(to_host.hop, HopClass::ToHost);
        assert_eq!(t.host_uplink(h0).hop, HopClass::HostUp);
    }

    #[test]
    fn ports_to_switch_and_failures() {
        let (mut t, l0, _l1, s0) = tiny();
        assert_eq!(t.ports_to_switch(l0, s0), vec![0]);
        assert!(t.fail_switch_link(l0, s0, 0));
        assert!(t.ports_to_switch(l0, s0).is_empty());
        // Both directions failed.
        let down = t.links().iter().filter(|l| !l.up).count();
        assert_eq!(down, 2);
        // Failing again finds nothing.
        assert!(!t.fail_switch_link(l0, s0, 0));
    }

    #[test]
    fn parallel_links_get_distinct_ports() {
        let mut t = Topology::new();
        let l = t.add_switch(SwitchKind::Leaf);
        let s = t.add_switch(SwitchKind::Spine);
        t.connect_switches(l, s, 10_000_000_000, 10_000_000_000, Time::from_nanos(500));
        t.connect_switches(l, s, 10_000_000_000, 10_000_000_000, Time::from_nanos(500));
        t.validate();
        assert_eq!(t.ports_to_switch(l, s), vec![0, 1]);
        assert!(t.fail_switch_link(l, s, 1));
        assert_eq!(t.ports_to_switch(l, s), vec![0]);
    }

    #[test]
    fn fail_parallel_links_one_by_one() {
        let mut t = Topology::new();
        let l = t.add_switch(SwitchKind::Leaf);
        let s = t.add_switch(SwitchKind::Spine);
        for _ in 0..3 {
            t.connect_switches(l, s, 10_000_000_000, 10_000_000_000, Time::from_nanos(500));
        }
        t.validate();
        // `nth` indexes only the *live* pairs, so nth=0 repeatedly walks
        // through all three parallel links.
        assert_eq!(t.ports_to_switch(l, s), vec![0, 1, 2]);
        assert!(t.fail_switch_link(l, s, 0));
        assert_eq!(t.ports_to_switch(l, s), vec![1, 2]);
        assert!(t.fail_switch_link(l, s, 0));
        assert_eq!(t.ports_to_switch(l, s), vec![2]);
        assert!(t.fail_switch_link(l, s, 0));
        assert!(t.ports_to_switch(l, s).is_empty());
        assert!(!t.fail_switch_link(l, s, 0), "all pairs already down");
        // Every failure downed both directions.
        assert_eq!(t.links().iter().filter(|x| !x.up).count(), 6);
    }

    #[test]
    fn fail_switch_link_nth_out_of_range_is_a_no_op() {
        let mut t = Topology::new();
        let l = t.add_switch(SwitchKind::Leaf);
        let s = t.add_switch(SwitchKind::Spine);
        t.connect_switches(l, s, 10_000_000_000, 10_000_000_000, Time::from_nanos(500));
        t.connect_switches(l, s, 10_000_000_000, 10_000_000_000, Time::from_nanos(500));
        assert!(!t.fail_switch_link(l, s, 2), "only pairs 0 and 1 exist");
        assert!(!t.fail_switch_link(l, s, 1000));
        assert_eq!(t.ports_to_switch(l, s), vec![0, 1], "nothing was failed");
        // The reverse orientation has its own (mirrored) pair indices.
        assert!(t.fail_switch_link(s, l, 1));
        assert_eq!(t.ports_to_switch(l, s), vec![0]);
        assert_eq!(t.ports_to_switch(s, l), vec![0]);
    }

    #[test]
    fn restore_switch_link_reverses_failure() {
        let (mut t, l0, _l1, s0) = tiny();
        assert!(t.fail_switch_link(l0, s0, 0));
        assert!(t.ports_to_switch(l0, s0).is_empty());
        assert!(t.restore_switch_link(l0, s0, 0));
        t.validate();
        assert_eq!(t.ports_to_switch(l0, s0), vec![0]);
        assert_eq!(t.ports_to_switch(s0, l0), vec![0], "both directions back");
        assert_eq!(t.links().iter().filter(|l| !l.up).count(), 0);
    }

    #[test]
    fn restore_never_failed_or_doubly_restored_is_a_no_op() {
        // Mirrors `fail_switch_link_nth_out_of_range_is_a_no_op`: restoring
        // a pair that was never failed, or restoring twice, is clean.
        let (mut t, l0, _l1, s0) = tiny();
        assert!(!t.restore_switch_link(l0, s0, 0), "nothing is failed yet");
        assert!(!t.restore_switch_link(l0, s0, 1000));
        t.validate();
        assert!(t.fail_switch_link(l0, s0, 0));
        assert!(t.restore_switch_link(l0, s0, 0));
        assert!(
            !t.restore_switch_link(l0, s0, 0),
            "second restore finds no failed pair"
        );
        t.validate();
        assert_eq!(t.ports_to_switch(l0, s0), vec![0]);
    }

    #[test]
    fn restore_parallel_links_nth_indexes_failed_pairs() {
        let mut t = Topology::new();
        let l = t.add_switch(SwitchKind::Leaf);
        let s = t.add_switch(SwitchKind::Spine);
        for _ in 0..3 {
            t.connect_switches(l, s, 10_000_000_000, 10_000_000_000, Time::from_nanos(500));
        }
        assert!(t.fail_switch_link(l, s, 0));
        assert!(t.fail_switch_link(l, s, 0));
        assert!(t.fail_switch_link(l, s, 0));
        assert!(t.ports_to_switch(l, s).is_empty());
        // `nth` walks only the *failed* pairs, so nth=0 repeatedly revives
        // them one at a time in creation order.
        assert!(t.restore_switch_link(l, s, 0));
        assert_eq!(t.ports_to_switch(l, s), vec![0]);
        assert!(t.restore_switch_link(l, s, 1), "nth=1 is the third pair");
        assert_eq!(t.ports_to_switch(l, s), vec![0, 2]);
        assert!(t.restore_switch_link(l, s, 0));
        assert_eq!(t.ports_to_switch(l, s), vec![0, 1, 2]);
        t.validate();
    }

    #[test]
    fn link_pair_fail_restore_by_id_is_idempotent() {
        let (mut t, l0, _l1, s0) = tiny();
        let lid = t.egress(l0, t.ports_to_switch(l0, s0)[0]).id;
        assert!(!t.restore_link_pair(lid), "already up");
        assert!(t.fail_link_pair(lid));
        assert!(!t.fail_link_pair(lid), "already down");
        let peer = t.link(lid).peer;
        assert!(t.restore_link_pair(peer), "either direction's id works");
        assert!(!t.restore_link_pair(lid));
        t.validate();
    }

    #[test]
    fn degrade_and_restore_capacity() {
        let (mut t, l0, _l1, s0) = tiny();
        let lid = t.egress(l0, 0).id;
        assert_eq!(t.link(lid).rate_bps, 40_000_000_000);
        assert!(t.degrade_switch_link(l0, s0, 0, 1, 4));
        t.validate();
        assert_eq!(t.link(lid).rate_bps, 10_000_000_000);
        assert_eq!(t.link(t.link(lid).peer).rate_bps, 10_000_000_000);
        assert_eq!(t.link(lid).nominal_bps, 40_000_000_000);
        // Degradation composes from nominal, not from the current rate.
        assert!(t.degrade_switch_link(l0, s0, 0, 1, 2));
        assert_eq!(t.link(lid).rate_bps, 20_000_000_000);
        // num/den >= 1 restores full capacity (clamped to nominal).
        assert!(t.degrade_switch_link(l0, s0, 0, 1, 1));
        assert_eq!(t.link(lid).rate_bps, 40_000_000_000);
        assert!(!t.degrade_switch_link(l0, s0, 7, 1, 2), "no 8th pair");
        // An extreme fraction clamps to 1 bps rather than 0.
        assert!(t.degrade_switch_link(l0, s0, 0, 0, 1_000_000));
        assert_eq!(t.link(lid).rate_bps, 1);
        t.validate();
    }

    #[test]
    fn set_switch_link_loss_covers_both_directions() {
        let (mut t, l0, _l1, s0) = tiny();
        let lid = t.egress(l0, 0).id;
        assert_eq!(t.link(lid).loss_ppm, 0);
        assert!(t.set_switch_link_loss(l0, s0, 0, 10_000));
        t.validate();
        assert_eq!(t.link(lid).loss_ppm, 10_000);
        assert_eq!(t.link(t.link(lid).peer).loss_ppm, 10_000);
        assert!(t.set_switch_link_loss(l0, s0, 0, 0), "ppm=0 clears");
        assert_eq!(t.link(lid).loss_ppm, 0);
        assert!(!t.set_switch_link_loss(l0, s0, 3, 5), "no 4th pair");
    }

    #[test]
    fn hosts_of_leaf() {
        let (t, l0, l1, _) = tiny();
        assert_eq!(t.hosts_of_leaf(l0), vec![HostId(0)]);
        assert_eq!(t.hosts_of_leaf(l1), vec![HostId(1)]);
        assert_eq!(t.host_leaf_index(HostId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "hosts attach to leaves")]
    fn host_on_spine_panics() {
        let mut t = Topology::new();
        let s = t.add_switch(SwitchKind::Spine);
        t.add_host(s, 1_000_000_000, Time::ZERO);
    }
}
