//! Output-queued switch with multiple forwarding engines.
//!
//! Modeling notes (all matching §3.2.1 of the paper):
//!
//! * Store-and-forward: a packet is processed once fully received; egress
//!   serialization takes `size / rate`, then propagation `prop`.
//! * Output queues are per-port FIFOs with a byte-based tail-drop limit.
//! * Each packet is handled by the forwarding engine of its ingress port
//!   (`ingress % engines`); engines run the switch's [`SwitchPolicy`]
//!   independently (the policy object receives the engine index and keeps
//!   per-engine state).
//! * **Queue visibility lag**: a freshly appended packet only becomes
//!   visible to the engines' load sensing after its *enqueue commit*, one
//!   serialization time after it is appended. Until then engines see the
//!   shorter, stale queue — the mechanism behind the paper's
//!   synchronization effect. Disable with
//!   [`SwitchConfig::model_enqueue_commit`] to give engines perfect
//!   instantaneous queue information.

use std::collections::VecDeque;
use std::io;

use drill_sim::codec::{invalid, put_varint, Decoder};
use drill_sim::{SimRng, Time};
use drill_telemetry::{DropReason, EngineChoice, Probe};

use crate::arena::{PacketArena, PacketRef};
use crate::ids::{NodeRef, SwitchId};
use crate::lbapi::{weighted_group_pick, QueueView, SelectCtx, SwitchPolicy};
use crate::packet::Packet;
use crate::routing::RouteTable;
use crate::topology::{HopClass, Topology};
use crate::{EventSink, NetEvent};

/// Switch hardware parameters.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    /// Number of independent forwarding engines (§3.2.1).
    pub engines: usize,
    /// Per-output-port buffer limit in bytes (tail drop).
    pub queue_limit_bytes: u64,
    /// Model the enqueue-commit visibility lag (true reproduces the paper's
    /// switch; false gives engines perfect queue information).
    pub model_enqueue_commit: bool,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            engines: 1,
            // 100 x 1500B full frames per port: a shallow-buffered
            // commodity ToR.
            queue_limit_bytes: 150_000,
            model_enqueue_commit: true,
        }
    }
}

/// Per-port counters exposed for samplers and assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct PortStats {
    /// Packets dropped at this port (tail drop + dead-link drops).
    pub drops: u64,
    /// Bytes dropped.
    pub drop_bytes: u64,
    /// Packets transmitted.
    pub tx_pkts: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Sum of queueing delays (enqueue to transmission start), ns.
    pub wait_ns_sum: u64,
    /// Number of queueing-delay samples.
    pub wait_count: u64,
}

/// A packet resident in a port FIFO: its arena handle plus the wire size
/// and enqueue time, cached inline so occupancy accounting and wait
/// sampling never chase the arena.
struct QueuedPkt {
    r: PacketRef,
    size: u32,
    enq: Time,
}

struct OutPort {
    q: VecDeque<QueuedPkt>,
    /// Waiting bytes (excluding the packet being serialized).
    q_bytes: u64,
    /// Packet currently on the wire, with its enqueue time.
    in_flight: Option<QueuedPkt>,
    /// Committed (engine-visible) bytes, including the in-flight packet.
    visible_bytes: u64,
    /// Committed (engine-visible) packets, including the in-flight packet.
    visible_pkts: u32,
    stats: PortStats,
}

impl OutPort {
    fn new() -> OutPort {
        OutPort {
            q: VecDeque::new(),
            q_bytes: 0,
            in_flight: None,
            visible_bytes: 0,
            visible_pkts: 0,
            stats: PortStats::default(),
        }
    }

    /// Actual occupancy in packets (waiting + in flight).
    fn pkts(&self) -> u32 {
        self.q.len() as u32 + self.in_flight.is_some() as u32
    }

    /// Actual occupancy in bytes (waiting + in flight).
    fn bytes(&self) -> u64 {
        self.q_bytes + self.in_flight.as_ref().map_or(0, |q| q.size as u64)
    }
}

/// Engine-visible view over the ports (the [`QueueView`] given to policies).
pub struct PortQueues<'a> {
    ports: &'a [OutPort],
    /// Per-(engine, port) bytes enqueued but not yet committed, row-major
    /// by engine. An engine always sees its own pending writes.
    pending: &'a [u64],
}

impl QueueView for PortQueues<'_> {
    #[inline]
    fn visible_bytes(&self, port: u16) -> u64 {
        self.ports[port as usize].visible_bytes
    }
    #[inline]
    fn visible_pkts(&self, port: u16) -> u32 {
        self.ports[port as usize].visible_pkts
    }
    #[inline]
    fn num_ports(&self) -> usize {
        self.ports.len()
    }
    #[inline]
    fn visible_bytes_for(&self, engine: usize, port: u16) -> u64 {
        self.ports[port as usize].visible_bytes
            + self.pending[engine * self.ports.len() + port as usize]
    }
}

/// An output-queued switch.
pub struct Switch {
    id: SwitchId,
    cfg: SwitchConfig,
    ports: Vec<OutPort>,
    policy: Box<dyn SwitchPolicy>,
    /// Per-(engine, port) uncommitted bytes, row-major by engine.
    pending: Vec<u64>,
    /// Packets dropped because no route / dead egress existed.
    pub blackholed: u64,
    /// Packets forwarded (enqueued somewhere).
    pub forwarded: u64,
    /// Per-egress link liveness, mirrored from the topology by
    /// [`Switch::sync_link_state`]. A real switch prunes a dead local
    /// member (loss of carrier, LAG member down) at line speed — only
    /// *multi-hop* routing knowledge waits for the detection delay — so
    /// forwarding skips dead local ports immediately even while the
    /// installed routes are stale.
    live_egress: Vec<bool>,
    /// Fast-path guard: true iff any entry of `live_egress` is false.
    any_dead: bool,
}

impl Switch {
    /// A switch with `num_ports` output ports running `policy`.
    pub fn new(
        id: SwitchId,
        num_ports: usize,
        cfg: SwitchConfig,
        policy: Box<dyn SwitchPolicy>,
    ) -> Switch {
        assert!(cfg.engines > 0, "at least one forwarding engine");
        let engines = cfg.engines;
        Switch {
            id,
            cfg,
            ports: (0..num_ports).map(|_| OutPort::new()).collect(),
            policy,
            pending: vec![0; engines * num_ports],
            blackholed: 0,
            forwarded: 0,
            live_egress: vec![true; num_ports],
            any_dead: false,
        }
    }

    /// Mirror the topology's per-egress link state into the local pruning
    /// table. Call after any link/switch state change in `topo` (the switch
    /// itself never polls): the world invokes this on every switch after
    /// build-time failures, after each fault strikes, and after control-plane
    /// rebuilds that replace switch objects.
    pub fn sync_link_state(&mut self, topo: &Topology) {
        self.any_dead = false;
        for port in 0..self.ports.len() {
            let up = topo.egress(self.id, port as u16).up;
            self.live_egress[port] = up;
            self.any_dead |= !up;
        }
    }

    /// Is `port`'s egress link believed up? Constant-false-free fast path:
    /// with no dead links the check is a single bool.
    #[inline]
    fn is_live(&self, port: u16) -> bool {
        !self.any_dead || self.live_egress[port as usize]
    }

    /// This switch's id.
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// Mutable access to the policy (tests, CONGA feedback inspection).
    pub fn policy_mut(&mut self) -> &mut dyn SwitchPolicy {
        &mut *self.policy
    }

    /// Serialize this switch's dynamic state: every port FIFO (handles
    /// against `arena`, sizes, enqueue times), occupancy/visibility
    /// counters, per-port stats, per-engine pending bytes, the
    /// blackhole/forward counters, and the policy's state.
    ///
    /// `live_egress`/`any_dead` are *not* serialized — they mirror the
    /// topology's link state, which restore rebuilds by replaying the
    /// applied fault prefix and calling
    /// [`sync_link_state`](Switch::sync_link_state).
    pub fn save_state(&self, arena: &PacketArena, buf: &mut Vec<u8>) {
        put_varint(buf, self.ports.len() as u64);
        for p in &self.ports {
            put_varint(buf, p.q.len() as u64);
            for qp in &p.q {
                arena.encode_ref(buf, &qp.r);
                put_varint(buf, qp.size as u64);
                put_varint(buf, qp.enq.as_nanos());
            }
            put_varint(buf, p.q_bytes);
            match &p.in_flight {
                Some(qp) => {
                    buf.push(1);
                    arena.encode_ref(buf, &qp.r);
                    put_varint(buf, qp.size as u64);
                    put_varint(buf, qp.enq.as_nanos());
                }
                None => buf.push(0),
            }
            put_varint(buf, p.visible_bytes);
            put_varint(buf, p.visible_pkts as u64);
            for word in [
                p.stats.drops,
                p.stats.drop_bytes,
                p.stats.tx_pkts,
                p.stats.tx_bytes,
                p.stats.wait_ns_sum,
                p.stats.wait_count,
            ] {
                put_varint(buf, word);
            }
        }
        put_varint(buf, self.pending.len() as u64);
        for &b in &self.pending {
            put_varint(buf, b);
        }
        put_varint(buf, self.blackholed);
        put_varint(buf, self.forwarded);
        self.policy.save_state(buf);
    }

    /// Restore state written by [`save_state`](Switch::save_state) into a
    /// freshly built switch of the same shape (same ports, engines,
    /// scheme). The caller re-syncs link state afterwards.
    pub fn load_state(&mut self, arena: &mut PacketArena, d: &mut Decoder<'_>) -> io::Result<()> {
        let nports = d.varint_usize()?;
        if nports != self.ports.len() {
            return Err(invalid("switch port count mismatch"));
        }
        let read_qp = |arena: &mut PacketArena, d: &mut Decoder<'_>| -> io::Result<QueuedPkt> {
            Ok(QueuedPkt {
                r: arena.decode_ref(d)?,
                size: d.varint_u32()?,
                enq: Time::from_nanos(d.varint()?),
            })
        };
        for i in 0..nports {
            let qlen = d.varint_usize()?;
            let mut q = VecDeque::with_capacity(qlen.min(1 << 16));
            for _ in 0..qlen {
                q.push_back(read_qp(arena, d)?);
            }
            let q_bytes = d.varint()?;
            let in_flight = match d.u8()? {
                0 => None,
                1 => Some(read_qp(arena, d)?),
                _ => return Err(invalid("bad in-flight byte")),
            };
            let visible_bytes = d.varint()?;
            let visible_pkts = d.varint_u32()?;
            let stats = PortStats {
                drops: d.varint()?,
                drop_bytes: d.varint()?,
                tx_pkts: d.varint()?,
                tx_bytes: d.varint()?,
                wait_ns_sum: d.varint()?,
                wait_count: d.varint()?,
            };
            self.ports[i] = OutPort {
                q,
                q_bytes,
                in_flight,
                visible_bytes,
                visible_pkts,
                stats,
            };
        }
        let npending = d.varint_usize()?;
        if npending != self.pending.len() {
            return Err(invalid("switch engine-grid mismatch"));
        }
        for b in &mut self.pending {
            *b = d.varint()?;
        }
        self.blackholed = d.varint()?;
        self.forwarded = d.varint()?;
        self.policy.load_state(d)
    }

    /// Actual queue occupancy in packets at `port` (waiting + in flight).
    pub fn queue_pkts(&self, port: u16) -> u32 {
        self.ports[port as usize].pkts()
    }

    /// Actual queue occupancy in bytes at `port` (waiting + in flight).
    pub fn queue_bytes(&self, port: u16) -> u64 {
        self.ports[port as usize].bytes()
    }

    /// Bytes *waiting* at `port`, excluding the in-flight head — exactly
    /// the quantity admission control bounds against `queue_limit_bytes`
    /// (the audit queue-ceiling watchdog checks this, not
    /// [`queue_bytes`](Switch::queue_bytes)).
    pub fn waiting_bytes(&self, port: u16) -> u64 {
        self.ports[port as usize].q_bytes
    }

    /// Engine-visible occupancy in packets at `port`.
    pub fn visible_pkts(&self, port: u16) -> u32 {
        self.ports[port as usize].visible_pkts
    }

    /// Per-port counters.
    pub fn port_stats(&self, port: u16) -> PortStats {
        self.ports[port as usize].stats
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Handle a fully received packet: pick the egress port and enqueue.
    ///
    /// `probe` observes the forwarding decision and the queue transition;
    /// pass `&mut NoopProbe` (zero-sized, `ENABLED = false`) to compile
    /// the telemetry out entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn receive<P: Probe>(
        &mut self,
        topo: &Topology,
        routes: &RouteTable,
        arena: &mut PacketArena,
        mut pref: PacketRef,
        ingress: u16,
        now: Time,
        rng: &mut SimRng,
        out: &mut EventSink,
        probe: &mut P,
    ) {
        let from_host = topo.ingress_link(self.id, ingress).hop == HopClass::HostUp;
        let dst = {
            let pkt = arena.get_mut(&mut pref);
            self.policy.on_arrival(pkt, now, topo, self.id);
            pkt.dst
        };

        // 1. Local delivery?
        let port = if topo.host_leaf(dst) == self.id {
            topo.host_leaf_port(dst)
        } else {
            let dst_leaf = topo.host_leaf_index(dst);
            let picked = self.pick_fabric_port(
                topo,
                routes,
                arena.get_mut(&mut pref),
                dst_leaf,
                ingress,
                now,
                rng,
                probe,
            );
            match picked {
                Some(p) => p,
                None => {
                    self.blackholed += 1;
                    if P::ENABLED {
                        let engine = (ingress as usize % self.cfg.engines) as u16;
                        probe.on_drop(
                            now,
                            self.id.0,
                            u16::MAX,
                            engine,
                            &arena.get(&pref).meta(),
                            DropReason::NoRoute,
                        );
                    }
                    arena.free(pref);
                    return;
                }
            }
        };

        self.policy.on_forward(
            arena.get_mut(&mut pref),
            port,
            now,
            topo,
            self.id,
            from_host,
        );
        let engine = ingress as usize % self.cfg.engines;
        self.enqueue_from_engine(topo, arena, port, pref, engine, now, out, probe);
    }

    /// Choose the egress port toward `dst_leaf`: source route if present and
    /// usable, otherwise (weighted symmetric component ->) policy selection.
    #[allow(clippy::too_many_arguments)]
    fn pick_fabric_port<P: Probe>(
        &mut self,
        topo: &Topology,
        routes: &RouteTable,
        pkt: &mut Packet,
        dst_leaf: u32,
        ingress: u16,
        now: Time,
        rng: &mut SimRng,
        probe: &mut P,
    ) -> Option<u16> {
        // Source route (Presto): follow the designated transit switch if a
        // live port to it exists; otherwise consume the hop and fall back.
        if pkt.srcroute_pos < pkt.srcroute_len {
            let hop = pkt.srcroute[pkt.srcroute_pos as usize];
            let ports = topo.ports_to_switch(self.id, SwitchId(hop));
            if !ports.is_empty() {
                pkt.srcroute_pos += 1;
                let i = (pkt.flow_hash as usize) % ports.len();
                return Some(ports[i]);
            }
            pkt.srcroute_pos += 1; // unusable (failure): fall back below
        }

        let candidates = routes.candidates(self.id, dst_leaf);
        if candidates.is_empty() {
            return None;
        }
        if candidates.len() == 1 {
            return if self.is_live(candidates[0]) {
                Some(candidates[0])
            } else {
                None
            };
        }
        let groups = routes.groups(self.id, dst_leaf);
        let subset: &[u16] = if groups.is_empty() {
            candidates
        } else {
            &weighted_group_pick(groups, pkt.flow_hash).ports
        };
        // Prune locally-dead members from the stale route set. Routes are
        // computed on a live topology, so the filter only ever fires during
        // a fault window (`any_dead`); the no-fault hot path allocates
        // nothing. An all-dead subset blackholes at the caller.
        let live_buf: Vec<u16>;
        let subset: &[u16] =
            if self.any_dead && subset.iter().any(|&p| !self.live_egress[p as usize]) {
                live_buf = subset
                    .iter()
                    .copied()
                    .filter(|&p| self.live_egress[p as usize])
                    .collect();
                if live_buf.is_empty() {
                    return None;
                }
                &live_buf
            } else {
                subset
            };
        if subset.len() == 1 {
            return Some(subset[0]);
        }
        let ctx = SelectCtx {
            now,
            engine: ingress as usize % self.cfg.engines,
            flow_hash: pkt.flow_hash,
            flow: pkt.flow,
            dst_leaf,
            candidates: subset,
        };
        let view = PortQueues {
            ports: &self.ports,
            pending: &self.pending,
        };
        let chosen = self.policy.select(&ctx, &view, rng);
        debug_assert!(subset.contains(&chosen), "policy must choose a candidate");
        if P::ENABLED {
            // Ground truth the engine could not see (§3.2.1): the *actual*
            // occupancy of every candidate at selection time. This scan
            // exists only for the probe and is gated out when disabled.
            let mut best = subset[0];
            let mut best_pkts = self.ports[best as usize].pkts();
            for &c in &subset[1..] {
                let pk = self.ports[c as usize].pkts();
                if pk < best_pkts {
                    best = c;
                    best_pkts = pk;
                }
            }
            probe.on_engine_choice(
                now,
                self.id.0,
                ctx.engine as u16,
                &EngineChoice {
                    chosen,
                    chosen_pkts: self.ports[chosen as usize].pkts(),
                    best,
                    best_pkts,
                    candidates: subset.len() as u16,
                },
            );
        }
        Some(chosen)
    }

    /// Append a packet to `port`'s queue (tail drop), starting transmission
    /// if the port is idle. Attributed to engine 0.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue<P: Probe>(
        &mut self,
        topo: &Topology,
        arena: &mut PacketArena,
        port: u16,
        pref: PacketRef,
        now: Time,
        out: &mut EventSink,
        probe: &mut P,
    ) {
        self.enqueue_from_engine(topo, arena, port, pref, 0, now, out, probe)
    }

    /// [`Switch::enqueue`] attributed to a specific forwarding engine (the
    /// engine's pending-write counter tracks the packet until its commit).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_from_engine<P: Probe>(
        &mut self,
        topo: &Topology,
        arena: &mut PacketArena,
        port: u16,
        pref: PacketRef,
        engine: usize,
        now: Time,
        out: &mut EventSink,
        probe: &mut P,
    ) {
        let link = topo.egress(self.id, port);
        let size = arena.get(&pref).size;
        let p = &mut self.ports[port as usize];
        if !link.up {
            p.stats.drops += 1;
            p.stats.drop_bytes += size as u64;
            if P::ENABLED {
                probe.on_drop(
                    now,
                    self.id.0,
                    port,
                    engine as u16,
                    &arena.get(&pref).meta(),
                    DropReason::LinkDown,
                );
            }
            arena.free(pref);
            return;
        }
        // Copied only on the enabled path (the handle moves into the queue
        // below, before the hook fires).
        let meta = if P::ENABLED {
            Some(arena.get(&pref).meta())
        } else {
            None
        };
        if p.in_flight.is_none() {
            debug_assert!(p.q.is_empty());
            // Commit event is pushed before TxDone so that for equal
            // timestamps the packet becomes visible before it departs.
            if self.cfg.model_enqueue_commit {
                let commit_at = now + Time::tx_time(size as u64, link.rate_bps);
                out.push((
                    commit_at,
                    NetEvent::EnqueueCommit {
                        switch: self.id,
                        port,
                        bytes: size,
                        engine: engine as u16,
                    },
                ));
                self.pending[engine * self.ports.len() + port as usize] += size as u64;
            } else {
                p.visible_bytes += size as u64;
                p.visible_pkts += 1;
            }
            let p = &mut self.ports[port as usize];
            p.in_flight = Some(QueuedPkt {
                r: pref,
                size,
                enq: now,
            });
            p.stats.wait_count += 1; // zero wait
            out.push((
                now + Time::tx_time(size as u64, link.rate_bps),
                NetEvent::SwitchTxDone {
                    switch: self.id,
                    port,
                },
            ));
        } else {
            if p.q_bytes + size as u64 > self.cfg.queue_limit_bytes {
                p.stats.drops += 1;
                p.stats.drop_bytes += size as u64;
                if let Some(m) = meta {
                    probe.on_drop(
                        now,
                        self.id.0,
                        port,
                        engine as u16,
                        &m,
                        DropReason::TailDrop,
                    );
                }
                arena.free(pref);
                return;
            }
            if self.cfg.model_enqueue_commit {
                let commit_at = now + Time::tx_time(size as u64, link.rate_bps);
                out.push((
                    commit_at,
                    NetEvent::EnqueueCommit {
                        switch: self.id,
                        port,
                        bytes: size,
                        engine: engine as u16,
                    },
                ));
                self.pending[engine * self.ports.len() + port as usize] += size as u64;
            } else {
                p.visible_bytes += size as u64;
                p.visible_pkts += 1;
            }
            let p = &mut self.ports[port as usize];
            p.q_bytes += size as u64;
            p.q.push_back(QueuedPkt {
                r: pref,
                size,
                enq: now,
            });
        }
        if let Some(m) = meta {
            let p = &self.ports[port as usize];
            probe.on_enqueue(now, self.id.0, port, engine as u16, &m, p.pkts(), p.bytes());
        }
        self.forwarded += 1;
    }

    /// An enqueue commit fired: the packet becomes visible to all engines
    /// (and leaves the writing engine's pending counter).
    pub fn on_enqueue_commit(&mut self, port: u16, bytes: u32, engine: u16) {
        let p = &mut self.ports[port as usize];
        p.visible_bytes += bytes as u64;
        p.visible_pkts += 1;
        let idx = engine as usize * self.ports.len() + port as usize;
        debug_assert!(self.pending[idx] >= bytes as u64);
        self.pending[idx] -= bytes as u64;
    }

    /// Serialization of the in-flight packet finished: hand it to the wire
    /// and start the next one.
    ///
    /// `rng` feeds the lossy-link model: on links with `loss_ppm > 0` each
    /// departing packet is dropped with that probability. The draw happens
    /// *only* on lossy links, so lossless runs consume no randomness here.
    #[allow(clippy::too_many_arguments)]
    pub fn on_tx_done<P: Probe>(
        &mut self,
        topo: &Topology,
        arena: &mut PacketArena,
        port: u16,
        now: Time,
        rng: &mut SimRng,
        out: &mut EventSink,
        probe: &mut P,
    ) {
        let link = topo.egress(self.id, port);
        let p = &mut self.ports[port as usize];
        let QueuedPkt { r: pref, size, enq } = p
            .in_flight
            .take()
            .expect("tx-done with no packet in flight");
        debug_assert!(p.visible_pkts > 0, "departing packet must have committed");
        p.visible_bytes -= size as u64;
        p.visible_pkts -= 1;
        p.stats.tx_pkts += 1;
        p.stats.tx_bytes += size as u64;
        if P::ENABLED {
            // Full sojourn: append to end of serialization. Fires even if
            // the link died mid-flight (the packet did leave the queue);
            // the drop hook below records its fate.
            let depth = p.pkts();
            probe.on_dequeue(
                now,
                self.id.0,
                port,
                arena.get(&pref).id,
                depth,
                (now - enq).as_nanos(),
            );
        }
        let lost_on_wire =
            link.up && link.loss_ppm > 0 && rng.below(1_000_000) < link.loss_ppm as usize;
        if lost_on_wire {
            // Corrupted on a lossy wire: it left the queue but never arrives.
            p.stats.drops += 1;
            p.stats.drop_bytes += size as u64;
            if P::ENABLED {
                probe.on_drop(
                    now,
                    self.id.0,
                    port,
                    u16::MAX,
                    &arena.get(&pref).meta(),
                    DropReason::LinkLoss,
                );
            }
            arena.free(pref);
        } else if link.up {
            let arrive = now + link.prop;
            match link.dst {
                NodeRef::Switch(s) => {
                    out.push((
                        arrive,
                        NetEvent::ArriveSwitch {
                            switch: s,
                            ingress: link.dst_port,
                            pkt: pref,
                        },
                    ));
                }
                NodeRef::Host(h) => {
                    out.push((arrive, NetEvent::ArriveHost { host: h, pkt: pref }));
                }
            }
        } else {
            // Link died while the packet was serializing: it is lost.
            p.stats.drops += 1;
            p.stats.drop_bytes += size as u64;
            if P::ENABLED {
                // Engine unknown at this point (u16::MAX); the recorder's
                // port FIFO recovers it from the matching dequeue.
                probe.on_drop(
                    now,
                    self.id.0,
                    port,
                    u16::MAX,
                    &arena.get(&pref).meta(),
                    DropReason::LinkDown,
                );
            }
            arena.free(pref);
        }
        if let Some(next) = p.q.pop_front() {
            p.q_bytes -= next.size as u64;
            p.stats.wait_ns_sum += (now - next.enq).as_nanos();
            p.stats.wait_count += 1;
            out.push((
                now + Time::tx_time(next.size as u64, link.rate_bps),
                NetEvent::SwitchTxDone {
                    switch: self.id,
                    port,
                },
            ));
            p.in_flight = Some(next);
        }
    }

    /// Drain every port FIFO and free the arena slot of each queued or
    /// in-flight packet.
    ///
    /// Used when a control-plane rebuild replaces this switch object
    /// (WCMP reconvergence): those packets were always dropped with the
    /// old switch; with the arena their slots must be released explicitly
    /// or the end-of-run leak check would count them as lost.
    pub fn free_queued(&mut self, arena: &mut PacketArena) {
        for p in self.ports.iter_mut() {
            if let Some(q) = p.in_flight.take() {
                arena.free(q.r);
            }
            for q in p.q.drain(..) {
                arena.free(q.r);
            }
            p.q_bytes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{leaf_spine, LeafSpineSpec, DEFAULT_PROP};
    use crate::ids::{FlowId, HostId};
    use drill_telemetry::NoopProbe;

    /// Policy that always picks the first candidate.
    struct FirstPort;
    impl SwitchPolicy for FirstPort {
        fn select(&mut self, ctx: &SelectCtx<'_>, _q: &dyn QueueView, _r: &mut SimRng) -> u16 {
            ctx.candidates[0]
        }
    }

    fn setup() -> (Topology, RouteTable, Switch) {
        let spec = LeafSpineSpec {
            spines: 2,
            leaves: 2,
            hosts_per_leaf: 2,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let topo = leaf_spine(&spec);
        let routes = RouteTable::compute(&topo);
        let l0 = topo.leaves()[0];
        let sw = Switch::new(
            l0,
            topo.num_ports(l0),
            SwitchConfig::default(),
            Box::new(FirstPort),
        );
        (topo, routes, sw)
    }

    fn pkt(dst: HostId, size_payload: u32) -> Packet {
        Packet::data(
            1,
            FlowId(0),
            HostId(0),
            dst,
            0x1234,
            0,
            size_payload,
            Time::ZERO,
        )
    }

    /// Intern `p` and hand it to the switch (what the event loop does).
    #[allow(clippy::too_many_arguments)]
    fn recv(
        sw: &mut Switch,
        topo: &Topology,
        routes: &RouteTable,
        arena: &mut PacketArena,
        p: Packet,
        ingress: u16,
        now: Time,
        rng: &mut SimRng,
        out: &mut EventSink,
    ) {
        let r = arena.insert(p);
        sw.receive(
            topo,
            routes,
            arena,
            r,
            ingress,
            now,
            rng,
            out,
            &mut NoopProbe,
        );
    }

    #[test]
    fn local_delivery_uses_host_port() {
        let (topo, routes, mut sw) = setup();
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        // Host 1 is on leaf 0 (hosts 0,1 -> leaf0; 2,3 -> leaf1).
        let p = pkt(HostId(1), 1000);
        let ingress = 0; // from a spine
        recv(
            &mut sw,
            &topo,
            &routes,
            &mut arena,
            p,
            ingress,
            Time::ZERO,
            &mut rng,
            &mut out,
        );
        // One commit + one tx-done scheduled.
        assert_eq!(out.len(), 2);
        let host_port = topo.host_leaf_port(HostId(1));
        assert_eq!(sw.queue_pkts(host_port), 1);
    }

    #[test]
    fn fabric_forwarding_consults_policy() {
        let (topo, routes, mut sw) = setup();
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let p = pkt(HostId(2), 1000); // on leaf 1: must go via a spine
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        recv(
            &mut sw,
            &topo,
            &routes,
            &mut arena,
            p,
            host_ingress,
            Time::ZERO,
            &mut rng,
            &mut out,
        );
        // FirstPort picks candidate 0 = port 0 (first spine).
        assert_eq!(sw.queue_pkts(0), 1);
        assert_eq!(sw.forwarded, 1);
    }

    #[test]
    fn tx_done_emits_arrival_after_prop() {
        let (topo, routes, mut sw) = setup();
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let p = pkt(HostId(2), 1442); // wire size 1500
        let t0 = Time::from_micros(10);
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        recv(
            &mut sw,
            &topo,
            &routes,
            &mut arena,
            p,
            host_ingress,
            t0,
            &mut rng,
            &mut out,
        );
        // tx time of 1500B at 10G = 1200ns.
        let tx_at = out
            .iter()
            .find_map(|(t, e)| matches!(e, NetEvent::SwitchTxDone { .. }).then_some(*t))
            .unwrap();
        assert_eq!(tx_at, t0 + Time::from_nanos(1200));
        // Deliver the commit first, as the event loop would (same timestamp,
        // pushed earlier).
        let commits: Vec<(u16, u32, u16)> = out
            .iter()
            .filter_map(|(_, e)| match e {
                NetEvent::EnqueueCommit {
                    port,
                    bytes,
                    engine,
                    ..
                } => Some((*port, *bytes, *engine)),
                _ => None,
            })
            .collect();
        for (port, bytes, engine) in commits {
            sw.on_enqueue_commit(port, bytes, engine);
        }
        out.clear();
        sw.on_tx_done(
            &topo,
            &mut arena,
            0,
            tx_at,
            &mut rng,
            &mut out,
            &mut NoopProbe,
        );
        let (arrive_t, ev) = &out[0];
        assert_eq!(*arrive_t, tx_at + DEFAULT_PROP);
        assert!(matches!(ev, NetEvent::ArriveSwitch { .. }));
        assert_eq!(sw.queue_pkts(0), 0);
    }

    #[test]
    fn visibility_lags_until_commit() {
        let (topo, routes, mut sw) = setup();
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        recv(
            &mut sw,
            &topo,
            &routes,
            &mut arena,
            pkt(HostId(2), 1000),
            host_ingress,
            Time::ZERO,
            &mut rng,
            &mut out,
        );
        // Actual occupancy 1, visible 0 until the commit event fires.
        assert_eq!(sw.queue_pkts(0), 1);
        assert_eq!(sw.visible_pkts(0), 0);
        let (commit_t, bytes) = out
            .iter()
            .find_map(|(t, e)| match e {
                NetEvent::EnqueueCommit { bytes, .. } => Some((*t, *bytes)),
                _ => None,
            })
            .unwrap();
        sw.on_enqueue_commit(0, bytes, 0);
        assert_eq!(sw.visible_pkts(0), 1);
        assert!(commit_t > Time::ZERO);
    }

    #[test]
    fn instant_visibility_when_commit_model_off() {
        let spec = LeafSpineSpec {
            spines: 2,
            leaves: 2,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let topo = leaf_spine(&spec);
        let routes = RouteTable::compute(&topo);
        let l0 = topo.leaves()[0];
        let cfg = SwitchConfig {
            model_enqueue_commit: false,
            ..Default::default()
        };
        let mut sw = Switch::new(l0, topo.num_ports(l0), cfg, Box::new(FirstPort));
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        recv(
            &mut sw,
            &topo,
            &routes,
            &mut arena,
            pkt(HostId(1), 1000),
            host_ingress,
            Time::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(sw.visible_pkts(0), 1, "visible immediately");
        // Only a TxDone was scheduled, no commit event.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn tail_drop_on_full_queue() {
        let (topo, routes, mut sw) = setup();
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        // Queue limit 150_000B; wire size 1058 each; one in flight + 141
        // waiting fills it (141*1058 = 149_178; next would exceed).
        let mut sent = 0;
        for _ in 0..200 {
            recv(
                &mut sw,
                &topo,
                &routes,
                &mut arena,
                pkt(HostId(2), 1000),
                host_ingress,
                Time::ZERO,
                &mut rng,
                &mut out,
            );
            sent += 1;
        }
        let stats = sw.port_stats(0);
        assert!(stats.drops > 0, "must tail-drop");
        assert_eq!(sw.queue_pkts(0) as u64 + stats.drops, sent);
        assert!(
            sw.queue_bytes(0) - 1058 <= 150_000,
            "waiting bytes within limit"
        );
    }

    #[test]
    fn no_route_blackholes() {
        let spec = LeafSpineSpec {
            spines: 1,
            leaves: 2,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let mut topo = leaf_spine(&spec);
        let l0 = topo.leaves()[0];
        topo.fail_switch_link(l0, SwitchId(2), 0); // sole spine link
        let routes = RouteTable::compute(&topo);
        let mut sw = Switch::new(
            l0,
            topo.num_ports(l0),
            SwitchConfig::default(),
            Box::new(FirstPort),
        );
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        recv(
            &mut sw,
            &topo,
            &routes,
            &mut arena,
            pkt(HostId(1), 500),
            host_ingress,
            Time::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(sw.blackholed, 1);
        assert!(out.is_empty());
    }

    #[test]
    fn source_route_overrides_policy() {
        let (topo, routes, mut sw) = setup();
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let mut p = pkt(HostId(2), 1000);
        // Spines are ids 2 and 3; route via spine 3 (port 1), while the
        // policy would pick port 0.
        p.push_route(3);
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        recv(
            &mut sw,
            &topo,
            &routes,
            &mut arena,
            p,
            host_ingress,
            Time::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(sw.queue_pkts(1), 1);
        assert_eq!(sw.queue_pkts(0), 0);
    }

    #[test]
    fn dead_source_route_falls_back() {
        let (mut topo, _stale, mut sw) = setup();
        let l0 = topo.leaves()[0];
        topo.fail_switch_link(l0, SwitchId(3), 0);
        let routes = RouteTable::compute(&topo);
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let mut p = pkt(HostId(2), 1000);
        p.push_route(3); // spine 3 is now unreachable from l0
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        recv(
            &mut sw,
            &topo,
            &routes,
            &mut arena,
            p,
            host_ingress,
            Time::ZERO,
            &mut rng,
            &mut out,
        );
        // Fell back to the remaining candidate (port 0 -> spine 2).
        assert_eq!(sw.queue_pkts(0), 1);
        assert_eq!(sw.blackholed, 0);
    }

    #[test]
    fn dead_local_egress_is_pruned_at_line_speed() {
        // Routes stay stale (computed pre-failure): the switch's local
        // link-state table alone must steer traffic off the dead uplink.
        let (mut topo, routes, mut sw) = setup();
        let l0 = topo.leaves()[0];
        topo.fail_switch_link(l0, SwitchId(2), 0);
        sw.sync_link_state(&topo);
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        for _ in 0..4 {
            let p = pkt(HostId(2), 1000);
            recv(
                &mut sw,
                &topo,
                &routes,
                &mut arena,
                p,
                host_ingress,
                Time::ZERO,
                &mut rng,
                &mut out,
            );
        }
        // All four took the surviving uplink (port 1 -> spine 3), none died.
        assert_eq!(sw.blackholed, 0);
        assert_eq!(sw.queue_pkts(0), 0);
        assert_eq!(sw.queue_pkts(1), 4);

        // Kill the second uplink too: now the leaf has no live fabric port
        // and must blackhole (counted, so the fault-window metric sees it).
        topo.fail_switch_link(l0, SwitchId(3), 0);
        sw.sync_link_state(&topo);
        let p = pkt(HostId(2), 1000);
        recv(
            &mut sw,
            &topo,
            &routes,
            &mut arena,
            p,
            host_ingress,
            Time::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(sw.blackholed, 1);

        // Restore one uplink: forwarding resumes without a route recompute.
        topo.restore_switch_link(l0, SwitchId(2), 0);
        sw.sync_link_state(&topo);
        let p = pkt(HostId(2), 1000);
        recv(
            &mut sw,
            &topo,
            &routes,
            &mut arena,
            p,
            host_ingress,
            Time::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(sw.blackholed, 1);
        assert_eq!(sw.queue_pkts(0), 1);
    }

    #[test]
    fn fifo_order_preserved_per_port() {
        let (topo, routes, mut sw) = setup();
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        for i in 0..3u64 {
            let mut p = pkt(HostId(2), 1000);
            p.id = i;
            recv(
                &mut sw,
                &topo,
                &routes,
                &mut arena,
                p,
                host_ingress,
                Time::ZERO,
                &mut rng,
                &mut out,
            );
        }
        // Deliver the pending commits, as the event loop would before any
        // of the later tx-dones.
        let commits: Vec<(u16, u32, u16)> = out
            .iter()
            .filter_map(|(_, e)| match e {
                NetEvent::EnqueueCommit {
                    port,
                    bytes,
                    engine,
                    ..
                } => Some((*port, *bytes, *engine)),
                _ => None,
            })
            .collect();
        for (port, bytes, engine) in commits {
            sw.on_enqueue_commit(port, bytes, engine);
        }
        // Drain: tx-done three times, collecting arrival order.
        let mut ids = Vec::new();
        for k in 0..3 {
            out.clear();
            sw.on_tx_done(
                &topo,
                &mut arena,
                0,
                Time::from_micros(k + 10),
                &mut rng,
                &mut out,
                &mut NoopProbe,
            );
            for (_, e) in &out {
                if let NetEvent::ArriveSwitch { pkt, .. } = e {
                    ids.push(arena.get(pkt).id);
                }
            }
        }
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn weighted_groups_steer_flows() {
        let (topo, mut routes, mut sw) = setup();
        let l0 = topo.leaves()[0];
        // All weight on the component containing only port 1.
        routes.set_groups(
            l0,
            1,
            vec![
                crate::lbapi::PortGroup {
                    ports: vec![0],
                    weight: 0,
                },
                crate::lbapi::PortGroup {
                    ports: vec![1],
                    weight: 1,
                },
            ],
        );
        let mut rng = SimRng::seed_from(1);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        for i in 0..20u64 {
            let mut p = pkt(HostId(2), 500);
            p.flow_hash = i.wrapping_mul(0x9e3779b97f4a7c15);
            recv(
                &mut sw,
                &topo,
                &routes,
                &mut arena,
                p,
                host_ingress,
                Time::ZERO,
                &mut rng,
                &mut out,
            );
        }
        assert_eq!(sw.queue_pkts(0), 0, "zero-weight group unused");
        assert!(sw.queue_pkts(1) > 0);
    }

    #[test]
    fn lossy_link_drops_a_fraction_on_the_wire() {
        let (mut topo, routes, _) = setup();
        let l0 = topo.leaves()[0];
        // 50% loss toward spine 2 (port 0).
        assert!(topo.set_switch_link_loss(l0, SwitchId(2), 0, 500_000));
        let mut sw = Switch::new(
            l0,
            topo.num_ports(l0),
            SwitchConfig {
                queue_limit_bytes: 10_000_000,
                ..Default::default()
            },
            Box::new(FirstPort),
        );
        let mut rng = SimRng::seed_from(7);
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        let host_ingress = topo.host_uplink(HostId(0)).dst_port;
        let n = 400u64;
        for i in 0..n {
            let mut p = pkt(HostId(2), 1000);
            p.id = i;
            recv(
                &mut sw,
                &topo,
                &routes,
                &mut arena,
                p,
                host_ingress,
                Time::ZERO,
                &mut rng,
                &mut out,
            );
        }
        for (port, bytes, engine) in out
            .iter()
            .filter_map(|(_, e)| match e {
                NetEvent::EnqueueCommit {
                    port,
                    bytes,
                    engine,
                    ..
                } => Some((*port, *bytes, *engine)),
                _ => None,
            })
            .collect::<Vec<_>>()
        {
            sw.on_enqueue_commit(port, bytes, engine);
        }
        let mut arrived = 0u64;
        for k in 0..n {
            out.clear();
            sw.on_tx_done(
                &topo,
                &mut arena,
                0,
                Time::from_micros(k + 10),
                &mut rng,
                &mut out,
                &mut NoopProbe,
            );
            arrived += out
                .iter()
                .filter(|(_, e)| matches!(e, NetEvent::ArriveSwitch { .. }))
                .count() as u64;
        }
        let dropped = sw.port_stats(0).drops;
        assert_eq!(arrived + dropped, n, "every packet arrives or drops");
        // With 50% loss the binomial is overwhelmingly inside [100, 300].
        assert!((100..=300).contains(&dropped), "dropped {dropped} of {n}");
    }
}
