//! The load-balancer plug-in API.
//!
//! A *switch policy* decides, per packet, which candidate egress port to
//! use whenever the routing table offers more than one (the ECMP group).
//! A *host policy* can tag packets before they leave the sender's NIC
//! (Presto's source routing). The DRILL algorithm (`drill-core`) and all
//! baselines (`drill-lb`) implement these traits; `drill-net` only defines
//! the contract.

use std::io;

use drill_sim::codec::Decoder;
use drill_sim::{SimRng, Time};

use crate::ids::{FlowId, SwitchId};
use crate::packet::Packet;
use crate::topology::Topology;

/// A set of mutually *symmetric* candidate ports plus its traffic weight
/// (§3.4: components of the symmetric-path decomposition, weighted by
/// aggregate path capacity). A symmetric topology has a single group per
/// (switch, destination-leaf).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortGroup {
    /// Candidate egress ports in this component.
    pub ports: Vec<u16>,
    /// Relative share of flows hashed onto this component.
    pub weight: u64,
}

/// Pick a group by flow hash, proportionally to the group weights
/// (deterministic per flow, like ECMP's hash).
pub fn weighted_group_pick(groups: &[PortGroup], flow_hash: u64) -> &PortGroup {
    debug_assert!(!groups.is_empty());
    let total: u64 = groups.iter().map(|g| g.weight).sum();
    if total == 0 {
        return &groups[0];
    }
    // Re-mix so the same hash used for intra-group selection does not
    // correlate with group choice.
    let mut x = flow_hash ^ 0x517c_c1b7_2722_0a95;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    let mut pick = x % total;
    for g in groups {
        if pick < g.weight {
            return g;
        }
        pick -= g.weight;
    }
    groups.last().expect("non-empty groups")
}

/// Read-only view of a switch's output-queue occupancies as the forwarding
/// engines see them (i.e. *excluding* packets still being written into the
/// queue — the §3.2.1 visibility model).
pub trait QueueView {
    /// Visible queued bytes at `port` (including the packet on the wire).
    fn visible_bytes(&self, port: u16) -> u64;
    /// Visible queued packets at `port` (including the packet on the wire).
    fn visible_pkts(&self, port: u16) -> u32;
    /// Number of ports on this switch.
    fn num_ports(&self) -> usize;
    /// Visible bytes as seen by a specific engine: the shared committed
    /// count *plus the asking engine's own not-yet-committed enqueues*. A
    /// forwarding engine always knows what it just wrote; what it cannot
    /// see is the other engines' in-flight writes — which is precisely the
    /// staleness behind the paper's synchronization effect (§3.2.3).
    fn visible_bytes_for(&self, _engine: usize, port: u16) -> u64 {
        self.visible_bytes(port)
    }
}

/// Per-packet context handed to [`SwitchPolicy::select`].
#[derive(Debug)]
pub struct SelectCtx<'a> {
    /// Current simulated time.
    pub now: Time,
    /// Forwarding engine handling this packet (ingress-port affinity).
    pub engine: usize,
    /// The flow's stable 5-tuple hash.
    pub flow_hash: u64,
    /// The flow id.
    pub flow: FlowId,
    /// Dense index of the destination leaf.
    pub dst_leaf: u32,
    /// Candidate egress ports (the ECMP group, or one symmetric component).
    pub candidates: &'a [u16],
}

/// A switch-local forwarding policy.
///
/// One instance per switch, so implementations may keep per-switch state
/// (per-engine memory, round-robin pointers, flowlet tables, DREs...).
pub trait SwitchPolicy: Send {
    /// Choose one of `ctx.candidates` for this packet. Must return a member
    /// of `ctx.candidates`.
    fn select(&mut self, ctx: &SelectCtx<'_>, queues: &dyn QueueView, rng: &mut SimRng) -> u16;

    /// Called after the egress port has been determined (by `select`, by
    /// source routing, or trivially), just before enqueue. CONGA uses this
    /// to update DREs and stamp congestion metadata.
    fn on_forward(
        &mut self,
        _pkt: &mut Packet,
        _port: u16,
        _now: Time,
        _topo: &Topology,
        _switch: SwitchId,
        _from_host: bool,
    ) {
    }

    /// Called when a packet arrives at this switch, before forwarding.
    /// CONGA leaves harvest congestion metadata and feedback here.
    fn on_arrival(&mut self, _pkt: &mut Packet, _now: Time, _topo: &Topology, _switch: SwitchId) {}

    /// Serialize the policy's *dynamic* state for a snapshot. Stateless
    /// policies (ECMP, Random, WCMP — whose weights are structural and
    /// rebuilt from the topology) keep the empty default; stateful ones
    /// (DRILL engine memory, round-robin pointers, CONGA DREs/flowlet
    /// tables) must write every field that influences future decisions,
    /// in a deterministic order (sorted where the backing map is hashed).
    fn save_state(&self, _buf: &mut Vec<u8>) {}

    /// Restore state written by [`save_state`](SwitchPolicy::save_state)
    /// into a freshly constructed policy of the same scheme and shape.
    fn load_state(&mut self, _d: &mut Decoder<'_>) -> io::Result<()> {
        Ok(())
    }
}

/// A sender-host policy applied to every packet entering the host NIC.
pub trait HostPolicy: Send {
    /// Tag/modify an outgoing packet (e.g. attach a source route).
    fn on_send(&mut self, pkt: &mut Packet, now: Time, rng: &mut SimRng);

    /// Serialize dynamic state for a snapshot (see
    /// [`SwitchPolicy::save_state`]); Presto's flowcell offsets are the
    /// only stateful host policy today.
    fn save_state(&self, _buf: &mut Vec<u8>) {}

    /// Restore state written by [`save_state`](HostPolicy::save_state).
    fn load_state(&mut self, _d: &mut Decoder<'_>) -> io::Result<()> {
        Ok(())
    }
}

/// Host policy that does nothing (all schemes except Presto).
pub struct NullHostPolicy;

impl HostPolicy for NullHostPolicy {
    fn on_send(&mut self, _pkt: &mut Packet, _now: Time, _rng: &mut SimRng) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups(weights: &[u64]) -> Vec<PortGroup> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| PortGroup {
                ports: vec![i as u16],
                weight: w,
            })
            .collect()
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let gs = groups(&[1, 2]);
        let mut counts = [0usize; 2];
        for h in 0..30_000u64 {
            // Use well-mixed hashes, as flows get in practice.
            let hash = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let g = weighted_group_pick(&gs, hash);
            counts[g.ports[0] as usize] += 1;
        }
        let frac = counts[1] as f64 / 30_000.0;
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn weighted_pick_is_deterministic_per_hash() {
        let gs = groups(&[3, 1, 5]);
        for h in [0u64, 1, 42, u64::MAX] {
            assert_eq!(
                weighted_group_pick(&gs, h).ports,
                weighted_group_pick(&gs, h).ports
            );
        }
    }

    #[test]
    fn weighted_pick_zero_total_falls_back() {
        let gs = groups(&[0, 0]);
        assert_eq!(weighted_group_pick(&gs, 123).ports, vec![0]);
    }

    #[test]
    fn weighted_pick_single_group() {
        let gs = groups(&[7]);
        assert_eq!(weighted_group_pick(&gs, 999).ports, vec![0]);
    }
}
