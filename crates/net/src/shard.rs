//! Fabric partitioner for conservative-lookahead sharded execution.
//!
//! DRILL's premise — switch-local decisions, no cross-switch coordination
//! — makes the fabric naturally partitionable: the only state that crosses
//! a switch boundary is a packet on a wire, and every wire has a physical
//! propagation delay. A [`ShardPlan`] splits switches and hosts into
//! disjoint shards and computes the **lookahead bound**: the minimum
//! propagation delay over all links whose endpoints live in different
//! shards. A packet emitted by shard A during the window `[W, W + L)`
//! cannot arrive in shard B before `W + L`, so shards may advance through
//! a whole window before exchanging handoffs at the barrier.
//!
//! The automatic partitioner puts the fabric tier (Agg/Spine switches) in
//! shard 0 and splits the leaves — each with its attached hosts — into
//! contiguous groups over the remaining shards. Hosts always live with
//! their ToR: the host↔leaf wire is the shortest link in every topology
//! this workspace builds, and keeping it intra-shard both maximizes the
//! lookahead bound and keeps NIC/host delivery local to one arena.

use drill_sim::Time;

use crate::ids::{HostId, NodeRef};
use crate::topology::Topology;

/// A partition of the fabric into shards plus its lookahead bound.
///
/// Invariants (checked by [`validate`](ShardPlan::validate), which every
/// constructor runs): the assignment vectors are a disjoint exact cover
/// of all switches and hosts, every shard id below `num_shards` is
/// non-empty, each host shares its leaf's shard, and with more than one
/// shard the lookahead is strictly positive.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Number of shards (≥ 1).
    pub num_shards: u32,
    /// Shard of each switch, indexed by `SwitchId`.
    pub switch_shard: Vec<u32>,
    /// Shard of each host, indexed by `HostId` (always the shard of the
    /// host's leaf).
    pub host_shard: Vec<u32>,
    /// Minimum propagation delay over cross-shard links — the
    /// conservative window length. [`Time::MAX`] when nothing crosses
    /// (single shard).
    pub lookahead: Time,
}

impl ShardPlan {
    /// The trivial single-shard plan (everything in shard 0).
    pub fn single(topo: &Topology) -> ShardPlan {
        ShardPlan {
            num_shards: 1,
            switch_shard: vec![0; topo.num_switches()],
            host_shard: vec![0; topo.num_hosts()],
            lookahead: Time::MAX,
        }
    }

    /// Automatic partition into at most `requested` shards: fabric tier
    /// (non-leaf switches) in shard 0, leaves + their hosts split into
    /// contiguous groups over shards `1..`. The effective shard count is
    /// clamped to `1 + num_leaves` — asking for more shards than leaf
    /// groups cannot create parallelism, only empty shards.
    pub fn auto(topo: &Topology, requested: usize) -> ShardPlan {
        let leaves = topo.num_leaves();
        let groups = requested.saturating_sub(1).min(leaves);
        if groups == 0 {
            return ShardPlan::single(topo);
        }
        let mut switch_shard = vec![0u32; topo.num_switches()];
        for (i, &leaf) in topo.leaves().iter().enumerate() {
            switch_shard[leaf.index()] = 1 + (i * groups / leaves) as u32;
        }
        ShardPlan::manual(topo, switch_shard)
    }

    /// Manual override: an explicit per-switch shard assignment. Hosts
    /// inherit their leaf's shard (the engine requires host↔leaf
    /// locality; see the module docs). `num_shards` is taken as
    /// `max(assignment) + 1`; the plan is validated and panics on an
    /// assignment that is not a disjoint exact cover with positive
    /// lookahead.
    pub fn manual(topo: &Topology, switch_shard: Vec<u32>) -> ShardPlan {
        assert_eq!(
            switch_shard.len(),
            topo.num_switches(),
            "shard assignment must cover every switch exactly once"
        );
        let num_shards = switch_shard.iter().copied().max().unwrap_or(0) + 1;
        let host_shard: Vec<u32> = (0..topo.num_hosts())
            .map(|h| switch_shard[topo.host_leaf(HostId(h as u32)).index()])
            .collect();
        let mut plan = ShardPlan {
            num_shards,
            switch_shard,
            host_shard,
            lookahead: Time::MAX,
        };
        plan.lookahead = plan.compute_lookahead(topo);
        plan.validate(topo);
        plan
    }

    /// Shard owning a node.
    #[inline]
    pub fn shard_of(&self, node: NodeRef) -> u32 {
        match node {
            NodeRef::Switch(s) => self.switch_shard[s.index()],
            NodeRef::Host(h) => self.host_shard[h.index()],
        }
    }

    /// Minimum propagation delay over links whose endpoints live in
    /// different shards ([`Time::MAX`] if none do). Counts downed links
    /// too: a link can come back up mid-run (`LinkUp` faults) and the
    /// window length is fixed at build time.
    fn compute_lookahead(&self, topo: &Topology) -> Time {
        topo.links()
            .iter()
            .filter(|l| self.shard_of(l.src) != self.shard_of(l.dst))
            .map(|l| l.prop)
            .min()
            .unwrap_or(Time::MAX)
    }

    /// Check every plan invariant, panicking with a description on the
    /// first violation. Constructors call this; it is public so tests and
    /// manual-plan builders can re-check after surgery.
    pub fn validate(&self, topo: &Topology) {
        assert!(self.num_shards >= 1, "a plan needs at least one shard");
        assert_eq!(self.switch_shard.len(), topo.num_switches());
        assert_eq!(self.host_shard.len(), topo.num_hosts());
        let mut members = vec![0usize; self.num_shards as usize];
        for (s, &sh) in self.switch_shard.iter().enumerate() {
            assert!(
                sh < self.num_shards,
                "switch {s} assigned to out-of-range shard {sh}"
            );
            members[sh as usize] += 1;
        }
        for (h, &sh) in self.host_shard.iter().enumerate() {
            let leaf = topo.host_leaf(HostId(h as u32));
            assert_eq!(
                sh,
                self.switch_shard[leaf.index()],
                "host {h} not colocated with its leaf {}",
                leaf.index()
            );
        }
        for (sh, &n) in members.iter().enumerate() {
            assert!(n > 0, "shard {sh} owns no switch");
        }
        if self.num_shards > 1 {
            assert!(
                self.lookahead > Time::ZERO,
                "zero-latency cross-shard link: no conservative window exists"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{leaf_spine, vl2, LeafSpineSpec, Vl2Spec, DEFAULT_PROP};
    use crate::ids::SwitchId;
    use crate::topology::SwitchKind;
    use drill_sim::SimRng;

    fn spec(spines: usize, leaves: usize, hosts_per_leaf: usize) -> LeafSpineSpec {
        LeafSpineSpec {
            spines,
            leaves,
            hosts_per_leaf,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }
    }

    /// Disjoint exact cover + per-shard non-emptiness + host colocation,
    /// asserted structurally (not via `validate`, which is under test).
    fn assert_exact_cover(plan: &ShardPlan, topo: &Topology) {
        assert_eq!(plan.switch_shard.len(), topo.num_switches());
        assert_eq!(plan.host_shard.len(), topo.num_hosts());
        let mut seen = vec![false; plan.num_shards as usize];
        for &sh in &plan.switch_shard {
            assert!(sh < plan.num_shards);
            seen[sh as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "an empty shard survived");
        for h in 0..topo.num_hosts() {
            assert_eq!(
                plan.host_shard[h],
                plan.switch_shard[topo.host_leaf(HostId(h as u32)).index()]
            );
        }
    }

    /// Every cross-shard link's latency is at or above the lookahead.
    fn assert_lookahead_bound(plan: &ShardPlan, topo: &Topology) {
        for l in topo.links() {
            if plan.shard_of(l.src) != plan.shard_of(l.dst) {
                assert!(
                    l.prop >= plan.lookahead,
                    "cross-shard link faster than the lookahead bound"
                );
            }
        }
        if plan.num_shards > 1 {
            assert!(plan.lookahead > Time::ZERO);
            assert_ne!(plan.lookahead, Time::MAX, "bound is a real link latency");
        }
    }

    #[test]
    fn auto_splits_fabric_from_leaf_groups() {
        let topo = leaf_spine(&spec(4, 4, 2));
        let plan = ShardPlan::auto(&topo, 3);
        assert_eq!(plan.num_shards, 3);
        // Spines in shard 0, leaves split 2+2.
        for s in 0..topo.num_switches() {
            let kind = topo.switch_kind(SwitchId(s as u32));
            if kind == SwitchKind::Leaf {
                assert_ne!(plan.switch_shard[s], 0);
            } else {
                assert_eq!(plan.switch_shard[s], 0);
            }
        }
        assert_exact_cover(&plan, &topo);
        assert_lookahead_bound(&plan, &topo);
        assert_eq!(plan.lookahead, DEFAULT_PROP);
    }

    #[test]
    fn auto_clamps_to_leaf_count_and_single() {
        let topo = leaf_spine(&spec(4, 4, 2));
        assert_eq!(ShardPlan::auto(&topo, 1).num_shards, 1);
        assert_eq!(ShardPlan::auto(&topo, 0).num_shards, 1);
        // 8 requested, only 4 leaves: 1 fabric + 4 leaf shards.
        let plan = ShardPlan::auto(&topo, 8);
        assert_eq!(plan.num_shards, 5);
        assert_exact_cover(&plan, &topo);
        let single = ShardPlan::single(&topo);
        assert_eq!(single.lookahead, Time::MAX);
        single.validate(&topo);
    }

    #[test]
    fn manual_override_round_trips() {
        let topo = leaf_spine(&spec(2, 4, 2));
        // Pair the leaves differently from the contiguous auto split.
        let mut assign = vec![0u32; topo.num_switches()];
        let leaves = topo.leaves().to_vec();
        assign[leaves[0].index()] = 1;
        assign[leaves[2].index()] = 1;
        assign[leaves[1].index()] = 2;
        assign[leaves[3].index()] = 2;
        let plan = ShardPlan::manual(&topo, assign);
        assert_eq!(plan.num_shards, 3);
        assert_exact_cover(&plan, &topo);
        assert_lookahead_bound(&plan, &topo);
    }

    #[test]
    #[should_panic(expected = "owns no switch")]
    fn manual_rejects_empty_shard() {
        let topo = leaf_spine(&spec(2, 2, 1));
        let mut assign = vec![0u32; topo.num_switches()];
        assign[topo.leaves()[0].index()] = 5; // shards 1..5 empty
        ShardPlan::manual(&topo, assign);
    }

    #[test]
    fn randomized_leaf_spine_and_vl2_plans_hold_invariants() {
        // Always-run mirror of the proptest properties (the proptest
        // suite is feature-gated off in offline CI): random topologies x
        // random requested shard counts, exact cover + lookahead bound.
        let mut rng = SimRng::seed_from(0x5AAD);
        for _ in 0..40 {
            let topo = leaf_spine(&spec(2 + rng.below(5), 2 + rng.below(5), 1 + rng.below(4)));
            let requested = rng.below(10);
            let plan = ShardPlan::auto(&topo, requested);
            assert_exact_cover(&plan, &topo);
            assert_lookahead_bound(&plan, &topo);
            plan.validate(&topo);
        }
        for _ in 0..40 {
            let tors = 2 + rng.below(6);
            let aggs = 2 + rng.below(4);
            let topo = vl2(&Vl2Spec {
                tors,
                aggs,
                ints: 1 + rng.below(4),
                hosts_per_tor: 1 + rng.below(3),
                host_rate: 1_000_000_000,
                core_rate: 10_000_000_000,
                tor_uplinks: 1 + rng.below(aggs),
                prop: DEFAULT_PROP,
            });
            let plan = ShardPlan::auto(&topo, 1 + rng.below(10));
            assert_exact_cover(&plan, &topo);
            assert_lookahead_bound(&plan, &topo);
            plan.validate(&topo);
        }
    }
}
