//! Shortest-path (ECMP-style) routing.
//!
//! Mirrors what the paper's control plane does: OSPF computes shortest
//! paths and installs, per destination, the set of equal-cost next hops in
//! every switch's forwarding table. Destinations are aggregated per leaf
//! (one prefix per rack), as real fabrics do.
//!
//! The optional *symmetric component* grouping (§3.4) is stored here too;
//! `drill-core` computes it and installs it with [`RouteTable::set_groups`].

use std::collections::VecDeque;

use crate::ids::{NodeRef, SwitchId};
use crate::lbapi::PortGroup;
use crate::topology::Topology;

/// Unreachable marker in the distance table.
pub const UNREACHABLE: u32 = u32::MAX;

/// Per-switch forwarding state for every destination leaf.
#[derive(Clone, Debug)]
pub struct RouteTable {
    /// `[switch][dst_leaf]` -> candidate egress ports on shortest paths.
    next_hops: Vec<Vec<Vec<u16>>>,
    /// `[switch][dst_leaf]` -> symmetric components; empty means "one
    /// implicit group containing all candidates".
    groups: Vec<Vec<Vec<PortGroup>>>,
    /// `[switch][dst_leaf]` -> hop distance.
    dist: Vec<Vec<u32>>,
}

impl RouteTable {
    /// Compute shortest-path candidate sets over the *up* links of `topo`.
    ///
    /// Call again after failing links to model routing reconvergence.
    pub fn compute(topo: &Topology) -> RouteTable {
        let s_count = topo.num_switches();
        let l_count = topo.num_leaves();

        // Reverse adjacency between switches over up links:
        // rev[t] = switches s with an up link s -> t.
        let mut rev: Vec<Vec<SwitchId>> = vec![Vec::new(); s_count];
        for l in topo.links() {
            if !l.up {
                continue;
            }
            if let (NodeRef::Switch(s), NodeRef::Switch(t)) = (l.src, l.dst) {
                rev[t.index()].push(s);
            }
        }

        let mut dist = vec![vec![UNREACHABLE; l_count]; s_count];
        for (leaf_idx, &leaf) in topo.leaves().iter().enumerate() {
            dist[leaf.index()][leaf_idx] = 0;
            let mut q = VecDeque::new();
            q.push_back(leaf);
            while let Some(t) = q.pop_front() {
                let dt = dist[t.index()][leaf_idx];
                for &s in &rev[t.index()] {
                    if dist[s.index()][leaf_idx] == UNREACHABLE {
                        dist[s.index()][leaf_idx] = dt + 1;
                        q.push_back(s);
                    }
                }
            }
        }

        let mut next_hops = vec![vec![Vec::new(); l_count]; s_count];
        for si in 0..s_count {
            let s = SwitchId(si as u32);
            for leaf_idx in 0..l_count {
                let ds = dist[si][leaf_idx];
                if ds == UNREACHABLE || ds == 0 {
                    continue;
                }
                let mut ports = Vec::new();
                for (p, &lid) in topo.egress_links(s).iter().enumerate() {
                    let link = topo.link(lid);
                    if !link.up {
                        continue;
                    }
                    if let NodeRef::Switch(t) = link.dst {
                        if dist[t.index()][leaf_idx] == ds - 1 {
                            ports.push(p as u16);
                        }
                    }
                }
                next_hops[si][leaf_idx] = ports;
            }
        }

        RouteTable {
            next_hops,
            groups: vec![vec![Vec::new(); l_count]; s_count],
            dist,
        }
    }

    /// Candidate egress ports at `s` toward leaf `dst_leaf`.
    #[inline]
    pub fn candidates(&self, s: SwitchId, dst_leaf: u32) -> &[u16] {
        &self.next_hops[s.index()][dst_leaf as usize]
    }

    /// Symmetric components at `s` toward `dst_leaf`; empty slice means
    /// a single implicit group of all candidates.
    #[inline]
    pub fn groups(&self, s: SwitchId, dst_leaf: u32) -> &[PortGroup] {
        &self.groups[s.index()][dst_leaf as usize]
    }

    /// Install symmetric components for `(s, dst_leaf)`.
    pub fn set_groups(&mut self, s: SwitchId, dst_leaf: u32, groups: Vec<PortGroup>) {
        if !groups.is_empty() {
            let mut all: Vec<u16> = groups
                .iter()
                .flat_map(|g| g.ports.iter().copied())
                .collect();
            all.sort_unstable();
            let mut cand: Vec<u16> = self.next_hops[s.index()][dst_leaf as usize].clone();
            cand.sort_unstable();
            debug_assert_eq!(all, cand, "groups must partition the candidate set");
        }
        self.groups[s.index()][dst_leaf as usize] = groups;
    }

    /// Hop distance from `s` to `dst_leaf`, `None` if unreachable.
    pub fn dist(&self, s: SwitchId, dst_leaf: u32) -> Option<u32> {
        let d = self.dist[s.index()][dst_leaf as usize];
        (d != UNREACHABLE).then_some(d)
    }

    /// Switches bucketed by hop distance toward `dst_leaf`, ascending:
    /// `levels[0]` holds the destination leaf itself, `levels[k]` every
    /// switch at distance `k`; unreachable switches are absent and
    /// switches within a level appear in id order.
    ///
    /// This is the traversal skeleton of the structural §3.4 control plane
    /// (`drill-core`'s `SymmetryEngine`): candidate edges only ever point
    /// from level `k` to level `k-1`, so walking the levels descending
    /// (sources first) or ascending (destination first) visits every edge
    /// of the per-destination candidate DAG exactly once, in a
    /// deterministic order.
    pub fn dist_levels(&self, dst_leaf: u32) -> Vec<Vec<SwitchId>> {
        let mut levels: Vec<Vec<SwitchId>> = Vec::new();
        for (si, per_dst) in self.dist.iter().enumerate() {
            let ds = per_dst[dst_leaf as usize];
            if ds == UNREACHABLE {
                continue;
            }
            let ds = ds as usize;
            if levels.len() <= ds {
                levels.resize_with(ds + 1, Vec::new);
            }
            levels[ds].push(SwitchId(si as u32));
        }
        levels
    }

    /// Number of destination leaves this table covers.
    pub fn num_leaves(&self) -> usize {
        self.next_hops.first().map_or(0, |v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{leaf_spine, vl2, LeafSpineSpec, Vl2Spec, DEFAULT_PROP};
    use crate::topology::SwitchKind;
    use drill_sim::Time;

    fn small_spec() -> LeafSpineSpec {
        LeafSpineSpec {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 2,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }
    }

    #[test]
    fn leaf_spine_all_spines_are_candidates() {
        let topo = leaf_spine(&small_spec());
        let rt = RouteTable::compute(&topo);
        let l0 = topo.leaves()[0];
        // Toward any other leaf, all 4 spine ports are candidates.
        for dst in 1..4u32 {
            assert_eq!(rt.candidates(l0, dst).len(), 4);
            assert_eq!(rt.dist(l0, dst), Some(2));
        }
        // Toward itself: no fabric hop.
        assert!(rt.candidates(l0, 0).is_empty());
        assert_eq!(rt.dist(l0, 0), Some(0));
    }

    #[test]
    fn spine_has_single_down_candidate() {
        let topo = leaf_spine(&small_spec());
        let rt = RouteTable::compute(&topo);
        // Spines are ids 4..8.
        let spine = SwitchId(4);
        assert_eq!(topo.switch_kind(spine), SwitchKind::Spine);
        for dst in 0..4u32 {
            assert_eq!(rt.candidates(spine, dst).len(), 1);
            assert_eq!(rt.dist(spine, dst), Some(1));
        }
    }

    #[test]
    fn failure_removes_candidate() {
        let mut topo = leaf_spine(&small_spec());
        let l0 = topo.leaves()[0];
        let s0 = SwitchId(4);
        assert!(topo.fail_switch_link(l0, s0, 0));
        let rt = RouteTable::compute(&topo);
        assert_eq!(rt.candidates(l0, 1).len(), 3, "one spine lost");
        // Other leaves unaffected.
        let l1 = topo.leaves()[1];
        assert_eq!(rt.candidates(l1, 2).len(), 4);
        // Spine s0 can still reach leaf 0, but only via a 3-hop detour
        // through another leaf. No leaf will *use* s0 for leaf-0 traffic
        // (their direct 2-hop paths are shorter), so this entry is inert,
        // but it must be loop-free and present.
        assert_eq!(rt.dist(s0, 0), Some(3));
        assert_eq!(
            rt.candidates(s0, 0).len(),
            3,
            "detours via the other leaves"
        );
    }

    #[test]
    fn vl2_multi_stage_distances() {
        let topo = vl2(&Vl2Spec::paper());
        let rt = RouteTable::compute(&topo);
        let tor0 = topo.leaves()[0];
        // ToR0 -> agg -> int -> agg -> ToR1: distance 4 (different agg pair).
        // ToR0 and ToR4 share aggs (striping wraps): distance 2.
        assert_eq!(rt.dist(tor0, 4), Some(2));
        assert_eq!(rt.dist(tor0, 1), Some(4));
        // Toward a far ToR, both uplinks are candidates.
        assert_eq!(rt.candidates(tor0, 1).len(), 2);
    }

    #[test]
    fn vl2_agg_candidates_toward_far_tor() {
        let topo = vl2(&Vl2Spec::paper());
        let rt = RouteTable::compute(&topo);
        // Agg switches are ids 16..24. Toward a ToR not directly attached,
        // an agg's candidates are all 4 intermediates.
        let agg0 = SwitchId(16);
        assert_eq!(topo.switch_kind(agg0), SwitchKind::Agg);
        assert_eq!(rt.candidates(agg0, 1).len(), 4);
        // Toward its directly attached ToR 0: single down port.
        assert_eq!(rt.candidates(agg0, 0).len(), 1);
    }

    #[test]
    fn parallel_links_are_separate_candidates() {
        let spec = small_spec();
        let topo = crate::builders::leaf_spine_custom(&spec, |l, s| {
            if l == 0 && s == 0 {
                vec![spec.core_rate; 2]
            } else {
                vec![spec.core_rate]
            }
        });
        let rt = RouteTable::compute(&topo);
        let l0 = topo.leaves()[0];
        assert_eq!(
            rt.candidates(l0, 1).len(),
            5,
            "4 spines + 1 extra parallel link"
        );
    }

    #[test]
    fn set_groups_roundtrip() {
        let topo = leaf_spine(&small_spec());
        let mut rt = RouteTable::compute(&topo);
        let l0 = topo.leaves()[0];
        assert!(rt.groups(l0, 1).is_empty());
        let ports = rt.candidates(l0, 1).to_vec();
        let g = vec![
            PortGroup {
                ports: ports[..1].to_vec(),
                weight: 1,
            },
            PortGroup {
                ports: ports[1..].to_vec(),
                weight: 3,
            },
        ];
        rt.set_groups(l0, 1, g.clone());
        assert_eq!(rt.groups(l0, 1), &g[..]);
    }

    #[test]
    fn dist_levels_bucket_by_distance() {
        let topo = leaf_spine(&small_spec());
        let rt = RouteTable::compute(&topo);
        let levels = rt.dist_levels(0);
        // Level 0: leaf 0 itself; level 1: the 4 spines; level 2: the
        // other 3 leaves — in id order within each level.
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![topo.leaves()[0]]);
        assert_eq!(
            levels[1],
            (4..8).map(SwitchId).collect::<Vec<_>>(),
            "all spines at distance 1"
        );
        assert_eq!(
            levels[2],
            vec![SwitchId(1), SwitchId(2), SwitchId(3)],
            "peer leaves at distance 2"
        );
        // An unreachable switch is absent from every level.
        let mut topo2 = crate::topology::Topology::new();
        let l0 = topo2.add_switch(SwitchKind::Leaf);
        let _l1 = topo2.add_switch(SwitchKind::Leaf);
        let s = topo2.add_switch(SwitchKind::Spine);
        topo2.connect_switches(l0, s, 1_000_000_000, 1_000_000_000, Time::from_nanos(10));
        let rt2 = RouteTable::compute(&topo2);
        let lv = rt2.dist_levels(0);
        assert_eq!(lv.len(), 2);
        assert_eq!(lv[0], vec![l0]);
        assert_eq!(lv[1], vec![s]);
    }

    #[test]
    fn disconnected_leaf_is_unreachable() {
        let mut topo = crate::topology::Topology::new();
        let l0 = topo.add_switch(SwitchKind::Leaf);
        let l1 = topo.add_switch(SwitchKind::Leaf);
        let s = topo.add_switch(SwitchKind::Spine);
        topo.connect_switches(l0, s, 1_000_000_000, 1_000_000_000, Time::from_nanos(10));
        // l1 left unconnected.
        let rt = RouteTable::compute(&topo);
        assert_eq!(rt.dist(l0, 1), None);
        assert!(rt.candidates(l0, 1).is_empty());
        assert_eq!(rt.dist(l1, 0), None);
    }
}
