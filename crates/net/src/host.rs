//! Host NIC model: a rate-limited FIFO from the host's transport stack onto
//! its access link.

use std::collections::VecDeque;
use std::io;

use drill_sim::codec::{invalid, put_varint, Decoder};
use drill_sim::Time;
use drill_telemetry::Probe;

use crate::arena::{PacketArena, PacketRef};
use crate::ids::{HostId, NodeRef};
use crate::topology::Topology;
use crate::{EventSink, NetEvent};

/// Default NIC transmit-buffer limit. Generous (hosts do not drop in the
/// paper's experiments — congestion happens in the fabric).
pub const HOST_NIC_BUF_BYTES: u64 = 4 * 1024 * 1024;

/// A host's transmit NIC.
///
/// Receiving needs no modeling (packets are delivered straight to the
/// transport layer by the runtime); transmit serializes packets at the
/// access-link rate.
pub struct HostNic {
    host: HostId,
    /// FIFO of (handle, wire size); the size rides along so backlog
    /// accounting never touches the arena.
    q: VecDeque<(PacketRef, u32)>,
    q_bytes: u64,
    in_flight: bool,
    limit_bytes: u64,
    /// Packets dropped at the NIC (buffer overflow) — should stay 0 in
    /// well-configured experiments.
    pub drops: u64,
    /// Packets transmitted.
    pub tx_pkts: u64,
}

impl HostNic {
    /// NIC for `host` with the default buffer.
    pub fn new(host: HostId) -> HostNic {
        HostNic {
            host,
            q: VecDeque::new(),
            q_bytes: 0,
            in_flight: false,
            limit_bytes: HOST_NIC_BUF_BYTES,
            drops: 0,
            tx_pkts: 0,
        }
    }

    /// Current transmit backlog in bytes.
    pub fn backlog_bytes(&self) -> u64 {
        self.q_bytes
    }

    /// Packets queued at the NIC, including the in-flight head (which
    /// stays in the queue until its tx-done) — the NIC's contribution to
    /// the audit packet-conservation holder walk.
    pub fn backlog_pkts(&self) -> usize {
        self.q.len()
    }

    /// Serialize this NIC's dynamic state (queued handles against `arena`,
    /// backlog accounting, counters). `limit_bytes` is structural and not
    /// serialized.
    pub fn save_state(&self, arena: &PacketArena, buf: &mut Vec<u8>) {
        put_varint(buf, self.q.len() as u64);
        for (r, size) in &self.q {
            arena.encode_ref(buf, r);
            put_varint(buf, *size as u64);
        }
        put_varint(buf, self.q_bytes);
        buf.push(self.in_flight as u8);
        put_varint(buf, self.drops);
        put_varint(buf, self.tx_pkts);
    }

    /// Restore state written by [`save_state`](HostNic::save_state) into a
    /// freshly built NIC for the same host.
    pub fn load_state(&mut self, arena: &mut PacketArena, d: &mut Decoder<'_>) -> io::Result<()> {
        let qlen = d.varint_usize()?;
        self.q.clear();
        for _ in 0..qlen {
            let r = arena.decode_ref(d)?;
            let size = d.varint_u32()?;
            self.q.push_back((r, size));
        }
        self.q_bytes = d.varint()?;
        self.in_flight = match d.u8()? {
            0 => false,
            1 => true,
            _ => return Err(invalid("bad bool byte")),
        };
        if !self.in_flight && !self.q.is_empty() {
            return Err(invalid("NIC queue without in-flight head"));
        }
        self.drops = d.varint()?;
        self.tx_pkts = d.varint()?;
        Ok(())
    }

    /// Queue a packet for transmission.
    ///
    /// `probe` records the accept (host-send) or the overflow drop; pass
    /// `&mut NoopProbe` to compile the telemetry out.
    pub fn send<P: Probe>(
        &mut self,
        topo: &Topology,
        arena: &mut PacketArena,
        pref: PacketRef,
        now: Time,
        out: &mut EventSink,
        probe: &mut P,
    ) {
        let link = topo.host_uplink(self.host);
        let size = arena.get(&pref).size;
        if !self.in_flight {
            debug_assert!(self.q.is_empty());
            if P::ENABLED {
                probe.on_host_send(now, self.host.0, &arena.get(&pref).meta());
            }
            self.in_flight = true;
            self.q.push_back((pref, size));
            out.push((
                now + Time::tx_time(size as u64, link.rate_bps),
                NetEvent::HostTxDone { host: self.host },
            ));
        } else {
            if self.q_bytes + size as u64 > self.limit_bytes {
                self.drops += 1;
                if P::ENABLED {
                    probe.on_nic_drop(now, self.host.0, &arena.get(&pref).meta());
                }
                arena.free(pref);
                return;
            }
            if P::ENABLED {
                probe.on_host_send(now, self.host.0, &arena.get(&pref).meta());
            }
            self.q_bytes += size as u64;
            self.q.push_back((pref, size));
        }
    }

    /// The head packet finished serializing: put it on the wire and start
    /// the next.
    pub fn on_tx_done(&mut self, topo: &Topology, now: Time, out: &mut EventSink) {
        let link = topo.host_uplink(self.host);
        let (pkt, _) = self.q.pop_front().expect("tx-done with empty NIC queue");
        self.tx_pkts += 1;
        let arrive = now + link.prop;
        match link.dst {
            NodeRef::Switch(s) => out.push((
                arrive,
                NetEvent::ArriveSwitch {
                    switch: s,
                    ingress: link.dst_port,
                    pkt,
                },
            )),
            NodeRef::Host(h) => out.push((arrive, NetEvent::ArriveHost { host: h, pkt })),
        }
        if let Some(&(_, size)) = self.q.front() {
            self.q_bytes -= size as u64;
            out.push((
                now + Time::tx_time(size as u64, link.rate_bps),
                NetEvent::HostTxDone { host: self.host },
            ));
        } else {
            self.in_flight = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{leaf_spine, LeafSpineSpec, DEFAULT_PROP};
    use crate::ids::FlowId;
    use crate::packet::Packet;
    use drill_telemetry::NoopProbe;

    fn topo() -> Topology {
        leaf_spine(&LeafSpineSpec {
            spines: 1,
            leaves: 2,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        })
    }

    fn pkt(payload: u32) -> Packet {
        Packet::data(
            0,
            FlowId(0),
            HostId(0),
            HostId(1),
            0,
            0,
            payload,
            Time::ZERO,
        )
    }

    fn send(
        nic: &mut HostNic,
        t: &Topology,
        arena: &mut PacketArena,
        p: Packet,
        out: &mut EventSink,
    ) {
        let r = arena.insert(p);
        nic.send(t, arena, r, Time::ZERO, out, &mut NoopProbe);
    }

    #[test]
    fn serializes_at_link_rate() {
        let t = topo();
        let mut nic = HostNic::new(HostId(0));
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        send(&mut nic, &t, &mut arena, pkt(1442), &mut out); // 1500B wire
        let (tx_at, _) = &out[0];
        assert_eq!(*tx_at, Time::from_nanos(1200));
        out.clear();
        nic.on_tx_done(&t, Time::from_nanos(1200), &mut out);
        match &out[0] {
            (
                t_arrive,
                NetEvent::ArriveSwitch {
                    switch,
                    ingress,
                    pkt,
                },
            ) => {
                assert_eq!(*t_arrive, Time::from_nanos(1700));
                assert_eq!(*switch, t.host_leaf(HostId(0)));
                assert_eq!(*ingress, t.host_uplink(HostId(0)).dst_port);
                assert_eq!(arena.get(pkt).size, 1500);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(nic.tx_pkts, 1);
    }

    #[test]
    fn back_to_back_packets_queue() {
        let t = topo();
        let mut nic = HostNic::new(HostId(0));
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        send(&mut nic, &t, &mut arena, pkt(1442), &mut out);
        send(&mut nic, &t, &mut arena, pkt(1442), &mut out);
        // Only one TxDone scheduled for the head.
        assert_eq!(out.len(), 1);
        assert_eq!(nic.backlog_bytes(), 1500);
        out.clear();
        nic.on_tx_done(&t, Time::from_nanos(1200), &mut out);
        // Arrival of first + TxDone of second.
        assert_eq!(out.len(), 2);
        assert_eq!(nic.backlog_bytes(), 0);
    }

    #[test]
    fn overflow_drops() {
        let t = topo();
        let mut nic = HostNic::new(HostId(0));
        nic.limit_bytes = 3000;
        let mut arena = PacketArena::new();
        let mut out = Vec::new();
        for _ in 0..5 {
            send(&mut nic, &t, &mut arena, pkt(1442), &mut out);
        }
        // 1 in flight + 2 queued (3000B), rest dropped.
        assert_eq!(nic.drops, 2);
        // The dropped packets' arena slots were released on the spot.
        assert_eq!(arena.live(), 3);
    }
}
