//! The in-flight packet arena: every packet between host send and final
//! delivery/drop lives in one generational slab, and events carry a slim
//! [`PacketRef`] handle instead of the ~100-byte [`Packet`] itself.
//!
//! # Why
//!
//! The timing wheel sizes its slab nodes for the largest event variant.
//! With packets travelling by value inside `ArriveSwitch`/`ArriveHost`,
//! every wheel push, level cascade, slot-drain sort and `EventSink` drain
//! memcpys a full packet; with handles, events shrink to ≤ 24 bytes and
//! the packet bytes are written exactly once, at [`PacketArena::insert`].
//!
//! # Lifecycle contract
//!
//! `insert` on host send → the handle threads through NIC queue, events,
//! switch port FIFOs and (optionally) the shim reorder buffer → exactly
//! one of:
//!
//! * [`PacketArena::take`] at final delivery (the transport layer wants
//!   the packet by value), or
//! * [`PacketArena::free`] at any drop site (tail drop, dead link, lossy
//!   wire, NIC overflow, blackhole, switch rebuild).
//!
//! [`PacketArena::live`] counts outstanding handles; the determinism
//! golden suite asserts it returns to zero after every drained run, which
//! catches a forgotten `free` on any drop path.
//!
//! Slots are generation-stamped (the same scheme as the timing wheel's
//! `EventToken`): freeing bumps the slot generation, so a stale handle
//! can never silently alias a reused slot — dereferencing one trips a
//! debug assertion.
//!
//! # The `fat-events` build
//!
//! With the off-by-default `fat-events` cargo feature, [`PacketRef`]
//! *is* the packet (carried by value, as before this refactor) and the
//! arena degenerates to a live counter. The API is identical, so every
//! consumer compiles against both layouts unchanged and
//! `scripts/qbench.sh` can A/B the two builds end to end — behaviour is
//! bit-identical by construction because the arena changes where packets
//! live, never what happens to them.

use crate::packet::Packet;

#[cfg(not(feature = "fat-events"))]
mod slim {
    use std::io;

    use drill_sim::codec::{invalid, put_varint, Decoder};

    use super::Packet;
    use crate::snapio::{get_packet, put_packet};

    /// A copyable handle to a packet interned in a [`PacketArena`]:
    /// slab index + generation stamp, 8 bytes.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct PacketRef {
        idx: u32,
        gen: u32,
    }

    struct Slot {
        /// Bumped on every free; a handle is valid iff its stamp matches.
        gen: u32,
        /// `None` while the slot sits on the free list.
        pkt: Option<Packet>,
    }

    /// Generational slab arena for in-flight packets (see module docs).
    #[derive(Default)]
    pub struct PacketArena {
        slots: Vec<Slot>,
        /// Indices of free slots, reused LIFO (hottest cache lines first).
        free: Vec<u32>,
        live: usize,
    }

    impl PacketArena {
        /// An empty arena.
        pub const fn new() -> PacketArena {
            PacketArena {
                slots: Vec::new(),
                free: Vec::new(),
                live: 0,
            }
        }

        /// Intern `pkt`, returning its handle. Reuses a freed slot when
        /// one exists; grows the slab otherwise.
        #[inline]
        pub fn insert(&mut self, pkt: Packet) -> PacketRef {
            self.live += 1;
            if let Some(idx) = self.free.pop() {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.pkt.is_none(), "free-list slot was occupied");
                slot.pkt = Some(pkt);
                PacketRef { idx, gen: slot.gen }
            } else {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    pkt: Some(pkt),
                });
                PacketRef { idx, gen: 0 }
            }
        }

        #[inline]
        fn check(&self, r: &PacketRef) {
            debug_assert_eq!(
                self.slots[r.idx as usize].gen, r.gen,
                "stale PacketRef: slot {} was freed and reused",
                r.idx
            );
        }

        /// Read the packet behind `r`.
        ///
        /// Debug builds assert the handle is current (a stale handle —
        /// one whose slot was freed — is a lifecycle bug at the caller).
        #[inline]
        pub fn get<'a>(&'a self, r: &'a PacketRef) -> &'a Packet {
            self.check(r);
            self.slots[r.idx as usize]
                .pkt
                .as_ref()
                .expect("PacketRef points at a freed slot")
        }

        /// Mutable access to the packet behind `r` (policy hooks mutate
        /// source routes and CONGA tags in place).
        ///
        /// Takes the handle mutably so the `fat-events` build — where the
        /// handle owns the bytes — presents the same signature.
        #[inline]
        pub fn get_mut<'a>(&'a mut self, r: &'a mut PacketRef) -> &'a mut Packet {
            self.check(r);
            self.slots[r.idx as usize]
                .pkt
                .as_mut()
                .expect("PacketRef points at a freed slot")
        }

        /// Remove the packet behind `r` from the arena and return it by
        /// value (final delivery). Frees the slot.
        #[inline]
        pub fn take(&mut self, r: PacketRef) -> Packet {
            self.check(&r);
            let slot = &mut self.slots[r.idx as usize];
            let pkt = slot.pkt.take().expect("PacketRef points at a freed slot");
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(r.idx);
            self.live -= 1;
            pkt
        }

        /// Drop the packet behind `r` (any drop site). Frees the slot.
        #[inline]
        pub fn free(&mut self, r: PacketRef) {
            let _ = self.take(r);
        }

        /// Number of packets currently interned. Zero once a run has
        /// fully drained — the leak check the golden suite pins.
        #[inline]
        pub fn live(&self) -> usize {
            self.live
        }

        /// Slab capacity in slots (high-water mark of concurrently live
        /// packets; never shrinks).
        #[inline]
        pub fn capacity(&self) -> usize {
            self.slots.len()
        }

        /// Serialize the whole slab: every slot (generation + occupancy +
        /// packet), the free list **in LIFO order**, and the live count.
        ///
        /// The free-list order is load-bearing: slot reuse after restore
        /// must pick the same slots in the same order as the
        /// uninterrupted run, or every later `PacketRef` diverges and
        /// bit-identical replay breaks.
        pub fn save_state(&self, buf: &mut Vec<u8>) {
            put_varint(buf, self.slots.len() as u64);
            for slot in &self.slots {
                put_varint(buf, slot.gen as u64);
                match &slot.pkt {
                    Some(p) => {
                        buf.push(1);
                        put_packet(buf, p);
                    }
                    None => buf.push(0),
                }
            }
            put_varint(buf, self.free.len() as u64);
            for &idx in &self.free {
                put_varint(buf, idx as u64);
            }
            put_varint(buf, self.live as u64);
        }

        /// Rebuild an arena from [`save_state`](PacketArena::save_state)
        /// output, returning it with the recorded live count (always
        /// consistent here; the fat build reconstructs live lazily, so
        /// callers cross-check uniformly).
        pub fn load_state(d: &mut Decoder<'_>) -> io::Result<(PacketArena, usize)> {
            let n = d.varint_usize()?;
            let mut slots = Vec::with_capacity(n.min(1 << 20));
            let mut occupied = 0usize;
            for _ in 0..n {
                let gen = d.varint_u32()?;
                let pkt = match d.u8()? {
                    0 => None,
                    1 => {
                        occupied += 1;
                        Some(get_packet(d)?)
                    }
                    _ => return Err(invalid("bad slot occupancy byte")),
                };
                slots.push(Slot { gen, pkt });
            }
            let free_len = d.varint_usize()?;
            if free_len != n - occupied {
                return Err(invalid("free list disagrees with slot occupancy"));
            }
            let mut free = Vec::with_capacity(free_len.min(1 << 20));
            let mut seen = vec![false; n];
            for _ in 0..free_len {
                let idx = d.varint_u32()?;
                let slot = slots
                    .get(idx as usize)
                    .ok_or_else(|| invalid("free index out of bounds"))?;
                if slot.pkt.is_some() || std::mem::replace(&mut seen[idx as usize], true) {
                    return Err(invalid("free index occupied or duplicated"));
                }
                free.push(idx);
            }
            let live = d.varint_usize()?;
            if live != occupied {
                return Err(invalid("live count disagrees with slot occupancy"));
            }
            Ok((PacketArena { slots, free, live }, live))
        }

        /// Serialize a handle as its `(index, generation)` pair. Debug
        /// builds assert the handle is current against this arena.
        pub fn encode_ref(&self, buf: &mut Vec<u8>, r: &PacketRef) {
            self.check(r);
            put_varint(buf, r.idx as u64);
            put_varint(buf, r.gen as u64);
        }

        /// Decode a handle written by
        /// [`encode_ref`](PacketArena::encode_ref), validating that it
        /// points at an occupied slot of matching generation.
        pub fn decode_ref(&mut self, d: &mut Decoder<'_>) -> io::Result<PacketRef> {
            let idx = d.varint_u32()?;
            let gen = d.varint_u32()?;
            let slot = self
                .slots
                .get(idx as usize)
                .ok_or_else(|| invalid("PacketRef index out of bounds"))?;
            if slot.gen != gen || slot.pkt.is_none() {
                return Err(invalid("PacketRef is stale or points at a free slot"));
            }
            Ok(PacketRef { idx, gen })
        }
    }
}

#[cfg(feature = "fat-events")]
mod fat {
    use std::io;

    use drill_sim::codec::{put_varint, Decoder};

    use super::Packet;
    use crate::snapio::{get_packet, put_packet};

    /// The `fat-events` handle: the packet itself, carried by value
    /// through queues and events exactly as before the arena refactor.
    /// Deliberately not `Copy` — the slim build's moves must compile
    /// against a move-only handle so neither build double-frees.
    #[derive(Debug)]
    pub struct PacketRef {
        pkt: Packet,
    }

    /// Pass-through arena: no storage, just the live-handle count so the
    /// leak check exercises the same lifecycle contract on both builds.
    #[derive(Default)]
    pub struct PacketArena {
        live: usize,
    }

    impl PacketArena {
        /// An empty arena.
        pub const fn new() -> PacketArena {
            PacketArena { live: 0 }
        }

        /// Wrap `pkt` into a by-value handle.
        #[inline]
        pub fn insert(&mut self, pkt: Packet) -> PacketRef {
            self.live += 1;
            PacketRef { pkt }
        }

        /// Read the packet inside `r`.
        #[inline]
        pub fn get<'a>(&'a self, r: &'a PacketRef) -> &'a Packet {
            &r.pkt
        }

        /// Mutable access to the packet inside `r`.
        #[inline]
        pub fn get_mut<'a>(&'a mut self, r: &'a mut PacketRef) -> &'a mut Packet {
            &mut r.pkt
        }

        /// Unwrap the handle (final delivery).
        #[inline]
        pub fn take(&mut self, r: PacketRef) -> Packet {
            self.live -= 1;
            r.pkt
        }

        /// Drop the handle (any drop site).
        #[inline]
        pub fn free(&mut self, r: PacketRef) {
            self.live -= 1;
            let _ = r;
        }

        /// Number of outstanding handles.
        #[inline]
        pub fn live(&self) -> usize {
            self.live
        }

        /// No slab in this build; reported as the live count so capacity
        /// is still monotone against `live` for diagnostics.
        #[inline]
        pub fn capacity(&self) -> usize {
            self.live
        }

        /// Serialize arena state: only the live count exists here (the
        /// packets themselves travel with their handles, so
        /// [`encode_ref`](PacketArena::encode_ref) writes them inline).
        pub fn save_state(&self, buf: &mut Vec<u8>) {
            put_varint(buf, self.live as u64);
        }

        /// Rebuild an arena: starts empty (`live == 0`; every decoded ref
        /// re-inserts) and returns the recorded live count for the caller
        /// to cross-check once all refs are decoded.
        pub fn load_state(d: &mut Decoder<'_>) -> io::Result<(PacketArena, usize)> {
            let live = d.varint_usize()?;
            Ok((PacketArena::new(), live))
        }

        /// Serialize a handle: the packet travels inline in this build.
        pub fn encode_ref(&self, buf: &mut Vec<u8>, r: &PacketRef) {
            put_packet(buf, &r.pkt);
        }

        /// Decode a handle written by
        /// [`encode_ref`](PacketArena::encode_ref), re-interning the
        /// inline packet (which rebuilds the live count).
        pub fn decode_ref(&mut self, d: &mut Decoder<'_>) -> io::Result<PacketRef> {
            let pkt = get_packet(d)?;
            Ok(self.insert(pkt))
        }
    }
}

#[cfg(feature = "fat-events")]
pub use fat::{PacketArena, PacketRef};
#[cfg(not(feature = "fat-events"))]
pub use slim::{PacketArena, PacketRef};

/// The slim handle must stay pocket-sized: it is the payload of the hot
/// event variants, so its size bounds `NetEvent`'s.
#[cfg(not(feature = "fat-events"))]
const _: () = assert!(std::mem::size_of::<PacketRef>() == 8);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, HostId};
    use drill_sim::{SimRng, Time};

    fn pkt(id: u64) -> Packet {
        Packet::data(
            id,
            FlowId(0),
            HostId(0),
            HostId(1),
            0xfeed,
            0,
            1000,
            Time::ZERO,
        )
    }

    #[test]
    fn insert_get_take_round_trip() {
        let mut a = PacketArena::new();
        let r = a.insert(pkt(7));
        assert_eq!(a.live(), 1);
        assert_eq!(a.get(&r).id, 7);
        let p = a.take(r);
        assert_eq!(p.id, 7);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut a = PacketArena::new();
        let mut r = a.insert(pkt(1));
        a.get_mut(&mut r).push_route(42);
        assert_eq!(a.get(&r).srcroute_len, 1);
        assert_eq!(a.get_mut(&mut r).next_route_hop(), Some(42));
        a.free(r);
    }

    #[cfg(not(feature = "fat-events"))]
    #[test]
    fn free_list_reuses_slots() {
        let mut a = PacketArena::new();
        let r0 = a.insert(pkt(0));
        let r1 = a.insert(pkt(1));
        assert_eq!(a.capacity(), 2);
        a.free(r0);
        a.free(r1);
        // LIFO reuse: the two replacement packets land in the same two
        // slots, no slab growth.
        let r2 = a.insert(pkt(2));
        let r3 = a.insert(pkt(3));
        assert_eq!(a.capacity(), 2, "freed slots reused, slab did not grow");
        assert_eq!(a.get(&r2).id, 2);
        assert_eq!(a.get(&r3).id, 3);
        a.free(r2);
        a.free(r3);
        assert_eq!(a.live(), 0);
    }

    #[cfg(not(feature = "fat-events"))]
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_handle_deref_is_caught() {
        let mut a = PacketArena::new();
        let stale = a.insert(pkt(0));
        let dup = stale; // Copy: same slot, same generation
        a.free(dup);
        let _reused = a.insert(pkt(1)); // same slot, new generation
        let _ = a.get(&stale); // must trip the generation check
    }

    #[test]
    fn grow_under_churn_keeps_handles_distinct() {
        // Interleaved alloc/free with a rising live population: the slab
        // grows while the free list cycles, and no two live handles may
        // ever resolve to the same packet.
        let mut a = PacketArena::new();
        let mut rng = SimRng::seed_from(0xA11A);
        let mut held: Vec<(super::PacketRef, u64)> = Vec::new();
        let mut next_id = 0u64;
        for round in 0..10_000usize {
            // Bias toward growth early, churn later.
            let grow = held.is_empty() || rng.below(100) < if round < 4000 { 70 } else { 45 };
            if grow {
                let r = a.insert(pkt(next_id));
                held.push((r, next_id));
                next_id += 1;
            } else {
                let i = rng.below(held.len());
                let (r, id) = held.swap_remove(i);
                assert_eq!(a.get(&r).id, id, "handle resolved to the wrong packet");
                a.free(r);
            }
        }
        assert_eq!(a.live(), held.len());
        // Every surviving handle still resolves to its own packet, and
        // all payloads are pairwise distinct.
        let mut seen: Vec<u64> = held
            .iter()
            .map(|(r, id)| {
                assert_eq!(a.get(r).id, *id);
                *id
            })
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), held.len(), "two live handles aliased");
        for (r, _) in held.drain(..) {
            a.free(r);
        }
        assert_eq!(a.live(), 0);
    }
}
