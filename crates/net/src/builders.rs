//! Topology constructors for every network evaluated in the paper.

use drill_sim::Time;

use crate::ids::SwitchId;
use crate::topology::{SwitchKind, Topology};

/// Default propagation delay per hop (intra-datacenter fiber, ~100 m).
pub const DEFAULT_PROP: Time = Time::from_nanos(500);

/// Parameters for a two-stage (leaf-spine) folded Clos.
#[derive(Clone, Debug)]
pub struct LeafSpineSpec {
    /// Number of spine switches.
    pub spines: usize,
    /// Number of leaf switches.
    pub leaves: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Host-to-leaf link rate (bps).
    pub host_rate: u64,
    /// Leaf-to-spine link rate (bps).
    pub core_rate: u64,
    /// Per-hop propagation delay.
    pub prop: Time,
}

impl LeafSpineSpec {
    /// The paper's first evaluation topology (Figure 6): 4 spines, 16
    /// leaves, 20 hosts per leaf, 40 Gbps core, 10 Gbps edge.
    pub fn paper_baseline() -> LeafSpineSpec {
        LeafSpineSpec {
            spines: 4,
            leaves: 16,
            hosts_per_leaf: 20,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }
    }

    /// The paper's scale-out topology (Figure 7): 16 spines, 16 leaves, 20
    /// hosts per leaf, all links 10 Gbps (same aggregate core capacity as
    /// the baseline).
    pub fn paper_scale_out() -> LeafSpineSpec {
        LeafSpineSpec {
            spines: 16,
            leaves: 16,
            hosts_per_leaf: 20,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        }
    }

    /// Total core capacity: sum of all leaf-uplink rates, one direction.
    pub fn core_capacity_bps(&self) -> u64 {
        (self.spines * self.leaves) as u64 * self.core_rate
    }
}

/// Build a symmetric two-stage leaf-spine Clos: every leaf connects to every
/// spine with one link.
pub fn leaf_spine(spec: &LeafSpineSpec) -> Topology {
    leaf_spine_custom(spec, |_leaf, _spine| vec![spec.core_rate])
}

/// Build a leaf-spine Clos with per-pair custom striping: `links(leaf,
/// spine)` returns the rate of each parallel link between that pair (empty
/// for none). Used for the paper's heterogeneous topology (Figure 13) and
/// the §3.4.3 examples.
pub fn leaf_spine_custom(
    spec: &LeafSpineSpec,
    links: impl Fn(usize, usize) -> Vec<u64>,
) -> Topology {
    let mut t = Topology::new();
    let leaves: Vec<SwitchId> = (0..spec.leaves)
        .map(|_| t.add_switch(SwitchKind::Leaf))
        .collect();
    let spines: Vec<SwitchId> = (0..spec.spines)
        .map(|_| t.add_switch(SwitchKind::Spine))
        .collect();
    for (li, &l) in leaves.iter().enumerate() {
        for (si, &s) in spines.iter().enumerate() {
            for rate in links(li, si) {
                t.connect_switches(l, s, rate, rate, spec.prop);
            }
        }
    }
    for &l in &leaves {
        for _ in 0..spec.hosts_per_leaf {
            t.add_host(l, spec.host_rate, spec.prop);
        }
    }
    t.validate();
    t
}

/// Parameters for a VL2-style three-stage Clos (ToR - Aggregation -
/// Intermediate).
#[derive(Clone, Debug)]
pub struct Vl2Spec {
    /// Number of ToR switches.
    pub tors: usize,
    /// Number of aggregation switches.
    pub aggs: usize,
    /// Number of intermediate switches.
    pub ints: usize,
    /// Hosts per ToR.
    pub hosts_per_tor: usize,
    /// Host link rate (bps).
    pub host_rate: u64,
    /// Core (ToR-Agg and Agg-Int) link rate (bps).
    pub core_rate: u64,
    /// ToR uplinks: how many aggregation switches each ToR attaches to.
    pub tor_uplinks: usize,
    /// Per-hop propagation delay.
    pub prop: Time,
}

impl Vl2Spec {
    /// The paper's VL2 experiment (Figure 10): 16 ToRs x 20 hosts at
    /// 1 Gbps, 8 aggregation and 4 intermediate switches, 10 Gbps core,
    /// each ToR dual-homed to 2 aggregation switches.
    pub fn paper() -> Vl2Spec {
        Vl2Spec {
            tors: 16,
            aggs: 8,
            ints: 4,
            hosts_per_tor: 20,
            host_rate: 1_000_000_000,
            core_rate: 10_000_000_000,
            tor_uplinks: 2,
            prop: DEFAULT_PROP,
        }
    }
}

/// Build a VL2 three-stage Clos: ToR `i` connects to `tor_uplinks`
/// consecutive aggregation switches starting at `(i * tor_uplinks) % aggs`;
/// every aggregation switch connects to every intermediate switch.
pub fn vl2(spec: &Vl2Spec) -> Topology {
    let mut t = Topology::new();
    let tors: Vec<SwitchId> = (0..spec.tors)
        .map(|_| t.add_switch(SwitchKind::Leaf))
        .collect();
    let aggs: Vec<SwitchId> = (0..spec.aggs)
        .map(|_| t.add_switch(SwitchKind::Agg))
        .collect();
    let ints: Vec<SwitchId> = (0..spec.ints)
        .map(|_| t.add_switch(SwitchKind::Spine))
        .collect();
    for (ti, &tor) in tors.iter().enumerate() {
        for u in 0..spec.tor_uplinks {
            let agg = aggs[(ti * spec.tor_uplinks + u) % spec.aggs];
            t.connect_switches(tor, agg, spec.core_rate, spec.core_rate, spec.prop);
        }
    }
    for &agg in &aggs {
        for &int in &ints {
            t.connect_switches(agg, int, spec.core_rate, spec.core_rate, spec.prop);
        }
    }
    for &tor in &tors {
        for _ in 0..spec.hosts_per_tor {
            t.add_host(tor, spec.host_rate, spec.prop);
        }
    }
    t.validate();
    t
}

/// Build a k-ary fat-tree: `k` pods of `k/2` edge and `k/2` aggregation
/// switches, `(k/2)^2` cores, `k/2` hosts per edge switch, all links equal
/// rate. `k` must be even.
pub fn fat_tree(k: usize, link_rate: u64, prop: Time) -> Topology {
    fat_tree_custom(k, k / 2, link_rate, link_rate, prop)
}

/// Build a k-ary fat-tree with a custom edge subscription: `hosts_per_edge`
/// hosts at `host_rate` bps on each edge switch instead of the rearrangeably
/// non-blocking `k/2`. `hosts_per_edge > k/2` yields an oversubscribed
/// fabric (ratio `hosts_per_edge / (k/2)` at the edge tier) — the common
/// production trade and the configuration `scalebench` uses to reach 16k
/// hosts on a k=32 fabric. Wiring above the edge tier is identical to
/// [`fat_tree`], including construction order, so `fat_tree(k, r, p)` ==
/// `fat_tree_custom(k, k/2, r, r, p)` switch-for-switch and link-for-link.
pub fn fat_tree_custom(
    k: usize,
    hosts_per_edge: usize,
    link_rate: u64,
    host_rate: u64,
    prop: Time,
) -> Topology {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let mut t = Topology::new();
    let mut edges = Vec::new();
    let mut aggs = Vec::new();
    for _pod in 0..k {
        edges.push(
            (0..half)
                .map(|_| t.add_switch(SwitchKind::Leaf))
                .collect::<Vec<_>>(),
        );
        aggs.push(
            (0..half)
                .map(|_| t.add_switch(SwitchKind::Agg))
                .collect::<Vec<_>>(),
        );
    }
    let cores: Vec<SwitchId> = (0..half * half)
        .map(|_| t.add_switch(SwitchKind::Spine))
        .collect();
    for pod in 0..k {
        for &e in &edges[pod] {
            for &a in &aggs[pod] {
                t.connect_switches(e, a, link_rate, link_rate, prop);
            }
        }
        for (j, &a) in aggs[pod].iter().enumerate() {
            for c in 0..half {
                t.connect_switches(a, cores[j * half + c], link_rate, link_rate, prop);
            }
        }
    }
    for pod_edges in &edges {
        for &e in pod_edges {
            for _ in 0..hosts_per_edge {
                t.add_host(e, host_rate, prop);
            }
        }
    }
    t.validate();
    t
}

/// Parameters for a general three-tier folded Clos (leaf - pod aggregation -
/// core), the fabric shape CAFT and the randomized fat-tree routing papers
/// evaluate on. Unlike [`fat_tree`], every tier width is independent, so
/// pod radix, core plane width, and edge subscription can each be swept.
#[derive(Clone, Debug)]
pub struct ClosSpec {
    /// Number of pods.
    pub pods: usize,
    /// Leaf switches per pod.
    pub leaves_per_pod: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// Core switches, split into `aggs_per_pod` equal planes; must be a
    /// positive multiple of `aggs_per_pod`.
    pub cores: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Host-to-leaf link rate (bps).
    pub host_rate: u64,
    /// Leaf-to-aggregation link rate (bps).
    pub leaf_agg_rate: u64,
    /// Aggregation-to-core link rate (bps).
    pub agg_core_rate: u64,
    /// Per-hop propagation delay.
    pub prop: Time,
}

impl ClosSpec {
    /// A small three-tier Clos for CI goldens: 4 pods x (2 leaves + 2 aggs),
    /// 4 cores, 4 hosts per leaf (32 hosts), 10/40 Gbps edge/core.
    pub fn smoke() -> ClosSpec {
        ClosSpec {
            pods: 4,
            leaves_per_pod: 2,
            aggs_per_pod: 2,
            cores: 4,
            hosts_per_leaf: 4,
            host_rate: 10_000_000_000,
            leaf_agg_rate: 40_000_000_000,
            agg_core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }
    }

    /// Hosts in the fabric.
    pub fn num_hosts(&self) -> usize {
        self.pods * self.leaves_per_pod * self.hosts_per_leaf
    }

    /// Switches in the fabric across all three tiers.
    pub fn num_switches(&self) -> usize {
        self.pods * (self.leaves_per_pod + self.aggs_per_pod) + self.cores
    }

    /// Core uplinks per aggregation switch (its plane width).
    pub fn core_group(&self) -> usize {
        self.cores / self.aggs_per_pod
    }

    /// Closed-form count of directed link entries ([`Topology::links`]
    /// records each physical link twice, once per direction): per-pod
    /// leaf-agg full mesh, one agg-core link per (pod, core) pair, one
    /// access link per host.
    pub fn expected_link_entries(&self) -> usize {
        let leaf_agg = self.pods * self.leaves_per_pod * self.aggs_per_pod;
        let agg_core = self.pods * self.cores;
        let host = self.num_hosts();
        2 * (leaf_agg + agg_core + host)
    }

    /// One-direction bisection bandwidth of the core tier: every
    /// pod-to-pod path crosses a core, and each core carries one link per
    /// pod, so splitting the pods in half cuts `cores * pods/2` links.
    pub fn bisection_bps(&self) -> u64 {
        (self.cores * (self.pods / 2)) as u64 * self.agg_core_rate
    }
}

/// Build a three-tier folded Clos from `spec`.
///
/// Wiring rules (validated in tests and proptests):
/// * within each pod, leaves and aggregation switches form a full bipartite
///   mesh (`leaves_per_pod * aggs_per_pod` links per pod);
/// * the core tier is split into `aggs_per_pod` planes of
///   `cores / aggs_per_pod` switches; aggregation switch `j` of every pod
///   connects to exactly the switches of plane `j`, so every core switch
///   sees every pod exactly once and has exactly `pods` ports.
///
/// Construction order (leaves+aggs per pod, then cores, then links, then
/// hosts) is fixed and documented because switch ids feed the deterministic
/// replay goldens.
pub fn clos(spec: &ClosSpec) -> Topology {
    assert!(spec.pods >= 2, "need at least two pods");
    assert!(
        spec.leaves_per_pod >= 1 && spec.aggs_per_pod >= 1 && spec.hosts_per_leaf >= 1,
        "tier widths must be positive"
    );
    assert!(
        spec.cores >= spec.aggs_per_pod && spec.cores.is_multiple_of(spec.aggs_per_pod),
        "cores ({}) must be a positive multiple of aggs_per_pod ({})",
        spec.cores,
        spec.aggs_per_pod
    );
    let group = spec.core_group();
    let mut t = Topology::new();
    let mut leaves = Vec::new();
    let mut aggs = Vec::new();
    for _pod in 0..spec.pods {
        leaves.push(
            (0..spec.leaves_per_pod)
                .map(|_| t.add_switch(SwitchKind::Leaf))
                .collect::<Vec<_>>(),
        );
        aggs.push(
            (0..spec.aggs_per_pod)
                .map(|_| t.add_switch(SwitchKind::Agg))
                .collect::<Vec<_>>(),
        );
    }
    let cores: Vec<SwitchId> = (0..spec.cores)
        .map(|_| t.add_switch(SwitchKind::Spine))
        .collect();
    for pod in 0..spec.pods {
        for &l in &leaves[pod] {
            for &a in &aggs[pod] {
                t.connect_switches(l, a, spec.leaf_agg_rate, spec.leaf_agg_rate, spec.prop);
            }
        }
        for (j, &a) in aggs[pod].iter().enumerate() {
            for c in 0..group {
                t.connect_switches(
                    a,
                    cores[j * group + c],
                    spec.agg_core_rate,
                    spec.agg_core_rate,
                    spec.prop,
                );
            }
        }
    }
    for pod_leaves in &leaves {
        for &l in pod_leaves {
            for _ in 0..spec.hosts_per_leaf {
                t.add_host(l, spec.host_rate, spec.prop);
            }
        }
    }
    t.validate();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeRef;
    use crate::topology::HopClass;

    #[test]
    fn leaf_spine_counts() {
        let spec = LeafSpineSpec {
            spines: 4,
            leaves: 6,
            hosts_per_leaf: 5,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        };
        let t = leaf_spine(&spec);
        assert_eq!(t.num_switches(), 10);
        assert_eq!(t.num_hosts(), 30);
        assert_eq!(t.num_leaves(), 6);
        // Each leaf: 4 spine ports + 5 host ports.
        for &l in t.leaves() {
            assert_eq!(t.num_ports(l), 9);
        }
        // Link count: (4*6 core + 30 host) * 2 directions.
        assert_eq!(t.links().len(), (24 + 30) * 2);
    }

    #[test]
    fn paper_specs() {
        let base = LeafSpineSpec::paper_baseline();
        assert_eq!(base.core_capacity_bps(), 64 * 40_000_000_000);
        let so = LeafSpineSpec::paper_scale_out();
        // Identical aggregate core capacity.
        assert_eq!(so.core_capacity_bps(), 256 * 10_000_000_000);
        assert_eq!(base.core_capacity_bps(), so.core_capacity_bps());
    }

    #[test]
    fn custom_striping_adds_parallel_links() {
        // Figure 13 style: leaf i gets two links to spines i and i+1.
        let spec = LeafSpineSpec {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let t = leaf_spine_custom(&spec, |l, s| {
            if s == l || s == (l + 1) % 4 {
                vec![spec.core_rate; 2]
            } else {
                vec![spec.core_rate]
            }
        });
        let l0 = t.leaves()[0];
        // Spines are created after leaves: ids 4..8.
        assert_eq!(t.ports_to_switch(l0, SwitchId(4)).len(), 2);
        assert_eq!(t.ports_to_switch(l0, SwitchId(5)).len(), 2);
        assert_eq!(t.ports_to_switch(l0, SwitchId(6)).len(), 1);
    }

    #[test]
    fn vl2_structure() {
        let t = vl2(&Vl2Spec::paper());
        assert_eq!(t.num_leaves(), 16);
        assert_eq!(t.num_hosts(), 320);
        // 16 ToRs with 2 uplinks + 8*4 agg-int links + 320 host links, x2.
        assert_eq!(t.links().len(), (32 + 32 + 320) * 2);
        // ToR uplinks are LeafUp.
        let tor = t.leaves()[0];
        assert_eq!(t.egress(tor, 0).hop, HopClass::LeafUp);
    }

    #[test]
    fn vl2_tor_uplink_spread() {
        let t = vl2(&Vl2Spec::paper());
        // ToR 0 -> aggs {0,1}; ToR 1 -> aggs {2,3}; ... ToR 4 -> aggs {0,1}.
        let tor0_up: Vec<_> = (0..2).map(|p| t.egress(t.leaves()[0], p).dst).collect();
        let tor4_up: Vec<_> = (0..2).map(|p| t.egress(t.leaves()[4], p).dst).collect();
        assert_eq!(tor0_up, tor4_up, "striping wraps around");
    }

    #[test]
    fn fat_tree_structure() {
        let k = 4;
        let t = fat_tree(k, 10_000_000_000, DEFAULT_PROP);
        // k^2/2 edges? For k=4: 8 edge, 8 agg, 4 core, 16 hosts.
        assert_eq!(t.num_leaves(), 8);
        assert_eq!(t.num_switches(), 8 + 8 + 4);
        assert_eq!(t.num_hosts(), 16);
        // Every edge switch has k/2 agg ports + k/2 host ports.
        for &e in t.leaves() {
            assert_eq!(t.num_ports(e), 4);
        }
        // Each core sees k pods.
        let core = SwitchId((t.num_switches() - 1) as u32);
        assert_eq!(t.num_ports(core), k);
        for p in 0..k as u16 {
            assert!(matches!(t.egress(core, p).dst, NodeRef::Switch(_)));
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_odd_arity_panics() {
        fat_tree(3, 1_000_000_000, DEFAULT_PROP);
    }

    #[test]
    fn fat_tree_custom_matches_fat_tree_at_full_subscription() {
        let a = fat_tree(4, 10_000_000_000, DEFAULT_PROP);
        let b = fat_tree_custom(4, 2, 10_000_000_000, 10_000_000_000, DEFAULT_PROP);
        assert_eq!(a.num_switches(), b.num_switches());
        assert_eq!(a.num_hosts(), b.num_hosts());
        assert_eq!(
            format!("{:?}", a.links()),
            format!("{:?}", b.links()),
            "identical wiring, link for link"
        );
    }

    #[test]
    fn fat_tree_custom_oversubscribed_edge() {
        // k=4 with 4 hosts per edge: 2:1 oversubscription, 32 hosts.
        let t = fat_tree_custom(4, 4, 10_000_000_000, 10_000_000_000, DEFAULT_PROP);
        assert_eq!(t.num_hosts(), 32);
        for &e in t.leaves() {
            // 2 agg uplinks + 4 host ports.
            assert_eq!(t.num_ports(e), 6);
        }
        // Core wiring unchanged by the edge subscription.
        let core = SwitchId((t.num_switches() - 1) as u32);
        assert_eq!(t.num_ports(core), 4);
    }

    #[test]
    fn clos_structure_and_closed_forms() {
        let spec = ClosSpec::smoke();
        let t = clos(&spec);
        assert_eq!(t.num_switches(), spec.num_switches());
        assert_eq!(t.num_hosts(), spec.num_hosts());
        assert_eq!(t.num_leaves(), spec.pods * spec.leaves_per_pod);
        assert_eq!(t.links().len(), spec.expected_link_entries());
        // Every leaf: aggs_per_pod uplinks + hosts_per_leaf host ports.
        for &l in t.leaves() {
            assert_eq!(t.num_ports(l), spec.aggs_per_pod + spec.hosts_per_leaf);
        }
        // Every core sees every pod exactly once.
        let first_core = spec.pods * (spec.leaves_per_pod + spec.aggs_per_pod);
        for c in 0..spec.cores {
            let core = SwitchId((first_core + c) as u32);
            assert_eq!(t.num_ports(core), spec.pods);
        }
        assert_eq!(spec.bisection_bps(), 8 * 40_000_000_000);
    }

    #[test]
    fn clos_core_planes_are_disjoint() {
        let spec = ClosSpec::smoke();
        let t = clos(&spec);
        // Aggregation switch j of pod p is switch p*(l+a) + l + j.
        let stride = spec.leaves_per_pod + spec.aggs_per_pod;
        let first_core = (spec.pods * stride) as u32;
        let group = spec.core_group();
        for pod in 0..spec.pods {
            for j in 0..spec.aggs_per_pod {
                let agg = SwitchId((pod * stride + spec.leaves_per_pod + j) as u32);
                // Up-ports (after the leaf-facing ones) land exactly on
                // plane j's cores.
                for c in 0..group {
                    let want = SwitchId(first_core + (j * group + c) as u32);
                    assert_eq!(
                        t.ports_to_switch(agg, want).len(),
                        1,
                        "agg {j} of pod {pod} must reach core plane {j} once"
                    );
                }
            }
        }
    }

    #[test]
    fn clos_hop_classes() {
        let t = clos(&ClosSpec::smoke());
        let leaf = t.leaves()[0];
        assert_eq!(t.egress(leaf, 0).hop, HopClass::LeafUp);
    }

    #[test]
    #[should_panic(expected = "multiple of aggs_per_pod")]
    fn clos_rejects_ragged_core_planes() {
        let spec = ClosSpec {
            cores: 3,
            ..ClosSpec::smoke()
        };
        clos(&spec);
    }
}
