//! Topology constructors for every network evaluated in the paper.

use drill_sim::Time;

use crate::ids::SwitchId;
use crate::topology::{SwitchKind, Topology};

/// Default propagation delay per hop (intra-datacenter fiber, ~100 m).
pub const DEFAULT_PROP: Time = Time::from_nanos(500);

/// Parameters for a two-stage (leaf-spine) folded Clos.
#[derive(Clone, Debug)]
pub struct LeafSpineSpec {
    /// Number of spine switches.
    pub spines: usize,
    /// Number of leaf switches.
    pub leaves: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Host-to-leaf link rate (bps).
    pub host_rate: u64,
    /// Leaf-to-spine link rate (bps).
    pub core_rate: u64,
    /// Per-hop propagation delay.
    pub prop: Time,
}

impl LeafSpineSpec {
    /// The paper's first evaluation topology (Figure 6): 4 spines, 16
    /// leaves, 20 hosts per leaf, 40 Gbps core, 10 Gbps edge.
    pub fn paper_baseline() -> LeafSpineSpec {
        LeafSpineSpec {
            spines: 4,
            leaves: 16,
            hosts_per_leaf: 20,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }
    }

    /// The paper's scale-out topology (Figure 7): 16 spines, 16 leaves, 20
    /// hosts per leaf, all links 10 Gbps (same aggregate core capacity as
    /// the baseline).
    pub fn paper_scale_out() -> LeafSpineSpec {
        LeafSpineSpec {
            spines: 16,
            leaves: 16,
            hosts_per_leaf: 20,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        }
    }

    /// Total core capacity: sum of all leaf-uplink rates, one direction.
    pub fn core_capacity_bps(&self) -> u64 {
        (self.spines * self.leaves) as u64 * self.core_rate
    }
}

/// Build a symmetric two-stage leaf-spine Clos: every leaf connects to every
/// spine with one link.
pub fn leaf_spine(spec: &LeafSpineSpec) -> Topology {
    leaf_spine_custom(spec, |_leaf, _spine| vec![spec.core_rate])
}

/// Build a leaf-spine Clos with per-pair custom striping: `links(leaf,
/// spine)` returns the rate of each parallel link between that pair (empty
/// for none). Used for the paper's heterogeneous topology (Figure 13) and
/// the §3.4.3 examples.
pub fn leaf_spine_custom(
    spec: &LeafSpineSpec,
    links: impl Fn(usize, usize) -> Vec<u64>,
) -> Topology {
    let mut t = Topology::new();
    let leaves: Vec<SwitchId> = (0..spec.leaves)
        .map(|_| t.add_switch(SwitchKind::Leaf))
        .collect();
    let spines: Vec<SwitchId> = (0..spec.spines)
        .map(|_| t.add_switch(SwitchKind::Spine))
        .collect();
    for (li, &l) in leaves.iter().enumerate() {
        for (si, &s) in spines.iter().enumerate() {
            for rate in links(li, si) {
                t.connect_switches(l, s, rate, rate, spec.prop);
            }
        }
    }
    for &l in &leaves {
        for _ in 0..spec.hosts_per_leaf {
            t.add_host(l, spec.host_rate, spec.prop);
        }
    }
    t.validate();
    t
}

/// Parameters for a VL2-style three-stage Clos (ToR - Aggregation -
/// Intermediate).
#[derive(Clone, Debug)]
pub struct Vl2Spec {
    /// Number of ToR switches.
    pub tors: usize,
    /// Number of aggregation switches.
    pub aggs: usize,
    /// Number of intermediate switches.
    pub ints: usize,
    /// Hosts per ToR.
    pub hosts_per_tor: usize,
    /// Host link rate (bps).
    pub host_rate: u64,
    /// Core (ToR-Agg and Agg-Int) link rate (bps).
    pub core_rate: u64,
    /// ToR uplinks: how many aggregation switches each ToR attaches to.
    pub tor_uplinks: usize,
    /// Per-hop propagation delay.
    pub prop: Time,
}

impl Vl2Spec {
    /// The paper's VL2 experiment (Figure 10): 16 ToRs x 20 hosts at
    /// 1 Gbps, 8 aggregation and 4 intermediate switches, 10 Gbps core,
    /// each ToR dual-homed to 2 aggregation switches.
    pub fn paper() -> Vl2Spec {
        Vl2Spec {
            tors: 16,
            aggs: 8,
            ints: 4,
            hosts_per_tor: 20,
            host_rate: 1_000_000_000,
            core_rate: 10_000_000_000,
            tor_uplinks: 2,
            prop: DEFAULT_PROP,
        }
    }
}

/// Build a VL2 three-stage Clos: ToR `i` connects to `tor_uplinks`
/// consecutive aggregation switches starting at `(i * tor_uplinks) % aggs`;
/// every aggregation switch connects to every intermediate switch.
pub fn vl2(spec: &Vl2Spec) -> Topology {
    let mut t = Topology::new();
    let tors: Vec<SwitchId> = (0..spec.tors)
        .map(|_| t.add_switch(SwitchKind::Leaf))
        .collect();
    let aggs: Vec<SwitchId> = (0..spec.aggs)
        .map(|_| t.add_switch(SwitchKind::Agg))
        .collect();
    let ints: Vec<SwitchId> = (0..spec.ints)
        .map(|_| t.add_switch(SwitchKind::Spine))
        .collect();
    for (ti, &tor) in tors.iter().enumerate() {
        for u in 0..spec.tor_uplinks {
            let agg = aggs[(ti * spec.tor_uplinks + u) % spec.aggs];
            t.connect_switches(tor, agg, spec.core_rate, spec.core_rate, spec.prop);
        }
    }
    for &agg in &aggs {
        for &int in &ints {
            t.connect_switches(agg, int, spec.core_rate, spec.core_rate, spec.prop);
        }
    }
    for &tor in &tors {
        for _ in 0..spec.hosts_per_tor {
            t.add_host(tor, spec.host_rate, spec.prop);
        }
    }
    t.validate();
    t
}

/// Build a k-ary fat-tree: `k` pods of `k/2` edge and `k/2` aggregation
/// switches, `(k/2)^2` cores, `k/2` hosts per edge switch, all links equal
/// rate. `k` must be even.
pub fn fat_tree(k: usize, link_rate: u64, prop: Time) -> Topology {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let mut t = Topology::new();
    let mut edges = Vec::new();
    let mut aggs = Vec::new();
    for _pod in 0..k {
        edges.push(
            (0..half)
                .map(|_| t.add_switch(SwitchKind::Leaf))
                .collect::<Vec<_>>(),
        );
        aggs.push(
            (0..half)
                .map(|_| t.add_switch(SwitchKind::Agg))
                .collect::<Vec<_>>(),
        );
    }
    let cores: Vec<SwitchId> = (0..half * half)
        .map(|_| t.add_switch(SwitchKind::Spine))
        .collect();
    for pod in 0..k {
        for &e in &edges[pod] {
            for &a in &aggs[pod] {
                t.connect_switches(e, a, link_rate, link_rate, prop);
            }
        }
        for (j, &a) in aggs[pod].iter().enumerate() {
            for c in 0..half {
                t.connect_switches(a, cores[j * half + c], link_rate, link_rate, prop);
            }
        }
    }
    for pod_edges in &edges {
        for &e in pod_edges {
            for _ in 0..half {
                t.add_host(e, link_rate, prop);
            }
        }
    }
    t.validate();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeRef;
    use crate::topology::HopClass;

    #[test]
    fn leaf_spine_counts() {
        let spec = LeafSpineSpec {
            spines: 4,
            leaves: 6,
            hosts_per_leaf: 5,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        };
        let t = leaf_spine(&spec);
        assert_eq!(t.num_switches(), 10);
        assert_eq!(t.num_hosts(), 30);
        assert_eq!(t.num_leaves(), 6);
        // Each leaf: 4 spine ports + 5 host ports.
        for &l in t.leaves() {
            assert_eq!(t.num_ports(l), 9);
        }
        // Link count: (4*6 core + 30 host) * 2 directions.
        assert_eq!(t.links().len(), (24 + 30) * 2);
    }

    #[test]
    fn paper_specs() {
        let base = LeafSpineSpec::paper_baseline();
        assert_eq!(base.core_capacity_bps(), 64 * 40_000_000_000);
        let so = LeafSpineSpec::paper_scale_out();
        // Identical aggregate core capacity.
        assert_eq!(so.core_capacity_bps(), 256 * 10_000_000_000);
        assert_eq!(base.core_capacity_bps(), so.core_capacity_bps());
    }

    #[test]
    fn custom_striping_adds_parallel_links() {
        // Figure 13 style: leaf i gets two links to spines i and i+1.
        let spec = LeafSpineSpec {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        };
        let t = leaf_spine_custom(&spec, |l, s| {
            if s == l || s == (l + 1) % 4 {
                vec![spec.core_rate; 2]
            } else {
                vec![spec.core_rate]
            }
        });
        let l0 = t.leaves()[0];
        // Spines are created after leaves: ids 4..8.
        assert_eq!(t.ports_to_switch(l0, SwitchId(4)).len(), 2);
        assert_eq!(t.ports_to_switch(l0, SwitchId(5)).len(), 2);
        assert_eq!(t.ports_to_switch(l0, SwitchId(6)).len(), 1);
    }

    #[test]
    fn vl2_structure() {
        let t = vl2(&Vl2Spec::paper());
        assert_eq!(t.num_leaves(), 16);
        assert_eq!(t.num_hosts(), 320);
        // 16 ToRs with 2 uplinks + 8*4 agg-int links + 320 host links, x2.
        assert_eq!(t.links().len(), (32 + 32 + 320) * 2);
        // ToR uplinks are LeafUp.
        let tor = t.leaves()[0];
        assert_eq!(t.egress(tor, 0).hop, HopClass::LeafUp);
    }

    #[test]
    fn vl2_tor_uplink_spread() {
        let t = vl2(&Vl2Spec::paper());
        // ToR 0 -> aggs {0,1}; ToR 1 -> aggs {2,3}; ... ToR 4 -> aggs {0,1}.
        let tor0_up: Vec<_> = (0..2).map(|p| t.egress(t.leaves()[0], p).dst).collect();
        let tor4_up: Vec<_> = (0..2).map(|p| t.egress(t.leaves()[4], p).dst).collect();
        assert_eq!(tor0_up, tor4_up, "striping wraps around");
    }

    #[test]
    fn fat_tree_structure() {
        let k = 4;
        let t = fat_tree(k, 10_000_000_000, DEFAULT_PROP);
        // k^2/2 edges? For k=4: 8 edge, 8 agg, 4 core, 16 hosts.
        assert_eq!(t.num_leaves(), 8);
        assert_eq!(t.num_switches(), 8 + 8 + 4);
        assert_eq!(t.num_hosts(), 16);
        // Every edge switch has k/2 agg ports + k/2 host ports.
        for &e in t.leaves() {
            assert_eq!(t.num_ports(e), 4);
        }
        // Each core sees k pods.
        let core = SwitchId((t.num_switches() - 1) as u32);
        assert_eq!(t.num_ports(core), k);
        for p in 0..k as u16 {
            assert!(matches!(t.egress(core, p).dst, NodeRef::Switch(_)));
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_odd_arity_panics() {
        fat_tree(3, 1_000_000_000, DEFAULT_PROP);
    }
}
