//! The incast application (§4, Figure 14).
//!
//! Modeled on the paper's setup (itself following Vasudevan et al. [69]):
//! periodically, 10% of hosts each issue simultaneous requests to a set of
//! servers, which all answer with a fixed-size (10 KB) response at the same
//! instant — a many-to-one microburst.

use drill_sim::{SimRng, Time};

/// Incast traffic parameters.
#[derive(Clone, Debug)]
pub struct IncastSpec {
    /// Fraction of hosts acting as requesters each epoch.
    pub frac_requesters: f64,
    /// Fraction of hosts each requester fetches from (the fan-in).
    pub frac_servers: f64,
    /// Response size per server (bytes).
    pub response_bytes: u64,
    /// Gap between incast epochs.
    pub epoch_gap: Time,
}

impl Default for IncastSpec {
    fn default() -> Self {
        IncastSpec {
            frac_requesters: 0.1,
            frac_servers: 0.1,
            response_bytes: 10_000,
            epoch_gap: Time::from_millis(10),
        }
    }
}

impl IncastSpec {
    /// Generate one epoch's response flows: `(server, requester, bytes)`
    /// triples, all starting simultaneously. Requesters and their servers
    /// are drawn fresh each epoch; a requester never fetches from itself.
    pub fn epoch_flows(&self, hosts: u32, rng: &mut SimRng) -> Vec<(u32, u32, u64)> {
        let n_req = ((hosts as f64 * self.frac_requesters).round() as usize).max(1);
        let fan_in = ((hosts as f64 * self.frac_servers).round() as usize).max(1);
        let requesters = rng.sample_indices(hosts as usize, n_req);
        let mut flows = Vec::with_capacity(n_req * fan_in);
        for &r in &requesters {
            // Sample servers distinct from the requester.
            let mut servers = rng.sample_indices(hosts as usize, (fan_in + 1).min(hosts as usize));
            servers.retain(|&s| s != r);
            servers.truncate(fan_in);
            for &s in &servers {
                flows.push((s as u32, r as u32, self.response_bytes));
            }
        }
        flows
    }

    /// Expected flows per epoch for `hosts` hosts.
    pub fn flows_per_epoch(&self, hosts: u32) -> usize {
        let n_req = ((hosts as f64 * self.frac_requesters).round() as usize).max(1);
        let fan_in = ((hosts as f64 * self.frac_servers).round() as usize).max(1);
        n_req * fan_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_shape() {
        let spec = IncastSpec::default();
        let mut rng = SimRng::seed_from(1);
        let flows = spec.epoch_flows(320, &mut rng);
        // 32 requesters x 32 servers.
        assert_eq!(flows.len(), 32 * 32);
        assert_eq!(spec.flows_per_epoch(320), 1024);
        for &(s, r, b) in &flows {
            assert_ne!(s, r, "no self-fetch");
            assert!(s < 320 && r < 320);
            assert_eq!(b, 10_000);
        }
    }

    #[test]
    fn each_requester_gets_full_fan_in() {
        let spec = IncastSpec::default();
        let mut rng = SimRng::seed_from(2);
        let flows = spec.epoch_flows(100, &mut rng);
        let mut per_req = std::collections::HashMap::new();
        for &(_, r, _) in &flows {
            *per_req.entry(r).or_insert(0usize) += 1;
        }
        assert_eq!(per_req.len(), 10, "10% requesters");
        assert!(per_req.values().all(|&c| c == 10), "fan-in 10 each");
    }

    #[test]
    fn servers_are_distinct_per_requester() {
        let spec = IncastSpec {
            frac_servers: 0.5,
            ..Default::default()
        };
        let mut rng = SimRng::seed_from(3);
        let flows = spec.epoch_flows(20, &mut rng);
        let mut by_req: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for &(s, r, _) in &flows {
            by_req.entry(r).or_default().push(s);
        }
        for (_, mut servers) in by_req {
            let len = servers.len();
            servers.sort_unstable();
            servers.dedup();
            assert_eq!(servers.len(), len);
        }
    }

    #[test]
    fn tiny_cluster_still_works() {
        let spec = IncastSpec::default();
        let mut rng = SimRng::seed_from(4);
        let flows = spec.epoch_flows(4, &mut rng);
        assert!(!flows.is_empty());
        for &(s, r, _) in &flows {
            assert_ne!(s, r);
        }
    }
}
