//! Workload generation for the DRILL reproduction.
//!
//! The paper drives its simulations with flow sizes and interarrival times
//! drawn from the Facebook datacenter measurements of Roy et al. (SIGCOMM
//! 2015, reference \[62\]), scaled to emulate different offered loads, plus
//! three synthetic patterns (Stride, Random/Bijection, Shuffle) and an
//! incast application. The raw traces are proprietary; [`FlowSizeDist`]
//! embeds piecewise-linear CDFs matching the published shape (heavy
//! tailed, most flows under 10 KB), which is the property the evaluation
//! exercises. See DESIGN.md for the substitution note.

#![warn(missing_docs)]

mod arrivals;
mod incast;
mod pattern;
mod sizes;

pub use arrivals::ArrivalProcess;
pub use incast::IncastSpec;
pub use pattern::TrafficPattern;
pub use sizes::FlowSizeDist;

use drill_sim::{SimRng, Time};

/// One flow to inject: start offset relative to the previous arrival.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowSpec {
    /// Gap after the previous flow arrival.
    pub gap: Time,
    /// Sending host index.
    pub src: u32,
    /// Receiving host index.
    pub dst: u32,
    /// Flow size in bytes.
    pub bytes: u64,
}

/// Converts an offered *core* load into an aggregate flow arrival rate.
///
/// The paper's x-axes report "avg. core link offered load": with all flows
/// crossing the fabric core exactly once, offered load `x` means the
/// aggregate injected rate equals `x` times the total core capacity.
/// Returns flows per second across all hosts.
pub fn aggregate_flow_rate(load: f64, core_capacity_bps: u64, mean_flow_bytes: f64) -> f64 {
    assert!(load >= 0.0 && mean_flow_bytes > 0.0);
    load * core_capacity_bps as f64 / (8.0 * mean_flow_bytes)
}

/// The background-traffic generator: a stream of [`FlowSpec`]s combining a
/// size distribution, an arrival process and a traffic pattern.
pub struct WorkloadGen {
    sizes: FlowSizeDist,
    arrivals: ArrivalProcess,
    pattern: TrafficPattern,
    hosts: u32,
}

impl WorkloadGen {
    /// A generator over `hosts` hosts. `leaf_of[h]` maps each host to its
    /// leaf index (patterns avoid same-leaf destinations, as the paper's
    /// Random pattern specifies).
    pub fn new(
        sizes: FlowSizeDist,
        arrivals: ArrivalProcess,
        pattern: TrafficPattern,
        leaf_of: Vec<u32>,
        rng: &mut SimRng,
    ) -> WorkloadGen {
        let hosts = leaf_of.len() as u32;
        let pattern = pattern.bind(leaf_of, rng);
        WorkloadGen {
            sizes,
            arrivals,
            pattern,
            hosts,
        }
    }

    /// The bound traffic pattern (snapshot access: the Shuffle pattern's
    /// per-source cursors are mutable mid-run state).
    pub fn pattern(&self) -> &TrafficPattern {
        &self.pattern
    }

    /// Mutable access to the bound pattern (snapshot restore).
    pub fn pattern_mut(&mut self) -> &mut TrafficPattern {
        &mut self.pattern
    }

    /// Draw the next flow arrival.
    pub fn next_flow(&mut self, rng: &mut SimRng) -> FlowSpec {
        let gap = self.arrivals.sample_gap(rng);
        let src = rng.below(self.hosts as usize) as u32;
        let dst = self.pattern.pick_dst(src, rng);
        let bytes = self.sizes.sample(rng).max(1);
        FlowSpec {
            gap,
            src,
            dst,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_rate_math() {
        // 80% of 2.56 Tbps with 100 KB flows: 0.8*2.56e12/(8*1e5) = 2.56e6.
        let r = aggregate_flow_rate(0.8, 2_560_000_000_000, 100_000.0);
        assert!((r - 2.56e6).abs() < 1.0);
        assert_eq!(aggregate_flow_rate(0.0, 1_000, 10.0), 0.0);
    }

    #[test]
    fn generator_produces_valid_flows() {
        let mut rng = SimRng::seed_from(1);
        // 4 leaves x 4 hosts.
        let leaf_of: Vec<u32> = (0..16).map(|h| h / 4).collect();
        let mut gen = WorkloadGen::new(
            FlowSizeDist::fb_web(),
            ArrivalProcess::poisson(10_000.0),
            TrafficPattern::Uniform,
            leaf_of.clone(),
            &mut rng,
        );
        for _ in 0..1000 {
            let f = gen.next_flow(&mut rng);
            assert!(f.src < 16 && f.dst < 16);
            assert_ne!(
                leaf_of[f.src as usize], leaf_of[f.dst as usize],
                "inter-leaf only"
            );
            assert!(f.bytes >= 1);
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let leaf_of: Vec<u32> = (0..8).map(|h| h / 2).collect();
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            let mut g = WorkloadGen::new(
                FlowSizeDist::fb_web(),
                ArrivalProcess::poisson(1000.0),
                TrafficPattern::Uniform,
                leaf_of.clone(),
                &mut rng,
            );
            (0..50).map(|_| g.next_flow(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
