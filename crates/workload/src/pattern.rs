//! Traffic patterns: who talks to whom.

use std::io;

use drill_sim::codec::{invalid, put_varint, Decoder};
use drill_sim::SimRng;

/// Destination-selection patterns (§4 "Synthetic workloads" plus the
/// trace-driven uniform pattern).
#[derive(Clone, Debug)]
pub enum TrafficPattern {
    /// Each flow picks a uniform-random destination under a *different*
    /// leaf (the paper's default and its "Random" synthetic pattern).
    Uniform,
    /// `server[i]` sends to `server[(i + x) mod N]`.
    Stride(u32),
    /// A fixed random permutation (bijection) chosen once.
    Bijection,
    /// Each server sends to all other servers in its own random order,
    /// cycling.
    Shuffle,
    // -- internal bound states (constructed by `bind`) --
    #[doc(hidden)]
    BoundBijection(Vec<u32>, Vec<u32>),
    #[doc(hidden)]
    BoundShuffle(Vec<Vec<u32>>, Vec<usize>, Vec<u32>),
    #[doc(hidden)]
    BoundUniform(Vec<u32>),
    #[doc(hidden)]
    BoundStride(u32, u32),
}

impl TrafficPattern {
    /// Bind the pattern to a concrete host set (`leaf_of[h]` = leaf index
    /// of host `h`), fixing any random structure (permutations, shuffle
    /// orders) from `rng`.
    pub fn bind(self, leaf_of: Vec<u32>, rng: &mut SimRng) -> TrafficPattern {
        let n = leaf_of.len() as u32;
        match self {
            TrafficPattern::Uniform => TrafficPattern::BoundUniform(leaf_of),
            TrafficPattern::Stride(x) => TrafficPattern::BoundStride(x, n),
            TrafficPattern::Bijection => {
                // A permutation with no host mapped to its own leaf:
                // resample until valid (fast for any reasonable topology).
                loop {
                    let mut perm: Vec<u32> = (0..n).collect();
                    rng.shuffle(&mut perm);
                    if perm
                        .iter()
                        .enumerate()
                        .all(|(i, &d)| leaf_of[i] != leaf_of[d as usize])
                    {
                        return TrafficPattern::BoundBijection(perm, leaf_of);
                    }
                }
            }
            TrafficPattern::Shuffle => {
                let orders: Vec<Vec<u32>> = (0..n)
                    .map(|i| {
                        let mut others: Vec<u32> = (0..n).filter(|&j| j != i).collect();
                        rng.shuffle(&mut others);
                        others
                    })
                    .collect();
                TrafficPattern::BoundShuffle(orders, vec![0; n as usize], leaf_of)
            }
            bound => bound,
        }
    }

    /// Pick the destination for a new flow from `src`.
    pub fn pick_dst(&mut self, src: u32, rng: &mut SimRng) -> u32 {
        match self {
            TrafficPattern::BoundUniform(leaf_of) => {
                let my_leaf = leaf_of[src as usize];
                loop {
                    let d = rng.below(leaf_of.len()) as u32;
                    if leaf_of[d as usize] != my_leaf {
                        return d;
                    }
                }
            }
            TrafficPattern::BoundStride(x, n) => (src + *x) % *n,
            TrafficPattern::BoundBijection(perm, _) => perm[src as usize],
            TrafficPattern::BoundShuffle(orders, cursors, _) => {
                let order = &orders[src as usize];
                let c = &mut cursors[src as usize];
                let d = order[*c % order.len()];
                *c += 1;
                d
            }
            _ => panic!("pattern must be bound before use"),
        }
    }

    /// Serialize the pattern's *mutable* state. Bound structure
    /// (permutations, shuffle orders) is derived deterministically from the
    /// workload RNG at build time and is not serialized; only Shuffle's
    /// per-source cursors advance mid-run.
    pub fn save_cursors(&self, buf: &mut Vec<u8>) {
        match self {
            TrafficPattern::BoundShuffle(_, cursors, _) => {
                put_varint(buf, cursors.len() as u64);
                for &c in cursors {
                    put_varint(buf, c as u64);
                }
            }
            _ => put_varint(buf, 0),
        }
    }

    /// Restore cursors written by [`save_cursors`](TrafficPattern::save_cursors)
    /// into an identically bound pattern.
    pub fn load_cursors(&mut self, d: &mut Decoder<'_>) -> io::Result<()> {
        let n = d.varint_usize()?;
        match self {
            TrafficPattern::BoundShuffle(_, cursors, _) => {
                if n != cursors.len() {
                    return Err(invalid("shuffle cursor count mismatch"));
                }
                for c in cursors.iter_mut() {
                    *c = d.varint_usize()?;
                }
            }
            _ if n == 0 => {}
            _ => return Err(invalid("cursor state for a cursorless pattern")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_of() -> Vec<u32> {
        (0..16).map(|h| h / 4).collect() // 4 leaves x 4 hosts
    }

    #[test]
    fn uniform_avoids_own_leaf() {
        let mut rng = SimRng::seed_from(1);
        let mut p = TrafficPattern::Uniform.bind(leaf_of(), &mut rng);
        for src in 0..16u32 {
            for _ in 0..50 {
                let d = p.pick_dst(src, &mut rng);
                assert_ne!(d / 4, src / 4);
            }
        }
    }

    #[test]
    fn stride_is_deterministic() {
        let mut rng = SimRng::seed_from(2);
        let mut p = TrafficPattern::Stride(8).bind(leaf_of(), &mut rng);
        assert_eq!(p.pick_dst(0, &mut rng), 8);
        assert_eq!(p.pick_dst(12, &mut rng), 4);
        assert_eq!(p.pick_dst(15, &mut rng), 7);
    }

    #[test]
    fn bijection_is_a_cross_leaf_permutation() {
        let mut rng = SimRng::seed_from(3);
        let mut p = TrafficPattern::Bijection.bind(leaf_of(), &mut rng);
        let dsts: Vec<u32> = (0..16).map(|s| p.pick_dst(s, &mut rng)).collect();
        let mut sorted = dsts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "a permutation");
        for (s, &d) in dsts.iter().enumerate() {
            assert_ne!(s as u32 / 4, d / 4, "never its own leaf");
        }
        // Stable across calls.
        assert_eq!(p.pick_dst(3, &mut rng), dsts[3]);
    }

    #[test]
    fn shuffle_visits_everyone_before_repeating() {
        let mut rng = SimRng::seed_from(4);
        let mut p = TrafficPattern::Shuffle.bind(leaf_of(), &mut rng);
        let mut seen: Vec<u32> = (0..15).map(|_| p.pick_dst(0, &mut rng)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..16).collect::<Vec<_>>(), "all others once");
        // 16th pick starts the second round.
        let again = p.pick_dst(0, &mut rng);
        assert_ne!(again, 0);
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn unbound_pattern_panics() {
        let mut rng = SimRng::seed_from(5);
        TrafficPattern::Uniform.pick_dst(0, &mut rng);
    }
}
