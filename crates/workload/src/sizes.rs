//! Flow-size distributions.

use drill_sim::SimRng;

/// A flow-size distribution.
#[derive(Clone, Debug)]
pub enum FlowSizeDist {
    /// Every flow has the same size.
    Fixed(u64),
    /// Piecewise-linear inverse-CDF sampling over `(bytes, cdf)` nodes.
    /// The node list must start at cdf 0, end at cdf 1, and be monotone in
    /// both coordinates.
    Empirical(&'static [(f64, f64)]),
}

/// Approximation of the Facebook web-server flow sizes of Roy et al.
/// (SIGCOMM 2015): most flows are under 10 KB with a heavy tail to tens of
/// megabytes.
static FB_WEB: &[(f64, f64)] = &[
    (250.0, 0.0),
    (500.0, 0.15),
    (1_000.0, 0.30),
    (2_000.0, 0.50),
    (5_000.0, 0.65),
    (10_000.0, 0.78),
    (20_000.0, 0.86),
    (50_000.0, 0.92),
    (100_000.0, 0.95),
    (500_000.0, 0.98),
    (1_000_000.0, 0.99),
    (10_000_000.0, 1.0),
];

/// Approximation of the DCTCP "web search" workload (Alizadeh et al.):
/// query/response traffic, mean ~1.6 MB, used widely by load-balancer
/// evaluations (CONGA, Presto).
static WEB_SEARCH: &[(f64, f64)] = &[
    (6_000.0, 0.0),
    (10_000.0, 0.15),
    (13_000.0, 0.20),
    (19_000.0, 0.30),
    (33_000.0, 0.40),
    (53_000.0, 0.53),
    (133_000.0, 0.60),
    (667_000.0, 0.70),
    (1_333_000.0, 0.80),
    (3_333_000.0, 0.90),
    (6_667_000.0, 0.97),
    (20_000_000.0, 1.0),
];

/// Approximation of the VL2 "data mining" workload (Greenberg et al.):
/// extremely heavy-tailed; most flows tiny, most bytes in giant flows.
static DATA_MINING: &[(f64, f64)] = &[
    (100.0, 0.0),
    (180.0, 0.10),
    (250.0, 0.20),
    (560.0, 0.40),
    (900.0, 0.50),
    (1_100.0, 0.60),
    (1_870.0, 0.70),
    (3_160.0, 0.80),
    (10_000.0, 0.90),
    (400_000.0, 0.95),
    (3_160_000.0, 0.98),
    (100_000_000.0, 1.0),
];

impl FlowSizeDist {
    /// The Facebook web-server distribution (the paper's trace-driven
    /// workload, reference \[62\]).
    pub fn fb_web() -> FlowSizeDist {
        FlowSizeDist::Empirical(FB_WEB)
    }

    /// The DCTCP web-search distribution.
    pub fn web_search() -> FlowSizeDist {
        FlowSizeDist::Empirical(WEB_SEARCH)
    }

    /// The VL2 data-mining distribution.
    pub fn data_mining() -> FlowSizeDist {
        FlowSizeDist::Empirical(DATA_MINING)
    }

    /// Draw one flow size in bytes.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match self {
            FlowSizeDist::Fixed(b) => *b,
            FlowSizeDist::Empirical(pts) => {
                let u = rng.unit();
                // Find the segment containing u.
                let mut i = 1;
                while i < pts.len() - 1 && pts[i].1 < u {
                    i += 1;
                }
                let (x0, c0) = pts[i - 1];
                let (x1, c1) = pts[i];
                let frac = if c1 > c0 { (u - c0) / (c1 - c0) } else { 0.0 };
                (x0 + frac.clamp(0.0, 1.0) * (x1 - x0)).round() as u64
            }
        }
    }

    /// Exact mean of the distribution in bytes.
    pub fn mean(&self) -> f64 {
        match self {
            FlowSizeDist::Fixed(b) => *b as f64,
            FlowSizeDist::Empirical(pts) => pts
                .windows(2)
                .map(|w| (w[1].1 - w[0].1) * (w[0].0 + w[1].0) / 2.0)
                .sum(),
        }
    }

    /// Validate structural invariants of an empirical node list.
    pub fn validate(&self) {
        if let FlowSizeDist::Empirical(pts) = self {
            assert!(pts.len() >= 2);
            assert_eq!(pts[0].1, 0.0, "must start at cdf 0");
            assert_eq!(pts[pts.len() - 1].1, 1.0, "must end at cdf 1");
            for w in pts.windows(2) {
                assert!(w[0].0 < w[1].0, "bytes monotone");
                assert!(w[0].1 <= w[1].1, "cdf monotone");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_distributions_are_valid() {
        FlowSizeDist::fb_web().validate();
        FlowSizeDist::web_search().validate();
        FlowSizeDist::data_mining().validate();
    }

    #[test]
    fn fixed_is_constant() {
        let d = FlowSizeDist::Fixed(1234);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(d.sample(&mut rng), 1234);
        assert_eq!(d.mean(), 1234.0);
    }

    #[test]
    fn samples_within_support() {
        let d = FlowSizeDist::fb_web();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((250..=10_000_000).contains(&s), "{s}");
        }
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let d = FlowSizeDist::fb_web();
        let mut rng = SimRng::seed_from(3);
        let n = 400_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let sample_mean = sum / n as f64;
        let analytic = d.mean();
        assert!(
            (sample_mean - analytic).abs() / analytic < 0.05,
            "sample {sample_mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn fb_web_is_mostly_small_flows() {
        let d = FlowSizeDist::fb_web();
        let mut rng = SimRng::seed_from(4);
        let n = 100_000;
        let small = (0..n).filter(|_| d.sample(&mut rng) <= 10_000).count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.78).abs() < 0.02, "~78% of flows <= 10KB: {frac}");
    }

    #[test]
    fn median_tracks_cdf() {
        let d = FlowSizeDist::fb_web();
        let mut rng = SimRng::seed_from(5);
        let mut xs: Vec<u64> = (0..50_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_unstable();
        let median = xs[25_000];
        assert!(
            (1_500..2_600).contains(&median),
            "median near 2KB: {median}"
        );
    }

    #[test]
    fn means_are_ordered_by_heavy_tail() {
        // web_search >> fb_web > data_mining's median but data_mining's
        // mean is dominated by its giant tail.
        assert!(FlowSizeDist::web_search().mean() > FlowSizeDist::fb_web().mean());
        assert!(FlowSizeDist::fb_web().mean() > 10_000.0);
    }
}
