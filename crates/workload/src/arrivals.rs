//! Flow interarrival processes.

use drill_sim::{SimRng, Time};

/// An interarrival-time process for the aggregate flow stream.
#[derive(Clone, Debug)]
pub enum ArrivalProcess {
    /// Poisson arrivals at the given aggregate rate (flows/second).
    Poisson {
        /// Mean gap between arrivals, nanoseconds.
        mean_gap_ns: f64,
    },
    /// Lognormal gaps (burstier than Poisson, matching the burstiness the
    /// paper's §2 cites); parameterized by the aggregate rate and sigma of
    /// the underlying normal.
    LogNormal {
        /// `mu` of the underlying normal, chosen so the mean gap matches.
        mu: f64,
        /// `sigma` of the underlying normal.
        sigma: f64,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate` flows/second.
    pub fn poisson(rate: f64) -> ArrivalProcess {
        assert!(rate > 0.0);
        ArrivalProcess::Poisson {
            mean_gap_ns: 1e9 / rate,
        }
    }

    /// Lognormal arrivals with mean rate `rate` flows/second and shape
    /// `sigma` (sigma 0 degenerates to fixed gaps; ~1-2 is very bursty).
    pub fn lognormal(rate: f64, sigma: f64) -> ArrivalProcess {
        assert!(rate > 0.0 && sigma >= 0.0);
        // Mean of lognormal = exp(mu + sigma^2/2); solve for mu.
        let mean_gap_ns = 1e9 / rate;
        let mu = mean_gap_ns.ln() - sigma * sigma / 2.0;
        ArrivalProcess::LogNormal { mu, sigma }
    }

    /// Draw the gap to the next arrival.
    pub fn sample_gap(&self, rng: &mut SimRng) -> Time {
        let ns = match self {
            ArrivalProcess::Poisson { mean_gap_ns } => rng.exponential(*mean_gap_ns),
            ArrivalProcess::LogNormal { mu, sigma } => rng.lognormal(*mu, *sigma),
        };
        Time::from_nanos(ns.max(0.0).round() as u64)
    }

    /// The process's mean rate in flows/second.
    pub fn rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { mean_gap_ns } => 1e9 / mean_gap_ns,
            ArrivalProcess::LogNormal { mu, sigma } => 1e9 / (mu + sigma * sigma / 2.0).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap(p: &ArrivalProcess, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        let sum: u64 = (0..n).map(|_| p.sample_gap(&mut rng).as_nanos()).sum();
        sum as f64 / n as f64
    }

    #[test]
    fn poisson_mean_rate() {
        let p = ArrivalProcess::poisson(100_000.0); // 10us mean gap
        let m = mean_gap(&p, 200_000, 1);
        assert!((m - 10_000.0).abs() / 10_000.0 < 0.02, "{m}");
        assert!((p.rate() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn lognormal_mean_rate_matches() {
        let p = ArrivalProcess::lognormal(50_000.0, 1.5);
        let m = mean_gap(&p, 400_000, 2);
        assert!((m - 20_000.0).abs() / 20_000.0 < 0.05, "{m}");
        assert!((p.rate() - 50_000.0).abs() / 50_000.0 < 1e-9);
    }

    #[test]
    fn lognormal_is_burstier_than_poisson() {
        // Compare squared coefficient of variation.
        let cv2 = |p: &ArrivalProcess, seed| {
            let mut rng = SimRng::seed_from(seed);
            let xs: Vec<f64> = (0..100_000)
                .map(|_| p.sample_gap(&mut rng).as_nanos() as f64)
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
            var / (mean * mean)
        };
        let poisson = cv2(&ArrivalProcess::poisson(10_000.0), 3);
        let bursty = cv2(&ArrivalProcess::lognormal(10_000.0, 1.5), 3);
        assert!(
            (poisson - 1.0).abs() < 0.1,
            "exponential cv^2 = 1: {poisson}"
        );
        assert!(bursty > 3.0, "lognormal(sigma=1.5) much burstier: {bursty}");
    }

    #[test]
    fn gaps_are_nonnegative() {
        let p = ArrivalProcess::lognormal(1e6, 2.0);
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1000 {
            let _ = p.sample_gap(&mut rng); // must not panic / underflow
        }
    }
}
