//! Compact binary trace encoding: LEB128 varints, delta-encoded
//! timestamps, and the versioned trace-file container.
//!
//! # Format (version 2; version-1 files decode too)
//!
//! ```text
//! magic            8 bytes  b"DRILLTRC"
//! version          u16 LE   2
//! num_switches     varint
//! engines          varint   (forwarding engines per switch)
//! ring_count       varint
//! ring*:
//!   kind           u8       0 = engine ring, 1 = host ring,
//!                           2 = control ring (v2+; fault timeline)
//!   switch         varint   (engine rings only)
//!   engine         varint   (engine rings only)
//!   overwritten    varint   (events lost to ring wraparound)
//!   event_count    varint
//!   event*:
//!     tag          u8       (see `tags`)
//!     dt           varint   (ns since the previous event in this ring;
//!                            the first event's dt is absolute)
//!     fields       varints  (per-tag; see the encode/decode pairs)
//! ```
//!
//! All multi-byte integers are LEB128 varints, so the common case (small
//! ports, small queue depths, sub-microsecond deltas) costs 1–2 bytes per
//! field. Timestamps are delta-encoded per ring: rings are in chronological
//! order by construction, so deltas stay small.

use std::io::{self, Read, Write};

use drill_sim::Time;

use crate::probe::{DropReason, EngineChoice, PacketMeta};
use crate::record::{FlightRecorder, RingKind, TraceEvent};

/// File magic.
pub const TRACE_MAGIC: [u8; 8] = *b"DRILLTRC";

/// Current trace-format version (v2 added the control ring and the fault
/// event). Version-1 files are still accepted by [`read_trace`].
pub const TRACE_VERSION: u16 = 2;

/// Oldest trace-format version [`read_trace`] accepts.
pub const TRACE_VERSION_MIN: u16 = 1;

mod tags {
    pub const HOST_SEND: u8 = 1;
    pub const HOST_RECV: u8 = 2;
    pub const ENGINE_CHOICE: u8 = 3;
    pub const ENQUEUE: u8 = 4;
    pub const DEQUEUE: u8 = 5;
    pub const DROP: u8 = 6;
    pub const NIC_DROP: u8 = 7;
    pub const FAULT: u8 = 8;
}

// The varint/decoder primitives are shared with the `DRILLSNAP` snapshot
// format; re-export them so existing `drill_telemetry::encode::{put_varint,
// Decoder}` users keep working.
pub use drill_sim::codec::{put_varint, Decoder};

use drill_sim::codec::invalid;

fn put_meta(buf: &mut Vec<u8>, m: &PacketMeta) {
    put_varint(buf, m.id);
    put_varint(buf, m.flow as u64);
    put_varint(buf, m.src as u64);
    put_varint(buf, m.dst as u64);
    put_varint(buf, m.size as u64);
    put_varint(buf, m.seq);
    put_varint(buf, m.emit_idx as u64);
    buf.push(m.flags);
}

fn get_meta(d: &mut Decoder<'_>) -> io::Result<PacketMeta> {
    Ok(PacketMeta {
        id: d.varint()?,
        flow: d.varint_u32()?,
        src: d.varint_u32()?,
        dst: d.varint_u32()?,
        size: d.varint_u32()?,
        seq: d.varint()?,
        emit_idx: d.varint_u32()?,
        flags: d.u8()?,
    })
}

/// Encode one event (tag + dt + fields) onto `buf`. `prev` is the previous
/// event's timestamp in the same ring (delta base).
pub fn put_event(buf: &mut Vec<u8>, prev: Time, ev: &TraceEvent) {
    let t = ev.time();
    debug_assert!(t >= prev, "ring events must be chronological");
    let dt = (t - prev).as_nanos();
    match ev {
        TraceEvent::HostSend { host, pkt, .. } => {
            buf.push(tags::HOST_SEND);
            put_varint(buf, dt);
            put_varint(buf, *host as u64);
            put_meta(buf, pkt);
        }
        TraceEvent::HostRecv { host, pkt, .. } => {
            buf.push(tags::HOST_RECV);
            put_varint(buf, dt);
            put_varint(buf, *host as u64);
            put_meta(buf, pkt);
        }
        TraceEvent::EngineChoice {
            switch,
            engine,
            choice,
            ..
        } => {
            buf.push(tags::ENGINE_CHOICE);
            put_varint(buf, dt);
            put_varint(buf, *switch as u64);
            put_varint(buf, *engine as u64);
            put_varint(buf, choice.chosen as u64);
            put_varint(buf, choice.chosen_pkts as u64);
            put_varint(buf, choice.best as u64);
            put_varint(buf, choice.best_pkts as u64);
            put_varint(buf, choice.candidates as u64);
        }
        TraceEvent::Enqueue {
            switch,
            port,
            engine,
            pkt_id,
            size,
            depth_pkts,
            depth_bytes,
            ..
        } => {
            buf.push(tags::ENQUEUE);
            put_varint(buf, dt);
            put_varint(buf, *switch as u64);
            put_varint(buf, *port as u64);
            put_varint(buf, *engine as u64);
            put_varint(buf, *pkt_id);
            put_varint(buf, *size as u64);
            put_varint(buf, *depth_pkts as u64);
            put_varint(buf, *depth_bytes);
        }
        TraceEvent::Dequeue {
            switch,
            port,
            pkt_id,
            depth_pkts,
            wait_ns,
            ..
        } => {
            buf.push(tags::DEQUEUE);
            put_varint(buf, dt);
            put_varint(buf, *switch as u64);
            put_varint(buf, *port as u64);
            put_varint(buf, *pkt_id);
            put_varint(buf, *depth_pkts as u64);
            put_varint(buf, *wait_ns);
        }
        TraceEvent::Drop {
            switch,
            port,
            engine,
            pkt_id,
            reason,
            ..
        } => {
            buf.push(tags::DROP);
            put_varint(buf, dt);
            put_varint(buf, *switch as u64);
            put_varint(buf, *port as u64);
            put_varint(buf, *engine as u64);
            put_varint(buf, *pkt_id);
            buf.push(reason.code());
        }
        TraceEvent::NicDrop { host, pkt_id, .. } => {
            buf.push(tags::NIC_DROP);
            put_varint(buf, dt);
            put_varint(buf, *host as u64);
            put_varint(buf, *pkt_id);
        }
        TraceEvent::Fault {
            kind, a, b, param, ..
        } => {
            buf.push(tags::FAULT);
            put_varint(buf, dt);
            buf.push(*kind);
            put_varint(buf, *a as u64);
            put_varint(buf, *b as u64);
            put_varint(buf, *param);
        }
    }
}

/// Decode one event. `prev` is the previous event's timestamp in the ring.
pub fn get_event(d: &mut Decoder<'_>, prev: Time) -> io::Result<TraceEvent> {
    let tag = d.u8()?;
    // A hostile delta can push the running timestamp past u64; fail with a
    // typed error instead of the debug-build add panic.
    let t = prev
        .checked_add(Time::from_nanos(d.varint()?))
        .ok_or_else(|| invalid("timestamp delta overflows"))?;
    Ok(match tag {
        tags::HOST_SEND => TraceEvent::HostSend {
            t,
            host: d.varint_u32()?,
            pkt: get_meta(d)?,
        },
        tags::HOST_RECV => TraceEvent::HostRecv {
            t,
            host: d.varint_u32()?,
            pkt: get_meta(d)?,
        },
        tags::ENGINE_CHOICE => TraceEvent::EngineChoice {
            t,
            switch: d.varint_u32()?,
            engine: d.varint_u16()?,
            choice: EngineChoice {
                chosen: d.varint_u16()?,
                chosen_pkts: d.varint_u32()?,
                best: d.varint_u16()?,
                best_pkts: d.varint_u32()?,
                candidates: d.varint_u16()?,
            },
        },
        tags::ENQUEUE => TraceEvent::Enqueue {
            t,
            switch: d.varint_u32()?,
            port: d.varint_u16()?,
            engine: d.varint_u16()?,
            pkt_id: d.varint()?,
            size: d.varint_u32()?,
            depth_pkts: d.varint_u32()?,
            depth_bytes: d.varint()?,
        },
        tags::DEQUEUE => TraceEvent::Dequeue {
            t,
            switch: d.varint_u32()?,
            port: d.varint_u16()?,
            pkt_id: d.varint()?,
            depth_pkts: d.varint_u32()?,
            wait_ns: d.varint()?,
        },
        tags::DROP => TraceEvent::Drop {
            t,
            switch: d.varint_u32()?,
            port: d.varint_u16()?,
            engine: d.varint_u16()?,
            pkt_id: d.varint()?,
            reason: DropReason::from_code(d.u8()?).ok_or_else(|| invalid("unknown drop reason"))?,
        },
        tags::NIC_DROP => TraceEvent::NicDrop {
            t,
            host: d.varint_u32()?,
            pkt_id: d.varint()?,
        },
        tags::FAULT => TraceEvent::Fault {
            t,
            kind: d.u8()?,
            a: d.varint_u32()?,
            b: d.varint_u32()?,
            param: d.varint()?,
        },
        _ => return Err(invalid("unknown event tag")),
    })
}

/// A fully decoded trace file.
#[derive(Debug)]
pub struct Trace {
    /// Switch count of the recorded topology.
    pub num_switches: u32,
    /// Forwarding engines per switch.
    pub engines: u16,
    /// The rings, in file order (engine rings switch-major, then the host
    /// ring, then — in v2+ files — the control ring).
    pub rings: Vec<TraceRing>,
}

/// One decoded ring.
#[derive(Debug)]
pub struct TraceRing {
    /// What this ring recorded.
    pub kind: RingKind,
    /// Events lost to ring wraparound (the ring keeps the newest).
    pub overwritten: u64,
    /// Surviving events, chronological.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// All events of every ring, merged and sorted by time (stable across
    /// rings in file order for equal timestamps).
    pub fn merged_events(&self) -> Vec<&TraceEvent> {
        let mut all: Vec<&TraceEvent> = self.rings.iter().flat_map(|r| r.events.iter()).collect();
        all.sort_by_key(|e| e.time());
        all
    }

    /// Total surviving events.
    pub fn event_count(&self) -> usize {
        self.rings.iter().map(|r| r.events.len()).sum()
    }

    /// Total events lost to ring wraparound.
    pub fn overwritten(&self) -> u64 {
        self.rings.iter().map(|r| r.overwritten).sum()
    }
}

/// Serialize a recorder's rings as a current-version trace file.
pub fn write_trace<W: Write>(rec: &FlightRecorder, w: &mut W) -> io::Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&TRACE_MAGIC);
    buf.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    put_varint(&mut buf, rec.num_switches() as u64);
    put_varint(&mut buf, rec.engines() as u64);
    put_varint(&mut buf, rec.ring_count() as u64);
    for idx in 0..rec.ring_count() {
        let (kind, ring) = rec.ring_at(idx);
        match kind {
            RingKind::Engine { switch, engine } => {
                buf.push(0);
                put_varint(&mut buf, switch as u64);
                put_varint(&mut buf, engine as u64);
            }
            RingKind::Host => buf.push(1),
            RingKind::Control => buf.push(2),
        }
        put_varint(&mut buf, ring.overwritten());
        put_varint(&mut buf, ring.len() as u64);
        let mut prev = Time::ZERO;
        for ev in ring.iter() {
            put_event(&mut buf, prev, ev);
            prev = ev.time();
        }
    }
    w.write_all(&buf)
}

/// Read and decode a trace file (any supported version).
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<Trace> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    let mut d = Decoder::new(&buf);
    let mut magic = [0u8; 8];
    for b in &mut magic {
        *b = d.u8()?;
    }
    if magic != TRACE_MAGIC {
        return Err(invalid("not a DRILL trace (bad magic)"));
    }
    let version = u16::from_le_bytes([d.u8()?, d.u8()?]);
    if !(TRACE_VERSION_MIN..=TRACE_VERSION).contains(&version) {
        return Err(invalid("unsupported trace version"));
    }
    let num_switches = d.varint_u32()?;
    let engines = d.varint_u16()?;
    let ring_count = d.varint()? as usize;
    // Cap the pre-allocation: a hostile header must not reserve memory the
    // payload cannot actually contain (each ring costs >= 3 bytes).
    let mut rings = Vec::with_capacity(ring_count.min(1 << 16));
    for _ in 0..ring_count {
        let kind = match d.u8()? {
            0 => RingKind::Engine {
                switch: d.varint_u32()?,
                engine: d.varint_u16()?,
            },
            1 => RingKind::Host,
            2 => RingKind::Control,
            _ => return Err(invalid("unknown ring kind")),
        };
        let overwritten = d.varint()?;
        let count = d.varint()? as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        let mut prev = Time::ZERO;
        for _ in 0..count {
            let ev = get_event(&mut d, prev)?;
            prev = ev.time();
            events.push(ev);
        }
        rings.push(TraceRing {
            kind,
            overwritten,
            events,
        });
    }
    if d.remaining() != 0 {
        return Err(invalid("trailing bytes after trace"));
    }
    Ok(Trace {
        num_switches,
        engines,
        rings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut d = Decoder::new(&buf);
            assert_eq!(d.varint().unwrap(), v);
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn varint_is_compact() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_varint(&mut buf, 1_000);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn truncated_varint_errors() {
        let mut d = Decoder::new(&[0x80]);
        assert!(d.varint().is_err());
    }

    #[test]
    fn overlong_varint_errors() {
        // 11 continuation bytes exceed u64's 10-byte maximum.
        let bytes = [0xff; 11];
        let mut d = Decoder::new(&bytes);
        assert!(d.varint().is_err());
    }

    #[test]
    fn every_event_kind_round_trips() {
        let meta = PacketMeta {
            id: 42,
            flow: 7,
            src: 1,
            dst: 2,
            size: 1500,
            seq: 1442,
            emit_idx: 3,
            flags: 0b101,
        };
        let events = vec![
            TraceEvent::HostSend {
                t: Time::from_nanos(10),
                host: 1,
                pkt: meta,
            },
            TraceEvent::EngineChoice {
                t: Time::from_nanos(20),
                switch: 3,
                engine: 1,
                choice: EngineChoice {
                    chosen: 2,
                    chosen_pkts: 5,
                    best: 0,
                    best_pkts: 4,
                    candidates: 4,
                },
            },
            TraceEvent::Enqueue {
                t: Time::from_nanos(20),
                switch: 3,
                port: 2,
                engine: 1,
                pkt_id: 42,
                size: 1500,
                depth_pkts: 6,
                depth_bytes: 9000,
            },
            TraceEvent::Dequeue {
                t: Time::from_nanos(1220),
                switch: 3,
                port: 2,
                pkt_id: 42,
                depth_pkts: 5,
                wait_ns: 1200,
            },
            TraceEvent::Drop {
                t: Time::from_nanos(1300),
                switch: 3,
                port: 2,
                engine: 0,
                pkt_id: 43,
                reason: DropReason::TailDrop,
            },
            TraceEvent::HostRecv {
                t: Time::from_nanos(2000),
                host: 2,
                pkt: meta,
            },
            TraceEvent::NicDrop {
                t: Time::from_nanos(2100),
                host: 1,
                pkt_id: 44,
            },
            TraceEvent::Fault {
                t: Time::from_nanos(2200),
                kind: crate::fault_kind::DEGRADE,
                a: 3,
                b: u32::MAX,
                param: (1 << 32) | 4,
            },
        ];
        let mut buf = Vec::new();
        let mut prev = Time::ZERO;
        for ev in &events {
            put_event(&mut buf, prev, ev);
            prev = ev.time();
        }
        let mut d = Decoder::new(&buf);
        let mut prev = Time::ZERO;
        for ev in &events {
            let got = get_event(&mut d, prev).unwrap();
            assert_eq!(&got, ev);
            prev = got.time();
        }
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn unknown_tag_errors() {
        let mut d = Decoder::new(&[99, 0]);
        assert!(get_event(&mut d, Time::ZERO).is_err());
    }

    #[test]
    fn hostile_timestamp_delta_errors_instead_of_panicking() {
        // NIC_DROP with dt = u64::MAX on a nonzero prev: the running
        // timestamp would overflow.
        let mut buf = vec![tags::NIC_DROP];
        put_varint(&mut buf, u64::MAX);
        put_varint(&mut buf, 0); // host
        put_varint(&mut buf, 0); // pkt_id
        let mut d = Decoder::new(&buf);
        let err = get_event(&mut d, Time::from_nanos(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn hostile_ring_count_does_not_reserve_unbounded_memory() {
        // A tiny file whose header claims u64::MAX rings must fail with a
        // decode error, not abort on allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        put_varint(&mut buf, 1); // num_switches
        put_varint(&mut buf, 1); // engines
        put_varint(&mut buf, u64::MAX); // ring_count
        let err = read_trace(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    fn sample_recorder() -> FlightRecorder {
        use crate::probe::{FaultInfo, Probe};
        let mut rec = FlightRecorder::new(2, 2, 64);
        let m = PacketMeta {
            id: 9,
            flow: 1,
            src: 0,
            dst: 3,
            size: 1500,
            seq: 0,
            emit_idx: 0,
            flags: 1,
        };
        rec.on_host_send(Time::from_nanos(5), 0, &m);
        rec.on_enqueue(Time::from_nanos(10), 1, 0, 1, &m, 1, 1500);
        rec.on_dequeue(Time::from_nanos(1210), 1, 0, 9, 0, 1200);
        rec.on_drop(Time::from_nanos(1300), 0, 2, 0, &m, DropReason::LinkLoss);
        rec.on_host_recv(Time::from_nanos(2000), 3, &m);
        rec.on_fault(
            Time::from_nanos(2500),
            &FaultInfo {
                kind: crate::fault_kind::RECONVERGE,
                a: u32::MAX,
                b: u32::MAX,
                param: 1,
            },
        );
        rec
    }

    /// Deterministic corruption sweep standing in for a fuzzer: every
    /// truncation point and a seeded sample of single-byte mutations of a
    /// round-tripped trace must decode to `Ok` or a typed `io::Error` —
    /// never panic.
    #[test]
    fn corrupted_and_truncated_traces_never_panic() {
        let rec = sample_recorder();
        let mut good = Vec::new();
        write_trace(&rec, &mut good).unwrap();
        assert!(read_trace(&mut &good[..]).is_ok());

        // Every prefix truncation.
        for cut in 0..good.len() {
            let _ = read_trace(&mut &good[..cut]);
        }

        // Single-byte mutations: every position, a spread of values.
        let mut rng = drill_sim::SimRng::seed_from(0xC0DEC);
        for pos in 0..good.len() {
            for _ in 0..8 {
                let mut bad = good.clone();
                bad[pos] = bad[pos].wrapping_add(1 + rng.below(255) as u8);
                let _ = read_trace(&mut &bad[..]);
            }
        }

        // Random multi-byte garbage after the magic.
        for _ in 0..64 {
            let mut bad = good.clone();
            for _ in 0..4 {
                let pos = rng.below(bad.len());
                bad[pos] = rng.below(256) as u8;
            }
            let _ = read_trace(&mut &bad[..]);
        }
    }

    #[test]
    fn version_1_files_still_decode() {
        let rec = sample_recorder();
        let mut buf = Vec::new();
        write_trace(&rec, &mut buf).unwrap();
        // Rewrite the version field to 1: layout is otherwise compatible
        // (the control ring kind byte was unused but valid in v1 readers'
        // terms only for v2 — here we check *our* reader takes both).
        buf[8..10].copy_from_slice(&1u16.to_le_bytes());
        let trace = read_trace(&mut &buf[..]).unwrap();
        assert_eq!(trace.event_count(), rec.event_count());
        // Unsupported future versions are rejected.
        buf[8..10].copy_from_slice(&(TRACE_VERSION + 1).to_le_bytes());
        assert!(read_trace(&mut &buf[..]).is_err());
    }
}
