//! The flight recorder: bounded per-engine ring buffers of lifecycle
//! events.
//!
//! One ring per (switch, forwarding engine) pair plus one ring for host
//! events keeps hot-path appends contention- and allocation-free (each
//! ring is a fixed-capacity circular buffer) and preserves the per-engine
//! view the paper's Fig. 2 analysis needs. Rings keep the *newest* events:
//! on wraparound the oldest event is overwritten and counted, so a trace
//! always ends with an intact suffix of the run.

use std::collections::{BTreeMap, VecDeque};

use drill_sim::Time;

use crate::probe::{DropReason, EngineChoice, FaultInfo, PacketMeta, Probe};

/// One recorded lifecycle event. Field meanings match the [`Probe`] hooks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was accepted by the sending host's NIC.
    HostSend {
        /// Event time.
        t: Time,
        /// The host.
        host: u32,
        /// The packet.
        pkt: PacketMeta,
    },
    /// A packet was delivered to the receiving host.
    HostRecv {
        /// Event time.
        t: Time,
        /// The host.
        host: u32,
        /// The packet.
        pkt: PacketMeta,
    },
    /// A forwarding engine picked an egress port among several candidates.
    EngineChoice {
        /// Event time.
        t: Time,
        /// The switch.
        switch: u32,
        /// The engine.
        engine: u16,
        /// Chosen port + ground truth.
        choice: EngineChoice,
    },
    /// A packet was appended to a switch output queue.
    Enqueue {
        /// Event time.
        t: Time,
        /// The switch.
        switch: u32,
        /// The output port.
        port: u16,
        /// The enqueuing engine.
        engine: u16,
        /// Packet id.
        pkt_id: u64,
        /// Wire size in bytes.
        size: u32,
        /// Actual queue depth (packets) after the append.
        depth_pkts: u32,
        /// Actual queue depth (bytes) after the append.
        depth_bytes: u64,
    },
    /// A packet finished serializing and left a switch output port.
    Dequeue {
        /// Event time.
        t: Time,
        /// The switch.
        switch: u32,
        /// The output port.
        port: u16,
        /// Packet id.
        pkt_id: u64,
        /// Queue depth (packets) after the departure.
        depth_pkts: u32,
        /// Full sojourn (enqueue to end of serialization), ns.
        wait_ns: u64,
    },
    /// A packet was dropped at a switch.
    Drop {
        /// Event time.
        t: Time,
        /// The switch.
        switch: u32,
        /// The output port (`u16::MAX` when none was chosen — no-route).
        port: u16,
        /// The responsible engine (`u16::MAX` when unknown, e.g. a link
        /// that died while the packet was already serializing).
        engine: u16,
        /// Packet id.
        pkt_id: u64,
        /// Why.
        reason: DropReason,
    },
    /// A packet was dropped at a host NIC.
    NicDrop {
        /// Event time.
        t: Time,
        /// The host.
        host: u32,
        /// Packet id.
        pkt_id: u64,
    },
    /// A control-plane fault or reconvergence event (chaos engine).
    Fault {
        /// Event time.
        t: Time,
        /// One of the [`crate::fault_kind`] codes.
        kind: u8,
        /// First affected switch (`u32::MAX` when unused).
        a: u32,
        /// Second affected switch (`u32::MAX` when unused).
        b: u32,
        /// Kind-specific payload.
        param: u64,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Time {
        match self {
            TraceEvent::HostSend { t, .. }
            | TraceEvent::HostRecv { t, .. }
            | TraceEvent::EngineChoice { t, .. }
            | TraceEvent::Enqueue { t, .. }
            | TraceEvent::Dequeue { t, .. }
            | TraceEvent::Drop { t, .. }
            | TraceEvent::NicDrop { t, .. }
            | TraceEvent::Fault { t, .. } => *t,
        }
    }
}

/// What a ring recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingKind {
    /// Events attributed to one forwarding engine of one switch.
    Engine {
        /// The switch.
        switch: u32,
        /// The engine.
        engine: u16,
    },
    /// Host-side events (NIC accept/deliver/drop) for every host.
    Host,
    /// Control-plane events (fault injection, reconvergence).
    Control,
}

/// A bounded circular buffer of [`TraceEvent`]s that keeps the newest
/// events and counts what wraparound discarded.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    overwritten: u64,
}

impl EventRing {
    /// An empty ring holding at most `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> EventRing {
        assert!(cap >= 1, "ring capacity must be at least 1");
        EventRing {
            buf: Vec::new(),
            cap,
            head: 0,
            overwritten: 0,
        }
    }

    /// Append an event, overwriting the oldest when full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Surviving events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to wraparound.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Surviving events, oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Merge another ring's surviving events into this one, interleaving
    /// by timestamp (ties keep this ring's events first, so merging an
    /// empty or disjoint ring is exact). Overwrite counts add; if the
    /// union exceeds this ring's capacity the oldest events are discarded
    /// and counted, preserving the newest-suffix guarantee.
    pub fn merge(&mut self, other: &EventRing) {
        let mine: Vec<TraceEvent> = self.iter().copied().collect();
        let mut merged: Vec<TraceEvent> = Vec::with_capacity(mine.len() + other.len());
        let mut theirs = other.iter().copied().peekable();
        for ev in mine {
            while let Some(b) = theirs.peek() {
                if b.time() < ev.time() {
                    merged.push(theirs.next().expect("peeked event advances"));
                } else {
                    break;
                }
            }
            merged.push(ev);
        }
        merged.extend(theirs);
        self.overwritten += other.overwritten;
        if merged.len() > self.cap {
            let dropped = merged.len() - self.cap;
            self.overwritten += dropped as u64;
            merged.drain(..dropped);
        }
        self.head = 0;
        self.buf = merged;
    }
}

/// Default per-ring capacity: 64 Ki events per (switch, engine) ring.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// A [`Probe`] that records every lifecycle event into per-engine rings.
///
/// Dequeues and in-flight drops carry no engine on the wire, so the
/// recorder mirrors each port's FIFO discipline: it remembers the engine
/// of every enqueue per (switch, port) and pops that queue on dequeue,
/// recovering the attribution exactly (ports are strict FIFOs). Events
/// with no recoverable engine (`u16::MAX`) land in the switch's engine-0
/// ring by convention.
pub struct FlightRecorder {
    num_switches: usize,
    engines: usize,
    /// Engine rings switch-major, then the host ring, then the control
    /// ring last.
    rings: Vec<EventRing>,
    /// Per-(switch, port) FIFO of enqueuing engines, mirroring the port
    /// queue (including the in-flight packet).
    port_fifo: BTreeMap<(u32, u16), VecDeque<u16>>,
}

impl FlightRecorder {
    /// A recorder for `num_switches` switches with `engines` forwarding
    /// engines each, `ring_capacity` events per ring.
    pub fn new(num_switches: usize, engines: usize, ring_capacity: usize) -> FlightRecorder {
        assert!(engines >= 1, "at least one engine");
        let rings = (0..num_switches * engines + 2)
            .map(|_| EventRing::new(ring_capacity))
            .collect();
        FlightRecorder {
            num_switches,
            engines,
            rings,
            port_fifo: BTreeMap::new(),
        }
    }

    /// Switch count this recorder was sized for.
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// Engines per switch.
    pub fn engines(&self) -> usize {
        self.engines
    }

    /// Total rings (engine rings + the host ring + the control ring).
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    /// The ring at file index `idx` with its kind (engine rings
    /// switch-major, then the host ring, then the control ring).
    pub fn ring_at(&self, idx: usize) -> (RingKind, &EventRing) {
        let engine_rings = self.num_switches * self.engines;
        let kind = if idx < engine_rings {
            RingKind::Engine {
                switch: (idx / self.engines) as u32,
                engine: (idx % self.engines) as u16,
            }
        } else if idx == engine_rings {
            RingKind::Host
        } else {
            RingKind::Control
        };
        (kind, &self.rings[idx])
    }

    /// Total surviving events across all rings.
    pub fn event_count(&self) -> usize {
        self.rings.iter().map(|r| r.len()).sum()
    }

    /// Total events lost to ring wraparound.
    pub fn overwritten(&self) -> u64 {
        self.rings.iter().map(|r| r.overwritten()).sum()
    }

    /// Merge another recorder of the same shape (switch count and engines
    /// per switch) into this one, ring by ring. Events interleave by
    /// timestamp within each ring, so recorders that observed disjoint
    /// slices of one run — e.g. per-shard recorders each attached to the
    /// switches its shard owns — combine into the trace a single global
    /// recorder would have produced. Panics on a shape mismatch.
    pub fn merge(&mut self, other: &FlightRecorder) {
        assert_eq!(
            self.num_switches, other.num_switches,
            "merge requires recorders sized for the same fabric"
        );
        assert_eq!(
            self.engines, other.engines,
            "merge requires the same engines-per-switch layout"
        );
        for (ring, theirs) in self.rings.iter_mut().zip(&other.rings) {
            ring.merge(theirs);
        }
        // Carry over in-flight enqueue attributions so dequeues recorded
        // after the merge still recover their engine (keys are disjoint
        // when the sources observed disjoint switches).
        for (key, fifo) in &other.port_fifo {
            self.port_fifo
                .entry(*key)
                .or_default()
                .extend(fifo.iter().copied());
        }
    }

    #[inline]
    fn engine_ring(&mut self, switch: u32, engine: u16) -> &mut EventRing {
        let e = if engine == u16::MAX {
            0
        } else {
            engine as usize
        };
        debug_assert!(e < self.engines, "engine out of range");
        &mut self.rings[switch as usize * self.engines + e]
    }

    #[inline]
    fn host_ring(&mut self) -> &mut EventRing {
        let idx = self.num_switches * self.engines;
        &mut self.rings[idx]
    }

    #[inline]
    fn control_ring(&mut self) -> &mut EventRing {
        let last = self.rings.len() - 1;
        &mut self.rings[last]
    }
}

impl Probe for FlightRecorder {
    #[inline]
    fn on_host_send(&mut self, now: Time, host: u32, pkt: &PacketMeta) {
        self.host_ring().push(TraceEvent::HostSend {
            t: now,
            host,
            pkt: *pkt,
        });
    }

    #[inline]
    fn on_host_recv(&mut self, now: Time, host: u32, pkt: &PacketMeta) {
        self.host_ring().push(TraceEvent::HostRecv {
            t: now,
            host,
            pkt: *pkt,
        });
    }

    #[inline]
    fn on_engine_choice(&mut self, now: Time, switch: u32, engine: u16, choice: &EngineChoice) {
        self.engine_ring(switch, engine)
            .push(TraceEvent::EngineChoice {
                t: now,
                switch,
                engine,
                choice: *choice,
            });
    }

    #[inline]
    fn on_enqueue(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        engine: u16,
        pkt: &PacketMeta,
        depth_pkts: u32,
        depth_bytes: u64,
    ) {
        self.port_fifo
            .entry((switch, port))
            .or_default()
            .push_back(engine);
        self.engine_ring(switch, engine).push(TraceEvent::Enqueue {
            t: now,
            switch,
            port,
            engine,
            pkt_id: pkt.id,
            size: pkt.size,
            depth_pkts,
            depth_bytes,
        });
    }

    #[inline]
    fn on_dequeue(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        pkt_id: u64,
        depth_pkts: u32,
        wait_ns: u64,
    ) {
        let engine = self
            .port_fifo
            .get_mut(&(switch, port))
            .and_then(|q| q.pop_front())
            .unwrap_or(0);
        self.engine_ring(switch, engine).push(TraceEvent::Dequeue {
            t: now,
            switch,
            port,
            pkt_id,
            depth_pkts,
            wait_ns,
        });
    }

    #[inline]
    fn on_drop(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        engine: u16,
        pkt: &PacketMeta,
        reason: DropReason,
    ) {
        self.engine_ring(switch, engine).push(TraceEvent::Drop {
            t: now,
            switch,
            port,
            engine,
            pkt_id: pkt.id,
            reason,
        });
    }

    #[inline]
    fn on_nic_drop(&mut self, now: Time, host: u32, pkt: &PacketMeta) {
        self.host_ring().push(TraceEvent::NicDrop {
            t: now,
            host,
            pkt_id: pkt.id,
        });
    }

    #[inline]
    fn on_fault(&mut self, now: Time, info: &FaultInfo) {
        self.control_ring().push(TraceEvent::Fault {
            t: now,
            kind: info.kind,
            a: info.a,
            b: info.b,
            param: info.param,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64) -> TraceEvent {
        TraceEvent::NicDrop {
            t: Time::from_nanos(ns),
            host: 0,
            pkt_id: ns,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_overwrites() {
        let mut r = EventRing::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 2);
        let times: Vec<u64> = r.iter().map(|e| e.time().as_nanos()).collect();
        assert_eq!(times, vec![2, 3, 4], "oldest to newest, newest kept");
    }

    #[test]
    fn ring_iterates_in_order_before_wrap() {
        let mut r = EventRing::new(8);
        for i in 0..3 {
            r.push(ev(i));
        }
        let times: Vec<u64> = r.iter().map(|e| e.time().as_nanos()).collect();
        assert_eq!(times, vec![0, 1, 2]);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn recorder_routes_events_to_engine_rings() {
        let mut rec = FlightRecorder::new(2, 2, 16);
        assert_eq!(rec.ring_count(), 6); // 2 switches x 2 engines + host + control
        let m = PacketMeta {
            id: 7,
            size: 1500,
            ..Default::default()
        };
        rec.on_enqueue(Time::from_nanos(10), 1, 3, 1, &m, 2, 3000);
        rec.on_host_send(Time::from_nanos(5), 0, &m);
        // Switch 1, engine 1 is ring index 1*2 + 1 = 3.
        let (kind, ring) = rec.ring_at(3);
        assert_eq!(
            kind,
            RingKind::Engine {
                switch: 1,
                engine: 1
            }
        );
        assert_eq!(ring.len(), 1);
        let (kind, host_ring) = rec.ring_at(4);
        assert_eq!(kind, RingKind::Host);
        assert_eq!(host_ring.len(), 1);
        assert_eq!(rec.event_count(), 2);
    }

    #[test]
    fn dequeue_recovers_engine_through_port_fifo() {
        let mut rec = FlightRecorder::new(1, 2, 16);
        let m = PacketMeta {
            id: 1,
            ..Default::default()
        };
        // Engine 1 enqueues then engine 0, on the same port: the FIFO says
        // the first dequeue belongs to engine 1.
        rec.on_enqueue(Time::from_nanos(1), 0, 5, 1, &m, 1, 100);
        rec.on_enqueue(Time::from_nanos(2), 0, 5, 0, &m, 2, 200);
        rec.on_dequeue(Time::from_nanos(10), 0, 5, 1, 1, 9);
        rec.on_dequeue(Time::from_nanos(20), 0, 5, 2, 0, 18);
        let deq_in = |idx: usize| {
            rec.ring_at(idx)
                .1
                .iter()
                .filter(|e| matches!(e, TraceEvent::Dequeue { .. }))
                .count()
        };
        assert_eq!(deq_in(0), 1, "engine 0 ring has its own dequeue");
        assert_eq!(deq_in(1), 1, "engine 1 ring has its own dequeue");
    }

    #[test]
    fn unknown_engine_lands_in_ring_zero() {
        let mut rec = FlightRecorder::new(1, 2, 16);
        let m = PacketMeta::default();
        rec.on_drop(
            Time::from_nanos(3),
            0,
            2,
            u16::MAX,
            &m,
            DropReason::LinkDown,
        );
        // A dequeue with no recorded enqueue falls back to engine 0 too.
        rec.on_dequeue(Time::from_nanos(4), 0, 9, 77, 0, 1);
        assert_eq!(rec.ring_at(0).1.len(), 2);
        assert_eq!(rec.ring_at(1).1.len(), 0);
    }

    #[test]
    fn ring_merge_interleaves_by_time_and_counts_overflow() {
        let mut a = EventRing::new(4);
        let mut b = EventRing::new(4);
        for i in [1u64, 5, 9] {
            a.push(ev(i));
        }
        for i in [2u64, 6] {
            b.push(ev(i));
        }
        a.merge(&b);
        let times: Vec<u64> = a.iter().map(|e| e.time().as_nanos()).collect();
        // 5 events into a cap-4 ring: the oldest (t=1) is discarded and
        // counted, the rest are in global time order.
        assert_eq!(times, vec![2, 5, 6, 9]);
        assert_eq!(a.overwritten(), 1);
    }

    #[test]
    fn sharded_recorders_merge_into_one_global_trace() {
        // Two recorders watch disjoint slices of the same 2-switch run
        // (the per-shard telemetry shape), a third watches everything.
        let mut global = FlightRecorder::new(2, 1, 16);
        let mut shard_a = FlightRecorder::new(2, 1, 16);
        let mut shard_b = FlightRecorder::new(2, 1, 16);
        let m = PacketMeta {
            id: 3,
            size: 1500,
            ..Default::default()
        };
        for (t, switch) in [(10u64, 0u32), (20, 1), (30, 0), (40, 1)] {
            let rec = if switch == 0 {
                &mut shard_a
            } else {
                &mut shard_b
            };
            rec.on_enqueue(Time::from_nanos(t), switch, 0, 0, &m, 1, 1500);
            global.on_enqueue(Time::from_nanos(t), switch, 0, 0, &m, 1, 1500);
        }
        shard_a.on_host_send(Time::from_nanos(15), 0, &m);
        global.on_host_send(Time::from_nanos(15), 0, &m);
        shard_b.on_host_recv(Time::from_nanos(25), 1, &m);
        global.on_host_recv(Time::from_nanos(25), 1, &m);
        shard_a.merge(&shard_b);
        assert_eq!(shard_a.event_count(), global.event_count());
        for idx in 0..global.ring_count() {
            let merged: Vec<TraceEvent> = shard_a.ring_at(idx).1.iter().copied().collect();
            let expect: Vec<TraceEvent> = global.ring_at(idx).1.iter().copied().collect();
            assert_eq!(merged, expect, "ring {idx} diverged from the global trace");
        }
        // Dequeues after the merge still recover their engine attribution.
        shard_a.on_dequeue(Time::from_nanos(50), 1, 0, 3, 0, 30);
        let (_, ring) = shard_a.ring_at(1);
        assert!(ring
            .iter()
            .any(|e| matches!(e, TraceEvent::Dequeue { switch: 1, .. })));
    }

    #[test]
    #[should_panic(expected = "same fabric")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = FlightRecorder::new(2, 1, 16);
        let b = FlightRecorder::new(3, 1, 16);
        a.merge(&b);
    }

    #[test]
    fn fault_events_land_in_the_control_ring() {
        let mut rec = FlightRecorder::new(2, 2, 16);
        let info = FaultInfo {
            kind: crate::fault_kind::LINK_DOWN,
            a: 0,
            b: 5,
            param: 0,
        };
        rec.on_fault(Time::from_nanos(42), &info);
        let last = rec.ring_count() - 1;
        let (kind, ring) = rec.ring_at(last);
        assert_eq!(kind, RingKind::Control);
        assert_eq!(ring.len(), 1);
        match ring.iter().next().unwrap() {
            TraceEvent::Fault { t, kind, a, b, .. } => {
                assert_eq!(t.as_nanos(), 42);
                assert_eq!(*kind, crate::fault_kind::LINK_DOWN);
                assert_eq!((*a, *b), (0, 5));
            }
            other => panic!("unexpected event {other:?}"),
        }
        // The host ring is untouched (it now sits second to last).
        assert_eq!(rec.ring_at(last - 1).0, RingKind::Host);
        assert_eq!(rec.ring_at(last - 1).1.len(), 0);
    }
}
