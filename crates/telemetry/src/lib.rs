//! Zero-overhead flight recorder and queue time-series telemetry for the
//! DRILL reproduction.
//!
//! The simulator's end-of-run aggregates (`drill-stats`) cannot show the
//! paper's *micro*-scale behaviours: the per-engine queue imbalance of
//! Fig. 2, the decision quality of engines acting on lagged queue state
//! (§3.2.1), or the reordering degree behind §5. This crate adds that
//! visibility without taxing the hot path:
//!
//! * [`Probe`] — static-dispatch observation hooks on the packet lifecycle
//!   (host send/recv, engine choice, enqueue/dequeue, drops). Hook sites
//!   in `drill-net`/`drill-runtime` are generic over `P: Probe` and gate
//!   probe-only work on [`Probe::ENABLED`], so the [`NoopProbe`] path
//!   monomorphizes to exactly the pre-telemetry code.
//! * [`FlightRecorder`] — captures events into bounded per-engine
//!   [`EventRing`]s (newest kept, overwrites counted).
//! * [`QueueSampler`] — per-port queue-depth time series at a configurable
//!   cadence plus high-water marks, derived purely from hook data.
//! * [`write_trace`]/[`read_trace`] — the versioned `DRILLTRC` binary
//!   container (LEB128 varints, per-ring delta timestamps).
//! * [`analyze`] — offline analyzers turning a [`Trace`] into queue-depth
//!   timelines, per-packet trips, reordering histograms, and engine
//!   decision-quality summaries (the `tracedump` tables).
//!
//! # Determinism contract
//!
//! Probes observe and never steer: no hook can reach the simulation RNG,
//! the event queue, or packet contents, so every `RunStats` metric is
//! bit-identical with telemetry on or off (enforced by the golden suite).

#![warn(missing_docs)]

pub mod analyze;
mod encode;
mod probe;
mod record;
mod sampler;

pub use encode::{
    get_event, put_event, put_varint, read_trace, write_trace, Decoder, Trace, TraceRing,
    TRACE_MAGIC, TRACE_VERSION, TRACE_VERSION_MIN,
};
pub use probe::{
    fault_kind, meta_flags, DropReason, EngineChoice, FaultInfo, NoopProbe, PacketMeta, Probe,
};
pub use record::{EventRing, FlightRecorder, RingKind, TraceEvent, DEFAULT_RING_CAPACITY};
pub use sampler::{PortSeries, QueueSampler, DEFAULT_SAMPLE_EVERY};

#[cfg(test)]
mod tests {
    use super::*;
    use drill_sim::Time;

    /// End to end: record through the probe API, serialize, decode, and
    /// get the same events back.
    #[test]
    fn recorder_round_trips_through_the_trace_file() {
        let mut rec = FlightRecorder::new(2, 2, 8);
        let m = PacketMeta {
            id: 3,
            flow: 1,
            src: 0,
            dst: 5,
            size: 1500,
            seq: 1442,
            emit_idx: 2,
            flags: meta_flags::DATA,
        };
        rec.on_host_send(Time::from_nanos(100), 0, &m);
        rec.on_engine_choice(
            Time::from_nanos(700),
            1,
            1,
            &EngineChoice {
                chosen: 2,
                chosen_pkts: 1,
                best: 2,
                best_pkts: 1,
                candidates: 2,
            },
        );
        rec.on_enqueue(Time::from_nanos(700), 1, 2, 1, &m, 1, 1500);
        rec.on_dequeue(Time::from_nanos(1900), 1, 2, 3, 0, 1200);
        rec.on_drop(Time::from_nanos(2000), 0, 1, 0, &m, DropReason::TailDrop);
        rec.on_nic_drop(Time::from_nanos(2100), 4, &m);
        rec.on_host_recv(Time::from_nanos(2400), 5, &m);
        rec.on_fault(
            Time::from_nanos(2500),
            &FaultInfo {
                kind: fault_kind::LINK_DOWN,
                a: 0,
                b: 1,
                param: 0,
            },
        );

        let mut bytes = Vec::new();
        write_trace(&rec, &mut bytes).unwrap();
        assert_eq!(&bytes[..8], &TRACE_MAGIC);
        let trace = read_trace(&mut bytes.as_slice()).unwrap();
        assert_eq!(trace.num_switches, 2);
        assert_eq!(trace.engines, 2);
        assert_eq!(trace.rings.len(), 6);
        assert_eq!(trace.event_count(), 8);
        assert_eq!(trace.overwritten(), 0);
        assert_eq!(trace.rings.last().unwrap().kind, RingKind::Control);

        let merged = trace.merged_events();
        assert_eq!(merged.len(), 8);
        assert!(
            merged.windows(2).all(|w| w[0].time() <= w[1].time()),
            "merged events are chronological"
        );
        match merged[0] {
            TraceEvent::HostSend { t, host, pkt } => {
                assert_eq!(*t, Time::from_nanos(100));
                assert_eq!(*host, 0);
                assert_eq!(pkt, &m);
            }
            other => panic!("unexpected first event {other:?}"),
        }
    }

    /// The disabled probe must stay a zero-sized type — that is what lets
    /// monomorphized hook sites erase it entirely.
    #[test]
    fn noop_probe_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoopProbe>(), 0);
        assert!(!NoopProbe::ENABLED);
    }
}
