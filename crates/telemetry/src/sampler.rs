//! Queue-depth time series at a configurable cadence, derived purely from
//! enqueue/dequeue events.
//!
//! The sampler never schedules simulation events — it buckets the depths
//! the hooks already report — so enabling it cannot perturb the run.
//! Each (switch, port) series keeps the last depth observed per bucket
//! (the queue state at the bucket's end) plus all-time high-water marks.

use std::collections::BTreeMap;

use drill_sim::Time;

use crate::probe::{PacketMeta, Probe};

/// Default sampling cadence, matching the paper's 10 µs queue sampling.
pub const DEFAULT_SAMPLE_EVERY: Time = Time::from_micros(10);

/// One port's depth series and high-water marks.
#[derive(Clone, Debug, Default)]
pub struct PortSeries {
    /// `(bucket index, depth in packets at the bucket's end)` — buckets
    /// with no queue activity are omitted (depth unchanged since the
    /// previous listed bucket).
    pub samples: Vec<(u64, u32)>,
    /// Largest packet depth ever observed.
    pub high_water_pkts: u32,
    /// Largest byte depth ever observed (enqueue instants).
    pub high_water_bytes: u64,
}

impl PortSeries {
    fn record(&mut self, bucket: u64, depth: u32) {
        match self.samples.last_mut() {
            Some((b, d)) if *b == bucket => *d = depth,
            _ => self.samples.push((bucket, depth)),
        }
        self.high_water_pkts = self.high_water_pkts.max(depth);
    }
}

/// A [`Probe`] recording per-port queue-depth time series.
pub struct QueueSampler {
    every_ns: u64,
    ports: BTreeMap<(u32, u16), PortSeries>,
}

impl QueueSampler {
    /// A sampler bucketing time at `every` (floored to >= 1 ns).
    pub fn new(every: Time) -> QueueSampler {
        QueueSampler {
            every_ns: every.as_nanos().max(1),
            ports: BTreeMap::new(),
        }
    }

    /// The sampling cadence in nanoseconds.
    pub fn every_ns(&self) -> u64 {
        self.every_ns
    }

    /// The recorded series, keyed by (switch, port), in key order.
    pub fn ports(&self) -> &BTreeMap<(u32, u16), PortSeries> {
        &self.ports
    }

    /// The highest packet depth seen on any port.
    pub fn max_high_water_pkts(&self) -> u32 {
        self.ports
            .values()
            .map(|s| s.high_water_pkts)
            .max()
            .unwrap_or(0)
    }

    #[inline]
    fn bucket(&self, now: Time) -> u64 {
        now.as_nanos() / self.every_ns
    }
}

impl Default for QueueSampler {
    fn default() -> Self {
        QueueSampler::new(DEFAULT_SAMPLE_EVERY)
    }
}

impl Probe for QueueSampler {
    #[inline]
    fn on_enqueue(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        _engine: u16,
        _pkt: &PacketMeta,
        depth_pkts: u32,
        depth_bytes: u64,
    ) {
        let bucket = self.bucket(now);
        let s = self.ports.entry((switch, port)).or_default();
        s.record(bucket, depth_pkts);
        s.high_water_bytes = s.high_water_bytes.max(depth_bytes);
    }

    #[inline]
    fn on_dequeue(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        _pkt_id: u64,
        depth_pkts: u32,
        _wait_ns: u64,
    ) {
        let bucket = self.bucket(now);
        self.ports
            .entry((switch, port))
            .or_default()
            .record(bucket, depth_pkts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_depth_per_bucket_wins() {
        let mut s = QueueSampler::new(Time::from_nanos(100));
        let m = PacketMeta::default();
        s.on_enqueue(Time::from_nanos(10), 0, 1, 0, &m, 1, 1500);
        s.on_enqueue(Time::from_nanos(20), 0, 1, 0, &m, 2, 3000);
        s.on_enqueue(Time::from_nanos(150), 0, 1, 0, &m, 3, 4500);
        s.on_dequeue(Time::from_nanos(180), 0, 1, 7, 2, 30);
        let series = &s.ports()[&(0, 1)];
        assert_eq!(series.samples, vec![(0, 2), (1, 2)]);
        assert_eq!(series.high_water_pkts, 3);
        assert_eq!(series.high_water_bytes, 4500);
        assert_eq!(s.max_high_water_pkts(), 3);
    }

    #[test]
    fn ports_are_tracked_independently() {
        let mut s = QueueSampler::default();
        let m = PacketMeta::default();
        s.on_enqueue(Time::from_micros(5), 0, 0, 0, &m, 4, 6000);
        s.on_enqueue(Time::from_micros(5), 1, 0, 0, &m, 9, 13_500);
        assert_eq!(s.ports().len(), 2);
        assert_eq!(s.ports()[&(0, 0)].high_water_pkts, 4);
        assert_eq!(s.ports()[&(1, 0)].high_water_pkts, 9);
        assert_eq!(s.every_ns(), 10_000);
    }

    #[test]
    fn dequeue_only_port_still_gets_a_series() {
        let mut s = QueueSampler::new(Time::from_nanos(50));
        s.on_dequeue(Time::from_nanos(60), 2, 3, 1, 0, 10);
        assert_eq!(s.ports()[&(2, 3)].samples, vec![(1, 0)]);
        assert_eq!(s.ports()[&(2, 3)].high_water_bytes, 0);
    }
}
