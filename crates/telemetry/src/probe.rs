//! The probe trait: static-dispatch observation hooks on the packet path.
//!
//! Every hook site in `drill-net` / `drill-runtime` is generic over
//! `P: Probe` and monomorphized, so the disabled path ([`NoopProbe`])
//! compiles to *nothing*: the empty `#[inline]` bodies vanish, and any
//! work needed only to feed a hook (building a [`PacketMeta`], scanning
//! candidate queues for the true shortest) is gated on the associated
//! constant [`Probe::ENABLED`], which the optimizer const-folds away.
//! `qbench --e2e-telemetry` measures the residue: noop-probe runs are
//! within noise of the pre-probe baseline.
//!
//! Probes observe; they must never steer. None of the hooks can touch the
//! simulation RNG, schedule events, or mutate packets, which is what makes
//! the determinism contract (bit-identical metrics with telemetry on or
//! off) hold by construction.

use drill_sim::Time;

/// The packet fields probes may record (a plain-data mirror of the
/// interesting part of `drill_net::Packet`, kept here so the telemetry
/// crate can sit below `drill-net` in the dependency order).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PacketMeta {
    /// Globally unique packet id.
    pub id: u64,
    /// Flow id.
    pub flow: u32,
    /// Sending host.
    pub src: u32,
    /// Destination host.
    pub dst: u32,
    /// Bytes on the wire.
    pub size: u32,
    /// First payload byte's sequence number.
    pub seq: u64,
    /// Sender-side emission index within the flow (reordering analysis).
    pub emit_idx: u32,
    /// Packet flag bits (`drill_net::flags` encoding: DATA/ACK/FIN/RETX).
    pub flags: u8,
}

/// Mirror of `drill_net::flags` for interpreting [`PacketMeta::flags`]
/// (this crate sits below `drill-net`, so it cannot import the originals;
/// a test on the net side asserts the two stay equal).
pub mod meta_flags {
    /// Carries payload bytes.
    pub const DATA: u8 = 1 << 0;
    /// Carries a cumulative acknowledgement.
    pub const ACK: u8 = 1 << 1;
    /// Final segment of the flow.
    pub const FIN: u8 = 1 << 2;
    /// Retransmission.
    pub const RETX: u8 = 1 << 3;
}

/// Why a packet was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Output-queue tail drop.
    TailDrop,
    /// Egress link was (or went) down.
    LinkDown,
    /// No route to the destination leaf.
    NoRoute,
    /// Host NIC transmit-buffer overflow.
    NicOverflow,
    /// Random corruption on a lossy wire (fault injection).
    LinkLoss,
}

impl DropReason {
    /// Stable wire encoding.
    pub fn code(self) -> u8 {
        match self {
            DropReason::TailDrop => 0,
            DropReason::LinkDown => 1,
            DropReason::NoRoute => 2,
            DropReason::NicOverflow => 3,
            DropReason::LinkLoss => 4,
        }
    }

    /// Inverse of [`DropReason::code`].
    pub fn from_code(c: u8) -> Option<DropReason> {
        Some(match c {
            0 => DropReason::TailDrop,
            1 => DropReason::LinkDown,
            2 => DropReason::NoRoute,
            3 => DropReason::NicOverflow,
            4 => DropReason::LinkLoss,
            _ => return None,
        })
    }

    /// Human name.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::TailDrop => "tail-drop",
            DropReason::LinkDown => "link-down",
            DropReason::NoRoute => "no-route",
            DropReason::NicOverflow => "nic-overflow",
            DropReason::LinkLoss => "link-loss",
        }
    }
}

/// Stable wire codes for control-plane fault/reconvergence events
/// ([`FaultInfo::kind`]). Defined here (below `drill-net` and the fault
/// engine in the dependency order) so every layer shares one encoding.
pub mod fault_kind {
    /// A switch-to-switch link pair went down.
    pub const LINK_DOWN: u8 = 0;
    /// A failed link pair was restored.
    pub const LINK_UP: u8 = 1;
    /// A switch crashed (all its switch-to-switch links downed).
    pub const SWITCH_DOWN: u8 = 2;
    /// A crashed switch recovered.
    pub const SWITCH_UP: u8 = 3;
    /// A link pair's capacity was degraded (param = num<<32 | den).
    pub const DEGRADE: u8 = 4;
    /// A link pair's random-loss probability changed (param = ppm).
    pub const SET_LOSS: u8 = 5;
    /// Routing + symmetric groups recomputed and installed atomically.
    pub const RECONVERGE: u8 = 6;
    /// The post-fault queue/drop churn settled (time-to-requeue-stability).
    pub const STABLE: u8 = 7;

    /// Human name for a kind code.
    pub fn name(kind: u8) -> &'static str {
        match kind {
            LINK_DOWN => "link-down",
            LINK_UP => "link-up",
            SWITCH_DOWN => "switch-down",
            SWITCH_UP => "switch-up",
            DEGRADE => "degrade",
            SET_LOSS => "set-loss",
            RECONVERGE => "reconverge",
            STABLE => "stable",
            _ => "unknown",
        }
    }
}

/// A control-plane fault or reconvergence event, as seen by probes.
///
/// `a`/`b` identify the affected switches (`u32::MAX` when unused, e.g.
/// `b` for switch crashes or both for reconvergence); `param` carries the
/// kind-specific payload (degradation fraction, loss ppm, reconvergence
/// generation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInfo {
    /// One of the [`fault_kind`] codes.
    pub kind: u8,
    /// First affected switch (`u32::MAX` when unused).
    pub a: u32,
    /// Second affected switch (`u32::MAX` when unused).
    pub b: u32,
    /// Kind-specific payload.
    pub param: u64,
}

/// A forwarding engine's port choice, with the ground truth it could not
/// see (§3.2.1 queue-visibility lag): the *actual* occupancy of the chosen
/// port and of the truly shortest candidate at selection time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineChoice {
    /// Port the policy chose.
    pub chosen: u16,
    /// Actual occupancy (packets) of the chosen port.
    pub chosen_pkts: u32,
    /// Truly shortest candidate port (first among ties).
    pub best: u16,
    /// Actual occupancy (packets) of the shortest candidate.
    pub best_pkts: u32,
    /// Number of candidate ports the policy chose among.
    pub candidates: u16,
}

/// Observation hooks on the packet lifecycle.
///
/// All methods default to no-ops so probes implement only what they need.
/// Call sites gate hook-only work on [`Probe::ENABLED`]:
///
/// ```
/// use drill_telemetry::{NoopProbe, Probe};
/// fn hot_path<P: Probe>(probe: &mut P) {
///     if P::ENABLED {
///         // expensive: scan queues, build metadata ...
///     }
/// }
/// hot_path(&mut NoopProbe);
/// ```
#[allow(unused_variables)]
pub trait Probe {
    /// Whether this probe records anything. Hook sites skip probe-only
    /// work (metadata assembly, ground-truth queue scans) when `false`;
    /// the constant is monomorphized, so the check costs nothing.
    const ENABLED: bool = true;

    /// A packet was accepted by the sending host's NIC.
    #[inline]
    fn on_host_send(&mut self, now: Time, host: u32, pkt: &PacketMeta) {}

    /// A packet was delivered to the receiving host.
    #[inline]
    fn on_host_recv(&mut self, now: Time, host: u32, pkt: &PacketMeta) {}

    /// A forwarding engine picked an egress port among several candidates.
    #[inline]
    fn on_engine_choice(&mut self, now: Time, switch: u32, engine: u16, choice: &EngineChoice) {}

    /// A packet was appended to a switch output queue. `depth_pkts` /
    /// `depth_bytes` are the *actual* occupancy after the append
    /// (waiting + in flight, ignoring the visibility lag).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn on_enqueue(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        engine: u16,
        pkt: &PacketMeta,
        depth_pkts: u32,
        depth_bytes: u64,
    ) {
    }

    /// A packet finished serializing and left a switch output port.
    /// `depth_pkts` is the occupancy after departure; `wait_ns` the
    /// packet's full sojourn (enqueue to end of serialization).
    #[inline]
    fn on_dequeue(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        pkt_id: u64,
        depth_pkts: u32,
        wait_ns: u64,
    ) {
    }

    /// A packet was dropped at a switch (`port == u16::MAX` when no egress
    /// port was ever chosen, i.e. [`DropReason::NoRoute`]).
    #[inline]
    fn on_drop(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        engine: u16,
        pkt: &PacketMeta,
        reason: DropReason,
    ) {
    }

    /// A packet was dropped at a host NIC (buffer overflow).
    #[inline]
    fn on_nic_drop(&mut self, now: Time, host: u32, pkt: &PacketMeta) {}

    /// A control-plane fault or reconvergence event fired (chaos engine).
    #[inline]
    fn on_fault(&mut self, now: Time, info: &FaultInfo) {}
}

/// The disabled probe: every hook is an empty `#[inline]` body and
/// [`Probe::ENABLED`] is `false`, so monomorphized call sites compile to
/// exactly the pre-telemetry code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;
}

/// Probe composition: `(A, B)` fans every event out to both probes.
/// Compose further by nesting: `((a, b), c)`.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn on_host_send(&mut self, now: Time, host: u32, pkt: &PacketMeta) {
        self.0.on_host_send(now, host, pkt);
        self.1.on_host_send(now, host, pkt);
    }

    #[inline]
    fn on_host_recv(&mut self, now: Time, host: u32, pkt: &PacketMeta) {
        self.0.on_host_recv(now, host, pkt);
        self.1.on_host_recv(now, host, pkt);
    }

    #[inline]
    fn on_engine_choice(&mut self, now: Time, switch: u32, engine: u16, choice: &EngineChoice) {
        self.0.on_engine_choice(now, switch, engine, choice);
        self.1.on_engine_choice(now, switch, engine, choice);
    }

    #[inline]
    fn on_enqueue(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        engine: u16,
        pkt: &PacketMeta,
        depth_pkts: u32,
        depth_bytes: u64,
    ) {
        self.0
            .on_enqueue(now, switch, port, engine, pkt, depth_pkts, depth_bytes);
        self.1
            .on_enqueue(now, switch, port, engine, pkt, depth_pkts, depth_bytes);
    }

    #[inline]
    fn on_dequeue(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        pkt_id: u64,
        depth_pkts: u32,
        wait_ns: u64,
    ) {
        self.0
            .on_dequeue(now, switch, port, pkt_id, depth_pkts, wait_ns);
        self.1
            .on_dequeue(now, switch, port, pkt_id, depth_pkts, wait_ns);
    }

    #[inline]
    fn on_drop(
        &mut self,
        now: Time,
        switch: u32,
        port: u16,
        engine: u16,
        pkt: &PacketMeta,
        reason: DropReason,
    ) {
        self.0.on_drop(now, switch, port, engine, pkt, reason);
        self.1.on_drop(now, switch, port, engine, pkt, reason);
    }

    #[inline]
    fn on_nic_drop(&mut self, now: Time, host: u32, pkt: &PacketMeta) {
        self.0.on_nic_drop(now, host, pkt);
        self.1.on_nic_drop(now, host, pkt);
    }

    #[inline]
    fn on_fault(&mut self, now: Time, info: &FaultInfo) {
        self.0.on_fault(now, info);
        self.1.on_fault(now, info);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A probe that counts every hook invocation.
    #[derive(Default)]
    pub(crate) struct CountingProbe {
        pub calls: u64,
    }

    impl Probe for CountingProbe {
        fn on_host_send(&mut self, _: Time, _: u32, _: &PacketMeta) {
            self.calls += 1;
        }
        fn on_host_recv(&mut self, _: Time, _: u32, _: &PacketMeta) {
            self.calls += 1;
        }
        fn on_engine_choice(&mut self, _: Time, _: u32, _: u16, _: &EngineChoice) {
            self.calls += 1;
        }
        fn on_enqueue(&mut self, _: Time, _: u32, _: u16, _: u16, _: &PacketMeta, _: u32, _: u64) {
            self.calls += 1;
        }
        fn on_dequeue(&mut self, _: Time, _: u32, _: u16, _: u64, _: u32, _: u64) {
            self.calls += 1;
        }
        fn on_drop(&mut self, _: Time, _: u32, _: u16, _: u16, _: &PacketMeta, _: DropReason) {
            self.calls += 1;
        }
        fn on_nic_drop(&mut self, _: Time, _: u32, _: &PacketMeta) {
            self.calls += 1;
        }
        fn on_fault(&mut self, _: Time, _: &FaultInfo) {
            self.calls += 1;
        }
    }

    fn fire_all<P: Probe>(p: &mut P) {
        let m = PacketMeta::default();
        p.on_host_send(Time::ZERO, 0, &m);
        p.on_host_recv(Time::ZERO, 0, &m);
        p.on_engine_choice(Time::ZERO, 0, 0, &EngineChoice::default());
        p.on_enqueue(Time::ZERO, 0, 0, 0, &m, 1, 100);
        p.on_dequeue(Time::ZERO, 0, 0, 1, 0, 10);
        p.on_drop(Time::ZERO, 0, 0, 0, &m, DropReason::TailDrop);
        p.on_nic_drop(Time::ZERO, 0, &m);
        p.on_fault(Time::ZERO, &FaultInfo::default());
    }

    #[test]
    fn noop_is_disabled_and_inert() {
        assert!(!NoopProbe::ENABLED);
        fire_all(&mut NoopProbe); // must compile and do nothing
    }

    #[test]
    fn tuple_fans_out_and_ors_enabled() {
        let mut pair = (CountingProbe::default(), CountingProbe::default());
        fire_all(&mut pair);
        assert_eq!(pair.0.calls, 8);
        assert_eq!(pair.1.calls, 8);
        assert!(<(CountingProbe, CountingProbe)>::ENABLED);
        assert!(<(NoopProbe, CountingProbe)>::ENABLED);
        assert!(!<(NoopProbe, NoopProbe)>::ENABLED);
    }

    #[test]
    fn drop_reason_codes_round_trip() {
        for r in [
            DropReason::TailDrop,
            DropReason::LinkDown,
            DropReason::NoRoute,
            DropReason::NicOverflow,
            DropReason::LinkLoss,
        ] {
            assert_eq!(DropReason::from_code(r.code()), Some(r));
            assert!(!r.name().is_empty());
        }
        assert_eq!(DropReason::from_code(250), None);
    }

    #[test]
    fn fault_kind_names_are_distinct() {
        let kinds = [
            fault_kind::LINK_DOWN,
            fault_kind::LINK_UP,
            fault_kind::SWITCH_DOWN,
            fault_kind::SWITCH_UP,
            fault_kind::DEGRADE,
            fault_kind::SET_LOSS,
            fault_kind::RECONVERGE,
            fault_kind::STABLE,
        ];
        let names: Vec<_> = kinds.iter().map(|&k| fault_kind::name(k)).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(!n.is_empty());
            assert!(!names[..i].contains(n), "duplicate name {n}");
        }
        assert_eq!(fault_kind::name(200), "unknown");
    }
}
