//! Post-hoc trace analyzers: the tables `tracedump` prints.
//!
//! Everything here works on a decoded [`Trace`] — no simulator state is
//! needed, so traces can be analyzed offline, long after the run.

use std::collections::BTreeMap;

use drill_sim::Time;

use crate::encode::Trace;
use crate::probe::meta_flags;
use crate::record::TraceEvent;

/// Per-port queue-depth step series: `(bucket, depth at bucket end)`,
/// keyed by (switch, port). Derived from the depth fields carried on every
/// enqueue/dequeue event (last event in a bucket wins; buckets without
/// queue activity are omitted).
pub fn queue_timelines(trace: &Trace, bucket: Time) -> BTreeMap<(u32, u16), Vec<(u64, u32)>> {
    let every = bucket.as_nanos().max(1);
    let mut out: BTreeMap<(u32, u16), Vec<(u64, u32)>> = BTreeMap::new();
    for ev in trace.merged_events() {
        let (switch, port, t, depth) = match ev {
            TraceEvent::Enqueue {
                t,
                switch,
                port,
                depth_pkts,
                ..
            }
            | TraceEvent::Dequeue {
                t,
                switch,
                port,
                depth_pkts,
                ..
            } => (*switch, *port, *t, *depth_pkts),
            _ => continue,
        };
        let b = t.as_nanos() / every;
        let series = out.entry((switch, port)).or_default();
        match series.last_mut() {
            Some((last_b, last_d)) if *last_b == b => *last_d = depth,
            _ => series.push((b, depth)),
        }
    }
    out
}

/// Cross-port queue-length standard deviation per bucket for one switch —
/// the Fig. 2 imbalance metric, recomputed from the trace. Port depths are
/// forward-filled between their sampled buckets.
pub fn depth_stdev_timeline(
    timelines: &BTreeMap<(u32, u16), Vec<(u64, u32)>>,
    switch: u32,
    ports: &[u16],
) -> Vec<(u64, f64)> {
    let series: Vec<&Vec<(u64, u32)>> = ports
        .iter()
        .filter_map(|p| timelines.get(&(switch, *p)))
        .collect();
    if series.len() != ports.len() || series.is_empty() {
        return Vec::new();
    }
    let mut buckets: Vec<u64> = series
        .iter()
        .flat_map(|s| s.iter().map(|&(b, _)| b))
        .collect();
    buckets.sort_unstable();
    buckets.dedup();
    // Forward-fill each port with a cursor over its own samples.
    let mut cursors = vec![0usize; series.len()];
    let mut depths = vec![0f64; series.len()];
    let mut out = Vec::with_capacity(buckets.len());
    for &b in &buckets {
        for (i, s) in series.iter().enumerate() {
            while cursors[i] < s.len() && s[cursors[i]].0 <= b {
                depths[i] = s[cursors[i]].1 as f64;
                cursors[i] += 1;
            }
        }
        let mean = depths.iter().sum::<f64>() / depths.len() as f64;
        let var = depths.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / depths.len() as f64;
        out.push((b, var.sqrt()));
    }
    out
}

/// One packet's reconstructed trip through the fabric.
#[derive(Clone, Debug, Default)]
pub struct PacketTrip {
    /// Packet id.
    pub id: u64,
    /// Flow id (from the send event).
    pub flow: u32,
    /// NIC-accept time, ns (if the send survived in the ring).
    pub send_ns: Option<u64>,
    /// Delivery time, ns (if delivered and surviving).
    pub recv_ns: Option<u64>,
    /// Switch hops observed (enqueue events).
    pub hops: u32,
    /// Total queueing + serialization time across observed hops, ns.
    pub wait_ns: u64,
    /// Whether a drop event for this packet was recorded.
    pub dropped: bool,
}

impl PacketTrip {
    /// End-to-end latency in ns when both endpoints were recorded.
    pub fn latency_ns(&self) -> Option<u64> {
        match (self.send_ns, self.recv_ns) {
            (Some(s), Some(r)) if r >= s => Some(r - s),
            _ => None,
        }
    }
}

/// Join every packet's lifecycle events by id into per-packet trips,
/// keyed by packet id.
pub fn packet_trips(trace: &Trace) -> BTreeMap<u64, PacketTrip> {
    let mut trips: BTreeMap<u64, PacketTrip> = BTreeMap::new();
    for ev in trace.merged_events() {
        match ev {
            TraceEvent::HostSend { t, pkt, .. } => {
                let e = trips.entry(pkt.id).or_default();
                e.id = pkt.id;
                e.flow = pkt.flow;
                e.send_ns = Some(t.as_nanos());
            }
            TraceEvent::HostRecv { t, pkt, .. } => {
                let e = trips.entry(pkt.id).or_default();
                e.id = pkt.id;
                e.flow = pkt.flow;
                e.recv_ns = Some(t.as_nanos());
            }
            TraceEvent::Enqueue { pkt_id, .. } => {
                let e = trips.entry(*pkt_id).or_default();
                e.id = *pkt_id;
                e.hops += 1;
            }
            TraceEvent::Dequeue {
                pkt_id, wait_ns, ..
            } => {
                let e = trips.entry(*pkt_id).or_default();
                e.id = *pkt_id;
                e.wait_ns += wait_ns;
            }
            TraceEvent::Drop { pkt_id, .. } => {
                let e = trips.entry(*pkt_id).or_default();
                e.id = *pkt_id;
                e.dropped = true;
            }
            TraceEvent::EngineChoice { .. }
            | TraceEvent::NicDrop { .. }
            | TraceEvent::Fault { .. } => {}
        }
    }
    trips
}

/// One entry of the control-plane fault timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultTimelineEntry {
    /// Event time in ns.
    pub t_ns: u64,
    /// [`crate::fault_kind`] code.
    pub kind: u8,
    /// First affected switch (`u32::MAX` when unused).
    pub a: u32,
    /// Second affected switch (`u32::MAX` when unused).
    pub b: u32,
    /// Kind-specific payload.
    pub param: u64,
}

/// Extract the chronological fault/reconvergence timeline from the
/// control ring (empty for traces recorded without fault injection).
pub fn fault_timeline(trace: &Trace) -> Vec<FaultTimelineEntry> {
    let mut out = Vec::new();
    for ev in trace.merged_events() {
        if let TraceEvent::Fault {
            t,
            kind,
            a,
            b,
            param,
            ..
        } = ev
        {
            out.push(FaultTimelineEntry {
                t_ns: t.as_nanos(),
                kind: *kind,
                a: *a,
                b: *b,
                param: *param,
            });
        }
    }
    out
}

/// Reordering observed at delivery, per flow and in aggregate.
#[derive(Clone, Debug, Default)]
pub struct ReorderReport {
    /// Flows with at least one delivered data packet.
    pub flows: u64,
    /// Delivered (non-retransmit) data packets inspected.
    pub deliveries: u64,
    /// Total inversions: deliveries whose emission index was below the
    /// flow's running maximum. Cross-checks `TcpFlow::reorder_events`.
    pub inversions: u64,
    /// Histogram of inversion *degree* (`max_seen - emit_idx`), indexed by
    /// `min(degree, len-1)` — the last bucket aggregates the tail.
    pub degree_hist: Vec<u64>,
}

/// Build the reordering-degree histogram from delivered data packets
/// (retransmissions excluded, matching the TCP counter's rule).
pub fn reordering(trace: &Trace, hist_buckets: usize) -> ReorderReport {
    let mut rep = ReorderReport {
        degree_hist: vec![0; hist_buckets.max(1)],
        ..Default::default()
    };
    let mut max_seen: BTreeMap<u32, u32> = BTreeMap::new();
    for ev in trace.merged_events() {
        let pkt = match ev {
            TraceEvent::HostRecv { pkt, .. } => pkt,
            _ => continue,
        };
        if pkt.flags & meta_flags::DATA == 0 || pkt.flags & meta_flags::RETX != 0 {
            continue;
        }
        rep.deliveries += 1;
        match max_seen.get_mut(&pkt.flow) {
            None => {
                rep.flows += 1;
                max_seen.insert(pkt.flow, pkt.emit_idx);
            }
            Some(m) => {
                if pkt.emit_idx < *m {
                    rep.inversions += 1;
                    let degree = (*m - pkt.emit_idx) as usize;
                    let idx = degree.min(rep.degree_hist.len() - 1);
                    rep.degree_hist[idx] += 1;
                } else {
                    *m = pkt.emit_idx;
                }
            }
        }
    }
    rep
}

/// How well one forwarding engine's choices tracked the true shortest
/// queue (§3.2.1: engines act on stale, committed state).
#[derive(Clone, Copy, Debug, Default)]
pub struct DecisionQuality {
    /// Choices recorded.
    pub choices: u64,
    /// Choices whose chosen port had the minimum actual occupancy.
    pub optimal: u64,
    /// Sum over choices of `chosen_pkts - best_pkts` (excess queue).
    pub excess_sum: u64,
    /// Largest single excess.
    pub max_excess: u32,
}

impl DecisionQuality {
    /// Fraction of choices that were truly shortest.
    pub fn optimal_frac(&self) -> f64 {
        if self.choices == 0 {
            0.0
        } else {
            self.optimal as f64 / self.choices as f64
        }
    }

    /// Mean excess occupancy of the chosen port, in packets.
    pub fn mean_excess(&self) -> f64 {
        if self.choices == 0 {
            0.0
        } else {
            self.excess_sum as f64 / self.choices as f64
        }
    }
}

/// Aggregate decision quality per (switch, engine).
pub fn decision_quality(trace: &Trace) -> BTreeMap<(u32, u16), DecisionQuality> {
    let mut out: BTreeMap<(u32, u16), DecisionQuality> = BTreeMap::new();
    for ev in trace.merged_events() {
        let (switch, engine, choice) = match ev {
            TraceEvent::EngineChoice {
                switch,
                engine,
                choice,
                ..
            } => (*switch, *engine, choice),
            _ => continue,
        };
        let q = out.entry((switch, engine)).or_default();
        q.choices += 1;
        let excess = choice.chosen_pkts.saturating_sub(choice.best_pkts);
        if excess == 0 {
            q.optimal += 1;
        }
        q.excess_sum += excess as u64;
        q.max_excess = q.max_excess.max(excess);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::TraceRing;
    use crate::probe::{EngineChoice, PacketMeta};
    use crate::record::RingKind;

    fn trace_of(events: Vec<TraceEvent>) -> Trace {
        Trace {
            num_switches: 4,
            engines: 1,
            rings: vec![TraceRing {
                kind: RingKind::Host,
                overwritten: 0,
                events,
            }],
        }
    }

    fn enq(ns: u64, switch: u32, port: u16, depth: u32) -> TraceEvent {
        TraceEvent::Enqueue {
            t: Time::from_nanos(ns),
            switch,
            port,
            engine: 0,
            pkt_id: ns,
            size: 1500,
            depth_pkts: depth,
            depth_bytes: depth as u64 * 1500,
        }
    }

    fn recv(ns: u64, flow: u32, emit_idx: u32, flags: u8) -> TraceEvent {
        TraceEvent::HostRecv {
            t: Time::from_nanos(ns),
            host: 1,
            pkt: PacketMeta {
                id: ns,
                flow,
                emit_idx,
                flags,
                ..Default::default()
            },
        }
    }

    #[test]
    fn timelines_bucket_last_value() {
        let tr = trace_of(vec![
            enq(10, 0, 0, 1),
            enq(40, 0, 0, 2),
            enq(120, 0, 0, 3),
            enq(10, 0, 1, 5),
        ]);
        let tl = queue_timelines(&tr, Time::from_nanos(100));
        assert_eq!(tl[&(0, 0)], vec![(0, 2), (1, 3)]);
        assert_eq!(tl[&(0, 1)], vec![(0, 5)]);
    }

    #[test]
    fn stdev_timeline_forward_fills() {
        let tr = trace_of(vec![enq(10, 0, 0, 4), enq(10, 0, 1, 0), enq(150, 0, 1, 4)]);
        let tl = queue_timelines(&tr, Time::from_nanos(100));
        let sd = depth_stdev_timeline(&tl, 0, &[0, 1]);
        assert_eq!(sd.len(), 2);
        // Bucket 0: depths 4 and 0 -> stdev 2. Bucket 1: 4 and 4 -> 0.
        assert!((sd[0].1 - 2.0).abs() < 1e-12);
        assert_eq!(sd[1].1, 0.0);
        assert!(depth_stdev_timeline(&tl, 0, &[0, 7]).is_empty());
    }

    #[test]
    fn trips_join_by_packet_id() {
        let m = PacketMeta {
            id: 1,
            flow: 9,
            ..Default::default()
        };
        let tr = trace_of(vec![
            TraceEvent::HostSend {
                t: Time::from_nanos(100),
                host: 0,
                pkt: m,
            },
            TraceEvent::Enqueue {
                t: Time::from_nanos(200),
                switch: 0,
                port: 0,
                engine: 0,
                pkt_id: 1,
                size: 1500,
                depth_pkts: 1,
                depth_bytes: 1500,
            },
            TraceEvent::Dequeue {
                t: Time::from_nanos(1400),
                switch: 0,
                port: 0,
                pkt_id: 1,
                depth_pkts: 0,
                wait_ns: 1200,
            },
            TraceEvent::HostRecv {
                t: Time::from_nanos(1900),
                host: 1,
                pkt: m,
            },
        ]);
        let trips = packet_trips(&tr);
        let t = &trips[&1];
        assert_eq!(t.flow, 9);
        assert_eq!(t.hops, 1);
        assert_eq!(t.wait_ns, 1200);
        assert_eq!(t.latency_ns(), Some(1800));
        assert!(!t.dropped);
    }

    #[test]
    fn reordering_counts_inversions_not_retx() {
        let d = meta_flags::DATA;
        let tr = trace_of(vec![
            recv(1, 0, 0, d),
            recv(2, 0, 2, d),
            recv(3, 0, 1, d),                    // inversion, degree 1
            recv(4, 0, 0, d | meta_flags::RETX), // retx: ignored
            recv(5, 1, 5, d),
            recv(6, 1, 1, d), // inversion, degree 4
            recv(7, 1, 6, d),
        ]);
        let rep = reordering(&tr, 4);
        assert_eq!(rep.flows, 2);
        assert_eq!(rep.deliveries, 6);
        assert_eq!(rep.inversions, 2);
        assert_eq!(rep.degree_hist, vec![0, 1, 0, 1]); // degree 4 clamped
    }

    #[test]
    fn fault_timeline_is_chronological() {
        use crate::probe::fault_kind;
        let f = |ns: u64, kind: u8| TraceEvent::Fault {
            t: Time::from_nanos(ns),
            kind,
            a: 0,
            b: 4,
            param: 0,
        };
        let tr = trace_of(vec![
            enq(5, 0, 0, 1),
            f(100, fault_kind::LINK_DOWN),
            f(50_100, fault_kind::RECONVERGE),
            f(200_000, fault_kind::LINK_UP),
        ]);
        let tl = fault_timeline(&tr);
        assert_eq!(tl.len(), 3, "packet events are excluded");
        assert_eq!(tl[0].kind, fault_kind::LINK_DOWN);
        assert_eq!(tl[1].kind, fault_kind::RECONVERGE);
        assert!(tl.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert!(fault_timeline(&trace_of(vec![enq(1, 0, 0, 1)])).is_empty());
    }

    #[test]
    fn decision_quality_aggregates() {
        let mk = |chosen_pkts: u32, best_pkts: u32| TraceEvent::EngineChoice {
            t: Time::ZERO,
            switch: 2,
            engine: 1,
            choice: EngineChoice {
                chosen: 0,
                chosen_pkts,
                best: 1,
                best_pkts,
                candidates: 4,
            },
        };
        let tr = trace_of(vec![mk(3, 3), mk(5, 2), mk(2, 2)]);
        let q = decision_quality(&tr)[&(2, 1)];
        assert_eq!(q.choices, 3);
        assert_eq!(q.optimal, 2);
        assert_eq!(q.excess_sum, 3);
        assert_eq!(q.max_excess, 3);
        assert!((q.optimal_frac() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_excess() - 1.0).abs() < 1e-12);
    }
}
