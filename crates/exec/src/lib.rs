//! Deterministic parallel execution for sweeps.
//!
//! A sweep is a set of *independent* simulation points: each point builds
//! its own `World` from its own config and seed, so any execution order —
//! serial, interleaved, or across OS threads — produces the same per-point
//! results. This crate supplies the execution substrate that exploits that
//! independence without ever being allowed to influence it:
//!
//! * [`Executor`] — a fixed-size pool of worker threads (one scoped worker
//!   set per [`Executor::map`] call, sized once at construction).
//! * [`ChunkQueue`] — the shared work queue: workers claim contiguous index
//!   chunks with a single atomic `fetch_add`, so there is no locking on the
//!   hot path and no per-item contention.
//! * Ordered collection: every result is written to the slot of its input
//!   index, so the output `Vec` is always in input order regardless of
//!   which worker finished first.
//!
//! The determinism contract is therefore purely structural: workers share
//! *no* mutable simulation state, only the claim counter and the result
//! slots, and each slot is written exactly once. `DRILL_THREADS` picks the
//! worker count (default: available parallelism); it can change the wall
//! clock, never the results.
//!
//! Std-only by design — the workspace builds with zero external
//! dependencies (see the root `Cargo.toml`).

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable selecting the worker count.
pub const THREADS_ENV: &str = "DRILL_THREADS";

/// Parse a `DRILL_THREADS`-style value. `None`, empty, unparsable, or zero
/// fall back to `default`.
pub fn parse_threads(val: Option<&str>, default: usize) -> usize {
    match val.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => default.max(1),
    }
}

/// The worker count selected by `DRILL_THREADS`, defaulting to the
/// machine's available parallelism.
pub fn threads_from_env() -> usize {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref(), default)
}

/// Environment variable selecting the intra-run shard count (the sharded
/// world engine; see drill-runtime). Like `DRILL_THREADS` it may change
/// wall clock, never results.
pub const SHARDS_ENV: &str = "DRILL_SHARDS";

/// Parse a `DRILL_SHARDS`-style value. `None`, empty, unparsable, or zero
/// mean "unset" — the caller picks its own default (an explicit config
/// knob wins over the environment, which wins over serial).
pub fn parse_shards(val: Option<&str>) -> Option<usize> {
    match val.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// The shard count selected by `DRILL_SHARDS`, if set.
pub fn shards_from_env() -> Option<usize> {
    parse_shards(std::env::var(SHARDS_ENV).ok().as_deref())
}

thread_local! {
    /// Intra-run worker budget pinned on this thread by the enclosing
    /// [`Executor::map`] (or [`with_inner_budget`]); `None` outside one.
    static INNER_BUDGET: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Run `f` with the intra-run worker budget pinned to `n` (clamped to at
/// least 1) on the current thread, restoring the previous pin afterwards.
///
/// This is how one `DRILL_THREADS` budget composes across nesting levels:
/// an outer parallel map pins each worker's share before running the
/// per-item closure, and inner machinery (the sharded engine's barrier
/// drains) sizes itself with [`inner_budget`] instead of re-reading the
/// environment — so `points × shards` never oversubscribes the budget.
pub fn with_inner_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    INNER_BUDGET.with(|b| {
        let prev = b.replace(Some(n.max(1)));
        let r = f();
        b.set(prev);
        r
    })
}

/// The intra-run worker budget for the current thread: the share pinned
/// by the enclosing outer map, or the whole `DRILL_THREADS` budget when
/// no outer parallelism is active.
pub fn inner_budget() -> usize {
    INNER_BUDGET
        .with(|b| b.get())
        .unwrap_or_else(threads_from_env)
}

/// A chunked work queue over the index range `0..len`.
///
/// Workers call [`claim`](ChunkQueue::claim) in a loop; each call hands out
/// the next contiguous chunk of indices (or `None` when the range is
/// exhausted). Chunking amortizes the atomic operation over several items;
/// for heavy items a chunk size of 1 degenerates to plain work stealing,
/// which is what sweeps of multi-second simulation points want.
#[derive(Debug)]
pub struct ChunkQueue {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkQueue {
    /// A queue over `0..len` handing out chunks of `chunk` indices
    /// (`chunk` is clamped to at least 1).
    pub fn new(len: usize, chunk: usize) -> ChunkQueue {
        ChunkQueue {
            next: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claim the next chunk, or `None` when the work is exhausted.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }
}

/// A fixed-size thread pool for order-preserving parallel maps.
///
/// The pool size is fixed at construction; [`map`](Executor::map) runs the
/// closure over every item using at most that many OS threads, returning
/// results in input order. With one thread (or one item) the map runs
/// inline on the caller's thread — the serial path and the parallel path
/// execute the exact same per-item code.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// An executor sized by `DRILL_THREADS` (default: available
    /// parallelism).
    pub fn from_env() -> Executor {
        Executor::new(threads_from_env())
    }

    /// A serial executor (one worker, runs inline).
    pub fn serial() -> Executor {
        Executor::new(1)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, in parallel, returning results in input
    /// order. `f` receives `(index, &item)`.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            // Inline: the whole budget stays available to inner machinery.
            return with_inner_budget(self.threads, || {
                items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
            });
        }
        // Simulation points are heavy (milliseconds to minutes each), so
        // bias toward fine-grained claims: chunks larger than 1 only when
        // there are many more items than claim slots.
        let chunk = (items.len() / (workers * 8)).max(1);
        let queue = ChunkQueue::new(items.len(), chunk);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        // Each worker gets an equal share of the thread budget for any
        // nested parallelism (see [`with_inner_budget`]).
        let share = (self.threads / workers).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    with_inner_budget(share, || {
                        while let Some(range) = queue.claim() {
                            for i in range {
                                let r = f(i, &items[i]);
                                *slots[i].lock().expect("result slot poisoned") = Some(r);
                            }
                        }
                    })
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot filled exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn parse_threads_fallbacks() {
        assert_eq!(parse_threads(None, 4), 4);
        assert_eq!(parse_threads(Some(""), 4), 4);
        assert_eq!(parse_threads(Some("abc"), 4), 4);
        assert_eq!(parse_threads(Some("0"), 4), 4);
        assert_eq!(parse_threads(Some("3"), 4), 3);
        assert_eq!(parse_threads(Some(" 12 "), 4), 12);
        assert_eq!(parse_threads(None, 0), 1, "default itself is clamped");
    }

    #[test]
    fn chunk_queue_covers_every_index_once() {
        for (len, chunk) in [(0, 1), (1, 1), (10, 3), (10, 1), (7, 7), (5, 100)] {
            let q = ChunkQueue::new(len, chunk);
            let mut seen = Vec::new();
            while let Some(r) = q.claim() {
                assert!(r.len() <= chunk.max(1));
                seen.extend(r);
            }
            assert_eq!(
                seen,
                (0..len).collect::<Vec<_>>(),
                "len={len} chunk={chunk}"
            );
            assert!(q.claim().is_none(), "stays exhausted");
        }
    }

    #[test]
    fn chunk_queue_is_shared_safely() {
        let q = ChunkQueue::new(1000, 7);
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(r) = q.claim() {
                        let mut s = seen.lock().unwrap();
                        for i in r {
                            assert!(s.insert(i), "index {i} claimed twice");
                        }
                    }
                });
            }
        });
        assert_eq!(seen.into_inner().unwrap().len(), 1000);
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let ex = Executor::new(threads);
            let out = ex.map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let serial = Executor::serial().map(&items, |_, &x| x.wrapping_mul(0x9e3779b9));
        for threads in [2, 5, 16] {
            let par = Executor::new(threads).map(&items, |_, &x| x.wrapping_mul(0x9e3779b9));
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn map_empty_and_single() {
        let ex = Executor::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(ex.map(&empty, |_, &x| x).is_empty());
        assert_eq!(ex.map(&[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn executor_clamps_to_one_thread() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::serial().threads(), 1);
    }

    #[test]
    fn parse_shards_unset_means_none() {
        assert_eq!(parse_shards(None), None);
        assert_eq!(parse_shards(Some("")), None);
        assert_eq!(parse_shards(Some("abc")), None);
        assert_eq!(parse_shards(Some("0")), None);
        assert_eq!(parse_shards(Some("2")), Some(2));
        assert_eq!(parse_shards(Some(" 8 ")), Some(8));
    }

    #[test]
    fn inner_budget_nests_and_restores() {
        let outer = inner_budget();
        assert!(outer >= 1);
        with_inner_budget(3, || {
            assert_eq!(inner_budget(), 3);
            with_inner_budget(0, || assert_eq!(inner_budget(), 1, "clamped"));
            assert_eq!(inner_budget(), 3, "restored after nesting");
        });
        assert_eq!(inner_budget(), outer);
    }

    #[test]
    fn map_splits_the_budget_across_workers() {
        // 4 threads over 2 items: two workers, each pinned to 2 inner
        // threads. Inline path: the single caller keeps all 4.
        let shares = Executor::new(4).map(&[(), ()], |_, _| inner_budget());
        assert_eq!(shares, vec![2, 2]);
        let inline = Executor::new(4).map(&[()], |_, _| inner_budget());
        assert_eq!(inline, vec![4]);
        let serial = Executor::serial().map(&[(), ()], |_, _| inner_budget());
        assert_eq!(serial, vec![1, 1]);
    }
}
